//! State specialization — the optimization at the heart of dynamic class
//! hierarchy mutation.
//!
//! Given the *hot state* of a mutable class (known constant values for some
//! of its state fields, per the paper's Section 2), this pass replaces loads
//! of those fields — `GetField` on the receiver for instance state fields,
//! `GetStatic` for static state fields — with constants. The scalar pipeline
//! then folds the state-dependent branches and deletes the arms for every
//! other state, yielding the "special compiled code" installed into special
//! TIBs. In the steady state no value checks run: the VM only dispatches
//! into this code through a special TIB that is kept consistent with the
//! object's actual state (paper Figure 4/5). The VM compiler nevertheless
//! plants explicit [`Op::GuardState`] ops (at entry and after state-field
//! stores) *before* this pass runs, so a frame whose assumptions break
//! mid-method — the object leaves its hot state while the specialized
//! frame is live — deoptimizes onto baseline code instead of running
//! stale specialized code.

use crate::func::Function;
use dchm_bytecode::{FieldId, Op, Reg, Value};
use std::collections::HashMap;

/// Constant bindings for a specialization: field -> known value.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Bindings {
    /// Instance state fields of the receiver, by field id.
    pub instance: HashMap<FieldId, Value>,
    /// Static state fields, by field id.
    pub statics: HashMap<FieldId, Value>,
}

impl Bindings {
    /// True if there is nothing to specialize.
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty() && self.statics.is_empty()
    }

    /// Number of bound fields.
    pub fn len(&self) -> usize {
        self.instance.len() + self.statics.len()
    }
}

fn const_op(dst: Reg, v: Value) -> Option<Op> {
    match v {
        Value::Int(val) => Some(Op::ConstI { dst, val }),
        Value::Double(val) => Some(Op::ConstD { dst, val }),
        Value::Null => Some(Op::ConstNull { dst }),
        Value::Ref(_) => None,
    }
}

/// Specializes `f` under `bindings`; returns the number of replaced loads.
///
/// Instance-field bindings apply only to loads through the receiver
/// register (`r0`), and only when `r0` is never redefined in the function —
/// otherwise a reassigned receiver could alias a different object. Static
/// bindings apply everywhere.
pub fn specialize(f: &mut Function, bindings: &Bindings) -> usize {
    if bindings.is_empty() {
        return 0;
    }
    let receiver = Reg(0);
    let receiver_stable = f.arg_count >= 1
        && f.blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .all(|op| op.def() != Some(receiver));

    let mut replaced = 0;
    for block in &mut f.blocks {
        for op in &mut block.ops {
            let new_op = match op {
                Op::GetField { dst, obj, field }
                    if receiver_stable && *obj == receiver =>
                {
                    bindings
                        .instance
                        .get(field)
                        .and_then(|&v| const_op(*dst, v))
                }
                Op::GetStatic { dst, field } => {
                    bindings.statics.get(field).and_then(|&v| const_op(*dst, v))
                }
                _ => None,
            };
            if let Some(n) = new_op {
                *op = n;
                replaced += 1;
            }
        }
    }
    replaced
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Term};

    fn getfield_fn(obj: Reg) -> Function {
        let mut b = Block::new(Term::Ret(Some(Reg(1))));
        b.ops = vec![Op::GetField {
            dst: Reg(1),
            obj,
            field: FieldId(7),
        }];
        Function {
            blocks: vec![b],
            num_regs: 3,
            arg_count: 1,
        }
    }

    #[test]
    fn replaces_receiver_field_load() {
        let mut f = getfield_fn(Reg(0));
        let mut b = Bindings::default();
        b.instance.insert(FieldId(7), Value::Int(42));
        assert_eq!(specialize(&mut f, &b), 1);
        assert_eq!(f.blocks[0].ops[0], Op::ConstI { dst: Reg(1), val: 42 });
    }

    #[test]
    fn ignores_non_receiver_loads() {
        let mut f = getfield_fn(Reg(2)); // not the receiver
        let mut b = Bindings::default();
        b.instance.insert(FieldId(7), Value::Int(42));
        assert_eq!(specialize(&mut f, &b), 0);
    }

    #[test]
    fn skips_when_receiver_redefined() {
        let mut f = getfield_fn(Reg(0));
        f.blocks[0].ops.insert(
            0,
            Op::Mov {
                dst: Reg(0),
                src: Reg(2),
            },
        );
        let mut b = Bindings::default();
        b.instance.insert(FieldId(7), Value::Int(42));
        assert_eq!(specialize(&mut f, &b), 0);
    }

    #[test]
    fn statics_replaced_everywhere() {
        let mut blk = Block::new(Term::Ret(Some(Reg(1))));
        blk.ops = vec![Op::GetStatic {
            dst: Reg(1),
            field: FieldId(3),
        }];
        let mut f = Function {
            blocks: vec![blk],
            num_regs: 2,
            arg_count: 0,
        };
        let mut b = Bindings::default();
        b.statics.insert(FieldId(3), Value::Double(2.5));
        assert_eq!(specialize(&mut f, &b), 1);
        assert_eq!(
            f.blocks[0].ops[0],
            Op::ConstD {
                dst: Reg(1),
                val: 2.5
            }
        );
    }

    #[test]
    fn other_fields_untouched() {
        let mut f = getfield_fn(Reg(0));
        let mut b = Bindings::default();
        b.instance.insert(FieldId(99), Value::Int(1));
        assert_eq!(specialize(&mut f, &b), 0);
    }

    #[test]
    fn empty_bindings_noop() {
        let mut f = getfield_fn(Reg(0));
        let before = f.clone();
        assert_eq!(specialize(&mut f, &Bindings::default()), 0);
        assert_eq!(f, before);
    }
}
