//! Local (per-block) copy propagation.

use crate::func::{Function, Term};
use dchm_bytecode::{Op, Reg};
use std::collections::HashMap;

/// Propagates copies within each block and drops no-op moves; returns the
/// rewrite count.
pub fn copyprop(f: &mut Function) -> usize {
    let mut rewrites = 0;
    for block in &mut f.blocks {
        let mut copy_of: HashMap<Reg, Reg> = HashMap::new();
        let resolve = |m: &HashMap<Reg, Reg>, r: Reg| m.get(&r).copied().unwrap_or(r);

        let mut new_ops = Vec::with_capacity(block.ops.len());
        for mut op in block.ops.drain(..) {
            // Substitute uses first.
            let before = op.clone();
            op.map_uses(|r| resolve(&copy_of, r));
            if op != before {
                rewrites += 1;
            }
            // A def invalidates any mapping involving the defined register.
            if let Some(d) = op.def() {
                copy_of.remove(&d);
                copy_of.retain(|_, v| *v != d);
            }
            // Record new copies; drop no-op moves.
            if let Op::Mov { dst, src } = op {
                if dst == src {
                    rewrites += 1;
                    continue;
                }
                copy_of.insert(dst, src);
            }
            new_ops.push(op);
        }
        block.ops = new_ops;

        // Terminator uses see the block's final copy map.
        match &mut block.term {
            Term::Br { cond, .. } => {
                let r = resolve(&copy_of, *cond);
                if r != *cond {
                    *cond = r;
                    rewrites += 1;
                }
            }
            Term::Ret(Some(v)) => {
                let r = resolve(&copy_of, *v);
                if r != *v {
                    *v = r;
                    rewrites += 1;
                }
            }
            _ => {}
        }
    }
    rewrites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Block;
    use dchm_bytecode::IBinOp;

    #[test]
    fn propagates_through_mov_chain() {
        let mut b = Block::new(Term::Ret(Some(Reg(3))));
        b.ops = vec![
            Op::Mov {
                dst: Reg(1),
                src: Reg(0),
            },
            Op::Mov {
                dst: Reg(2),
                src: Reg(1),
            },
            Op::IBin {
                op: IBinOp::Add,
                dst: Reg(3),
                a: Reg(2),
                b: Reg(2),
            },
        ];
        let mut f = Function {
            blocks: vec![b],
            num_regs: 4,
            arg_count: 1,
        };
        copyprop(&mut f);
        assert_eq!(
            f.blocks[0].ops[2],
            Op::IBin {
                op: IBinOp::Add,
                dst: Reg(3),
                a: Reg(0),
                b: Reg(0),
            }
        );
    }

    #[test]
    fn redefinition_kills_copy() {
        let mut b = Block::new(Term::Ret(Some(Reg(2))));
        b.ops = vec![
            Op::Mov {
                dst: Reg(1),
                src: Reg(0),
            },
            // r0 is redefined; r1 must NOT be rewritten to r0 afterwards.
            Op::ConstI {
                dst: Reg(0),
                val: 9,
            },
            Op::Mov {
                dst: Reg(2),
                src: Reg(1),
            },
        ];
        let mut f = Function {
            blocks: vec![b],
            num_regs: 3,
            arg_count: 1,
        };
        copyprop(&mut f);
        assert_eq!(
            f.blocks[0].ops[2],
            Op::Mov {
                dst: Reg(2),
                src: Reg(1),
            }
        );
    }

    #[test]
    fn drops_self_moves_created_by_substitution() {
        let mut b = Block::new(Term::Ret(Some(Reg(1))));
        b.ops = vec![
            Op::Mov {
                dst: Reg(1),
                src: Reg(0),
            },
            Op::Mov {
                dst: Reg(0),
                src: Reg(1),
            }, // becomes r0 = r0 and is dropped... but r0 redefined!
        ];
        let mut f = Function {
            blocks: vec![b],
            num_regs: 2,
            arg_count: 1,
        };
        copyprop(&mut f);
        // r0 = r1 where r1 = r0: substitution yields r0 = r0, dropped.
        assert_eq!(f.blocks[0].ops.len(), 1);
        // The (conceptual) redefinition of r0 killed the r1 -> r0 mapping,
        // so the return value stays r1 (same value either way).
        assert_eq!(f.blocks[0].term, Term::Ret(Some(Reg(1))));
    }

    #[test]
    fn terminator_condition_rewritten() {
        use crate::func::BlockId;
        let mut b = Block::new(Term::Br {
            cond: Reg(1),
            t: BlockId(1),
            f: BlockId(1),
        });
        b.ops = vec![Op::Mov {
            dst: Reg(1),
            src: Reg(0),
        }];
        let ret = Block::new(Term::Ret(None));
        let mut f = Function {
            blocks: vec![b, ret],
            num_regs: 2,
            arg_count: 1,
        };
        copyprop(&mut f);
        assert!(matches!(f.blocks[0].term, Term::Br { cond: Reg(0), .. }));
    }
}
