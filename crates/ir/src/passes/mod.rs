//! Optimization passes and the per-level pipeline.
//!
//! The pipeline mirrors the Jikes RVM optimizing compiler's role in the
//! paper: `opt0` is a straight translation, `opt1` adds the scalar
//! optimizations, `opt2` runs them to a fixpoint (and is the level at which
//! the paper performs mutation — specialized method versions are produced
//! by running [`specialize::specialize`] before this pipeline).

pub mod constprop;
pub mod copyprop;
pub mod dce;
pub mod inline;
pub mod lvn;
pub mod simplify;
pub mod specialize;
pub mod strength;

pub use inline::inline_call;
pub use specialize::{specialize, Bindings};

use crate::func::Function;

/// Pipeline configuration, keyed off the optimization level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OptConfig {
    /// Optimization level (0, 1 or 2).
    pub level: u8,
    /// Maximum cleanup iterations (each runs all scalar passes once).
    pub max_iterations: usize,
    /// Enable strength reduction.
    pub strength: bool,
    /// Enable local value numbering (CSE + redundant-load elimination).
    pub lvn: bool,
}

impl OptConfig {
    /// The standard configuration for an optimization level.
    pub fn level(level: u8) -> Self {
        match level {
            0 => OptConfig {
                level: 0,
                max_iterations: 0,
                strength: false,
                lvn: false,
            },
            1 => OptConfig {
                level: 1,
                max_iterations: 2,
                strength: true,
                lvn: false,
            },
            _ => OptConfig {
                level: 2,
                max_iterations: 5,
                strength: true,
                lvn: true,
            },
        }
    }
}

/// What the pipeline did; feeds the compilation-cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total number of rewrites applied across all passes and iterations.
    pub rewrites: usize,
    /// Number of full iterations run.
    pub iterations: usize,
}

/// Runs the scalar pipeline (constant propagation with branch folding, copy
/// propagation, strength reduction, dead-code elimination, CFG simplification)
/// until a fixpoint or the configured iteration cap.
pub fn run_pipeline(f: &mut Function, cfg: &OptConfig) -> PipelineStats {
    let mut stats = PipelineStats::default();
    for _ in 0..cfg.max_iterations {
        let mut n = 0;
        n += constprop::constprop(f);
        if cfg.lvn {
            n += lvn::lvn(f);
        }
        n += copyprop::copyprop(f);
        if cfg.strength {
            n += strength::strength_reduce(f);
        }
        n += dce::dce(f);
        n += simplify::simplify_cfg(f);
        stats.rewrites += n;
        stats.iterations += 1;
        if n == 0 {
            break;
        }
    }
    debug_assert!(f.validate().is_ok(), "pipeline produced invalid IR");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lift::lift;
    use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty};

    /// The paper's SalaryDB `raise()` shape: a 4-way branch on a field.
    /// After specializing `grade = 2`, the pipeline must collapse the method
    /// to (close to) a single multiply.
    #[test]
    fn specialized_salarydb_raise_collapses() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("SalaryEmployee").build();
        let grade = pb.private_field(c, "grade", Ty::Int);
        let salary = pb.private_field(c, "salary", Ty::Double);

        let mut m = pb.method(c, "raise", MethodSig::void());
        let this = m.this();
        let g = m.reg();
        m.get_field(g, this, grade);
        let l1 = m.label();
        let l2 = m.label();
        let l3 = m.label();
        let done = m.label();
        let s = m.reg();

        m.br_icmp_imm(CmpOp::Ne, g, 0, l1);
        m.get_field(s, this, salary);
        let one = m.imm_d(1.0);
        m.dadd(s, s, one);
        m.put_field(this, salary, s);
        m.jmp(done);

        m.bind(l1);
        m.br_icmp_imm(CmpOp::Ne, g, 1, l2);
        m.get_field(s, this, salary);
        let two = m.imm_d(2.0);
        m.dadd(s, s, two);
        m.put_field(this, salary, s);
        m.jmp(done);

        m.bind(l2);
        m.br_icmp_imm(CmpOp::Ne, g, 2, l3);
        m.get_field(s, this, salary);
        let k = m.imm_d(1.01);
        m.dmul(s, s, k);
        m.put_field(this, salary, s);
        m.jmp(done);

        m.bind(l3);
        m.get_field(s, this, salary);
        let k2 = m.imm_d(1.02);
        m.dmul(s, s, k2);
        m.put_field(this, salary, s);

        m.bind(done);
        m.ret(None);
        let mid = m.build();
        let p = pb.finish().unwrap();
        let md = p.method(mid);

        let mut general = lift(&md.code, md.num_regs, 1);
        let mut special = general.clone();
        run_pipeline(&mut general, &OptConfig::level(2));

        let mut b = Bindings::default();
        b.instance.insert(grade, dchm_bytecode::Value::Int(2));
        let replaced = specialize(&mut special, &b);
        assert!(replaced > 0);
        run_pipeline(&mut special, &OptConfig::level(2));

        // The specialized version must be much smaller: all grade branches
        // fold away, leaving load-salary / mul / store.
        assert!(
            special.size() * 2 < general.size(),
            "special {} vs general {}",
            special.size(),
            general.size()
        );
    }

    #[test]
    fn level0_does_nothing() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::new(vec![], Some(Ty::Int)));
        let a = m.imm(2);
        let b = m.imm(3);
        let r = m.reg();
        m.iadd(r, a, b);
        m.ret(Some(r));
        let mid = m.build();
        let p = pb.finish().unwrap();
        let md = p.method(mid);
        let mut f = lift(&md.code, md.num_regs, 0);
        let before = f.clone();
        let stats = run_pipeline(&mut f, &OptConfig::level(0));
        assert_eq!(f, before);
        assert_eq!(stats.rewrites, 0);
    }

    #[test]
    fn pipeline_reaches_fixpoint() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::new(vec![], Some(Ty::Int)));
        let a = m.imm(2);
        let b = m.imm(3);
        let r = m.reg();
        m.iadd(r, a, b);
        let r2 = m.reg();
        m.imul(r2, r, r);
        m.ret(Some(r2));
        let mid = m.build();
        let p = pb.finish().unwrap();
        let md = p.method(mid);
        let mut f = lift(&md.code, md.num_regs, 0);
        run_pipeline(&mut f, &OptConfig::level(2));
        // Everything folds to `ret 25`.
        assert_eq!(f.size(), 2, "{f:?}"); // one const op + ret
        // Re-running finds nothing to do.
        let stats = run_pipeline(&mut f, &OptConfig::level(2));
        assert_eq!(stats.rewrites, 0);
    }
}
