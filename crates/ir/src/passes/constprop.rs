//! Sparse conditional constant propagation with branch folding.
//!
//! A worklist fixpoint over block entry states; when a branch condition is
//! a known constant only the taken edge propagates (SCCP-style), which is
//! what lets state specialization delete entire alternative-state arms of a
//! mutable method.

use crate::func::{Function, Term};
use dchm_bytecode::{IntrinsicKind, Op, Reg, Value};

/// The constant lattice. "Unvisited" (the classical Top) is represented by
/// a block having no entry state yet, so only two levels remain here.
#[derive(Clone, Copy, PartialEq, Debug)]
enum Lat {
    /// Known constant.
    Const(Value),
    /// Known non-constant.
    Bot,
}

impl Lat {
    fn merge(self, other: Lat) -> Lat {
        match (self, other) {
            (Lat::Const(a), Lat::Const(b)) if a.key_eq(b) => Lat::Const(a),
            _ => Lat::Bot,
        }
    }
}

fn merge_states(a: &mut [Lat], b: &[Lat]) -> bool {
    let mut changed = false;
    for (x, &y) in a.iter_mut().zip(b) {
        let m = x.merge(y);
        if m != *x {
            *x = m;
            changed = true;
        }
    }
    changed
}

/// Evaluates a pure op given operand lattice values; `None` when the result
/// is unknown or folding would erase a trap (division by a constant zero).
fn eval_op(op: &Op, get: &dyn Fn(Reg) -> Lat) -> Option<Value> {
    let int = |r: Reg| match get(r) {
        Lat::Const(Value::Int(v)) => Some(v),
        _ => None,
    };
    let dbl = |r: Reg| match get(r) {
        Lat::Const(Value::Double(v)) => Some(v),
        _ => None,
    };
    match op {
        Op::ConstI { val, .. } => Some(Value::Int(*val)),
        Op::ConstD { val, .. } => Some(Value::Double(*val)),
        Op::ConstNull { .. } => Some(Value::Null),
        Op::Mov { src, .. } => match get(*src) {
            Lat::Const(v) => Some(v),
            _ => None,
        },
        Op::IBin { op, a, b, .. } => {
            let (a, b) = (int(*a)?, int(*b)?);
            op.eval(a, b).map(Value::Int)
        }
        Op::INeg { a, .. } => Some(Value::Int(int(*a)?.wrapping_neg())),
        Op::DBin { op, a, b, .. } => Some(Value::Double(op.eval(dbl(*a)?, dbl(*b)?))),
        Op::DNeg { a, .. } => Some(Value::Double(-dbl(*a)?)),
        Op::I2D { a, .. } => Some(Value::Double(int(*a)? as f64)),
        Op::D2I { a, .. } => Some(Value::Int(dbl(*a)? as i64)),
        Op::ICmp { op, a, b, .. } => Some(Value::Int(op.eval_int(int(*a)?, int(*b)?) as i64)),
        Op::DCmp { op, a, b, .. } => {
            Some(Value::Int(op.eval_double(dbl(*a)?, dbl(*b)?) as i64))
        }
        Op::RefEq { a, b, .. } => {
            // Only null-ness is tracked as a reference constant.
            match (get(*a), get(*b)) {
                (Lat::Const(Value::Null), Lat::Const(Value::Null)) => Some(Value::Int(1)),
                _ => None,
            }
        }
        Op::Intrinsic {
            kind,
            args,
            dst: Some(_),
        } => match kind {
            IntrinsicKind::DSqrt => Some(Value::Double(dbl(args[0])?.sqrt())),
            IntrinsicKind::DAbs => Some(Value::Double(dbl(args[0])?.abs())),
            IntrinsicKind::IAbs => Some(Value::Int(int(args[0])?.wrapping_abs())),
            IntrinsicKind::IMin => Some(Value::Int(int(args[0])?.min(int(args[1])?))),
            IntrinsicKind::IMax => Some(Value::Int(int(args[0])?.max(int(args[1])?))),
            _ => None,
        },
        _ => None,
    }
}

fn transfer(state: &mut [Lat], op: &Op) {
    let folded = eval_op(op, &|r: Reg| state[r.index()]);
    if let Some(d) = op.def() {
        state[d.index()] = match folded {
            Some(v) => Lat::Const(v),
            None => Lat::Bot,
        };
    }
}

fn const_to_op(dst: Reg, v: Value) -> Option<Op> {
    match v {
        Value::Int(val) => Some(Op::ConstI { dst, val }),
        Value::Double(val) => Some(Op::ConstD { dst, val }),
        Value::Null => Some(Op::ConstNull { dst }),
        Value::Ref(_) => None, // heap references are never compile-time constants
    }
}

/// Runs constant propagation + branch folding; returns the rewrite count.
pub fn constprop(f: &mut Function) -> usize {
    let nregs = f.num_regs as usize;
    let nblocks = f.blocks.len();
    let mut in_states: Vec<Option<Vec<Lat>>> = vec![None; nblocks];
    in_states[0] = Some(vec![Lat::Bot; nregs]); // args/locals unknown at entry

    let mut work = vec![0usize];
    while let Some(bi) = work.pop() {
        let mut state = in_states[bi].clone().expect("worklist invariant");
        for op in &f.blocks[bi].ops {
            transfer(&mut state, op);
        }
        // Determine live out-edges (conditional propagation).
        let succs: Vec<usize> = match &f.blocks[bi].term {
            Term::Jmp(b) => vec![b.index()],
            Term::Br { cond, t, f: fb } => match state[cond.index()] {
                Lat::Const(Value::Int(v)) => {
                    vec![if v != 0 { t.index() } else { fb.index() }]
                }
                _ => vec![t.index(), fb.index()],
            },
            Term::Ret(_) | Term::Unreachable => vec![],
        };
        for s in succs {
            match &mut in_states[s] {
                Some(existing) => {
                    if merge_states(existing, &state) {
                        work.push(s);
                    }
                }
                slot @ None => {
                    *slot = Some(state.clone());
                    work.push(s);
                }
            }
        }
    }

    // Rewrite using the solved entry states.
    let mut rewrites = 0;
    for (entry_state, block) in in_states.iter().zip(f.blocks.iter_mut()) {
        let Some(mut state) = entry_state.clone() else {
            continue; // unreachable; simplify_cfg will drop it
        };
        for op in &mut block.ops {
            let folded = eval_op(op, &|r: Reg| state[r.index()]);
            if let (Some(v), Some(dst)) = (folded, op.def()) {
                if let Some(new_op) = const_to_op(dst, v) {
                    let already_const = matches!(
                        op,
                        Op::ConstI { .. } | Op::ConstD { .. } | Op::ConstNull { .. }
                    );
                    if !already_const {
                        *op = new_op;
                        rewrites += 1;
                    }
                }
            }
            transfer(&mut state, op);
        }
        if let Term::Br { cond, t, f: fb } = block.term {
            if let Lat::Const(Value::Int(v)) = state[cond.index()] {
                block.term = Term::Jmp(if v != 0 { t } else { fb });
                rewrites += 1;
            }
        }
    }
    rewrites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, BlockId};
    use dchm_bytecode::{CmpOp, IBinOp};

    fn func_of(blocks: Vec<Block>, num_regs: u16) -> Function {
        Function {
            blocks,
            num_regs,
            arg_count: 0,
        }
    }

    #[test]
    fn folds_arith_chain() {
        let mut b = Block::new(Term::Ret(Some(Reg(2))));
        b.ops = vec![
            Op::ConstI { dst: Reg(0), val: 2 },
            Op::ConstI { dst: Reg(1), val: 3 },
            Op::IBin {
                op: IBinOp::Add,
                dst: Reg(2),
                a: Reg(0),
                b: Reg(1),
            },
        ];
        let mut f = func_of(vec![b], 3);
        let n = constprop(&mut f);
        assert_eq!(n, 1);
        assert_eq!(
            f.blocks[0].ops[2],
            Op::ConstI { dst: Reg(2), val: 5 }
        );
    }

    #[test]
    fn folds_branch_on_constant() {
        let mut b0 = Block::new(Term::Br {
            cond: Reg(1),
            t: BlockId(1),
            f: BlockId(2),
        });
        b0.ops = vec![
            Op::ConstI { dst: Reg(0), val: 7 },
            Op::ICmp {
                op: CmpOp::Gt,
                dst: Reg(1),
                a: Reg(0),
                b: Reg(0),
            },
        ];
        let b1 = Block::new(Term::Ret(None));
        let b2 = Block::new(Term::Ret(None));
        let mut f = func_of(vec![b0, b1, b2], 2);
        constprop(&mut f);
        // 7 > 7 is false -> jump to the false block.
        assert_eq!(f.blocks[0].term, Term::Jmp(BlockId(2)));
    }

    #[test]
    fn does_not_fold_div_by_zero() {
        let mut b = Block::new(Term::Ret(Some(Reg(2))));
        b.ops = vec![
            Op::ConstI { dst: Reg(0), val: 7 },
            Op::ConstI { dst: Reg(1), val: 0 },
            Op::IBin {
                op: IBinOp::Div,
                dst: Reg(2),
                a: Reg(0),
                b: Reg(1),
            },
        ];
        let mut f = func_of(vec![b], 3);
        constprop(&mut f);
        // The trap is preserved.
        assert!(matches!(
            f.blocks[0].ops[2],
            Op::IBin {
                op: IBinOp::Div,
                ..
            }
        ));
    }

    #[test]
    fn merge_conflicting_paths_is_bot() {
        // b0 branches on arg r0 to b1 (r1 = 1) or b2 (r1 = 2); join b3
        // returns r1 — must NOT be folded.
        let b0 = Block::new(Term::Br {
            cond: Reg(0),
            t: BlockId(1),
            f: BlockId(2),
        });
        let mut b1 = Block::new(Term::Jmp(BlockId(3)));
        b1.ops = vec![Op::ConstI { dst: Reg(1), val: 1 }];
        let mut b2 = Block::new(Term::Jmp(BlockId(3)));
        b2.ops = vec![Op::ConstI { dst: Reg(1), val: 2 }];
        let mut b3 = Block::new(Term::Ret(Some(Reg(2))));
        b3.ops = vec![Op::Mov {
            dst: Reg(2),
            src: Reg(1),
        }];
        let mut f = func_of(vec![b0, b1, b2, b3], 3);
        f.arg_count = 1;
        constprop(&mut f);
        assert_eq!(
            f.blocks[3].ops[0],
            Op::Mov {
                dst: Reg(2),
                src: Reg(1)
            }
        );
    }

    #[test]
    fn conditional_propagation_ignores_dead_arm() {
        // r0 = 1; br r0 ? b1 : b2. b2 sets r1 = 99, b1 sets r1 = 5;
        // join returns r1. Since only b1 is reachable, r1 folds to 5.
        let mut b0 = Block::new(Term::Br {
            cond: Reg(0),
            t: BlockId(1),
            f: BlockId(2),
        });
        b0.ops = vec![Op::ConstI { dst: Reg(0), val: 1 }];
        let mut b1 = Block::new(Term::Jmp(BlockId(3)));
        b1.ops = vec![Op::ConstI { dst: Reg(1), val: 5 }];
        let mut b2 = Block::new(Term::Jmp(BlockId(3)));
        b2.ops = vec![Op::ConstI { dst: Reg(1), val: 99 }];
        let mut b3 = Block::new(Term::Ret(Some(Reg(2))));
        b3.ops = vec![Op::Mov {
            dst: Reg(2),
            src: Reg(1),
        }];
        let mut f = func_of(vec![b0, b1, b2, b3], 3);
        constprop(&mut f);
        assert_eq!(
            f.blocks[3].ops[0],
            Op::ConstI { dst: Reg(2), val: 5 }
        );
    }

    #[test]
    fn folds_pure_intrinsics() {
        let mut b = Block::new(Term::Ret(Some(Reg(1))));
        b.ops = vec![
            Op::ConstD {
                dst: Reg(0),
                val: 9.0,
            },
            Op::Intrinsic {
                dst: Some(Reg(1)),
                kind: IntrinsicKind::DSqrt,
                args: vec![Reg(0)],
            },
        ];
        let mut f = func_of(vec![b], 2);
        constprop(&mut f);
        assert_eq!(
            f.blocks[0].ops[1],
            Op::ConstD {
                dst: Reg(1),
                val: 3.0
            }
        );
    }
}
