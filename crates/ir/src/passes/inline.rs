//! Mechanical call-site inlining.
//!
//! The *decision* of what to inline (static heuristics, guarded inlining,
//! the paper's specialization-inlining trade-off) lives in the VM compiler;
//! this module only performs the splice.

use crate::error::IrError;
use crate::func::{Block, BlockId, Function, Term};
use dchm_bytecode::{Op, Reg};

/// Where a call op sits inside a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// Block containing the call.
    pub block: BlockId,
    /// Index of the call op within the block.
    pub op_index: usize,
}

/// Inlines `callee` at `site` in `caller`.
///
/// `arg_regs` are the caller registers holding the callee's arguments in
/// frame order (receiver first for instance methods); `dst` receives the
/// return value if any. The call op at the site is removed and replaced by
/// a jump through a renamed copy of the callee's CFG.
///
/// # Errors
/// Returns a typed [`IrError`] — leaving `caller` untouched — when the
/// splice would overflow the `u16` register space or the `u32` block-id
/// space, or when `site` does not point at a call op. Drivers respond by
/// simply not inlining this site.
///
/// # Panics
/// Panics when `arg_regs` does not match the callee's arity (caller bug).
pub fn inline_call(
    caller: &mut Function,
    site: CallSite,
    callee: &Function,
    arg_regs: &[Reg],
    dst: Option<Reg>,
) -> Result<(), IrError> {
    assert_eq!(
        arg_regs.len(),
        callee.arg_count as usize,
        "argument count mismatch"
    );
    // Pre-flight every capacity check before mutating anything, so an
    // oversized splice is a clean no-op instead of a half-spliced CFG.
    let reg_base = caller.num_regs;
    let total_regs = caller
        .num_regs
        .checked_add(callee.num_regs)
        .ok_or(IrError::RegisterOverflow {
            requested: callee.num_regs as usize,
        })?;
    let cont_index = caller.blocks.len() + callee.blocks.len();
    let cont_id = BlockId::try_from_index(cont_index)?;
    let site_ok = caller
        .blocks
        .get(site.block.index())
        .and_then(|b| b.ops.get(site.op_index))
        .is_some_and(Op::is_call);
    if !site_ok {
        return Err(IrError::NotACallSite);
    }

    caller.num_regs = total_regs;
    let map_reg = |r: Reg| Reg(r.0 + reg_base);

    let block_base = caller.blocks.len() as u32;
    let map_block = |b: BlockId| BlockId(b.0 + block_base);

    // Split the call block: ops after the call move to a continuation block.
    let call_block = &mut caller.blocks[site.block.index()];
    let tail_ops = call_block.ops.split_off(site.op_index + 1);
    let call_op = call_block.ops.pop().expect("checked above");
    debug_assert!(call_op.is_call(), "inline target is not a call");
    let cont_term = std::mem::replace(
        &mut call_block.term,
        Term::Jmp(map_block(BlockId::ENTRY)),
    );

    // Marshal arguments into the callee's (renamed) parameter registers.
    for (i, &src) in arg_regs.iter().enumerate() {
        call_block.ops.push(Op::Mov {
            dst: Reg(i as u16 + reg_base),
            src,
        });
    }

    // Copy callee blocks with renamed registers; returns become jumps to
    // the continuation `cont_id` (with a Mov into `dst` when a value is
    // returned), which receives the tail ops and original terminator.
    for cb in &callee.blocks {
        let mut ops: Vec<Op> = cb.ops.clone();
        for op in &mut ops {
            op.map_regs(map_reg);
        }
        let term = match &cb.term {
            Term::Jmp(b) => Term::Jmp(map_block(*b)),
            Term::Br { cond, t, f } => Term::Br {
                cond: map_reg(*cond),
                t: map_block(*t),
                f: map_block(*f),
            },
            Term::Ret(val) => {
                if let (Some(d), Some(v)) = (dst, val) {
                    ops.push(Op::Mov {
                        dst: d,
                        src: map_reg(*v),
                    });
                }
                Term::Jmp(cont_id)
            }
            Term::Unreachable => Term::Unreachable,
        };
        caller.blocks.push(Block { ops, term });
    }

    caller.blocks.push(Block {
        ops: tail_ops,
        term: cont_term,
    });
    debug_assert!(caller.validate().is_ok(), "inlining produced invalid IR");
    Ok(())
}

/// Finds the first call site matching a predicate, scanning blocks in order.
pub fn find_call_site(
    f: &Function,
    mut pred: impl FnMut(&Op) -> bool,
) -> Option<(CallSite, Op)> {
    for (bi, b) in f.blocks.iter().enumerate() {
        for (oi, op) in b.ops.iter().enumerate() {
            if op.is_call() && pred(op) {
                return Some((
                    CallSite {
                        block: BlockId::from_index(bi),
                        op_index: oi,
                    },
                    op.clone(),
                ));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{IBinOp, MethodId};

    /// callee: fn add1(x) -> x + 1  (arg r0, 2 regs)
    fn callee_add1() -> Function {
        let mut b = Block::new(Term::Ret(Some(Reg(1))));
        b.ops = vec![
            Op::ConstI { dst: Reg(1), val: 1 },
            Op::IBin {
                op: IBinOp::Add,
                dst: Reg(1),
                a: Reg(0),
                b: Reg(1),
            },
        ];
        Function {
            blocks: vec![b],
            num_regs: 2,
            arg_count: 1,
        }
    }

    /// caller: r1 = call(r0); ret r1
    fn caller_fn() -> Function {
        let mut b = Block::new(Term::Ret(Some(Reg(1))));
        b.ops = vec![Op::CallStatic {
            dst: Some(Reg(1)),
            method: MethodId(0),
            args: vec![Reg(0)],
        }];
        Function {
            blocks: vec![b],
            num_regs: 2,
            arg_count: 1,
        }
    }

    #[test]
    fn inline_replaces_call_with_body() {
        let mut caller = caller_fn();
        let callee = callee_add1();
        let (site, op) = find_call_site(&caller, |_| true).unwrap();
        let dst = op.def();
        inline_call(&mut caller, site, &callee, &[Reg(0)], dst).unwrap();
        assert!(caller.validate().is_ok());
        // No calls remain.
        assert!(find_call_site(&caller, |_| true).is_none());
        // Register frames were concatenated.
        assert_eq!(caller.num_regs, 4);
        // Blocks: original (now arg-marshal), callee body, continuation.
        assert_eq!(caller.blocks.len(), 3);
        // The entry marshals r0 into the renamed callee param (r2).
        assert!(caller.blocks[0]
            .ops
            .iter()
            .any(|o| matches!(o, Op::Mov { dst: Reg(2), src: Reg(0) })));
        // Return value lands in r1 via a Mov in the inlined body block.
        assert!(caller.blocks[1]
            .ops
            .iter()
            .any(|o| matches!(o, Op::Mov { dst: Reg(1), .. })));
    }

    #[test]
    fn inline_mid_block_preserves_tail() {
        let mut caller = caller_fn();
        // Add a tail op after the call.
        caller.blocks[0].ops.push(Op::IBin {
            op: IBinOp::Add,
            dst: Reg(1),
            a: Reg(1),
            b: Reg(1),
        });
        let callee = callee_add1();
        let (site, op) = find_call_site(&caller, |_| true).unwrap();
        inline_call(&mut caller, site, &callee, &[Reg(0)], op.def()).unwrap();
        assert!(caller.validate().is_ok());
        // The tail op survives in the continuation block.
        let cont = caller.blocks.last().unwrap();
        assert!(cont
            .ops
            .iter()
            .any(|o| matches!(o, Op::IBin { op: IBinOp::Add, dst: Reg(1), .. })));
        assert!(matches!(cont.term, Term::Ret(Some(Reg(1)))));
    }

    #[test]
    fn void_callee_no_result_mov() {
        let mut caller = caller_fn();
        caller.blocks[0].ops[0] = Op::CallStatic {
            dst: None,
            method: MethodId(0),
            args: vec![Reg(0)],
        };
        let mut callee = callee_add1();
        callee.blocks[0].term = Term::Ret(None);
        let (site, _) = find_call_site(&caller, |_| true).unwrap();
        inline_call(&mut caller, site, &callee, &[Reg(0)], None).unwrap();
        assert!(caller.validate().is_ok());
        // No Mov into r1 anywhere (besides arg marshal into r2).
        for b in &caller.blocks {
            for op in &b.ops {
                if let Op::Mov { dst, .. } = op {
                    assert_ne!(*dst, Reg(1));
                }
            }
        }
    }

    #[test]
    fn register_overflow_is_typed_and_leaves_caller_intact() {
        let mut caller = caller_fn();
        let mut callee = callee_add1();
        callee.num_regs = u16::MAX;
        let (site, op) = find_call_site(&caller, |_| true).unwrap();
        let err = inline_call(&mut caller, site, &callee, &[Reg(0)], op.def());
        assert_eq!(
            err,
            Err(IrError::RegisterOverflow {
                requested: u16::MAX as usize
            })
        );
        // The failed splice must not have touched the caller.
        assert_eq!(caller.num_regs, 2);
        assert_eq!(caller.blocks.len(), 1);
        assert!(find_call_site(&caller, |_| true).is_some());
    }

    #[test]
    fn non_call_site_is_rejected() {
        let mut caller = caller_fn();
        let callee = callee_add1();
        let site = CallSite {
            block: BlockId(0),
            op_index: 99,
        };
        let err = inline_call(&mut caller, site, &callee, &[Reg(0)], None);
        assert_eq!(err, Err(IrError::NotACallSite));
    }

    #[test]
    fn branchy_callee_inlines() {
        // callee: if (x != 0) return 1 else return 2
        let mut b0 = Block::new(Term::Br {
            cond: Reg(0),
            t: BlockId(1),
            f: BlockId(2),
        });
        b0.ops = vec![];
        let mut b1 = Block::new(Term::Ret(Some(Reg(1))));
        b1.ops = vec![Op::ConstI { dst: Reg(1), val: 1 }];
        let mut b2 = Block::new(Term::Ret(Some(Reg(1))));
        b2.ops = vec![Op::ConstI { dst: Reg(1), val: 2 }];
        let callee = Function {
            blocks: vec![b0, b1, b2],
            num_regs: 2,
            arg_count: 1,
        };
        let mut caller = caller_fn();
        let (site, op) = find_call_site(&caller, |_| true).unwrap();
        inline_call(&mut caller, site, &callee, &[Reg(0)], op.def()).unwrap();
        assert!(caller.validate().is_ok());
        // Both return paths converge on the continuation block.
        let cont_id = BlockId::from_index(caller.blocks.len() - 1);
        let jumps_to_cont = caller
            .blocks
            .iter()
            .filter(|b| b.term.successors().contains(&cont_id))
            .count();
        assert_eq!(jumps_to_cont, 2);
    }
}
