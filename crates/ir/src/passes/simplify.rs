//! CFG simplification: unreachable-block removal, jump threading and
//! straight-line block merging.

use crate::func::{BlockId, Function, Term};

/// Simplifies the CFG to a fixpoint; returns the number of structural
/// changes.
pub fn simplify_cfg(f: &mut Function) -> usize {
    let mut total = 0;
    loop {
        let changes = thread_jumps(f) + drop_unreachable(f) + merge_chains(f);
        total += changes;
        if changes == 0 {
            return total;
        }
    }
}

/// Retargets edges that point at empty forwarding blocks (no ops, `Jmp`)
/// directly at the final destination.
fn thread_jumps(f: &mut Function) -> usize {
    let n = f.blocks.len();
    // Resolve forwarding chains with cycle protection.
    let resolve = |start: BlockId, f: &Function| -> BlockId {
        let mut seen = vec![false; n];
        let mut cur = start;
        loop {
            if seen[cur.index()] {
                return cur; // empty-jump cycle (infinite loop); leave as-is
            }
            seen[cur.index()] = true;
            let b = f.block(cur);
            match b.term {
                Term::Jmp(next) if b.ops.is_empty() && next != cur => cur = next,
                _ => return cur,
            }
        }
    };

    let mut changes = 0;
    for i in 0..n {
        let mut term = f.blocks[i].term.clone();
        let mut changed = false;
        term.map_successors(|s| {
            let r = resolve(s, f);
            if r != s {
                changed = true;
            }
            r
        });
        if changed {
            f.blocks[i].term = term;
            changes += 1;
        }
    }
    changes
}

/// Merges a block into its unique `Jmp` successor when that successor has no
/// other predecessors.
fn merge_chains(f: &mut Function) -> usize {
    let mut changes = 0;
    loop {
        let preds = f.predecessors();
        let mut merged = false;
        for i in 0..f.blocks.len() {
            let Term::Jmp(succ) = f.blocks[i].term else {
                continue;
            };
            if succ.index() == i {
                continue; // self-loop
            }
            if succ == BlockId::ENTRY {
                continue; // entry must stay block 0
            }
            if preds[succ.index()].len() != 1 {
                continue;
            }
            // Splice succ into i.
            let succ_block = std::mem::replace(
                &mut f.blocks[succ.index()],
                crate::func::Block::new(Term::Unreachable),
            );
            f.blocks[i].ops.extend(succ_block.ops);
            f.blocks[i].term = succ_block.term;
            changes += 1;
            merged = true;
            break; // predecessor sets changed; recompute
        }
        if !merged {
            break;
        }
    }
    changes
}

/// Removes blocks unreachable from entry, compacting ids.
fn drop_unreachable(f: &mut Function) -> usize {
    let n = f.blocks.len();
    let mut reachable = vec![false; n];
    let mut stack = vec![BlockId::ENTRY];
    reachable[0] = true;
    while let Some(b) = stack.pop() {
        for s in f.block(b).term.successors() {
            if !reachable[s.index()] {
                reachable[s.index()] = true;
                stack.push(s);
            }
        }
    }
    if reachable.iter().all(|&r| r) {
        return 0;
    }
    let mut remap = vec![BlockId(0); n];
    let mut next = 0u32;
    for i in 0..n {
        if reachable[i] {
            remap[i] = BlockId(next);
            next += 1;
        }
    }
    let removed = n - next as usize;
    let old_blocks = std::mem::take(&mut f.blocks);
    for (i, mut b) in old_blocks.into_iter().enumerate() {
        if reachable[i] {
            b.term.map_successors(|s| remap[s.index()]);
            f.blocks.push(b);
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Block;
    use dchm_bytecode::{Op, Reg};

    #[test]
    fn drops_unreachable_blocks() {
        let b0 = Block::new(Term::Jmp(BlockId(2)));
        let b1 = Block::new(Term::Ret(None)); // unreachable
        let b2 = Block::new(Term::Ret(None));
        let mut f = Function {
            blocks: vec![b0, b1, b2],
            num_regs: 0,
            arg_count: 0,
        };
        let changes = simplify_cfg(&mut f);
        assert!(changes > 0);
        assert!(f.validate().is_ok());
        // b1 removed; entry now reaches the single remaining ret (merged or
        // retargeted).
        assert!(f.blocks.len() <= 2);
    }

    #[test]
    fn threads_empty_jump_chain() {
        // b0 -> b1(empty) -> b2(empty) -> b3
        let b0 = Block::new(Term::Jmp(BlockId(1)));
        let b1 = Block::new(Term::Jmp(BlockId(2)));
        let b2 = Block::new(Term::Jmp(BlockId(3)));
        let mut b3 = Block::new(Term::Ret(Some(Reg(0))));
        b3.ops = vec![Op::ConstI { dst: Reg(0), val: 1 }];
        let mut f = Function {
            blocks: vec![b0, b1, b2, b3],
            num_regs: 1,
            arg_count: 0,
        };
        simplify_cfg(&mut f);
        assert!(f.validate().is_ok());
        // Everything collapses into a single block.
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].ops.len(), 1);
        assert!(matches!(f.blocks[0].term, Term::Ret(Some(Reg(0)))));
    }

    #[test]
    fn merges_straightline_chain_with_ops() {
        let mut b0 = Block::new(Term::Jmp(BlockId(1)));
        b0.ops = vec![Op::ConstI { dst: Reg(0), val: 1 }];
        let mut b1 = Block::new(Term::Ret(Some(Reg(1))));
        b1.ops = vec![Op::ConstI { dst: Reg(1), val: 2 }];
        let mut f = Function {
            blocks: vec![b0, b1],
            num_regs: 2,
            arg_count: 0,
        };
        simplify_cfg(&mut f);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].ops.len(), 2);
    }

    #[test]
    fn self_loop_not_merged() {
        // An infinite empty loop must survive without hanging the pass.
        let b0 = Block::new(Term::Jmp(BlockId(1)));
        let b1 = Block::new(Term::Jmp(BlockId(1)));
        let mut f = Function {
            blocks: vec![b0, b1],
            num_regs: 0,
            arg_count: 0,
        };
        simplify_cfg(&mut f);
        assert!(f.validate().is_ok());
        assert_eq!(f.blocks.len(), 2);
    }

    #[test]
    fn diamond_not_overmerged() {
        let b0 = Block::new(Term::Br {
            cond: Reg(0),
            t: BlockId(1),
            f: BlockId(2),
        });
        let mut b1 = Block::new(Term::Jmp(BlockId(3)));
        b1.ops = vec![Op::ConstI { dst: Reg(1), val: 1 }];
        let mut b2 = Block::new(Term::Jmp(BlockId(3)));
        b2.ops = vec![Op::ConstI { dst: Reg(1), val: 2 }];
        let b3 = Block::new(Term::Ret(Some(Reg(1))));
        let mut f = Function {
            blocks: vec![b0, b1, b2, b3],
            num_regs: 2,
            arg_count: 1,
        };
        simplify_cfg(&mut f);
        assert!(f.validate().is_ok());
        // Join block has two predecessors; nothing merges into it.
        assert_eq!(f.blocks.len(), 4);
    }
}
