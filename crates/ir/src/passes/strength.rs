//! Strength reduction: replaces expensive integer operations whose right
//! operand is a known (block-local) constant with cheaper equivalents.

use crate::func::Function;
use dchm_bytecode::{IBinOp, Op, Reg};
use std::collections::HashMap;

/// Applies strength reduction; returns the rewrite count.
///
/// Rewrites (with `c` a block-local integer constant):
///
/// * `x * 0  -> 0`, `x * 1 -> x`, `x * 2^k -> x << k`
/// * `x + 0  -> x`, `x - 0 -> x`
/// * `x / 1  -> x`, `x % 1 -> 0` (trap-free: divisor is a nonzero constant)
pub fn strength_reduce(f: &mut Function) -> usize {
    let mut rewrites = 0;
    let mut next_reg = f.num_regs;
    for block in &mut f.blocks {
        let mut consts: HashMap<Reg, i64> = HashMap::new();
        let mut new_ops: Vec<Op> = Vec::with_capacity(block.ops.len());
        for op in block.ops.drain(..) {
            let rewritten = rewrite(&op, &consts, &mut next_reg, &mut new_ops);
            let emitted = match rewritten {
                Some(new_op) => {
                    rewrites += 1;
                    new_op
                }
                None => op,
            };
            if let Some(d) = emitted.def() {
                consts.remove(&d);
            }
            if let Op::ConstI { dst, val } = emitted {
                consts.insert(dst, val);
            }
            new_ops.push(emitted);
        }
        block.ops = new_ops;
    }
    f.num_regs = next_reg;
    rewrites
}

/// Rewrites one op if profitable; may push auxiliary ops (shift counts) into
/// `out` before the returned op.
fn rewrite(
    op: &Op,
    consts: &HashMap<Reg, i64>,
    next_reg: &mut u16,
    out: &mut Vec<Op>,
) -> Option<Op> {
    let Op::IBin {
        op: bin,
        dst,
        a,
        b,
    } = *op
    else {
        return None;
    };
    // Normalize: put the constant on the right for commutative ops.
    let (x, c) = match (consts.get(&a), consts.get(&b)) {
        (_, Some(&c)) => (a, c),
        (Some(&c), None) if bin.commutative() => (b, c),
        _ => return None,
    };
    match bin {
        IBinOp::Mul => {
            if c == 0 {
                Some(Op::ConstI { dst, val: 0 })
            } else if c == 1 {
                Some(Op::Mov { dst, src: x })
            } else if c > 0 && (c as u64).is_power_of_two() {
                let k = c.trailing_zeros() as i64;
                let kreg = Reg(*next_reg);
                // The shift-count register is new; if the register space is
                // exhausted the rewrite is skipped — the multiply is
                // correct, just not strength-reduced.
                *next_reg = next_reg.checked_add(1)?;
                out.push(Op::ConstI { dst: kreg, val: k });
                Some(Op::IBin {
                    op: IBinOp::Shl,
                    dst,
                    a: x,
                    b: kreg,
                })
            } else {
                None
            }
        }
        IBinOp::Add | IBinOp::Sub if c == 0 && x == a => Some(Op::Mov { dst, src: a }),
        IBinOp::Add if c == 0 => Some(Op::Mov { dst, src: x }),
        IBinOp::Div if c == 1 && x == a => Some(Op::Mov { dst, src: a }),
        IBinOp::Rem if c == 1 && x == a => Some(Op::ConstI { dst, val: 0 }),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Term};

    fn run(ops: Vec<Op>, num_regs: u16) -> (Function, usize) {
        let mut b = Block::new(Term::Ret(Some(Reg(0))));
        b.ops = ops;
        let mut f = Function {
            blocks: vec![b],
            num_regs,
            arg_count: 1,
        };
        let n = strength_reduce(&mut f);
        (f, n)
    }

    #[test]
    fn mul_by_pow2_skipped_when_registers_exhausted() {
        // Same shape as `mul_by_pow2_becomes_shift`, but with no register
        // left for the shift count: the pass must leave the multiply alone
        // instead of panicking.
        let (f, n) = run(
            vec![
                Op::ConstI { dst: Reg(1), val: 8 },
                Op::IBin {
                    op: IBinOp::Mul,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
            ],
            u16::MAX,
        );
        assert_eq!(n, 0);
        assert_eq!(f.num_regs, u16::MAX);
        assert!(f.blocks[0]
            .ops
            .iter()
            .any(|o| matches!(o, Op::IBin { op: IBinOp::Mul, .. })));
    }

    #[test]
    fn mul_by_pow2_becomes_shift() {
        let (f, n) = run(
            vec![
                Op::ConstI { dst: Reg(1), val: 8 },
                Op::IBin {
                    op: IBinOp::Mul,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
            ],
            3,
        );
        assert_eq!(n, 1);
        assert!(f
            .blocks[0]
            .ops
            .iter()
            .any(|op| matches!(op, Op::IBin { op: IBinOp::Shl, a: Reg(0), .. })));
        // Shift count constant 3 was materialized.
        assert!(f
            .blocks[0]
            .ops
            .iter()
            .any(|op| matches!(op, Op::ConstI { val: 3, .. })));
        assert!(f.validate().is_ok());
    }

    #[test]
    fn mul_by_one_becomes_mov_and_commutes() {
        let (f, n) = run(
            vec![
                Op::ConstI { dst: Reg(1), val: 1 },
                // Constant on the LEFT; Mul commutes.
                Op::IBin {
                    op: IBinOp::Mul,
                    dst: Reg(2),
                    a: Reg(1),
                    b: Reg(0),
                },
            ],
            3,
        );
        assert_eq!(n, 1);
        assert_eq!(
            f.blocks[0].ops[1],
            Op::Mov {
                dst: Reg(2),
                src: Reg(0)
            }
        );
    }

    #[test]
    fn sub_with_const_on_left_not_rewritten() {
        // 0 - x is NOT x; Sub is not commutative.
        let (f, n) = run(
            vec![
                Op::ConstI { dst: Reg(1), val: 0 },
                Op::IBin {
                    op: IBinOp::Sub,
                    dst: Reg(2),
                    a: Reg(1),
                    b: Reg(0),
                },
            ],
            3,
        );
        assert_eq!(n, 0);
        assert!(matches!(
            f.blocks[0].ops[1],
            Op::IBin {
                op: IBinOp::Sub,
                ..
            }
        ));
    }

    #[test]
    fn redefined_const_not_used() {
        let (f, n) = run(
            vec![
                Op::ConstI { dst: Reg(1), val: 4 },
                Op::Mov {
                    dst: Reg(1),
                    src: Reg(0),
                }, // r1 no longer constant
                Op::IBin {
                    op: IBinOp::Mul,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
            ],
            3,
        );
        assert_eq!(n, 0);
        assert!(matches!(
            f.blocks[0].ops[2],
            Op::IBin {
                op: IBinOp::Mul,
                ..
            }
        ));
        let _ = f;
    }

    #[test]
    fn rem_by_one_is_zero() {
        let (f, n) = run(
            vec![
                Op::ConstI { dst: Reg(1), val: 1 },
                Op::IBin {
                    op: IBinOp::Rem,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
            ],
            3,
        );
        assert_eq!(n, 1);
        assert_eq!(f.blocks[0].ops[1], Op::ConstI { dst: Reg(2), val: 0 });
    }

    #[test]
    fn negative_pow2_not_shifted() {
        let (_, n) = run(
            vec![
                Op::ConstI {
                    dst: Reg(1),
                    val: -8,
                },
                Op::IBin {
                    op: IBinOp::Mul,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
            ],
            3,
        );
        assert_eq!(n, 0);
    }
}
