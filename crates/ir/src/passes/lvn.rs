//! Local value numbering: common-subexpression and redundant-load
//! elimination within basic blocks.
//!
//! Jikes' opt compiler performs CSE at higher optimization levels; this
//! pass plays that role at opt2. It matters to the mutation technique
//! because specialized method bodies frequently expose repeated
//! subexpressions once state-field loads become constants.
//!
//! Availability is tracked with (register, generation) pairs: every
//! redefinition of a register bumps its generation, invalidating any
//! recorded expression that mentions the old value. Loads are modeled with
//! conservative kill sets: a `PutField` kills loads of that field, and any
//! call or mutation patch point kills all loads (the callee may write
//! anything).

use crate::func::Function;
use dchm_bytecode::{FieldId, IntrinsicKind, Op, Reg};
use std::collections::HashMap;

/// Expression keys. Operands are (register, generation-at-use).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum Key {
    ConstI(i64),
    ConstD(u64),
    IBin(dchm_bytecode::IBinOp, (Reg, u32), (Reg, u32)),
    INeg((Reg, u32)),
    DBin(dchm_bytecode::DBinOp, (Reg, u32), (Reg, u32)),
    DNeg((Reg, u32)),
    I2D((Reg, u32)),
    D2I((Reg, u32)),
    ICmp(dchm_bytecode::CmpOp, (Reg, u32), (Reg, u32)),
    DCmp(dchm_bytecode::CmpOp, (Reg, u32), (Reg, u32)),
    Intrinsic(IntrinsicKind, Vec<(Reg, u32)>),
    FieldLoad(FieldId, (Reg, u32)),
    StaticLoad(FieldId),
    ArrayLen((Reg, u32)),
}

struct Block1 {
    gen: HashMap<Reg, u32>,
    avail: HashMap<Key, Reg>,
}

impl Block1 {
    fn new() -> Self {
        Block1 {
            gen: HashMap::new(),
            avail: HashMap::new(),
        }
    }

    fn use_of(&self, r: Reg) -> (Reg, u32) {
        (r, self.gen.get(&r).copied().unwrap_or(0))
    }

    fn kill_reg(&mut self, r: Reg) {
        *self.gen.entry(r).or_insert(0) += 1;
        // Expressions whose *home* was overwritten are gone; expressions
        // mentioning the old generation are invalid automatically (keys
        // embed generations).
        self.avail.retain(|_, home| *home != r);
    }

    fn kill_field_loads(&mut self, field: FieldId) {
        self.avail
            .retain(|k, _| !matches!(k, Key::FieldLoad(f, _) if *f == field));
    }

    fn kill_static_load(&mut self, field: FieldId) {
        self.avail
            .retain(|k, _| !matches!(k, Key::StaticLoad(f) if *f == field));
    }

    fn kill_all_loads(&mut self) {
        self.avail.retain(|k, _| {
            !matches!(
                k,
                Key::FieldLoad(..) | Key::StaticLoad(..) | Key::ArrayLen(..)
            )
        });
    }
}

fn key_of(op: &Op, st: &Block1) -> Option<Key> {
    Some(match op {
        Op::ConstI { val, .. } => Key::ConstI(*val),
        Op::ConstD { val, .. } => Key::ConstD(val.to_bits()),
        Op::IBin { op, a, b, .. } => {
            let (mut ka, mut kb) = (st.use_of(*a), st.use_of(*b));
            if op.commutative() && kb < ka {
                std::mem::swap(&mut ka, &mut kb);
            }
            Key::IBin(*op, ka, kb)
        }
        Op::INeg { a, .. } => Key::INeg(st.use_of(*a)),
        Op::DBin { op, a, b, .. } => Key::DBin(*op, st.use_of(*a), st.use_of(*b)),
        Op::DNeg { a, .. } => Key::DNeg(st.use_of(*a)),
        Op::I2D { a, .. } => Key::I2D(st.use_of(*a)),
        Op::D2I { a, .. } => Key::D2I(st.use_of(*a)),
        Op::ICmp { op, a, b, .. } => Key::ICmp(*op, st.use_of(*a), st.use_of(*b)),
        Op::DCmp { op, a, b, .. } => Key::DCmp(*op, st.use_of(*a), st.use_of(*b)),
        Op::Intrinsic {
            kind,
            args,
            dst: Some(_),
        } if !kind.has_effect() => {
            Key::Intrinsic(*kind, args.iter().map(|&r| st.use_of(r)).collect())
        }
        Op::GetField { obj, field, .. } => Key::FieldLoad(*field, st.use_of(*obj)),
        Op::GetStatic { field, .. } => Key::StaticLoad(*field),
        Op::ALen { arr, .. } => Key::ArrayLen(st.use_of(*arr)),
        _ => return None,
    })
}

/// Runs local value numbering over every block; returns the rewrite count.
pub fn lvn(f: &mut Function) -> usize {
    let mut rewrites = 0;
    for block in &mut f.blocks {
        let mut st = Block1::new();
        for op in &mut block.ops {
            let key = key_of(op, &st);
            let dst = op.def();
            if let (Some(key), Some(dst)) = (key, dst) {
                if let Some(&home) = st.avail.get(&key) {
                    // Available: replace with a copy.
                    if home != dst {
                        *op = Op::Mov { dst, src: home };
                        rewrites += 1;
                    }
                    st.kill_reg(dst);
                    // dst now aliases home's value; record nothing new
                    // (copyprop will forward it).
                } else {
                    st.kill_reg(dst);
                    st.avail.insert(key, dst);
                }
                continue;
            }
            // Non-CSE-able op: apply kill sets.
            match op {
                Op::PutField { field, .. } => st.kill_field_loads(*field),
                Op::PutStatic { field, .. } => st.kill_static_load(*field),
                Op::CallVirtual { .. }
                | Op::CallSpecial { .. }
                | Op::CallStatic { .. }
                | Op::CallInterface { .. }
                | Op::NotifyCtorExit { .. }
                | Op::NotifyInstStore { .. }
                | Op::NotifyStaticStore { .. } => st.kill_all_loads(),
                // Array stores may alias any array of the same kind; be
                // maximally conservative and kill lengths/loads too.
                Op::AStore { .. } => st.kill_all_loads(),
                _ => {}
            }
            if let Some(d) = op.def() {
                st.kill_reg(d);
            }
        }
    }
    rewrites
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, Term};
    use dchm_bytecode::IBinOp;

    fn run(ops: Vec<Op>, nregs: u16) -> (Vec<Op>, usize) {
        let mut b = Block::new(Term::Ret(Some(Reg(0))));
        b.ops = ops;
        let mut f = Function {
            blocks: vec![b],
            num_regs: nregs,
            arg_count: 2,
        };
        let n = lvn(&mut f);
        (f.blocks[0].ops.clone(), n)
    }

    #[test]
    fn duplicate_add_becomes_mov() {
        let (ops, n) = run(
            vec![
                Op::IBin {
                    op: IBinOp::Add,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Op::IBin {
                    op: IBinOp::Add,
                    dst: Reg(3),
                    a: Reg(0),
                    b: Reg(1),
                },
            ],
            4,
        );
        assert_eq!(n, 1);
        assert_eq!(
            ops[1],
            Op::Mov {
                dst: Reg(3),
                src: Reg(2)
            }
        );
    }

    #[test]
    fn commutative_operands_match_swapped() {
        let (ops, n) = run(
            vec![
                Op::IBin {
                    op: IBinOp::Add,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Op::IBin {
                    op: IBinOp::Add,
                    dst: Reg(3),
                    a: Reg(1),
                    b: Reg(0),
                },
            ],
            4,
        );
        assert_eq!(n, 1);
        assert!(matches!(ops[1], Op::Mov { .. }));
        // Subtraction is NOT commutative.
        let (ops, n) = run(
            vec![
                Op::IBin {
                    op: IBinOp::Sub,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Op::IBin {
                    op: IBinOp::Sub,
                    dst: Reg(3),
                    a: Reg(1),
                    b: Reg(0),
                },
            ],
            4,
        );
        assert_eq!(n, 0);
        assert!(!matches!(ops[1], Op::Mov { .. }));
    }

    #[test]
    fn redefinition_invalidates() {
        let (ops, n) = run(
            vec![
                Op::IBin {
                    op: IBinOp::Add,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Op::ConstI { dst: Reg(0), val: 9 }, // operand changes
                Op::IBin {
                    op: IBinOp::Add,
                    dst: Reg(3),
                    a: Reg(0),
                    b: Reg(1),
                },
            ],
            4,
        );
        assert_eq!(n, 0);
        assert!(!matches!(ops[2], Op::Mov { .. }));
    }

    #[test]
    fn home_overwrite_invalidates() {
        let (ops, n) = run(
            vec![
                Op::IBin {
                    op: IBinOp::Add,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Op::ConstI { dst: Reg(2), val: 9 }, // home clobbered
                Op::IBin {
                    op: IBinOp::Add,
                    dst: Reg(3),
                    a: Reg(0),
                    b: Reg(1),
                },
            ],
            4,
        );
        assert_eq!(n, 0);
        assert!(!matches!(ops[2], Op::Mov { .. }));
    }

    #[test]
    fn redundant_field_load_eliminated_until_store() {
        let f7 = FieldId(7);
        let (ops, n) = run(
            vec![
                Op::GetField {
                    dst: Reg(2),
                    obj: Reg(0),
                    field: f7,
                },
                Op::GetField {
                    dst: Reg(3),
                    obj: Reg(0),
                    field: f7,
                }, // redundant
                Op::PutField {
                    obj: Reg(0),
                    field: f7,
                    src: Reg(1),
                },
                Op::GetField {
                    dst: Reg(3),
                    obj: Reg(0),
                    field: f7,
                }, // NOT redundant (store intervened)
            ],
            4,
        );
        assert_eq!(n, 1);
        assert!(matches!(ops[1], Op::Mov { .. }));
        assert!(matches!(ops[3], Op::GetField { .. }));
    }

    #[test]
    fn calls_kill_loads() {
        let f7 = FieldId(7);
        let (ops, n) = run(
            vec![
                Op::GetField {
                    dst: Reg(2),
                    obj: Reg(0),
                    field: f7,
                },
                Op::CallStatic {
                    dst: None,
                    method: dchm_bytecode::MethodId(0),
                    args: vec![],
                },
                Op::GetField {
                    dst: Reg(3),
                    obj: Reg(0),
                    field: f7,
                },
            ],
            4,
        );
        assert_eq!(n, 0);
        assert!(matches!(ops[2], Op::GetField { .. }));
    }

    #[test]
    fn const_dedup() {
        let (ops, n) = run(
            vec![
                Op::ConstI {
                    dst: Reg(2),
                    val: 42,
                },
                Op::ConstI {
                    dst: Reg(3),
                    val: 42,
                },
            ],
            4,
        );
        assert_eq!(n, 1);
        assert_eq!(
            ops[1],
            Op::Mov {
                dst: Reg(3),
                src: Reg(2)
            }
        );
    }
}
