//! Global dead-code elimination via backward liveness.

use crate::func::{Function, Term};

/// Removes pure ops whose results are never used; returns the removal count.
///
/// Ops with side effects (stores, calls, potentially-trapping loads and
/// divisions, allocation, mutation patch points) are always kept, so the
/// pass can never change observable behaviour.
pub fn dce(f: &mut Function) -> usize {
    let nblocks = f.blocks.len();
    let nregs = f.num_regs as usize;

    // live_in[b]: registers live at block entry. Fixpoint.
    let mut live_in: Vec<Vec<bool>> = vec![vec![false; nregs]; nblocks];
    let mut changed = true;
    while changed {
        changed = false;
        for bi in (0..nblocks).rev() {
            let mut live = vec![false; nregs];
            // live-out = union of successors' live-in, plus terminator uses.
            for s in f.blocks[bi].term.successors() {
                for (r, &l) in live_in[s.index()].iter().enumerate() {
                    if l {
                        live[r] = true;
                    }
                }
            }
            match f.blocks[bi].term {
                Term::Br { cond, .. } => live[cond.index()] = true,
                Term::Ret(Some(v)) => live[v.index()] = true,
                _ => {}
            }
            // Backward over ops.
            for op in f.blocks[bi].ops.iter().rev() {
                let needed =
                    op.has_side_effect() || op.def().is_some_and(|d| live[d.index()]);
                if let Some(d) = op.def() {
                    live[d.index()] = false;
                }
                if needed {
                    op.for_each_use(|r| live[r.index()] = true);
                }
            }
            if live != live_in[bi] {
                live_in[bi] = live;
                changed = true;
            }
        }
    }

    // Removal sweep (recompute liveness per block backwards, dropping dead
    // pure ops).
    let mut removed = 0;
    for bi in 0..nblocks {
        let mut live = vec![false; nregs];
        for s in f.blocks[bi].term.successors() {
            for (r, &l) in live_in[s.index()].iter().enumerate() {
                if l {
                    live[r] = true;
                }
            }
        }
        match f.blocks[bi].term {
            Term::Br { cond, .. } => live[cond.index()] = true,
            Term::Ret(Some(v)) => live[v.index()] = true,
            _ => {}
        }
        let mut keep = vec![true; f.blocks[bi].ops.len()];
        for (i, op) in f.blocks[bi].ops.iter().enumerate().rev() {
            let needed = op.has_side_effect() || op.def().is_some_and(|d| live[d.index()]);
            if let Some(d) = op.def() {
                live[d.index()] = false;
            }
            if needed {
                op.for_each_use(|r| live[r.index()] = true);
            } else {
                keep[i] = false;
                removed += 1;
            }
        }
        if removed > 0 {
            let mut it = keep.iter();
            f.blocks[bi].ops.retain(|_| *it.next().unwrap());
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::{Block, BlockId};
    use dchm_bytecode::{IBinOp, IntrinsicKind, Op, Reg};

    #[test]
    fn removes_dead_const() {
        let mut b = Block::new(Term::Ret(Some(Reg(0))));
        b.ops = vec![
            Op::ConstI { dst: Reg(1), val: 5 }, // dead
            Op::ConstI { dst: Reg(0), val: 1 },
        ];
        let mut f = Function {
            blocks: vec![b],
            num_regs: 2,
            arg_count: 0,
        };
        assert_eq!(dce(&mut f), 1);
        assert_eq!(f.blocks[0].ops.len(), 1);
    }

    #[test]
    fn keeps_side_effects() {
        let mut b = Block::new(Term::Ret(None));
        b.ops = vec![
            Op::ConstI { dst: Reg(0), val: 5 },
            Op::Intrinsic {
                dst: None,
                kind: IntrinsicKind::SinkInt,
                args: vec![Reg(0)],
            },
        ];
        let mut f = Function {
            blocks: vec![b],
            num_regs: 1,
            arg_count: 0,
        };
        assert_eq!(dce(&mut f), 0);
        assert_eq!(f.blocks[0].ops.len(), 2);
    }

    #[test]
    fn dead_chain_removed_transitively_across_iterations() {
        // r0 = 1; r1 = r0 + r0; ret r2 — both ops dead (r1 unused).
        let mut b = Block::new(Term::Ret(Some(Reg(2))));
        b.ops = vec![
            Op::ConstI { dst: Reg(0), val: 1 },
            Op::IBin {
                op: IBinOp::Add,
                dst: Reg(1),
                a: Reg(0),
                b: Reg(0),
            },
        ];
        let mut f = Function {
            blocks: vec![b],
            num_regs: 3,
            arg_count: 0,
        };
        let removed = dce(&mut f);
        assert_eq!(removed, 2);
        assert!(f.blocks[0].ops.is_empty());
    }

    #[test]
    fn cross_block_liveness_keeps_def() {
        // b0 defines r0 (pure), b1 uses it — must be kept.
        let mut b0 = Block::new(Term::Jmp(BlockId(1)));
        b0.ops = vec![Op::ConstI { dst: Reg(0), val: 7 }];
        let b1 = Block::new(Term::Ret(Some(Reg(0))));
        let mut f = Function {
            blocks: vec![b0, b1],
            num_regs: 1,
            arg_count: 0,
        };
        assert_eq!(dce(&mut f), 0);
        assert_eq!(f.blocks[0].ops.len(), 1);
    }

    #[test]
    fn loop_liveness_converges() {
        // b0: r0 = 0 -> b1; b1: r1 = r0+r0, br r1 -> b1 / b2; b2: ret.
        let mut b0 = Block::new(Term::Jmp(BlockId(1)));
        b0.ops = vec![Op::ConstI { dst: Reg(0), val: 0 }];
        let mut b1 = Block::new(Term::Br {
            cond: Reg(1),
            t: BlockId(1),
            f: BlockId(2),
        });
        b1.ops = vec![Op::IBin {
            op: IBinOp::Add,
            dst: Reg(1),
            a: Reg(0),
            b: Reg(0),
        }];
        let b2 = Block::new(Term::Ret(None));
        let mut f = Function {
            blocks: vec![b0, b1, b2],
            num_regs: 2,
            arg_count: 0,
        };
        assert_eq!(dce(&mut f), 0); // everything is live through the loop
    }
}
