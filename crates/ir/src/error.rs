//! Typed errors for IR construction and transformation.
//!
//! Register and block-id capacity limits used to be enforced with
//! `expect`s that killed the host process; passes now surface them as
//! [`IrError`] so a compiler driver can skip the transformation (or fail
//! the compilation) while the VM stays alive and inspectable.

use std::fmt;

/// An error raised while building or transforming IR.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IrError {
    /// The function would need more basic blocks than `u32` block ids can
    /// address.
    BlockIdOverflow {
        /// Block count that did not fit.
        blocks: usize,
    },
    /// The function would need more registers than `u16` register ids can
    /// address.
    RegisterOverflow {
        /// Additional registers requested on top of the current count.
        requested: usize,
    },
    /// An inline request did not point at a call op.
    NotACallSite,
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BlockIdOverflow { blocks } => {
                write!(f, "block id overflow: {blocks} blocks do not fit in u32")
            }
            IrError::RegisterOverflow { requested } => {
                write!(f, "register overflow: {requested} more register(s) do not fit in u16")
            }
            IrError::NotACallSite => write!(f, "inline site is not a call op"),
        }
    }
}

impl std::error::Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = IrError::BlockIdOverflow { blocks: 5_000_000_000 };
        assert!(format!("{e}").contains("5000000000"));
        let e = IrError::RegisterOverflow { requested: 7 };
        assert!(format!("{e}").contains('7'));
    }
}
