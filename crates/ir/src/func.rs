//! IR function, block and terminator types.

use crate::error::IrError;
use dchm_bytecode::{Op, Reg};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a basic block within one [`Function`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The entry block of every function.
    pub const ENTRY: BlockId = BlockId(0);

    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// From raw index.
    ///
    /// # Panics
    /// Panics on `u32` overflow; use [`BlockId::try_from_index`] where the
    /// index is not already known to fit.
    #[inline]
    pub fn from_index(i: usize) -> Self {
        match Self::try_from_index(i) {
            Ok(id) => id,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible version of [`BlockId::from_index`]: reports `u32` overflow
    /// as a typed error instead of panicking.
    ///
    /// # Errors
    /// Returns [`IrError::BlockIdOverflow`] when `i` does not fit in `u32`.
    #[inline]
    pub fn try_from_index(i: usize) -> Result<Self, IrError> {
        u32::try_from(i)
            .map(BlockId)
            .map_err(|_| IrError::BlockIdOverflow { blocks: i })
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum Term {
    /// Unconditional transfer.
    Jmp(BlockId),
    /// Two-way branch on an integer condition register.
    Br {
        /// Condition (0 = false).
        cond: Reg,
        /// Target when `cond != 0`.
        t: BlockId,
        /// Target when `cond == 0`.
        f: BlockId,
    },
    /// Function return with optional value.
    Ret(Option<Reg>),
    /// Unreachable filler produced when a pass proves a block dead but wants
    /// to keep ids stable; executing it is a VM bug.
    Unreachable,
}

impl Term {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match *self {
            Term::Jmp(b) => vec![b],
            Term::Br { t, f, .. } => vec![t, f],
            Term::Ret(_) | Term::Unreachable => vec![],
        }
    }

    /// Calls `g` with a mutable ref to each successor id (for retargeting).
    pub fn map_successors(&mut self, mut g: impl FnMut(BlockId) -> BlockId) {
        match self {
            Term::Jmp(b) => *b = g(*b),
            Term::Br { t, f, .. } => {
                *t = g(*t);
                *f = g(*f);
            }
            Term::Ret(_) | Term::Unreachable => {}
        }
    }
}

/// A basic block: straight-line ops plus one terminator.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Block {
    /// The straight-line operations.
    pub ops: Vec<Op>,
    /// The terminator.
    pub term: Term,
}

impl Block {
    /// An empty block ending in `term`.
    pub fn new(term: Term) -> Self {
        Block {
            ops: Vec::new(),
            term,
        }
    }
}

/// An IR function: the unit of compilation and execution.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct Function {
    /// Basic blocks; [`BlockId::ENTRY`] is the entry.
    pub blocks: Vec<Block>,
    /// Frame size in registers.
    pub num_regs: u16,
    /// Number of argument registers occupied on entry (receiver included).
    pub arg_count: u16,
}

impl Function {
    /// Creates a function with a single empty block returning void.
    pub fn new(num_regs: u16, arg_count: u16) -> Self {
        Function {
            blocks: vec![Block::new(Term::Ret(None))],
            num_regs,
            arg_count,
        }
    }

    /// Shared access to a block.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    #[inline]
    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    /// Panics if `b` is out of range.
    #[inline]
    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    /// Appends a block, returning its id.
    pub fn add_block(&mut self, block: Block) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(block);
        id
    }

    /// Total static op count (terminators included), the unit of the
    /// paper's "compiled code size" measurements.
    pub fn size(&self) -> usize {
        self.blocks.iter().map(|b| b.ops.len() + 1).sum()
    }

    /// Allocates a fresh register.
    ///
    /// # Errors
    /// Returns [`IrError::RegisterOverflow`] when the `u16` register space
    /// is exhausted; callers (optimization passes) skip their rewrite
    /// rather than aborting the host.
    pub fn fresh_reg(&mut self) -> Result<Reg, IrError> {
        let r = Reg(self.num_regs);
        self.num_regs = self
            .num_regs
            .checked_add(1)
            .ok_or(IrError::RegisterOverflow { requested: 1 })?;
        Ok(r)
    }

    /// Blocks reachable from entry, in reverse post-order.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let n = self.blocks.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with explicit post-visit.
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId::ENTRY, 0)];
        visited[0] = true;
        while let Some(&mut (b, ref mut next)) = stack.last_mut() {
            let succs = self.block(b).term.successors();
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Predecessor lists for all blocks (unreachable blocks included).
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                preds[s.index()].push(BlockId::from_index(i));
            }
        }
        preds
    }

    /// Order-sensitive FNV-1a fingerprint of the whole function (blocks,
    /// ops with payloads, terminators, register/argument counts).
    ///
    /// Hashes the `Debug` rendering: every op payload is an ordered struct
    /// or `Vec` (no hash maps), and `Debug` of `f64` is total and
    /// deterministic (including NaN), so equal functions always fingerprint
    /// equal and the value is stable across runs on the same build. Used by
    /// the lift cache for hash-consing and by the VM's compiled-code cache
    /// for key derivation; structural equality is still confirmed with
    /// `PartialEq` before two functions are actually shared.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let text = format!("{self:?}");
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Checks structural sanity (all block refs and registers in range).
    /// Used by tests and debug assertions, not on hot paths.
    pub fn validate(&self) -> Result<(), String> {
        for (i, b) in self.blocks.iter().enumerate() {
            for s in b.term.successors() {
                if s.index() >= self.blocks.len() {
                    return Err(format!("block b{i} has bad successor {s}"));
                }
            }
            let mut bad: Option<Reg> = None;
            for op in &b.ops {
                if let Some(d) = op.def() {
                    if d.0 >= self.num_regs {
                        bad = Some(d);
                    }
                }
                op.for_each_use(|r| {
                    if r.0 >= self.num_regs && bad.is_none() {
                        bad = Some(r);
                    }
                });
            }
            if let Term::Br { cond, .. } = b.term {
                if cond.0 >= self.num_regs {
                    bad = Some(cond);
                }
            }
            if let Term::Ret(Some(r)) = b.term {
                if r.0 >= self.num_regs {
                    bad = Some(r);
                }
            }
            if let Some(r) = bad {
                return Err(format!("block b{i} uses out-of-range register {r}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::Reg;

    fn diamond() -> Function {
        // b0 -> b1 / b2 -> b3
        let mut f = Function::new(2, 1);
        f.blocks.clear();
        f.blocks.push(Block::new(Term::Br {
            cond: Reg(0),
            t: BlockId(1),
            f: BlockId(2),
        }));
        f.blocks.push(Block::new(Term::Jmp(BlockId(3))));
        f.blocks.push(Block::new(Term::Jmp(BlockId(3))));
        f.blocks.push(Block::new(Term::Ret(None)));
        f
    }

    #[test]
    fn rpo_visits_entry_first_and_join_last() {
        let f = diamond();
        let rpo = f.reverse_postorder();
        assert_eq!(rpo.first(), Some(&BlockId(0)));
        assert_eq!(rpo.last(), Some(&BlockId(3)));
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn predecessors_of_join() {
        let f = diamond();
        let preds = f.predecessors();
        let mut j = preds[3].clone();
        j.sort();
        assert_eq!(j, vec![BlockId(1), BlockId(2)]);
        assert!(preds[0].is_empty());
    }

    #[test]
    fn validate_catches_bad_successor() {
        let mut f = diamond();
        f.blocks[1].term = Term::Jmp(BlockId(99));
        assert!(f.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_reg() {
        let mut f = diamond();
        f.blocks[3].term = Term::Ret(Some(Reg(55)));
        assert!(f.validate().is_err());
    }

    #[test]
    fn size_counts_ops_and_terms() {
        let f = diamond();
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn fresh_reg_grows_frame() {
        let mut f = Function::new(3, 1);
        assert_eq!(f.fresh_reg(), Ok(Reg(3)));
        assert_eq!(f.num_regs, 4);
    }

    #[test]
    fn fresh_reg_overflow_is_typed() {
        let mut f = Function::new(u16::MAX, 1);
        assert_eq!(
            f.fresh_reg(),
            Err(crate::IrError::RegisterOverflow { requested: 1 })
        );
        assert_eq!(f.num_regs, u16::MAX, "failed allocation must not mutate");
    }

    #[test]
    fn fingerprint_distinguishes_structure() {
        let a = diamond();
        let b = diamond();
        assert_eq!(a.fingerprint(), b.fingerprint(), "equal funcs, equal fp");
        let mut c = diamond();
        c.blocks[3].term = Term::Ret(Some(Reg(0)));
        assert_ne!(a.fingerprint(), c.fingerprint(), "terminator change");
        let mut d = diamond();
        d.num_regs += 1;
        assert_ne!(a.fingerprint(), d.fingerprint(), "frame-size change");
    }

    #[test]
    fn block_id_overflow_is_typed() {
        assert!(BlockId::try_from_index(17).is_ok());
        assert_eq!(
            BlockId::try_from_index(usize::MAX),
            Err(crate::IrError::BlockIdOverflow { blocks: usize::MAX })
        );
    }
}
