//! Lifting linear bytecode into the CFG IR.

use crate::func::{Block, BlockId, Function, Term};
use dchm_bytecode::{Instr, Reg};
use std::collections::HashMap;

/// Lifts a bytecode body into a [`Function`].
///
/// Block leaders are: instruction 0, every branch target, and every
/// instruction following a branch/jump. The mapping is purely structural —
/// no optimization happens here, so the baseline tier executes exactly the
/// frontend's code.
///
/// # Panics
/// Panics on malformed code (labels out of range, missing terminator);
/// verified programs never trigger this.
pub fn lift(code: &[Instr], num_regs: u16, arg_count: u16) -> Function {
    assert!(!code.is_empty(), "cannot lift empty code");

    // 1. Find leaders.
    let mut is_leader = vec![false; code.len()];
    is_leader[0] = true;
    for (i, instr) in code.iter().enumerate() {
        match instr {
            Instr::Jmp(t) => {
                is_leader[t.index()] = true;
                if i + 1 < code.len() {
                    is_leader[i + 1] = true;
                }
            }
            Instr::BrIf { target, .. } => {
                is_leader[target.index()] = true;
                if i + 1 < code.len() {
                    is_leader[i + 1] = true;
                }
            }
            Instr::Ret(_) => {
                if i + 1 < code.len() {
                    is_leader[i + 1] = true;
                }
            }
            Instr::Op(_) => {}
        }
    }

    // 2. Assign block ids to leaders in instruction order.
    let mut block_of: HashMap<usize, BlockId> = HashMap::new();
    let mut leaders: Vec<usize> = Vec::new();
    for (i, &l) in is_leader.iter().enumerate() {
        if l {
            block_of.insert(i, BlockId::from_index(leaders.len()));
            leaders.push(i);
        }
    }

    // 3. Emit blocks.
    let mut blocks = Vec::with_capacity(leaders.len());
    for (bi, &start) in leaders.iter().enumerate() {
        let end = leaders.get(bi + 1).copied().unwrap_or(code.len());
        let mut ops = Vec::new();
        let mut term: Option<Term> = None;
        for (i, instr) in code[start..end].iter().enumerate() {
            let at = start + i;
            match instr {
                Instr::Op(op) => ops.push(op.clone()),
                Instr::Jmp(t) => {
                    term = Some(Term::Jmp(block_of[&t.index()]));
                    debug_assert_eq!(at + 1, end);
                }
                Instr::BrIf { cond, target } => {
                    let fall = at + 1;
                    term = Some(Term::Br {
                        cond: *cond,
                        t: block_of[&target.index()],
                        f: block_of[&fall],
                    });
                    debug_assert_eq!(at + 1, end);
                }
                Instr::Ret(v) => {
                    term = Some(Term::Ret(*v));
                    debug_assert_eq!(at + 1, end);
                }
            }
        }
        // A block that ends because the next instruction is a leader (pure
        // fallthrough) jumps to that leader.
        let term = term.unwrap_or_else(|| Term::Jmp(block_of[&end]));
        blocks.push(Block { ops, term });
    }

    let f = Function {
        blocks,
        num_regs,
        arg_count,
    };
    debug_assert!(f.validate().is_ok(), "lift produced invalid IR");
    f
}

/// Convenience for tests: lifts and returns together with the registers
/// holding arguments.
pub fn lift_with_args(code: &[Instr], num_regs: u16, arg_count: u16) -> (Function, Vec<Reg>) {
    let f = lift(code, num_regs, arg_count);
    let args = (0..arg_count).map(Reg).collect();
    (f, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Term;
    use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty};

    fn body(build: impl FnOnce(&mut dchm_bytecode::MethodBuilder<'_>)) -> (Vec<Instr>, u16) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
        build(&mut m);
        let mid = m.build();
        let p = pb.finish().unwrap();
        (p.method(mid).code.clone(), p.method(mid).num_regs)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (code, nregs) = body(|m| {
            let r = m.reg();
            m.const_i(r, 1);
            m.ret(Some(r));
        });
        let f = lift(&code, nregs, 1);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].ops.len(), 1);
        assert!(matches!(f.blocks[0].term, Term::Ret(Some(_))));
    }

    #[test]
    fn loop_produces_back_edge() {
        let (code, nregs) = body(|m| {
            let n = m.param(0);
            let i = m.reg();
            m.const_i(i, 0);
            let head = m.label();
            let done = m.label();
            m.bind(head);
            m.br_icmp(CmpOp::Ge, i, n, done);
            m.iadd_imm(i, i, 1);
            m.jmp(head);
            m.bind(done);
            m.ret(Some(i));
        });
        let f = lift(&code, nregs, 1);
        assert!(f.validate().is_ok());
        // Some block jumps backwards to the loop head.
        let mut has_back_edge = false;
        for (i, b) in f.blocks.iter().enumerate() {
            for s in b.term.successors() {
                if s.index() <= i {
                    has_back_edge = true;
                }
            }
        }
        assert!(has_back_edge);
        // Exactly one return.
        let rets = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Term::Ret(_)))
            .count();
        assert_eq!(rets, 1);
    }

    #[test]
    fn fallthrough_block_gets_jmp() {
        // br_if makes the following instr a leader; the branch block's false
        // edge must point at it.
        let (code, nregs) = body(|m| {
            let n = m.param(0);
            let skip = m.label();
            m.br_icmp_imm(CmpOp::Gt, n, 10, skip);
            m.iadd_imm(n, n, 1);
            m.bind(skip);
            m.ret(Some(n));
        });
        let f = lift(&code, nregs, 1);
        assert!(f.validate().is_ok());
        let entry = &f.blocks[0];
        match entry.term {
            Term::Br { t, f: fb, .. } => assert_ne!(t, fb),
            ref other => panic!("expected Br, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "empty code")]
    fn empty_code_panics() {
        lift(&[], 0, 0);
    }
}
