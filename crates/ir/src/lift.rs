//! Lifting linear bytecode into the CFG IR, and the [`LiftCache`] that
//! memoizes the lifted (instrumented) baseline form per method so every
//! specialization of a method starts from one shared lift instead of
//! re-running the frontend.

use crate::func::{Block, BlockId, Function, Term};
use dchm_bytecode::{Instr, Reg};
use std::collections::HashMap;
use std::sync::Arc;

/// Lifts a bytecode body into a [`Function`].
///
/// Block leaders are: instruction 0, every branch target, and every
/// instruction following a branch/jump. The mapping is purely structural —
/// no optimization happens here, so the baseline tier executes exactly the
/// frontend's code.
///
/// # Panics
/// Panics on malformed code (labels out of range, missing terminator);
/// verified programs never trigger this.
pub fn lift(code: &[Instr], num_regs: u16, arg_count: u16) -> Function {
    assert!(!code.is_empty(), "cannot lift empty code");

    // 1. Find leaders.
    let mut is_leader = vec![false; code.len()];
    is_leader[0] = true;
    for (i, instr) in code.iter().enumerate() {
        match instr {
            Instr::Jmp(t) => {
                is_leader[t.index()] = true;
                if i + 1 < code.len() {
                    is_leader[i + 1] = true;
                }
            }
            Instr::BrIf { target, .. } => {
                is_leader[target.index()] = true;
                if i + 1 < code.len() {
                    is_leader[i + 1] = true;
                }
            }
            Instr::Ret(_) => {
                if i + 1 < code.len() {
                    is_leader[i + 1] = true;
                }
            }
            Instr::Op(_) => {}
        }
    }

    // 2. Assign block ids to leaders in instruction order.
    let mut block_of: HashMap<usize, BlockId> = HashMap::new();
    let mut leaders: Vec<usize> = Vec::new();
    for (i, &l) in is_leader.iter().enumerate() {
        if l {
            block_of.insert(i, BlockId::from_index(leaders.len()));
            leaders.push(i);
        }
    }

    // 3. Emit blocks.
    let mut blocks = Vec::with_capacity(leaders.len());
    for (bi, &start) in leaders.iter().enumerate() {
        let end = leaders.get(bi + 1).copied().unwrap_or(code.len());
        let mut ops = Vec::new();
        let mut term: Option<Term> = None;
        for (i, instr) in code[start..end].iter().enumerate() {
            let at = start + i;
            match instr {
                Instr::Op(op) => ops.push(op.clone()),
                Instr::Jmp(t) => {
                    term = Some(Term::Jmp(block_of[&t.index()]));
                    debug_assert_eq!(at + 1, end);
                }
                Instr::BrIf { cond, target } => {
                    let fall = at + 1;
                    term = Some(Term::Br {
                        cond: *cond,
                        t: block_of[&target.index()],
                        f: block_of[&fall],
                    });
                    debug_assert_eq!(at + 1, end);
                }
                Instr::Ret(v) => {
                    term = Some(Term::Ret(*v));
                    debug_assert_eq!(at + 1, end);
                }
            }
        }
        // A block that ends because the next instruction is a leader (pure
        // fallthrough) jumps to that leader.
        let term = term.unwrap_or_else(|| Term::Jmp(block_of[&end]));
        blocks.push(Block { ops, term });
    }

    let f = Function {
        blocks,
        num_regs,
        arg_count,
    };
    debug_assert!(f.validate().is_ok(), "lift produced invalid IR");
    f
}

/// Memoizes lifted baseline IR per method, hash-consing structurally equal
/// functions so all users share one allocation.
///
/// The cache is keyed by raw method index and scoped to one *patch
/// configuration*: the caller passes a fingerprint of whatever
/// instrumentation it applies after lifting (patch spec, hints), and any
/// change to that fingerprint flushes the cache — the memoized functions
/// would no longer match what a fresh lift-plus-instrument would produce.
///
/// Entries are `Arc<Function>` so compilation pipelines (possibly running
/// on worker threads) can clone a handle and optimize a private copy while
/// the shared baseline stays immutable.
#[derive(Debug, Default)]
pub struct LiftCache {
    by_method: HashMap<u32, Arc<Function>>,
    by_fingerprint: HashMap<u64, Vec<Arc<Function>>>,
    env_fp: Option<u64>,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the build closure.
    pub misses: u64,
    /// Freshly built functions replaced by an existing structurally equal
    /// one (hash-consing successes across methods).
    pub consed: u64,
    /// Full flushes caused by an environment-fingerprint change.
    pub flushes: u64,
}

impl LiftCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized methods.
    pub fn len(&self) -> usize {
        self.by_method.len()
    }

    /// True when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.by_method.is_empty()
    }

    /// Drops every entry (counters survive).
    pub fn flush(&mut self) {
        self.by_method.clear();
        self.by_fingerprint.clear();
    }

    /// Returns the memoized baseline for `method`, building it with `build`
    /// on a miss. `env_fp` fingerprints the instrumentation environment the
    /// build closure bakes in; when it differs from the previous call's the
    /// whole cache is flushed first.
    ///
    /// A freshly built function is hash-consed: if a structurally equal
    /// function is already cached (for any method), that allocation is
    /// reused and the new one dropped.
    pub fn get_or_lift(
        &mut self,
        method: u32,
        env_fp: u64,
        build: impl FnOnce() -> Function,
    ) -> Arc<Function> {
        if let Some(f) = self.sync_and_lookup(method, env_fp) {
            return f;
        }
        let built = Arc::new(build());
        self.cons_and_insert(method, built)
    }

    /// Like [`Self::get_or_lift`], but the miss path *fetches* a function
    /// that already lives behind an `Arc` — e.g. a baseline published in a
    /// fleet-wide shared cache by another tenant — instead of building a
    /// fresh one. The fetched allocation still goes through the
    /// fingerprint-bucketed consing table, so a structurally equal function
    /// this cache already holds is reused and the fetched one dropped
    /// (keeping `consed` accounting identical to the build path).
    pub fn get_or_adopt(
        &mut self,
        method: u32,
        env_fp: u64,
        fetch: impl FnOnce() -> Arc<Function>,
    ) -> Arc<Function> {
        if let Some(f) = self.sync_and_lookup(method, env_fp) {
            return f;
        }
        let fetched = fetch();
        self.cons_and_insert(method, fetched)
    }

    /// Environment sync + per-method lookup shared by the lift/adopt paths.
    /// Counts the hit or the miss.
    fn sync_and_lookup(&mut self, method: u32, env_fp: u64) -> Option<Arc<Function>> {
        if self.env_fp != Some(env_fp) {
            if self.env_fp.is_some() && !self.by_method.is_empty() {
                self.flushes += 1;
            }
            self.flush();
            self.env_fp = Some(env_fp);
        }
        if let Some(f) = self.by_method.get(&method) {
            self.hits += 1;
            return Some(Arc::clone(f));
        }
        self.misses += 1;
        None
    }

    /// Hash-conses `candidate` against the fingerprint buckets and memoizes
    /// the surviving allocation for `method`.
    fn cons_and_insert(&mut self, method: u32, candidate: Arc<Function>) -> Arc<Function> {
        let fp = candidate.fingerprint();
        let bucket = self.by_fingerprint.entry(fp).or_default();
        let shared = match bucket.iter().find(|c| ***c == *candidate) {
            Some(existing) => {
                self.consed += 1;
                Arc::clone(existing)
            }
            None => {
                bucket.push(Arc::clone(&candidate));
                candidate
            }
        };
        self.by_method.insert(method, Arc::clone(&shared));
        shared
    }
}

/// Convenience for tests: lifts and returns together with the registers
/// holding arguments.
pub fn lift_with_args(code: &[Instr], num_regs: u16, arg_count: u16) -> (Function, Vec<Reg>) {
    let f = lift(code, num_regs, arg_count);
    let args = (0..arg_count).map(Reg).collect();
    (f, args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Term;
    use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty};

    fn body(build: impl FnOnce(&mut dchm_bytecode::MethodBuilder<'_>)) -> (Vec<Instr>, u16) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
        build(&mut m);
        let mid = m.build();
        let p = pb.finish().unwrap();
        (p.method(mid).code.clone(), p.method(mid).num_regs)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (code, nregs) = body(|m| {
            let r = m.reg();
            m.const_i(r, 1);
            m.ret(Some(r));
        });
        let f = lift(&code, nregs, 1);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.blocks[0].ops.len(), 1);
        assert!(matches!(f.blocks[0].term, Term::Ret(Some(_))));
    }

    #[test]
    fn loop_produces_back_edge() {
        let (code, nregs) = body(|m| {
            let n = m.param(0);
            let i = m.reg();
            m.const_i(i, 0);
            let head = m.label();
            let done = m.label();
            m.bind(head);
            m.br_icmp(CmpOp::Ge, i, n, done);
            m.iadd_imm(i, i, 1);
            m.jmp(head);
            m.bind(done);
            m.ret(Some(i));
        });
        let f = lift(&code, nregs, 1);
        assert!(f.validate().is_ok());
        // Some block jumps backwards to the loop head.
        let mut has_back_edge = false;
        for (i, b) in f.blocks.iter().enumerate() {
            for s in b.term.successors() {
                if s.index() <= i {
                    has_back_edge = true;
                }
            }
        }
        assert!(has_back_edge);
        // Exactly one return.
        let rets = f
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Term::Ret(_)))
            .count();
        assert_eq!(rets, 1);
    }

    #[test]
    fn fallthrough_block_gets_jmp() {
        // br_if makes the following instr a leader; the branch block's false
        // edge must point at it.
        let (code, nregs) = body(|m| {
            let n = m.param(0);
            let skip = m.label();
            m.br_icmp_imm(CmpOp::Gt, n, 10, skip);
            m.iadd_imm(n, n, 1);
            m.bind(skip);
            m.ret(Some(n));
        });
        let f = lift(&code, nregs, 1);
        assert!(f.validate().is_ok());
        let entry = &f.blocks[0];
        match entry.term {
            Term::Br { t, f: fb, .. } => assert_ne!(t, fb),
            ref other => panic!("expected Br, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "empty code")]
    fn empty_code_panics() {
        lift(&[], 0, 0);
    }

    #[test]
    fn lift_cache_memoizes_per_method() {
        let (code, nregs) = body(|m| {
            let r = m.reg();
            m.const_i(r, 1);
            m.ret(Some(r));
        });
        let mut cache = LiftCache::new();
        let mut builds = 0;
        let a = cache.get_or_lift(0, 7, || {
            builds += 1;
            lift(&code, nregs, 1)
        });
        let b = cache.get_or_lift(0, 7, || {
            builds += 1;
            lift(&code, nregs, 1)
        });
        assert_eq!(builds, 1, "second lookup must be a hit");
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits, cache.misses), (1, 1));
    }

    #[test]
    fn lift_cache_hash_conses_across_methods() {
        let (code, nregs) = body(|m| {
            let r = m.reg();
            m.const_i(r, 1);
            m.ret(Some(r));
        });
        let mut cache = LiftCache::new();
        let a = cache.get_or_lift(0, 7, || lift(&code, nregs, 1));
        // A different method with a structurally identical body shares the
        // same allocation.
        let b = cache.get_or_lift(1, 7, || lift(&code, nregs, 1));
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.consed, 1);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn lift_cache_adopt_conses_against_local_entries() {
        let (code, nregs) = body(|m| {
            let r = m.reg();
            m.const_i(r, 1);
            m.ret(Some(r));
        });
        let mut cache = LiftCache::new();
        let local = cache.get_or_lift(0, 7, || lift(&code, nregs, 1));
        // Adopting a structurally equal function fetched from elsewhere
        // (fresh allocation) for another method reuses the local Arc.
        let foreign = Arc::new(lift(&code, nregs, 1));
        let adopted = cache.get_or_adopt(1, 7, || Arc::clone(&foreign));
        assert!(Arc::ptr_eq(&local, &adopted));
        assert!(!Arc::ptr_eq(&foreign, &adopted));
        assert_eq!(cache.consed, 1);
        // Second adopt of the same method is a plain hit: fetch not called.
        let again = cache.get_or_adopt(1, 7, || unreachable!("must hit"));
        assert!(Arc::ptr_eq(&again, &adopted));
        assert_eq!((cache.hits, cache.misses), (1, 2));
    }

    #[test]
    fn lift_cache_flushes_on_env_change() {
        let (code, nregs) = body(|m| {
            let r = m.reg();
            m.const_i(r, 1);
            m.ret(Some(r));
        });
        let mut cache = LiftCache::new();
        let a = cache.get_or_lift(0, 7, || lift(&code, nregs, 1));
        // New environment fingerprint: previous entries are invalid.
        let b = cache.get_or_lift(0, 8, || lift(&code, nregs, 1));
        assert!(!Arc::ptr_eq(&a, &b), "env change must rebuild");
        assert_eq!(cache.flushes, 1);
        assert_eq!(cache.misses, 2);
        assert_eq!(cache.len(), 1);
    }
}
