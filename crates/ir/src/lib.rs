#![warn(missing_docs)]

//! # dchm-ir
//!
//! The optimizer IR for the DCHM reproduction — the stand-in for the Jikes
//! RVM optimizing compiler the paper builds on.
//!
//! A [`Function`] is a control-flow graph of basic blocks over the same
//! straight-line [`Op`](dchm_bytecode::Op) set as the bytecode; only control
//! flow is restructured (explicit block terminators instead of labels).
//! Bytecode is lifted with [`lift()`](lift::lift), optimized by the passes in [`passes`],
//! and executed directly by the VM's evaluator.
//!
//! The passes implement the optimization vocabulary the paper's technique
//! feeds: constant propagation, copy propagation, branch folding (the paper's
//! "branch elimination"), dead-code elimination, strength reduction, method
//! inlining, and — the key enabler — [`passes::specialize::specialize`], which folds a
//! *state field* of the receiver (or a static state field) to a constant so
//! the rest of the pipeline can prune the method down to the code for one
//! object state.
//!
//! ```
//! use dchm_bytecode::{ProgramBuilder, MethodSig, Ty, CmpOp};
//! use dchm_ir::{lift, passes, OptConfig};
//!
//! let mut pb = ProgramBuilder::new();
//! let c = pb.class("C").build();
//! let mut m = pb.static_method(c, "f", MethodSig::new(vec![], Some(Ty::Int)));
//! let a = m.imm(2);
//! let b = m.imm(3);
//! let r = m.reg();
//! m.iadd(r, a, b);
//! m.ret(Some(r));
//! let mid = m.build();
//! let p = pb.finish().unwrap();
//!
//! let mut f = lift(&p.method(mid).code, p.method(mid).num_regs, 0);
//! passes::run_pipeline(&mut f, &OptConfig::level(2));
//! // 2 + 3 folded: the optimized function returns a constant.
//! assert!(f.size() <= 2);
//! ```

pub mod cost;
pub mod error;
pub mod func;
pub mod lift;
pub mod passes;
pub mod pretty;

pub use cost::{op_cost, op_size, CostModel};
pub use error::IrError;
pub use func::{Block, BlockId, Function, Term};
pub use lift::{lift, LiftCache};
pub use passes::OptConfig;
