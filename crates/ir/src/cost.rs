//! Static cost and size model.
//!
//! The evaluator charges [`op_cost`] cycles per executed op, which makes the
//! reproduction's "time" deterministic; the paper's 2.4 GHz Pentium 4 is
//! modeled by [`CostModel::FREQ_HZ`] when converting cycles to seconds.
//! [`op_size`] is the static footprint used for the paper's compiled-code
//! size measurements (Figure 10).

use dchm_bytecode::{DBinOp, IBinOp, IntrinsicKind, Op};

/// Cycle cost of executing `op` once (dynamic extras such as allocation
/// size or GC work are charged separately by the VM).
pub fn op_cost(op: &Op) -> u64 {
    match op {
        Op::ConstI { .. } | Op::ConstD { .. } | Op::ConstNull { .. } | Op::Mov { .. } => 1,
        Op::IBin { op, .. } => match op {
            IBinOp::Mul => 3,
            IBinOp::Div | IBinOp::Rem => 20,
            _ => 1,
        },
        Op::INeg { .. } | Op::I2D { .. } | Op::D2I { .. } | Op::DNeg { .. } => 1,
        Op::DBin { op, .. } => match op {
            DBinOp::Add | DBinOp::Sub => 2,
            DBinOp::Mul => 4,
            DBinOp::Div => 20,
        },
        Op::ICmp { .. } | Op::DCmp { .. } | Op::RefEq { .. } => 1,
        Op::New { .. } | Op::NewArr { .. } => 30,
        Op::GetField { .. } | Op::PutField { .. } => 2,
        Op::GetStatic { .. } | Op::PutStatic { .. } => 2,
        Op::CallVirtual { .. } => 12,
        Op::CallSpecial { .. } | Op::CallStatic { .. } => 10,
        Op::CallInterface { .. } => 14,
        Op::InstanceOf { .. } | Op::CheckCast { .. } => 3,
        Op::ALoad { .. } | Op::AStore { .. } | Op::ALen { .. } => 2,
        Op::Intrinsic { kind, .. } => match kind {
            IntrinsicKind::PrintInt | IntrinsicKind::PrintDouble | IntrinsicKind::PrintChar => 2,
            IntrinsicKind::SinkInt | IntrinsicKind::SinkDouble => 2,
            IntrinsicKind::DSqrt => 8,
            IntrinsicKind::DAbs
            | IntrinsicKind::IAbs
            | IntrinsicKind::IMin
            | IntrinsicKind::IMax => 1,
        },
        // Patch-point checks: the run-time price of the mutation technique.
        Op::NotifyCtorExit { .. } | Op::NotifyInstStore { .. } => 3,
        Op::NotifyStaticStore { .. } => 3,
        // State guards are modeled as free: the entry guard is subsumed by
        // special-TIB dispatch (reaching specialized code *is* the check)
        // and post-store guards piggyback on the patch-point check already
        // billed for the preceding `Notify*`. They exist as explicit ops so
        // the broken/raced case can recover, not as extra modeled work —
        // which also keeps a deoptimizing run cycle-comparable to baseline.
        Op::GuardState { .. } => 0,
    }
}

/// Static size in bytes of one op, for compiled-code-size accounting.
pub fn op_size(op: &Op) -> usize {
    match op {
        Op::ConstI { .. } | Op::ConstD { .. } => 8,
        Op::CallVirtual { args, .. }
        | Op::CallSpecial { args, .. }
        | Op::CallStatic { args, .. }
        | Op::CallInterface { args, .. } => 8 + 2 * args.len(),
        // A guard is a compare-and-branch per binding plus the side-table
        // entry; its footprint is what the deopt machinery costs in space.
        Op::GuardState {
            instance, statics, ..
        } => 4 + 4 * (instance.len() + statics.len()),
        _ => 4,
    }
}

/// Machine-level constants of the modeled platform.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct CostModel;

impl CostModel {
    /// Modeled clock frequency (the paper's 2.4 GHz Pentium 4).
    pub const FREQ_HZ: u64 = 2_400_000_000;
    /// Cycles charged per terminator (jump/branch/return).
    pub const TERM_COST: u64 = 1;
    /// Extra cycles charged per call frame push/pop.
    pub const FRAME_COST: u64 = 4;
    /// Cycles charged per 8 bytes allocated (allocation throughput).
    pub const ALLOC_COST_PER_WORD: u64 = 1;
    /// Cycles charged per live object visited during a GC mark phase.
    pub const GC_MARK_COST: u64 = 12;
    /// Cycles charged per dead object swept.
    pub const GC_SWEEP_COST: u64 = 3;
    /// Compilation cost in cycles per byte of *input* bytecode, per
    /// optimization-level unit (opt0 = 1x, opt1 = 4x, opt2 = 10x).
    /// Calibrated so the benchmarks' compile-to-execution fractions land in
    /// the 0.3%–3% range the paper reports for its SPECjbb publication runs.
    pub const COMPILE_COST_PER_BYTE: u64 = 24;

    /// Compilation cycle cost for a method of `bytecode_bytes` at `level`.
    pub fn compile_cost(bytecode_bytes: usize, level: u8) -> u64 {
        let mult = match level {
            0 => 1,
            1 => 4,
            _ => 10,
        };
        Self::COMPILE_COST_PER_BYTE * bytecode_bytes as u64 * mult
    }

    /// Converts cycles to modeled seconds.
    pub fn cycles_to_secs(cycles: u64) -> f64 {
        cycles as f64 / Self::FREQ_HZ as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::Reg;

    #[test]
    fn div_costs_more_than_add() {
        let add = Op::IBin {
            op: IBinOp::Add,
            dst: Reg(0),
            a: Reg(1),
            b: Reg(2),
        };
        let div = Op::IBin {
            op: IBinOp::Div,
            dst: Reg(0),
            a: Reg(1),
            b: Reg(2),
        };
        let shl = Op::IBin {
            op: IBinOp::Shl,
            dst: Reg(0),
            a: Reg(1),
            b: Reg(2),
        };
        let mul = Op::IBin {
            op: IBinOp::Mul,
            dst: Reg(0),
            a: Reg(1),
            b: Reg(2),
        };
        assert!(op_cost(&div) > op_cost(&mul));
        assert!(op_cost(&mul) > op_cost(&add));
        // Strength reduction must pay off.
        assert!(op_cost(&shl) < op_cost(&mul));
    }

    #[test]
    fn compile_cost_scales_with_level() {
        let c0 = CostModel::compile_cost(100, 0);
        let c1 = CostModel::compile_cost(100, 1);
        let c2 = CostModel::compile_cost(100, 2);
        assert!(c0 < c1 && c1 < c2);
    }

    #[test]
    fn cycles_to_secs_uses_freq() {
        assert_eq!(CostModel::cycles_to_secs(CostModel::FREQ_HZ), 1.0);
    }
}
