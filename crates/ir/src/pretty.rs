//! Pretty-printing for IR functions.

use crate::func::{Function, Term};
use std::fmt;

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Jmp(b) => write!(f, "jmp {b}"),
            Term::Br { cond, t, f: fb } => write!(f, "br {cond} ? {t} : {fb}"),
            Term::Ret(Some(r)) => write!(f, "ret {r}"),
            Term::Ret(None) => write!(f, "ret"),
            Term::Unreachable => write!(f, "unreachable"),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fn [{} args, {} regs, {} blocks, size {}]",
            self.arg_count,
            self.num_regs,
            self.blocks.len(),
            self.size()
        )?;
        for (i, b) in self.blocks.iter().enumerate() {
            writeln!(f, "b{i}:")?;
            for op in &b.ops {
                writeln!(f, "    {op}")?;
            }
            writeln!(f, "    {}", b.term)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::func::{Block, BlockId, Function, Term};
    use dchm_bytecode::{Op, Reg};

    #[test]
    fn display_shows_blocks_and_ops() {
        let mut b0 = Block::new(Term::Br {
            cond: Reg(0),
            t: BlockId(1),
            f: BlockId(1),
        });
        b0.ops = vec![Op::ConstI { dst: Reg(0), val: 3 }];
        let b1 = Block::new(Term::Ret(None));
        let f = Function {
            blocks: vec![b0, b1],
            num_regs: 1,
            arg_count: 0,
        };
        let s = format!("{f}");
        assert!(s.contains("b0:"));
        assert!(s.contains("b1:"));
        assert!(s.contains("const 3"));
        assert!(s.contains("br r0 ? b1 : b1"));
        assert!(s.contains("ret"));
    }
}
