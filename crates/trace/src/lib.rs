#![warn(missing_docs)]

//! # dchm-trace
//!
//! Structured event tracing for the DCHM VM: every mutation-lifecycle
//! transition the paper's evaluation reasons about — TIB flips, state
//! entries/exits, special compiles, guard failures and deoptimizations,
//! inline-cache traffic, GC, adaptive samples, injected faults — becomes a
//! typed [`TraceEvent`] stamped with the VM's *modeled* cycle clock and a
//! monotone sequence number.
//!
//! Design constraints, in order:
//!
//! 1. **Free when off.** The VM holds a [`Tracer`] whose
//!    [`Tracer::on`] check is a single inlined branch on an `Option`
//!    discriminant; no event is constructed, no closure allocated, no
//!    virtual call made unless a sink is attached.
//! 2. **Invisible when on.** Events are stamped with the modeled clock but
//!    never *charge* it: the determinism harness's golden fingerprints
//!    (clock, op counts, per-method cycle hashes) are bit-identical with
//!    tracing enabled or disabled. The buffer is host-side memory only.
//! 3. **Bounded.** The default sink is a fixed-capacity overwrite-oldest
//!    ring ([`TraceBuffer`]): a trace of a long run keeps the most recent
//!    `capacity` events and counts what it dropped. The VM is
//!    single-threaded, so a single-writer ring needs no locks — "lock-free"
//!    by construction rather than by atomics.
//!
//! On top of the raw buffer sit two exporters: [`export`] renders Chrome
//! trace-event JSON (loadable in Perfetto / `chrome://tracing`), and
//! [`metrics`] folds the event stream into per-method histograms of
//! time-in-state and deopt latency.

pub mod census;
pub mod export;
pub mod fleet;
pub mod metrics;
pub mod profile;

use std::any::Any;

/// Sentinel for "no method/object/code id applies to this event field".
pub const NO_ID: u32 = u32::MAX;

/// Default ring capacity (events). 64Ki events × 32 B ≈ 2 MB of host
/// memory — big enough to hold a full Small-scale workload run.
pub const DEFAULT_CAPACITY: usize = 64 * 1024;

/// Default inline-cache sampling period: one `IcHit`/`IcMiss` event stands
/// for this many probes (IC traffic is orders of magnitude denser than
/// every other event kind; unsampled it would evict everything else).
pub const DEFAULT_IC_SAMPLE_PERIOD: u32 = 64;

/// Which fault the injector fired (mirrors `dchm-vm`'s injector actions
/// without depending on that crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An injected (cycle-transparent) garbage collection.
    Gc,
    /// An injected global inline-cache version bump.
    IcBump,
    /// An injected silent recompilation of the running method.
    Recompile,
    /// A state guard forced to fail despite the state holding.
    ForcedGuardFail,
    /// An injected opt/special compilation failure (tier-down path).
    CompileFail,
    /// An injected out-of-memory at an allocation despite free heap.
    OomAtAlloc,
    /// An injected panic at an interpreter operation (containment path).
    PanicAtOp,
}

/// One mutation-lifecycle event. All payloads are raw `u32`/`u64` ids
/// (method/object/TIB/code indices) so the event is a fixed-size `Copy`
/// value and this crate stays independent of the VM's newtypes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// An object's TIB pointer was repointed — the mutation itself.
    TibFlip {
        /// Object whose header was patched.
        obj: u32,
        /// TIB id before the flip.
        from_tib: u32,
        /// TIB id after the flip.
        to_tib: u32,
    },
    /// An object entered (`entered`) or left a hot state: the semantic
    /// reading of a TIB flip between a class TIB and a special TIB.
    StateTransition {
        /// The transitioning object, or [`NO_ID`] for a class-wide
        /// (static-state) transition.
        obj: u32,
        /// The object's class.
        class: u32,
        /// True when the hot state was entered, false when left.
        entered: bool,
        /// Engine-defined hot-state index.
        state: u32,
    },
    /// A state-specialized code version finished compiling.
    SpecialCompile {
        /// Method the special version belongs to.
        method: u32,
        /// Id of the new code in the code store.
        code: u32,
        /// Optimization level it was compiled at.
        level: u32,
        /// Modeled machine-code size.
        size_bytes: u32,
    },
    /// General code was (re)compiled and installed into the JTOC/TIBs.
    Recompile {
        /// The recompiled method.
        method: u32,
        /// Id of the new code in the code store.
        code: u32,
        /// New optimization level.
        level: u32,
        /// Modeled machine-code size.
        size_bytes: u32,
    },
    /// A state guard in specialized code failed (the state assumption
    /// broke, or the fault injector forced it).
    GuardFail {
        /// Method whose specialized code tripped.
        method: u32,
        /// Guard id within the method's deopt side table.
        guard: u32,
        /// Receiver object, or [`NO_ID`] for static-state guards.
        obj: u32,
        /// True when the failure was injector-forced.
        forced: bool,
    },
    /// A frame remapped onto baseline code after a guard failure.
    Deopt {
        /// The deoptimized method.
        method: u32,
        /// Code id the frame was executing (the specialized version).
        from_code: u32,
        /// Baseline code id the frame resumes in.
        to_code: u32,
        /// Receiver object, or [`NO_ID`].
        obj: u32,
    },
    /// The deoptimized frame's resume point in baseline code — emitted
    /// when the remap is complete, i.e. after any baseline compile stall.
    BaselineResume {
        /// The deoptimized method.
        method: u32,
        /// Baseline code id.
        code: u32,
        /// Resume block index.
        block: u32,
        /// Resume op index.
        op: u32,
    },
    /// Sampled inline-cache hits: one event per `sampled` probes.
    IcHit {
        /// Method whose call site probed the cache (the caller).
        method: u32,
        /// Call-site id within that method.
        site: u32,
        /// Number of hits this event stands for.
        sampled: u32,
    },
    /// Sampled inline-cache misses: one event per `sampled` probes.
    IcMiss {
        /// Method whose call site probed the cache (the caller).
        method: u32,
        /// Call-site id within that method.
        site: u32,
        /// Number of misses this event stands for.
        sampled: u32,
    },
    /// A (billed) garbage collection began.
    GcStart {
        /// Heap bytes in use when the collection started.
        used_bytes: u64,
    },
    /// The collection finished.
    GcEnd {
        /// Heap bytes in use after sweeping.
        used_bytes: u64,
        /// Modeled cycles the collection was billed.
        gc_cycles: u64,
    },
    /// The adaptive system took a method sample (timer tick).
    Sample {
        /// Sampled method.
        method: u32,
        /// That method's cumulative sample count.
        count: u64,
    },
    /// The fault injector fired.
    FaultInjected {
        /// Which fault.
        kind: FaultKind,
        /// Method on top of the stack when it fired, or [`NO_ID`].
        method: u32,
    },
    /// The compiled-code cache answered a compilation request: a
    /// previously produced version was reinstalled without rerunning the
    /// optimizer pipeline (billing is unchanged; only host work is elided).
    CodeCacheHit {
        /// Method whose compilation was requested.
        method: u32,
        /// The cached code that was reused.
        code: u32,
        /// Optimization level of the request.
        level: u32,
        /// True when the request was for a state-specialized version.
        special: bool,
    },
    /// The compiled-code cache evicted an entry to stay within its LRU
    /// capacity bound (the code itself is immortal; only the mapping is
    /// dropped, so a later identical request recompiles).
    CodeCacheEvict {
        /// Method of the evicted version.
        method: u32,
        /// The evicted code id.
        code: u32,
        /// Optimization level of the evicted version.
        level: u32,
    },
    /// The resilience governor throttled respecialization of a
    /// (method, special-state) site after a deopt storm: the site is
    /// pinned to general code until the backoff deadline passes.
    SpecialThrottled {
        /// Method whose special version was throttled.
        method: u32,
        /// Throttle episode count for this site (drives the exponential
        /// backoff: episode N backs off `base << (N-1)` cycles, capped).
        episode: u32,
        /// Modeled cycle at which respecialization may resume.
        until_cycle: u64,
    },
    /// The governor blacklisted a (method, special-state) site for good:
    /// lifetime guard-failure churn crossed the blacklist threshold.
    SpecialBlacklisted {
        /// Method whose special version was blacklisted.
        method: u32,
        /// Lifetime guard failures the site accumulated.
        fails: u64,
    },
    /// The governor quarantined a (method, opt-level) compile pair after
    /// repeated compilation failures; retries resume at the deadline.
    CompileQuarantine {
        /// Method whose compilation keeps failing.
        method: u32,
        /// Requested optimization level.
        level: u32,
        /// Failures accumulated for the pair.
        fails: u32,
        /// Modeled cycle at which a retry is allowed.
        until_cycle: u64,
    },
    /// The cycle-attribution profiler took a stack sample (a 0-cycle,
    /// host-side observation; see [`profile`]). Rendered as a Perfetto
    /// counter track by [`export::chrome_trace`].
    ProfileSample {
        /// Method on top of the modeled stack when the sample fired.
        method: u32,
        /// Stack depth at the sample (frames).
        depth: u32,
        /// Cumulative samples taken so far, this one included.
        samples: u64,
    },
    /// A heap/state census walk completed (GC-triggered or on demand).
    /// Rendered as a Perfetto counter track by [`export::chrome_trace`].
    Census {
        /// Live (unswept) heap objects, arrays excluded.
        live_objects: u64,
        /// Bytes held by all unswept cells (objects and arrays).
        live_bytes: u64,
        /// Objects currently sitting in a special-state TIB.
        in_special_state: u64,
    },
}

impl TraceEvent {
    /// Stable event name (the Chrome trace-event `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::TibFlip { .. } => "TibFlip",
            TraceEvent::StateTransition { .. } => "StateTransition",
            TraceEvent::SpecialCompile { .. } => "SpecialCompile",
            TraceEvent::Recompile { .. } => "Recompile",
            TraceEvent::GuardFail { .. } => "GuardFail",
            TraceEvent::Deopt { .. } => "Deopt",
            TraceEvent::BaselineResume { .. } => "BaselineResume",
            TraceEvent::IcHit { .. } => "IcHit",
            TraceEvent::IcMiss { .. } => "IcMiss",
            TraceEvent::GcStart { .. } => "GcStart",
            TraceEvent::GcEnd { .. } => "GcEnd",
            TraceEvent::Sample { .. } => "Sample",
            TraceEvent::FaultInjected { .. } => "FaultInjected",
            TraceEvent::CodeCacheHit { .. } => "CodeCacheHit",
            TraceEvent::CodeCacheEvict { .. } => "CodeCacheEvict",
            TraceEvent::SpecialThrottled { .. } => "SpecialThrottled",
            TraceEvent::SpecialBlacklisted { .. } => "SpecialBlacklisted",
            TraceEvent::CompileQuarantine { .. } => "CompileQuarantine",
            TraceEvent::ProfileSample { .. } => "ProfileSample",
            TraceEvent::Census { .. } => "Census",
        }
    }

    /// Category the event belongs to (the Chrome trace-event `cat` field).
    pub fn category(&self) -> &'static str {
        match self {
            TraceEvent::TibFlip { .. } | TraceEvent::StateTransition { .. } => "mutation",
            TraceEvent::SpecialCompile { .. }
            | TraceEvent::Recompile { .. }
            | TraceEvent::CodeCacheHit { .. }
            | TraceEvent::CodeCacheEvict { .. } => "compile",
            TraceEvent::GuardFail { .. }
            | TraceEvent::Deopt { .. }
            | TraceEvent::BaselineResume { .. } => "deopt",
            TraceEvent::IcHit { .. } | TraceEvent::IcMiss { .. } => "ic",
            TraceEvent::GcStart { .. } | TraceEvent::GcEnd { .. } => "gc",
            TraceEvent::Sample { .. } => "adaptive",
            TraceEvent::FaultInjected { .. } => "fault",
            TraceEvent::SpecialThrottled { .. }
            | TraceEvent::SpecialBlacklisted { .. }
            | TraceEvent::CompileQuarantine { .. } => "governor",
            TraceEvent::ProfileSample { .. } => "profile",
            TraceEvent::Census { .. } => "census",
        }
    }

    /// The method id carried by the event, if any.
    pub fn method(&self) -> Option<u32> {
        match *self {
            TraceEvent::SpecialCompile { method, .. }
            | TraceEvent::Recompile { method, .. }
            | TraceEvent::GuardFail { method, .. }
            | TraceEvent::Deopt { method, .. }
            | TraceEvent::BaselineResume { method, .. }
            | TraceEvent::IcHit { method, .. }
            | TraceEvent::IcMiss { method, .. }
            | TraceEvent::Sample { method, .. }
            | TraceEvent::FaultInjected { method, .. }
            | TraceEvent::CodeCacheHit { method, .. }
            | TraceEvent::CodeCacheEvict { method, .. }
            | TraceEvent::SpecialThrottled { method, .. }
            | TraceEvent::SpecialBlacklisted { method, .. }
            | TraceEvent::CompileQuarantine { method, .. }
            | TraceEvent::ProfileSample { method, .. } => {
                (method != NO_ID).then_some(method)
            }
            _ => None,
        }
    }

    /// The object id carried by the event, if any.
    pub fn object(&self) -> Option<u32> {
        match *self {
            TraceEvent::TibFlip { obj, .. }
            | TraceEvent::StateTransition { obj, .. }
            | TraceEvent::GuardFail { obj, .. }
            | TraceEvent::Deopt { obj, .. } => (obj != NO_ID).then_some(obj),
            _ => None,
        }
    }
}

/// A recorded event: payload plus its stamps. `seq` is strictly monotone
/// over the whole run (it survives ring overwrites); `cycle` is the modeled
/// clock at emission, monotone because the clock never rewinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stamped {
    /// Emission index, starting at 0.
    pub seq: u64,
    /// Modeled cycle clock at emission.
    pub cycle: u64,
    /// The event.
    pub event: TraceEvent,
}

/// Where stamped events go. Object-safe so the VM can hold any sink;
/// `as_any` lets callers downcast back to a concrete sink (the ring) to
/// read events out.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, ev: Stamped);
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
}

/// Fixed-capacity overwrite-oldest ring of [`Stamped`] events — the
/// default sink. Single-writer (the VM is single-threaded), so no
/// synchronization is needed; recording is an index bump and a `Copy`
/// store.
#[derive(Clone, Debug)]
pub struct TraceBuffer {
    buf: Vec<Stamped>,
    cap: usize,
    /// Index of the oldest event once the ring has wrapped.
    start: usize,
    /// Total events ever recorded (≥ `len`).
    recorded: u64,
}

impl TraceBuffer {
    /// Creates a ring holding at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace ring capacity must be non-zero");
        TraceBuffer {
            buf: Vec::with_capacity(capacity.min(4096)),
            cap: capacity,
            start: 0,
            recorded: 0,
        }
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events lost to overwriting (`recorded - len`).
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// Iterates the held events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &Stamped> {
        self.buf[self.start..].iter().chain(self.buf[..self.start].iter())
    }

    /// The held events oldest-first, as a vector.
    pub fn to_vec(&self) -> Vec<Stamped> {
        self.iter().copied().collect()
    }

    /// The most recent `n` events, oldest of those first.
    pub fn last(&self, n: usize) -> Vec<Stamped> {
        let all = self.to_vec();
        let skip = all.len().saturating_sub(n);
        all[skip..].to_vec()
    }
}

impl TraceSink for TraceBuffer {
    fn record(&mut self, ev: Stamped) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.cap;
        }
        self.recorded += 1;
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The VM-side tracing front end: an optional sink plus the sequence
/// counter and the inline-cache sampling state. Lives inside `VmState`;
/// every emission site is gated on [`Tracer::on`], so a detached tracer
/// costs the fast path exactly one predictable branch.
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    seq: u64,
    ic_period: u32,
    pending_ic_hits: u32,
    pending_ic_misses: u32,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::off()
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("on", &self.on())
            .field("seq", &self.seq)
            .finish()
    }
}

impl Tracer {
    /// A detached tracer — the default; emission sites reduce to one
    /// branch.
    pub fn off() -> Self {
        Tracer {
            sink: None,
            seq: 0,
            ic_period: DEFAULT_IC_SAMPLE_PERIOD,
            pending_ic_hits: 0,
            pending_ic_misses: 0,
        }
    }

    /// A tracer recording into a fresh ring of `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        let mut t = Tracer::off();
        t.attach(Box::new(TraceBuffer::new(capacity)));
        t
    }

    /// Attaches a sink (replacing any current one).
    pub fn attach(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// Attaches a fresh ring of `capacity` events.
    pub fn enable_ring(&mut self, capacity: usize) {
        self.attach(Box::new(TraceBuffer::new(capacity)));
    }

    /// Detaches and returns the sink; the tracer is off afterwards.
    pub fn detach(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Whether a sink is attached. This is *the* fast-path check: inlined
    /// to a null test on the boxed sink.
    #[inline(always)]
    pub fn on(&self) -> bool {
        self.sink.is_some()
    }

    /// Sets the inline-cache sampling period (events per `period` probes).
    ///
    /// # Panics
    /// Panics if `period` is 0.
    pub fn set_ic_sample_period(&mut self, period: u32) {
        assert!(period > 0, "ic sample period must be non-zero");
        self.ic_period = period;
    }

    /// Stamps and records `event` at modeled clock `cycle`. A no-op when
    /// detached, so callers may skip their own [`Tracer::on`] gate when
    /// the event payload is cheap to build.
    #[inline]
    pub fn emit(&mut self, cycle: u64, event: TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            let seq = self.seq;
            self.seq += 1;
            sink.record(Stamped { seq, cycle, event });
        }
    }

    /// Counts an inline-cache hit; every `ic_period`-th probe emits one
    /// sampled [`TraceEvent::IcHit`] carrying the caller/site of the probe
    /// that closed the window.
    #[inline]
    pub fn ic_hit(&mut self, cycle: u64, method: u32, site: u32) {
        if self.sink.is_none() {
            return;
        }
        self.pending_ic_hits += 1;
        if self.pending_ic_hits >= self.ic_period {
            let sampled = self.pending_ic_hits;
            self.pending_ic_hits = 0;
            self.emit(cycle, TraceEvent::IcHit { method, site, sampled });
        }
    }

    /// Counts an inline-cache miss; sampled like [`Tracer::ic_hit`].
    #[inline]
    pub fn ic_miss(&mut self, cycle: u64, method: u32, site: u32) {
        if self.sink.is_none() {
            return;
        }
        self.pending_ic_misses += 1;
        if self.pending_ic_misses >= self.ic_period {
            let sampled = self.pending_ic_misses;
            self.pending_ic_misses = 0;
            self.emit(cycle, TraceEvent::IcMiss { method, site, sampled });
        }
    }

    /// The attached ring, when the sink is a [`TraceBuffer`].
    pub fn buffer(&self) -> Option<&TraceBuffer> {
        self.sink
            .as_ref()
            .and_then(|s| s.as_any().downcast_ref::<TraceBuffer>())
    }

    /// Buffered events oldest-first; empty when detached or when the sink
    /// is not a ring.
    pub fn events(&self) -> Vec<Stamped> {
        self.buffer().map(TraceBuffer::to_vec).unwrap_or_default()
    }

    /// The most recent `n` buffered events.
    pub fn last(&self, n: usize) -> Vec<Stamped> {
        self.buffer().map(|b| b.last(n)).unwrap_or_default()
    }

    /// Events lost to ring overwriting so far.
    pub fn dropped(&self) -> u64 {
        self.buffer().map(TraceBuffer::dropped).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(i: u32) -> TraceEvent {
        TraceEvent::Sample { method: i, count: i as u64 }
    }

    #[test]
    fn off_tracer_records_nothing() {
        let mut t = Tracer::off();
        assert!(!t.on());
        t.emit(1, ev(0));
        t.ic_hit(1, 0, 0);
        assert!(t.events().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut t = Tracer::ring(4);
        for i in 0..10u32 {
            t.emit(i as u64, ev(i));
        }
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        // Oldest-first, and the oldest 6 were overwritten.
        assert_eq!(evs[0].seq, 6);
        assert_eq!(evs[3].seq, 9);
        assert_eq!(t.dropped(), 6);
        let b = t.buffer().unwrap();
        assert_eq!(b.recorded(), 10);
        assert_eq!(b.capacity(), 4);
        // `last` clamps to what is held.
        assert_eq!(t.last(2).iter().map(|e| e.seq).collect::<Vec<_>>(), [8, 9]);
        assert_eq!(t.last(100).len(), 4);
    }

    #[test]
    fn stamps_are_monotone() {
        let mut t = Tracer::ring(16);
        t.emit(5, ev(0));
        t.emit(5, ev(1));
        t.emit(9, ev(2));
        let evs = t.events();
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(evs.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    }

    #[test]
    fn ic_probes_are_sampled() {
        let mut t = Tracer::ring(16);
        t.set_ic_sample_period(8);
        for _ in 0..20 {
            t.ic_hit(1, 3, 0);
        }
        t.ic_miss(2, 3, 1);
        let evs = t.events();
        // 20 hits at period 8 -> 2 events; 1 miss -> below threshold.
        assert_eq!(evs.len(), 2);
        for e in &evs {
            assert_eq!(
                e.event,
                TraceEvent::IcHit { method: 3, site: 0, sampled: 8 }
            );
        }
    }

    #[test]
    fn accessors_expose_method_and_object() {
        let e = TraceEvent::GuardFail { method: 7, guard: 0, obj: 9, forced: false };
        assert_eq!(e.method(), Some(7));
        assert_eq!(e.object(), Some(9));
        assert_eq!(e.name(), "GuardFail");
        assert_eq!(e.category(), "deopt");
        let g = TraceEvent::GcStart { used_bytes: 0 };
        assert_eq!(g.method(), None);
        assert_eq!(g.object(), None);
        let s = TraceEvent::GuardFail { method: 1, guard: 0, obj: NO_ID, forced: true };
        assert_eq!(s.object(), None);
    }
}
