//! Chrome trace-event / Perfetto export.
//!
//! Renders a recorded event stream as the Chrome trace-event JSON object
//! format (`{"traceEvents": [...]}`), loadable in Perfetto
//! (<https://ui.perfetto.dev>) and `chrome://tracing`. The modeled cycle
//! clock maps to the `ts` field one cycle = one microsecond, so timeline
//! distances are exact modeled-cycle distances; nothing here consults the
//! wall clock.
//!
//! Event phases: GC spans become `B`/`E` begin/end pairs; every other event
//! is a thread-scoped instant (`i`). Two `M` metadata records name the
//! process and thread.

use crate::{Stamped, TraceEvent, NO_ID};
use serde::Value;

/// Synthetic process id for the single modeled VM.
const PID: i64 = 1;
/// Synthetic thread id for the single modeled mutator thread.
const TID: i64 = 1;

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn int(v: u64) -> Value {
    Value::Int(v as i64)
}

/// An id field: [`NO_ID`] renders as `null`.
fn id(v: u32) -> Value {
    if v == NO_ID {
        Value::Null
    } else {
        Value::Int(v as i64)
    }
}

fn args(ev: &TraceEvent) -> Value {
    match *ev {
        TraceEvent::TibFlip { obj: o, from_tib, to_tib } => obj(vec![
            ("obj", id(o)),
            ("from_tib", int(from_tib as u64)),
            ("to_tib", int(to_tib as u64)),
        ]),
        TraceEvent::StateTransition { obj: o, class, entered, state } => obj(vec![
            ("obj", id(o)),
            ("class", int(class as u64)),
            ("entered", Value::Bool(entered)),
            ("state", int(state as u64)),
        ]),
        TraceEvent::SpecialCompile { method, code, level, size_bytes }
        | TraceEvent::Recompile { method, code, level, size_bytes } => obj(vec![
            ("method", id(method)),
            ("code", int(code as u64)),
            ("level", int(level as u64)),
            ("size_bytes", int(size_bytes as u64)),
        ]),
        TraceEvent::GuardFail { method, guard, obj: o, forced } => obj(vec![
            ("method", id(method)),
            ("guard", int(guard as u64)),
            ("obj", id(o)),
            ("forced", Value::Bool(forced)),
        ]),
        TraceEvent::Deopt { method, from_code, to_code, obj: o } => obj(vec![
            ("method", id(method)),
            ("from_code", int(from_code as u64)),
            ("to_code", int(to_code as u64)),
            ("obj", id(o)),
        ]),
        TraceEvent::BaselineResume { method, code, block, op } => obj(vec![
            ("method", id(method)),
            ("code", int(code as u64)),
            ("block", int(block as u64)),
            ("op", int(op as u64)),
        ]),
        TraceEvent::IcHit { method, site, sampled }
        | TraceEvent::IcMiss { method, site, sampled } => obj(vec![
            ("method", id(method)),
            ("site", int(site as u64)),
            ("sampled", int(sampled as u64)),
        ]),
        TraceEvent::GcStart { used_bytes } => obj(vec![("used_bytes", int(used_bytes))]),
        TraceEvent::GcEnd { used_bytes, gc_cycles } => obj(vec![
            ("used_bytes", int(used_bytes)),
            ("gc_cycles", int(gc_cycles)),
        ]),
        TraceEvent::Sample { method, count } => {
            obj(vec![("method", id(method)), ("count", int(count))])
        }
        TraceEvent::FaultInjected { kind, method } => obj(vec![
            ("kind", Value::Str(format!("{kind:?}"))),
            ("method", id(method)),
        ]),
        TraceEvent::CodeCacheHit { method, code, level, special } => obj(vec![
            ("method", id(method)),
            ("code", int(code as u64)),
            ("level", int(level as u64)),
            ("special", Value::Bool(special)),
        ]),
        TraceEvent::CodeCacheEvict { method, code, level } => obj(vec![
            ("method", id(method)),
            ("code", int(code as u64)),
            ("level", int(level as u64)),
        ]),
        TraceEvent::SpecialThrottled { method, episode, until_cycle } => obj(vec![
            ("method", id(method)),
            ("episode", int(episode as u64)),
            ("until_cycle", int(until_cycle)),
        ]),
        TraceEvent::SpecialBlacklisted { method, fails } => obj(vec![
            ("method", id(method)),
            ("fails", int(fails)),
        ]),
        TraceEvent::CompileQuarantine { method, level, fails, until_cycle } => obj(vec![
            ("method", id(method)),
            ("level", int(level as u64)),
            ("fails", int(fails as u64)),
            ("until_cycle", int(until_cycle)),
        ]),
        // Counter events: args must be numeric-only — Perfetto plots each
        // key as one series on the counter track.
        TraceEvent::ProfileSample { samples, .. } => obj(vec![("samples", int(samples))]),
        TraceEvent::Census { live_objects, live_bytes, in_special_state } => obj(vec![
            ("live_objects", int(live_objects)),
            ("live_bytes", int(live_bytes)),
            ("in_special_state", int(in_special_state)),
        ]),
    }
}

fn metadata_for(pid: i64, name: &str, what: &str) -> Value {
    obj(vec![
        ("name", Value::Str(name.to_owned())),
        ("ph", Value::Str("M".to_owned())),
        ("ts", Value::Int(0)),
        ("pid", Value::Int(pid)),
        ("tid", Value::Int(TID)),
        ("args", obj(vec![("name", Value::Str(what.to_owned()))])),
    ])
}

fn metadata(name: &str, what: &str) -> Value {
    metadata_for(PID, name, what)
}

/// Renders one event stream under process `pid` into `out` — the shared
/// body of the solo and fleet exporters.
fn push_events(out: &mut Vec<Value>, pid: i64, events: &[Stamped]) {
    for e in events {
        let (name, ph) = match e.event {
            // GC renders as a span so its modeled duration is visible.
            TraceEvent::GcStart { .. } => ("GC", "B"),
            TraceEvent::GcEnd { .. } => ("GC", "E"),
            // Attribution events render as counter tracks: the cumulative
            // profile-sample count and the census aggregates plot as
            // series over the modeled timeline.
            TraceEvent::ProfileSample { .. } => ("ProfileSamples", "C"),
            TraceEvent::Census { .. } => ("HeapCensus", "C"),
            ref ev => (ev.name(), "i"),
        };
        let mut fields = vec![
            ("name", Value::Str(name.to_owned())),
            ("cat", Value::Str(e.event.category().to_owned())),
            ("ph", Value::Str(ph.to_owned())),
            ("ts", int(e.cycle)),
            ("pid", Value::Int(pid)),
            ("tid", Value::Int(TID)),
        ];
        if ph == "i" {
            // Thread-scoped instants draw as small arrows, not full-height
            // lines, keeping dense traces readable.
            fields.push(("s", Value::Str("t".to_owned())));
        }
        fields.push(("seq", int(e.seq)));
        fields.push(("args", args(&e.event)));
        out.push(obj(fields));
    }
}

fn trace_doc(out: Vec<Value>) -> Value {
    obj(vec![
        ("traceEvents", Value::Array(out)),
        ("displayTimeUnit", Value::Str("ms".to_owned())),
        (
            "otherData",
            obj(vec![(
                "clock",
                Value::Str("modeled cycles (1 cycle rendered as 1 us)".to_owned()),
            )]),
        ),
    ])
}

/// Renders `events` (oldest-first) as a Chrome trace-event JSON value.
pub fn chrome_trace(events: &[Stamped]) -> Value {
    let mut out = Vec::with_capacity(events.len() + 2);
    out.push(metadata("process_name", "dchm-vm (modeled)"));
    out.push(metadata("thread_name", "mutator / modeled clock"));
    push_events(&mut out, PID, events);
    trace_doc(out)
}

/// Renders `events` as pretty-printed Chrome trace-event JSON text.
pub fn chrome_trace_json(events: &[Stamped]) -> String {
    serde_json::to_string_pretty(&chrome_trace(events)).expect("trace serialization is infallible")
}

/// Renders a fleet of per-shard event streams (index = shard id) as one
/// Chrome trace: shard `i` becomes process `i + 1` with a
/// `shardN: dchm-vm (modeled)` label, so Perfetto shows one track group
/// per shard on a common timeline. Each shard's stream is exactly what
/// [`chrome_trace`] would render solo — timestamps are the shard's own
/// modeled clock, untouched by the merge.
pub fn fleet_chrome_trace(shards: &[Vec<Stamped>]) -> Value {
    let mut out = Vec::with_capacity(shards.iter().map(|s| s.len() + 2).sum());
    for (shard, events) in shards.iter().enumerate() {
        let pid = shard as i64 + 1;
        let label = crate::fleet::shard_frame(shard);
        out.push(metadata_for(pid, "process_name", &format!("{label}: dchm-vm (modeled)")));
        out.push(metadata_for(pid, "thread_name", "mutator / modeled clock"));
        push_events(&mut out, pid, events);
    }
    trace_doc(out)
}

/// Renders a fleet of per-shard event streams as pretty-printed Chrome
/// trace-event JSON text.
pub fn fleet_chrome_trace_json(shards: &[Vec<Stamped>]) -> String {
    serde_json::to_string_pretty(&fleet_chrome_trace(shards))
        .expect("trace serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Stamped> {
        vec![
            Stamped {
                seq: 0,
                cycle: 10,
                event: TraceEvent::TibFlip { obj: 3, from_tib: 0, to_tib: 5 },
            },
            Stamped { seq: 1, cycle: 20, event: TraceEvent::GcStart { used_bytes: 100 } },
            Stamped {
                seq: 2,
                cycle: 30,
                event: TraceEvent::GcEnd { used_bytes: 40, gc_cycles: 10 },
            },
            Stamped {
                seq: 3,
                cycle: 31,
                event: TraceEvent::GuardFail { method: 2, guard: 0, obj: NO_ID, forced: true },
            },
        ]
    }

    #[test]
    fn trace_shape_matches_chrome_schema() {
        let v = chrome_trace(&sample_events());
        let Value::Object(top) = &v else { panic!("top level must be an object") };
        let (_, events) = top.iter().find(|(k, _)| k == "traceEvents").unwrap();
        let Value::Array(events) = events else { panic!("traceEvents must be an array") };
        // 2 metadata + 4 events.
        assert_eq!(events.len(), 6);
        for e in events {
            let Value::Object(fields) = e else { panic!("event must be an object") };
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(fields.iter().any(|(k, _)| k == key), "missing {key}");
            }
        }
    }

    #[test]
    fn gc_becomes_a_span_and_null_ids_render_null() {
        let json = chrome_trace_json(&sample_events());
        assert!(json.contains("\"ph\": \"B\""));
        assert!(json.contains("\"ph\": \"E\""));
        // The static-guard failure has no receiver object.
        assert!(json.contains("\"obj\": null"));
        // Timestamps are the modeled cycles.
        assert!(json.contains("\"ts\": 31"));
    }

    #[test]
    fn fleet_trace_gives_each_shard_its_own_labelled_process() {
        let shard0 = sample_events();
        let shard1 = vec![Stamped {
            seq: 0,
            cycle: 7,
            event: TraceEvent::Sample { method: 1, count: 1 },
        }];
        let v = fleet_chrome_trace(&[shard0, shard1]);
        let Value::Object(top) = &v else { panic!("top level must be an object") };
        let (_, Value::Array(events)) = top.iter().find(|(k, _)| k == "traceEvents").unwrap()
        else {
            panic!("traceEvents must be an array")
        };
        // (2 metadata + 4 events) + (2 metadata + 1 event).
        assert_eq!(events.len(), 9);
        let pid_of = |e: &Value| -> i64 {
            let Value::Object(f) = e else { unreachable!() };
            let (_, Value::Int(p)) = f.iter().find(|(k, _)| k == "pid").unwrap() else {
                unreachable!()
            };
            *p
        };
        assert!(events[..6].iter().all(|e| pid_of(e) == 1));
        assert!(events[6..].iter().all(|e| pid_of(e) == 2));
        let json = fleet_chrome_trace_json(&[sample_events(), vec![]]);
        assert!(json.contains("shard0: dchm-vm (modeled)"));
        assert!(json.contains("shard1: dchm-vm (modeled)"));
    }

    #[test]
    fn timestamps_monotone_in_export_order() {
        let v = chrome_trace(&sample_events());
        let Value::Object(top) = &v else { unreachable!() };
        let events = match top.iter().find(|(k, _)| k == "traceEvents").unwrap() {
            (_, Value::Array(evs)) => evs,
            _ => unreachable!(),
        };
        let ts: Vec<i64> = events
            .iter()
            .map(|e| {
                let Value::Object(f) = e else { unreachable!() };
                let (_, Value::Int(t)) = f.iter().find(|(k, _)| k == "ts").unwrap() else {
                    unreachable!()
                };
                *t
            })
            .collect();
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }
}
