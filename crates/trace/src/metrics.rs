//! Metrics snapshots: folds a recorded event stream into per-method and
//! per-class histograms — the aggregate view complementing the raw
//! timeline of [`crate::export`].
//!
//! Derived quantities (all in modeled cycles):
//!
//! * **Deopt latency** per method: `GuardFail` → `BaselineResume` distance,
//!   i.e. how long a tripped frame stalled before resuming in baseline
//!   code (the one-time baseline compile on a method's first deopt; ~0
//!   afterwards).
//! * **Time in specialization** per method: `SpecialCompile` → first
//!   subsequent `GuardFail` of the same method (or end of run), the window
//!   a specialized version was live and unbroken.
//! * **State residency** per class: `StateTransition{entered}` →
//!   `StateTransition{left}` distance per object, how long objects
//!   actually stayed in a hot state.
//!
//! Built entirely from the (possibly ring-truncated) event slice; spans
//! whose opening event was overwritten are simply not counted, and
//! [`MetricsSnapshot::events_dropped`] reports how much of the stream was
//! lost.

use crate::{Stamped, TraceEvent};
use serde::Serialize;
use std::collections::BTreeMap;

/// A log2-bucketed histogram of `u64` samples (bucket `i` counts values
/// `v` with `v.ilog2() == i`; bucket 0 also holds `v == 0`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Histogram {
    /// Number of samples recorded.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Log2 bucket counts; index `i` covers `[2^i, 2^(i+1))`. Trailing
    /// empty buckets are not stored.
    pub buckets: Vec<u64>,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        let bucket = if v == 0 { 0 } else { v.ilog2() as usize };
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
    }

    /// Merges `other` into `self`: bucket-wise count addition (shorter
    /// bucket vectors are zero-extended), summed counts/sums, and min/max
    /// that ignore an empty side — `min`/`max` are 0 placeholders on an
    /// empty histogram and must not leak into a non-empty merge.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += *o;
        }
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Per-method metrics derived from the event stream.
#[derive(Clone, Debug, Default, Serialize)]
pub struct MethodMetrics {
    /// The method id.
    pub method: u32,
    /// Special versions compiled for this method.
    pub special_compiles: u64,
    /// General (re)compiles installed for this method.
    pub recompiles: u64,
    /// Guard failures observed.
    pub guard_fails: u64,
    /// Frames deoptimized.
    pub deopts: u64,
    /// `GuardFail` → `BaselineResume` latency, modeled cycles.
    pub deopt_latency: Histogram,
    /// `SpecialCompile` → first subsequent `GuardFail` (or end of run),
    /// modeled cycles.
    pub time_in_special: Histogram,
}

/// Per-class hot-state residency derived from `StateTransition` events.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ClassMetrics {
    /// The class id.
    pub class: u32,
    /// Hot-state entries observed.
    pub entries: u64,
    /// Hot-state exits observed.
    pub exits: u64,
    /// Enter → leave distance per object, modeled cycles. Objects still in
    /// a hot state at end of run are measured to `end_cycle`.
    pub state_residency: Histogram,
}

/// The full snapshot: stream accounting plus the per-method / per-class
/// breakdowns, all deterministically ordered by id.
#[derive(Clone, Debug, Default, Serialize)]
pub struct MetricsSnapshot {
    /// Events available to the fold (post-ring).
    pub events_seen: u64,
    /// Events lost to ring overwriting before the fold.
    pub events_dropped: u64,
    /// Modeled clock at the end of the traced run.
    pub end_cycle: u64,
    /// TIB flips in the stream.
    pub tib_flips: u64,
    /// GC spans in the stream (paired `GcStart`/`GcEnd`).
    pub gcs: u64,
    /// Injected faults in the stream.
    pub faults_injected: u64,
    /// Per-method metrics, ascending method id; methods with no relevant
    /// events are absent.
    pub per_method: Vec<MethodMetrics>,
    /// Per-class metrics, ascending class id.
    pub per_class: Vec<ClassMetrics>,
}

impl MetricsSnapshot {
    /// Folds `events` (oldest-first) into a snapshot. `end_cycle` is the
    /// modeled clock when the run finished; `dropped` the ring's overwrite
    /// count.
    pub fn build(events: &[Stamped], end_cycle: u64, dropped: u64) -> Self {
        let mut snap = MetricsSnapshot {
            events_seen: events.len() as u64,
            events_dropped: dropped,
            end_cycle,
            ..Default::default()
        };
        let mut methods: BTreeMap<u32, MethodMetrics> = BTreeMap::new();
        let mut classes: BTreeMap<u32, ClassMetrics> = BTreeMap::new();
        // Open spans: value is the opening cycle.
        let mut open_guard: BTreeMap<u32, u64> = BTreeMap::new();
        let mut open_special: BTreeMap<u32, u64> = BTreeMap::new();
        let mut open_state: BTreeMap<(u32, u32), u64> = BTreeMap::new();

        for e in events {
            match e.event {
                TraceEvent::TibFlip { .. } => snap.tib_flips += 1,
                TraceEvent::GcEnd { .. } => snap.gcs += 1,
                TraceEvent::FaultInjected { .. } => snap.faults_injected += 1,
                TraceEvent::SpecialCompile { method, .. } => {
                    let m = methods.entry(method).or_default();
                    m.special_compiles += 1;
                    open_special.entry(method).or_insert(e.cycle);
                }
                TraceEvent::Recompile { method, .. } => {
                    methods.entry(method).or_default().recompiles += 1;
                }
                TraceEvent::GuardFail { method, .. } => {
                    let m = methods.entry(method).or_default();
                    m.guard_fails += 1;
                    if let Some(since) = open_special.remove(&method) {
                        m.time_in_special.record(e.cycle - since);
                    }
                    open_guard.insert(method, e.cycle);
                }
                TraceEvent::Deopt { method, .. } => {
                    methods.entry(method).or_default().deopts += 1;
                }
                TraceEvent::BaselineResume { method, .. } => {
                    if let Some(since) = open_guard.remove(&method) {
                        methods
                            .entry(method)
                            .or_default()
                            .deopt_latency
                            .record(e.cycle - since);
                    }
                }
                TraceEvent::StateTransition { obj, class, entered, .. } => {
                    let c = classes.entry(class).or_default();
                    if entered {
                        c.entries += 1;
                        open_state.insert((class, obj), e.cycle);
                    } else {
                        c.exits += 1;
                        if let Some(since) = open_state.remove(&(class, obj)) {
                            c.state_residency.record(e.cycle - since);
                        }
                    }
                }
                _ => {}
            }
        }
        // Spans still open at end of run measure to the final clock.
        for (method, since) in open_special {
            methods
                .entry(method)
                .or_default()
                .time_in_special
                .record(end_cycle - since);
        }
        for ((class, _), since) in open_state {
            classes
                .entry(class)
                .or_default()
                .state_residency
                .record(end_cycle - since);
        }
        snap.per_method = methods
            .into_iter()
            .map(|(id, mut m)| {
                m.method = id;
                m
            })
            .collect();
        snap.per_class = classes
            .into_iter()
            .map(|(id, mut c)| {
                c.class = id;
                c
            })
            .collect();
        snap
    }

    /// Merges per-shard snapshots into one fleet-wide aggregate: stream
    /// accounting and per-method/per-class tallies sum, histograms merge
    /// bucket-wise, and `end_cycle` becomes the fleet *makespan proxy* —
    /// the max over shards, since shard clocks are independent and never
    /// add. Ids stay globally meaningful (every tenant runs the same
    /// program space), so rows merge by id rather than concatenating.
    pub fn merge(shards: &[MetricsSnapshot]) -> Self {
        let mut out = MetricsSnapshot::default();
        let mut methods: BTreeMap<u32, MethodMetrics> = BTreeMap::new();
        let mut classes: BTreeMap<u32, ClassMetrics> = BTreeMap::new();
        for s in shards {
            out.events_seen += s.events_seen;
            out.events_dropped += s.events_dropped;
            out.end_cycle = out.end_cycle.max(s.end_cycle);
            out.tib_flips += s.tib_flips;
            out.gcs += s.gcs;
            out.faults_injected += s.faults_injected;
            for m in &s.per_method {
                let t = methods.entry(m.method).or_default();
                t.method = m.method;
                t.special_compiles += m.special_compiles;
                t.recompiles += m.recompiles;
                t.guard_fails += m.guard_fails;
                t.deopts += m.deopts;
                t.deopt_latency.merge(&m.deopt_latency);
                t.time_in_special.merge(&m.time_in_special);
            }
            for c in &s.per_class {
                let t = classes.entry(c.class).or_default();
                t.class = c.class;
                t.entries += c.entries;
                t.exits += c.exits;
                t.state_residency.merge(&c.state_residency);
            }
        }
        out.per_method = methods.into_values().collect();
        out.per_class = classes.into_values().collect();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NO_ID;

    fn st(seq: u64, cycle: u64, event: TraceEvent) -> Stamped {
        Stamped { seq, cycle, event }
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        assert_eq!(h.sum, 1010);
        // 0 and 1 -> bucket 0; 2,3 -> bucket 1; 4 -> bucket 2; 1000 -> bucket 9.
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[9], 1);
        assert_eq!(h.buckets.len(), 10);
        assert!((h.mean() - 1010.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn deopt_latency_and_time_in_special() {
        let events = vec![
            st(0, 100, TraceEvent::SpecialCompile { method: 7, code: 1, level: 2, size_bytes: 64 }),
            st(1, 500, TraceEvent::GuardFail { method: 7, guard: 0, obj: 3, forced: false }),
            st(2, 650, TraceEvent::Deopt { method: 7, from_code: 1, to_code: 2, obj: 3 }),
            st(3, 650, TraceEvent::BaselineResume { method: 7, code: 2, block: 0, op: 1 }),
        ];
        let snap = MetricsSnapshot::build(&events, 1000, 0);
        assert_eq!(snap.per_method.len(), 1);
        let m = &snap.per_method[0];
        assert_eq!(m.method, 7);
        assert_eq!(m.guard_fails, 1);
        assert_eq!(m.deopts, 1);
        assert_eq!(m.deopt_latency.count, 1);
        assert_eq!(m.deopt_latency.sum, 150);
        assert_eq!(m.time_in_special.sum, 400);
    }

    #[test]
    fn open_spans_measure_to_end_of_run() {
        let events = vec![
            st(0, 100, TraceEvent::SpecialCompile { method: 1, code: 0, level: 2, size_bytes: 8 }),
            st(
                1,
                200,
                TraceEvent::StateTransition { obj: 4, class: 2, entered: true, state: 0 },
            ),
        ];
        let snap = MetricsSnapshot::build(&events, 1000, 5);
        assert_eq!(snap.events_dropped, 5);
        assert_eq!(snap.per_method[0].time_in_special.sum, 900);
        assert_eq!(snap.per_class[0].state_residency.sum, 800);
        assert_eq!(snap.per_class[0].entries, 1);
        assert_eq!(snap.per_class[0].exits, 0);
    }

    #[test]
    fn histogram_merge_handles_empty_sides_and_bucket_widths() {
        // Empty ← non-empty adopts min/max instead of keeping the 0
        // placeholders.
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for v in [8, 1000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!((a.count, a.min, a.max, a.sum), (2, 8, 1000, 1008));
        assert_eq!(a.buckets.len(), b.buckets.len());
        // Non-empty ← empty is a no-op.
        let before = a.clone();
        a.merge(&Histogram::default());
        assert_eq!(a, before);
        // Differing bucket widths: the shorter side zero-extends.
        let mut c = Histogram::default();
        c.record(1);
        a.merge(&c);
        assert_eq!((a.count, a.min, a.max), (3, 1, 1000));
        assert_eq!(a.buckets[0], 1);
        assert_eq!(a.buckets[9], 1);
    }

    #[test]
    fn snapshot_merge_sums_tallies_and_takes_makespan_clock() {
        let shard0 = MetricsSnapshot::build(
            &[
                st(0, 100, TraceEvent::SpecialCompile { method: 7, code: 1, level: 2, size_bytes: 64 }),
                st(1, 500, TraceEvent::GuardFail { method: 7, guard: 0, obj: 3, forced: false }),
                st(2, 650, TraceEvent::BaselineResume { method: 7, code: 2, block: 0, op: 1 }),
            ],
            1000,
            2,
        );
        let shard1 = MetricsSnapshot::build(
            &[
                st(0, 1, TraceEvent::TibFlip { obj: 0, from_tib: 0, to_tib: 1 }),
                st(1, 50, TraceEvent::GuardFail { method: 7, guard: 1, obj: 9, forced: false }),
                st(2, 90, TraceEvent::BaselineResume { method: 7, code: 2, block: 0, op: 0 }),
                st(3, 95, TraceEvent::Recompile { method: 9, code: 3, level: 1, size_bytes: 16 }),
            ],
            4000,
            0,
        );
        let fleet = MetricsSnapshot::merge(&[shard0, shard1]);
        assert_eq!(fleet.events_seen, 7);
        assert_eq!(fleet.events_dropped, 2);
        assert_eq!(fleet.end_cycle, 4000, "fleet clock is the shard max");
        assert_eq!(fleet.tib_flips, 1);
        // Method 7 rows merged by id; method 9 carried over.
        assert_eq!(fleet.per_method.len(), 2);
        let m7 = &fleet.per_method[0];
        assert_eq!(m7.method, 7);
        assert_eq!(m7.guard_fails, 2);
        assert_eq!(m7.deopt_latency.count, 2);
        assert_eq!(m7.deopt_latency.sum, 150 + 40);
        assert_eq!(fleet.per_method[1].method, 9);
        assert_eq!(fleet.per_method[1].recompiles, 1);
    }

    #[test]
    fn snapshot_serializes_to_json() {
        let events = vec![
            st(0, 1, TraceEvent::TibFlip { obj: 0, from_tib: 0, to_tib: 1 }),
            st(1, 2, TraceEvent::FaultInjected { kind: crate::FaultKind::Gc, method: NO_ID }),
        ];
        let snap = MetricsSnapshot::build(&events, 10, 0);
        assert_eq!(snap.tib_flips, 1);
        assert_eq!(snap.faults_injected, 1);
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"tib_flips\":1"));
        assert!(json.contains("\"per_method\":[]"));
    }
}
