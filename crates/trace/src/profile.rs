//! Deterministic cycle-attribution profiler.
//!
//! The profiler answers the question the paper's evaluation keeps asking:
//! which (method × tier/special-level × receiver-state) cells own the
//! modeled cycles? It is a *sampling* profiler driven entirely by the
//! modeled clock — the VM arms a fixed period (`VmConfig::profile_period`)
//! and walks the live frame stack whenever the clock crosses the next
//! multiple of that period, folding each walk into:
//!
//! * **attribution cells** keyed by [`FrameKey`] (self + on-stack sample
//!   tallies), and
//! * **folded stack lines** in Brendan Gregg's `.folded` format
//!   (`frame;frame;frame count`), ready for `flamegraph.pl` or any
//!   flamegraph viewer.
//!
//! Determinism and transparency are the design constraints, in that order:
//!
//! 1. **Deterministic schedule.** Samples fire when the modeled clock
//!    crosses `k × period` for integer `k` — a pure function of the clock
//!    trajectory, with none of the adaptive sampler's jitter. The adaptive
//!    sampler jitters to avoid resonance *because its samples drive
//!    recompilation*; profiler samples drive nothing, so resonance is
//!    harmless and repeatability wins: two runs of the same program and
//!    config produce byte-identical `.folded` output.
//! 2. **Clock-transparent.** Sampling is 0-cycle: the walk reads frames,
//!    code levels and receiver TIBs but never charges the clock, touches
//!    `VmStats`, or perturbs adaptive decisions. Goldens and the fuzz
//!    oracle are bit-identical with profiling on or off.
//!
//! All ids are raw `u32`s so this crate stays independent of the VM's
//! newtypes; the VM resolves method names when exporting.

use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt;

/// Sentinel for "receiver not in a special state": class-TIB receivers,
/// static methods, and interior (non-leaf) frames all carry it.
pub const NO_STATE: u32 = u32::MAX;

/// One modeled stack frame as the profiler keys it: the method, the tier
/// of the code the frame is executing, and — on leaf frames of instance
/// methods only — the receiver's special-state index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameKey {
    /// Method id.
    pub method: u32,
    /// Optimization level of the code the frame executes.
    pub level: u8,
    /// True when that code is a state-specialized version.
    pub special: bool,
    /// Receiver's special-state index, or [`NO_STATE`].
    pub state: u32,
}

impl FrameKey {
    /// Renders the frame as a `.folded` stack-frame label:
    /// `Name#o2` (general tier-2 code), `Name#s2@1` (special tier-2 code,
    /// receiver in state 1). `;` and whitespace in `name` are replaced so
    /// the folded line stays parseable.
    pub fn label(&self, name: &str) -> String {
        let clean: String = name
            .chars()
            .map(|c| if c == ';' || c.is_whitespace() { '_' } else { c })
            .collect();
        let kind = if self.special { 's' } else { 'o' };
        if self.state == NO_STATE {
            format!("{clean}#{kind}{}", self.level)
        } else {
            format!("{clean}#{kind}{}@{}", self.level, self.state)
        }
    }
}

/// Per-cell sample tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CellStats {
    /// Samples with this cell on top of the stack.
    pub self_samples: u64,
    /// Samples with this cell anywhere on the stack (each on-stack
    /// occurrence counts, so recursion weighs a frame by its depth).
    pub total_samples: u64,
}

/// The profiler accumulator. Owned by the VM next to its `Tracer`;
/// all state is host-side only and deterministically ordered.
#[derive(Debug, Default)]
pub struct Profiler {
    period: u64,
    samples: u64,
    cells: BTreeMap<FrameKey, CellStats>,
    stacks: BTreeMap<Vec<FrameKey>, u64>,
}

impl Profiler {
    /// A profiler sampling every `period` modeled cycles (0 = disabled).
    pub fn new(period: u64) -> Self {
        Profiler { period, ..Profiler::default() }
    }

    /// The sampling period in modeled cycles (0 when disabled).
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Whether sampling is armed.
    pub fn enabled(&self) -> bool {
        self.period != 0
    }

    /// Total samples folded in so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Folds one stack walk (outermost frame first) into the cell table
    /// and the folded-stack map. Empty walks (sample fired between
    /// frames) are ignored.
    pub fn record(&mut self, stack: &[FrameKey]) {
        let Some((leaf, rest)) = stack.split_last() else {
            return;
        };
        self.samples += 1;
        *self.stacks.entry(stack.to_vec()).or_insert(0) += 1;
        let cell = self.cells.entry(*leaf).or_default();
        cell.self_samples += 1;
        cell.total_samples += 1;
        for f in rest {
            self.cells.entry(*f).or_default().total_samples += 1;
        }
    }

    /// The raw attribution cells, ascending key order.
    pub fn cells(&self) -> impl Iterator<Item = (&FrameKey, &CellStats)> {
        self.cells.iter()
    }

    /// Renders the folded-stack map as `.folded` text: one
    /// `frame;frame;frame count` line per distinct stack, in
    /// deterministic (key-ordered) line order. `resolve` maps a method id
    /// to its display name.
    pub fn folded(&self, mut resolve: impl FnMut(u32) -> String) -> String {
        let mut out = String::new();
        for (stack, count) in &self.stacks {
            let labels: Vec<String> =
                stack.iter().map(|f| f.label(&resolve(f.method))).collect();
            out.push_str(&labels.join(";"));
            out.push(' ');
            out.push_str(&count.to_string());
            out.push('\n');
        }
        out
    }

    /// Builds the exportable cell table, sorted by descending self
    /// samples (ties broken by key order so the output is stable).
    pub fn snapshot(&self, mut resolve: impl FnMut(u32) -> String) -> ProfileSnapshot {
        let mut cells: Vec<ProfileCell> = self
            .cells
            .iter()
            .map(|(k, c)| ProfileCell {
                name: resolve(k.method),
                method: k.method,
                level: k.level as u32,
                special: k.special,
                state: (k.state != NO_STATE).then_some(k.state),
                self_samples: c.self_samples,
                total_samples: c.total_samples,
                est_cycles: c.self_samples * self.period,
            })
            .collect();
        cells.sort_by(|a, b| {
            b.self_samples
                .cmp(&a.self_samples)
                .then(a.method.cmp(&b.method))
                .then(a.level.cmp(&b.level))
                .then(a.state.cmp(&b.state))
        });
        ProfileSnapshot { period: self.period, samples: self.samples, cells }
    }
}

/// One attribution cell of the exported profile.
#[derive(Clone, Debug, Serialize)]
pub struct ProfileCell {
    /// Display name of the method (`Class::method`).
    pub name: String,
    /// Method id.
    pub method: u32,
    /// Optimization level of the sampled code.
    pub level: u32,
    /// True when the sampled code is a state-specialized version.
    pub special: bool,
    /// Receiver's special-state index, when it had one.
    pub state: Option<u32>,
    /// Samples with this cell on top of the stack.
    pub self_samples: u64,
    /// Samples with this cell anywhere on the stack.
    pub total_samples: u64,
    /// Estimated exec cycles attributed to the cell:
    /// `self_samples × period`.
    pub est_cycles: u64,
}

impl ProfileCell {
    /// The cell's `.folded` leaf label (same encoding as
    /// [`FrameKey::label`]).
    pub fn label(&self) -> String {
        FrameKey {
            method: self.method,
            level: self.level as u8,
            special: self.special,
            state: self.state.unwrap_or(NO_STATE),
        }
        .label(&self.name)
    }
}

/// The exported profile: sampling parameters plus the ranked cell table.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ProfileSnapshot {
    /// Sampling period in modeled cycles.
    pub period: u64,
    /// Total samples taken.
    pub samples: u64,
    /// Attribution cells, descending self samples.
    pub cells: Vec<ProfileCell>,
}

impl ProfileSnapshot {
    /// The top `k` cells by self samples.
    pub fn top(&self, k: usize) -> &[ProfileCell] {
        &self.cells[..self.cells.len().min(k)]
    }
}

impl fmt::Display for ProfileSnapshot {
    /// A stable table: one summary line, then up to ten
    /// `self total cycles cell` rows, ranked by self samples.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "profile: {} samples @ period {} ({} cells)",
            self.samples,
            self.period,
            self.cells.len()
        )?;
        writeln!(f, "  {:>8}  {:>8}  {:>12}  cell", "self", "total", "est_cycles")?;
        for c in self.top(10) {
            writeln!(
                f,
                "  {:>8}  {:>8}  {:>12}  {}",
                c.self_samples,
                c.total_samples,
                c.est_cycles,
                c.label()
            )?;
        }
        Ok(())
    }
}

/// Parses `.folded` text back into `(stack-line, count)` pairs, skipping
/// blank/malformed lines — the inspection side of [`Profiler::folded`].
pub fn parse_folded(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .filter_map(|l| {
            let (stack, count) = l.rsplit_once(' ')?;
            let count = count.parse().ok()?;
            (!stack.is_empty()).then(|| (stack.to_owned(), count))
        })
        .collect()
}

/// Aggregates `.folded` text into leaf cells: the last frame of each
/// stack line mapped to its total self samples, deterministically
/// ordered. This is the cell view `dchm-inspect` diffs.
pub fn folded_leaf_cells(text: &str) -> BTreeMap<String, u64> {
    let mut cells = BTreeMap::new();
    for (stack, count) in parse_folded(text) {
        let leaf = stack.rsplit(';').next().unwrap_or(&stack).to_owned();
        *cells.entry(leaf).or_insert(0) += count;
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(method: u32, level: u8, special: bool, state: u32) -> FrameKey {
        FrameKey { method, level, special, state }
    }

    #[test]
    fn records_fold_into_cells_and_stacks() {
        let mut p = Profiler::new(100);
        assert!(p.enabled());
        let main = key(0, 0, false, NO_STATE);
        let hot = key(1, 2, true, 3);
        p.record(&[main, hot]);
        p.record(&[main, hot]);
        p.record(&[main]);
        p.record(&[]); // ignored
        assert_eq!(p.samples(), 3);

        let snap = p.snapshot(|m| format!("m{m}"));
        assert_eq!(snap.samples, 3);
        // hot leads: 2 self samples vs main's 1.
        assert_eq!(snap.cells[0].method, 1);
        assert_eq!(snap.cells[0].self_samples, 2);
        assert_eq!(snap.cells[0].est_cycles, 200);
        assert_eq!(snap.cells[0].state, Some(3));
        assert_eq!(snap.cells[1].method, 0);
        assert_eq!(snap.cells[1].self_samples, 1);
        assert_eq!(snap.cells[1].total_samples, 3);
    }

    #[test]
    fn folded_roundtrips_and_labels_encode_tier_and_state() {
        let mut p = Profiler::new(10);
        let main = key(0, 0, false, NO_STATE);
        let hot = key(1, 2, true, 1);
        p.record(&[main, hot]);
        p.record(&[main, hot]);
        p.record(&[main]);
        let text = p.folded(|m| if m == 0 { "A::main".into() } else { "B::go".into() });
        assert_eq!(text, "A::main#o0 1\nA::main#o0;B::go#s2@1 2\n");

        let cells = folded_leaf_cells(&text);
        assert_eq!(cells.get("B::go#s2@1"), Some(&2));
        assert_eq!(cells.get("A::main#o0"), Some(&1));
        assert_eq!(parse_folded(&text).len(), 2);
    }

    #[test]
    fn labels_sanitize_separators() {
        let k = key(0, 1, false, NO_STATE);
        assert_eq!(k.label("a b;c"), "a_b_c#o1");
    }

    #[test]
    fn display_is_stable_and_bounded() {
        let mut p = Profiler::new(10);
        for m in 0..20u32 {
            p.record(&[key(m, 0, false, NO_STATE)]);
        }
        let text = p.snapshot(|m| format!("m{m}")).to_string();
        // 1 summary + 1 header + 10 rows.
        assert_eq!(text.lines().count(), 12);
        assert!(text.starts_with("profile: 20 samples @ period 10 (20 cells)"));
    }

    #[test]
    fn serializes_to_json() {
        let mut p = Profiler::new(10);
        p.record(&[key(7, 1, false, NO_STATE)]);
        let json = serde_json::to_string(&p.snapshot(|_| "x".into())).unwrap();
        assert!(json.contains("\"period\":10"));
        assert!(json.contains("\"self_samples\":1"));
        assert!(json.contains("\"state\":null"));
    }
}
