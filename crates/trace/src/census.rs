//! Heap & state census: where every live byte sits, and how long objects
//! stay in each special state.
//!
//! The census complements [`crate::metrics`]: metrics fold the *event
//! stream* (what happened), the census walks the *live heap* (what is).
//! A walk produces a [`CensusSnapshot`] — live-object counts and bytes
//! per class and per TIB (class TIBs and special-state TIBs separately) —
//! and the VM pairs it with a [`ResidencyTracker`] that measures TIB-flip
//! residency: the modeled-cycle distance between an object entering a
//! special state and leaving it, folded into the same log2
//! [`Histogram`] shape metrics use.
//!
//! Census data is host-side only. The walk never charges the modeled
//! clock, and the residency tracker is updated unconditionally at every
//! TIB flip (it must not be gated on tracing, or the census would change
//! shape when a tracer attaches). Conservation is structural: the walk
//! visits exactly the unswept heap cells, so its byte total equals the
//! heap's `used_bytes` at the same tick, floating garbage included.

use crate::metrics::Histogram;
use serde::Serialize;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Live objects and bytes of one class (all its TIBs pooled).
#[derive(Clone, Debug, Default, Serialize)]
pub struct ClassCensus {
    /// Class id.
    pub class: u32,
    /// Class display name.
    pub name: String,
    /// Live (unswept) instances.
    pub objects: u64,
    /// Bytes those instances occupy.
    pub bytes: u64,
}

/// Live objects and bytes of one TIB.
#[derive(Clone, Debug, Default, Serialize)]
pub struct TibCensus {
    /// TIB id.
    pub tib: u32,
    /// Class the TIB describes.
    pub class: u32,
    /// Special-state index for special TIBs, `None` for class TIBs.
    pub state: Option<u32>,
    /// Live (unswept) instances pointing at this TIB.
    pub objects: u64,
    /// Bytes those instances occupy.
    pub bytes: u64,
}

/// Residency of one (class, special-state) pair: how long objects sat in
/// the state before flipping out, log2-bucketed in modeled cycles.
#[derive(Clone, Debug, Default, Serialize)]
pub struct StateResidency {
    /// Class id.
    pub class: u32,
    /// Special-state index.
    pub state: u32,
    /// Completed stays (exit flips observed).
    pub exits: u64,
    /// Stay lengths in modeled cycles; stays still open at snapshot time
    /// are measured to the snapshot cycle.
    pub residency: Histogram,
}

/// One census walk: heap occupancy by class and TIB, plus state
/// residency, stamped with the modeled clock.
#[derive(Clone, Debug, Default, Serialize)]
pub struct CensusSnapshot {
    /// Modeled clock when the walk ran.
    pub at_cycle: u64,
    /// Unswept heap objects (arrays excluded).
    pub live_objects: u64,
    /// Unswept arrays.
    pub live_arrays: u64,
    /// Bytes held by unswept objects.
    pub object_bytes: u64,
    /// Bytes held by unswept arrays.
    pub array_bytes: u64,
    /// The heap's own `used_bytes` at the same tick — always equals
    /// `object_bytes + array_bytes` (conservation).
    pub heap_used_bytes: u64,
    /// Objects currently in a special-state TIB.
    pub in_special_state: u64,
    /// Per-class occupancy, ascending class id.
    pub per_class: Vec<ClassCensus>,
    /// Per-TIB occupancy, ascending TIB id.
    pub per_tib: Vec<TibCensus>,
    /// Per-(class, state) residency, ascending ids.
    pub residency: Vec<StateResidency>,
}

impl CensusSnapshot {
    /// Total bytes the walk saw.
    pub fn total_bytes(&self) -> u64 {
        self.object_bytes + self.array_bytes
    }
}

impl fmt::Display for CensusSnapshot {
    /// A stable table: one summary line, a per-class section (descending
    /// bytes, top ten), and a residency section.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "census @ cycle {}: {} objects + {} arrays, {} bytes ({} in special state)",
            self.at_cycle,
            self.live_objects,
            self.live_arrays,
            self.total_bytes(),
            self.in_special_state
        )?;
        let mut by_bytes: Vec<&ClassCensus> = self.per_class.iter().collect();
        by_bytes.sort_by(|a, b| b.bytes.cmp(&a.bytes).then(a.class.cmp(&b.class)));
        for c in by_bytes.iter().take(10) {
            writeln!(f, "  class {:<24} {:>8} objects {:>10} bytes", c.name, c.objects, c.bytes)?;
        }
        for r in &self.residency {
            writeln!(
                f,
                "  state c{}/s{}: {} exits, residency mean {:.0} cy (max {})",
                r.class,
                r.state,
                r.exits,
                r.residency.mean(),
                r.residency.max
            )?;
        }
        Ok(())
    }
}

/// Tracks how long each object has been in its current special state.
/// Owned by the VM and updated at every TIB flip, tracing on or off.
#[derive(Debug, Default)]
pub struct ResidencyTracker {
    /// Object → (cycle it entered its current special state, class,
    /// state index). Objects in a class TIB have no entry.
    open: HashMap<u32, (u64, u32, u32)>,
    /// (class, state) → completed stays.
    closed: BTreeMap<(u32, u32), (u64, Histogram)>,
}

impl ResidencyTracker {
    /// Records a TIB flip of `obj` (of `class`) at modeled `cycle`:
    /// leaving `from_state` closes the open stay, entering `to_state`
    /// opens one. Class-TIB ↔ class-TIB flips are no-ops.
    pub fn on_flip(
        &mut self,
        obj: u32,
        class: u32,
        from_state: Option<u32>,
        to_state: Option<u32>,
        cycle: u64,
    ) {
        if let Some(s) = from_state {
            if let Some((since, c, _)) = self.open.remove(&obj) {
                let e = self.closed.entry((c, s)).or_default();
                e.0 += 1;
                e.1.record(cycle - since);
            }
        }
        if let Some(s) = to_state {
            self.open.insert(obj, (cycle, class, s));
        }
    }

    /// Drops open stays of objects the GC just swept, so a recycled
    /// object id cannot inherit a dead object's entry cycle.
    pub fn prune(&mut self, mut live: impl FnMut(u32) -> bool) {
        self.open.retain(|&o, _| live(o));
    }

    /// Objects currently tracked as in a special state.
    pub fn open_stays(&self) -> usize {
        self.open.len()
    }

    /// The residency table at modeled `at_cycle`: completed stays plus
    /// open stays measured to `at_cycle`. Deterministic — the fold lands
    /// in a key-ordered map and histogram recording is order-insensitive.
    pub fn snapshot(&self, at_cycle: u64) -> Vec<StateResidency> {
        let mut all = self.closed.clone();
        for &(since, class, state) in self.open.values() {
            all.entry((class, state))
                .or_default()
                .1
                .record(at_cycle.saturating_sub(since));
        }
        all.into_iter()
            .map(|((class, state), (exits, residency))| StateResidency {
                class,
                state,
                exits,
                residency,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_cycle_closes_and_reopens_stays() {
        let mut t = ResidencyTracker::default();
        t.on_flip(5, 1, None, Some(0), 100); // enter state 0
        t.on_flip(5, 1, Some(0), None, 350); // leave
        t.on_flip(5, 1, None, Some(0), 400); // re-enter
        let r = t.snapshot(1000);
        assert_eq!(r.len(), 1);
        assert_eq!((r[0].class, r[0].state), (1, 0));
        assert_eq!(r[0].exits, 1);
        // One closed 250-cycle stay, one open stay measured to 1000.
        assert_eq!(r[0].residency.count, 2);
        assert_eq!(r[0].residency.sum, 250 + 600);
        assert_eq!(t.open_stays(), 1);
        // Snapshotting did not consume the closed record.
        assert_eq!(t.snapshot(1000)[0].residency.sum, 850);
    }

    #[test]
    fn prune_drops_dead_objects_only() {
        let mut t = ResidencyTracker::default();
        t.on_flip(1, 0, None, Some(0), 10);
        t.on_flip(2, 0, None, Some(0), 20);
        t.prune(|o| o == 2);
        assert_eq!(t.open_stays(), 1);
        // The dead object's stay never closes into the histogram: its exit
        // flip after the prune is a no-op.
        t.on_flip(1, 0, Some(0), None, 100);
        let r = t.snapshot(100);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].exits, 0);
        // Only the survivor's open stay (80 cycles) is measured.
        assert_eq!(r[0].residency.count, 1);
        assert_eq!(r[0].residency.sum, 80);
    }

    #[test]
    fn snapshot_display_is_stable() {
        let mut t = ResidencyTracker::default();
        t.on_flip(7, 2, None, Some(1), 0);
        t.on_flip(7, 2, Some(1), None, 64);
        let snap = CensusSnapshot {
            at_cycle: 100,
            live_objects: 3,
            live_arrays: 1,
            object_bytes: 72,
            array_bytes: 24,
            heap_used_bytes: 96,
            in_special_state: 0,
            per_class: vec![ClassCensus { class: 2, name: "Acct".into(), objects: 3, bytes: 72 }],
            per_tib: vec![],
            residency: t.snapshot(100),
        };
        assert_eq!(snap.total_bytes(), snap.heap_used_bytes);
        let text = snap.to_string();
        assert!(text.starts_with("census @ cycle 100: 3 objects + 1 arrays, 96 bytes"));
        assert!(text.contains("class Acct"));
        assert!(text.contains("state c2/s1: 1 exits"));
        let json = serde_json::to_string(&snap).unwrap();
        assert!(json.contains("\"heap_used_bytes\":96"));
        assert!(json.contains("\"residency\""));
    }
}
