//! Fleet-side trace aggregation: each shard of a `dchm-vm` fleet keeps
//! its own ring, profiler and metrics — all bit-identical to its solo
//! twin — and the aggregator merges those per-shard views *after* the
//! runs, so aggregation can never perturb a shard's modeled state.
//!
//! Three merged views exist:
//!
//! * [`crate::metrics::MetricsSnapshot::merge`] — tallies sum, histograms
//!   add bucket-wise, the fleet clock is the shard max.
//! * [`merge_folded`] — per-shard `.folded` profiles concatenate under a
//!   `shardN;` root frame, so a flamegraph of the fleet shows one subtree
//!   per shard while leaf attribution (the last frame) is untouched.
//! * [`crate::export::fleet_chrome_trace`] — per-shard Perfetto tracks,
//!   one process per shard with shard-prefixed labels.

/// The root frame prefixed to shard `i`'s stacks: `shard3`.
pub fn shard_frame(shard: usize) -> String {
    format!("shard{shard}")
}

/// Prefixes every stack of one `.folded` profile with the shard's root
/// frame. Empty profiles (profiling off, or no samples) stay empty.
pub fn prefix_folded(shard: usize, folded: &str) -> String {
    let frame = shard_frame(shard);
    let mut out = String::with_capacity(folded.len() + folded.lines().count() * (frame.len() + 1));
    for line in folded.lines() {
        if line.is_empty() {
            continue;
        }
        out.push_str(&frame);
        out.push(';');
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// Merges per-shard `.folded` profiles (index = shard id) into one
/// fleet-wide profile: each shard's stacks appear under its
/// [`shard_frame`] root. Line order is shard order then the shard's own
/// deterministic order, so the merge is reproducible.
pub fn merge_folded(folded: &[String]) -> String {
    let mut out = String::new();
    for (shard, f) in folded.iter().enumerate() {
        out.push_str(&prefix_folded(shard, f));
    }
    out
}

/// Splits a fleet-merged stack back into `(shard, solo stack)`. Returns
/// `None` for stacks without a `shardN;` root — i.e. solo profiles pass
/// through consumers unchanged.
pub fn split_shard(stack: &str) -> Option<(usize, &str)> {
    let (head, rest) = stack.split_once(';')?;
    let digits = head.strip_prefix("shard")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    Some((digits.parse().ok()?, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_profiles_nest_under_shard_roots() {
        let shards = vec![
            "main;hot 10\nmain;cold 2\n".to_string(),
            String::new(),
            "main;hot 7\n".to_string(),
        ];
        let merged = merge_folded(&shards);
        assert_eq!(
            merged,
            "shard0;main;hot 10\nshard0;main;cold 2\nshard2;main;hot 7\n"
        );
        // Round-trip: every merged line splits back to its shard + stack.
        for line in merged.lines() {
            let (stack, _count) = line.rsplit_once(' ').unwrap();
            let (shard, solo) = split_shard(stack).unwrap();
            assert!(shard == 0 || shard == 2);
            assert!(solo.starts_with("main;"));
        }
    }

    #[test]
    fn merge_is_deterministic_and_leaf_frames_survive() {
        let shards = vec!["a;b 1\n".to_string(), "a;b 1\n".to_string()];
        assert_eq!(merge_folded(&shards), merge_folded(&shards));
        // The leaf frame (what leaf-ranking consumers key on) is the solo
        // leaf, not the shard root.
        let merged = merge_folded(&shards);
        for line in merged.lines() {
            let (stack, _) = line.rsplit_once(' ').unwrap();
            assert_eq!(stack.rsplit(';').next(), Some("b"));
        }
    }

    #[test]
    fn split_rejects_solo_and_malformed_stacks() {
        assert_eq!(split_shard("main;hot"), None);
        assert_eq!(split_shard("shard;x"), None);
        assert_eq!(split_shard("shardX;x"), None);
        assert_eq!(split_shard("shard12"), None); // no solo stack follows
        assert_eq!(split_shard("shard12;m;n"), Some((12, "m;n")));
    }
}
