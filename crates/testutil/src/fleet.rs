//! Fleet-run glue for the differential suites and benchmarks: a
//! self-contained job description (workload + prepared pipeline + VM
//! config + optional fault injection), a full-fidelity per-tenant report,
//! and runners that execute a job list solo or inside a
//! [`dchm_vm::fleet`] shard pool with an optional shared artifact cache.
//!
//! The report deliberately captures *every* observable the bit-identity
//! contract covers — output fingerprint, full stats, the `.folded`
//! profile — plus the host-side shared-cache counters the contract
//! excludes, so suites can assert both halves: modeled state identical,
//! host work actually elided.

use crate::{observe, Obs};
use dchm_core::pipeline::Prepared;
use dchm_vm::fleet::{run_fleet, FleetConfig};
use dchm_vm::{FaultConfig, FaultInjector, SharedCodeCache, Vm, VmConfig, VmStats};
use dchm_workloads::Workload;
use std::sync::Arc;

/// One tenant job: everything a shard needs to build and run a VM.
/// `Send + Sync` plain data — the VM itself is constructed on the shard's
/// thread (VMs hold `Rc`s and never cross threads).
#[derive(Clone, Debug)]
pub struct FleetJob {
    /// Display name (workload name, possibly suffixed by the replica id).
    pub name: String,
    /// The workload driving the run.
    pub workload: Workload,
    /// The offline pipeline products (shareable across replicas).
    pub prepared: Arc<Prepared>,
    /// Tenant VM configuration.
    pub config: VmConfig,
    /// Deterministic fault injection for this tenant, if any.
    pub fault: Option<FaultConfig>,
}

impl FleetJob {
    /// The standard harness job for a workload: offline pipeline under
    /// [`crate::harness_config`], mutation on, no faults.
    pub fn for_workload(w: &Workload) -> Self {
        let prepared = Arc::new(crate::prepare_workload(w));
        FleetJob {
            name: w.name.to_string(),
            workload: w.clone(),
            prepared,
            config: crate::harness_config(w),
            fault: None,
        }
    }
}

/// The complete modeled + host observables of one finished tenant run.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Modeled fingerprint (output, checksum, clock, cycle split, ops).
    pub obs: Obs,
    /// Full VM statistics (compared with `==`: `VmStats` is `PartialEq`).
    pub stats: VmStats,
    /// The `.folded` cycle-attribution profile (empty when profiling off).
    pub folded: String,
    /// Host wall nanoseconds this tenant spent inside compiler pipelines.
    pub compile_wall_nanos: u64,
    /// Shared-cache probes answered with an artifact (0 outside a fleet).
    pub shared_hits: u64,
    /// Shared-cache probes that fell through to this tenant's compiler.
    pub shared_misses: u64,
}

impl JobReport {
    /// Extracts the report from a finished VM.
    pub fn of(vm: &Vm) -> Self {
        JobReport {
            obs: observe(vm),
            stats: vm.stats().clone(),
            folded: vm.profile_folded(),
            compile_wall_nanos: vm.state.compile_wall_nanos,
            shared_hits: vm.state.shared_hits,
            shared_misses: vm.state.shared_misses,
        }
    }

    /// The bit-identity projection: everything a shard must reproduce from
    /// its solo twin. Host-side wall/shared counters are excluded — they
    /// are exactly what sharding is allowed to change.
    pub fn modeled(&self) -> (&Obs, &VmStats, &str) {
        (&self.obs, &self.stats, &self.folded)
    }
}

/// Builds and runs one tenant VM for `job`, attaching `shared` when given.
///
/// # Panics
/// Panics if the run traps — fleet jobs are built from the catalog and
/// must not trap.
pub fn run_job(job: &FleetJob, shared: Option<&Arc<SharedCodeCache>>) -> JobReport {
    let mut vm = match shared {
        Some(sc) => job.prepared.make_vm_shared(job.config.clone(), sc),
        None => job.prepared.make_vm(job.config.clone()),
    };
    if let Some(f) = job.fault {
        vm.state.injector = Some(FaultInjector::new(f));
    }
    job.workload
        .run(&mut vm)
        .unwrap_or_else(|e| panic!("fleet job {} must not trap: {e:?}", job.name));
    JobReport::of(&vm)
}

/// Runs every job inside a fleet of `cfg.workers` shards, each tenant VM
/// built on its shard's thread, all probing `shared` when given. Returns
/// reports in job order.
pub fn run_jobs_fleet(
    cfg: &FleetConfig,
    jobs: &[FleetJob],
    shared: Option<&Arc<SharedCodeCache>>,
) -> Vec<JobReport> {
    run_fleet(cfg, jobs, |_ctx, job| run_job(job, shared)).results
}
