#![warn(missing_docs)]

//! # dchm-testutil
//!
//! Shared plumbing for the differential test suites and the conformance
//! fuzzer. `crates/vm/tests/{deopt,fault_injection,codecache,trace}.rs`
//! each used to carry a private copy of the same observable-fingerprint
//! struct, harness VM cadence and prepared-pipeline boilerplate; they and
//! the `dchm-fuzz` driver now share this one, so a harness fix (or a new
//! observable) lands in every differential check at once.
//!
//! The central contract is [`Obs`]: the complete modeled fingerprint of a
//! finished run. Two runs that must be "bit-identical" in the paper's
//! sense compare equal here — output text, checksum, the modeled clock and
//! its execution/GC split, and the op count.

pub mod fleet;

use dchm_bytecode::{CmpOp, ElemKind, MethodSig, Program, ProgramBuilder, Ty, Value};
use dchm_core::pipeline::{prepare, PipelineConfig, Prepared};
use dchm_core::{HotState, MutableClass, MutationEngine, MutationPlan, OlcReport};
use dchm_vm::{Vm, VmConfig};
use dchm_workloads::{catalog, Scale, Workload};

/// Observable fingerprint of one finished run.
///
/// Equality is the strongest comparison the suites use: output text,
/// checksum, the full modeled clock, its execution and GC components, and
/// the executed-op count. Suites that may only compare *output* (e.g.
/// forced-guard-failure runs, which legitimately re-bill execution)
/// compare the [`Obs::text`]/[`Obs::checksum`] fields directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Obs {
    /// The VM output log.
    pub text: String,
    /// The VM output checksum (sink intrinsics fold into this).
    pub checksum: u64,
    /// Total modeled cycles (execution + compile + GC).
    pub clock: u64,
    /// Application execution cycles.
    pub exec_cycles: u64,
    /// Collector cycles.
    pub gc_cycles: u64,
    /// Executed bytecode ops.
    pub ops: u64,
}

/// Extracts the fingerprint of a finished run.
pub fn observe(vm: &Vm) -> Obs {
    let s = vm.stats();
    Obs {
        text: vm.state.output.text.clone(),
        checksum: vm.state.output.checksum,
        clock: vm.cycles(),
        exec_cycles: s.exec_cycles,
        gc_cycles: s.gc_cycles,
        ops: s.ops_executed,
    }
}

/// The determinism-harness VM cadence: sampling fast enough that
/// small-scale workloads reach opt2 early, like the paper's warm-up.
pub fn harness_config(w: &Workload) -> VmConfig {
    let mut c = w.vm_config();
    c.sample_period = 15_000;
    c.opt1_samples = 3;
    c.opt2_samples = 8;
    c
}

/// [`harness_config`] with the heap enlarged so organic GC never runs —
/// the fault-injection suites need injected GCs to be the only collector
/// activity, or billing comparisons would drown in cadence shifts.
pub fn big_heap_config(w: &Workload) -> VmConfig {
    let mut c = harness_config(w);
    c.heap_bytes = 512 << 20;
    c
}

/// Looks up a small-scale workload from the Table 1 catalog by name.
///
/// # Panics
/// Panics if no such workload exists — a typo in a test, not a runtime
/// condition.
pub fn find_workload(name: &str) -> Workload {
    catalog(Scale::Small)
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload {name} not in catalog"))
}

/// Runs the offline pipeline (profile → analyze → plan) for `w` under an
/// explicit profiling VM config.
///
/// # Panics
/// Panics if the profiling run traps.
pub fn prepare_with(w: &Workload, profile_vm: VmConfig) -> Prepared {
    let cfg = PipelineConfig {
        profile_vm,
        ..Default::default()
    };
    let wl = w.clone();
    prepare(w.program.clone(), &cfg, move |vm| {
        wl.run(vm).expect("profiling run must not trap");
    })
}

/// [`prepare_with`] under the standard [`harness_config`] cadence.
pub fn prepare_workload(w: &Workload) -> Prepared {
    prepare_with(w, harness_config(w))
}

/// A VM with `plan` attached via a fresh [`MutationEngine`] (empty OLC
/// report) — the hand-built-plan pattern of the deopt suite and the fuzz
/// oracle, which synthesize plans instead of profiling for them.
pub fn attach_plan(p: &Program, plan: MutationPlan, cfg: VmConfig) -> Vm {
    MutationEngine::new(plan, OlcReport::default()).attach(p.clone(), cfg)
}

/// Attaches `plan` and runs the program entry to completion.
///
/// # Panics
/// Panics if the run traps; use [`attach_plan`] + `run_entry` when a trap
/// is an expected outcome.
pub fn run_with_plan(p: &Program, plan: MutationPlan, cfg: VmConfig) -> Vm {
    let mut vm = attach_plan(p, plan, cfg);
    vm.run_entry().expect("run must not trap");
    vm
}

/// The deopt-storm scenario of the resilience suites: SalaryDB's Fig. 2
/// shape (a 4-way `grade` branch ladder in `raise()`) with one hostile
/// twist — `raise()` re-stores `grade` with its own current value on every
/// call. The store is semantically a no-op, but it re-arms the mutation
/// engine: after a (forced) guard failure deoptimizes the frame and resets
/// the object's TIB, the store's patch point flips the object straight back
/// onto its special TIB, so under `FaultConfig::guard_failures` at period 1
/// every single `raise()` call deopts — a sustained storm the resilience
/// governor must damp and an ungoverned VM grinds through forever.
///
/// `raise()` also carries a block of dead integer arithmetic: pure ops
/// whose results are never used, which `dce` removes at opt1+ but the
/// level-0 baseline executes in full. That is the storm's price under
/// tiering — every deoptimized call finishes in padded baseline code,
/// while a site the governor pins to general code runs the slim optimized
/// version (once the adaptive system has promoted `raise`; see
/// [`storm_config`]). Under a sustained storm the ungoverned VM is stuck
/// at the baseline tier forever.
///
/// Returns the program plus a hand-written plan (grades 0–3 as the four hot
/// states of `raise`, specialization at opt0, guards on) so the scenario
/// needs no profiling run and is bit-reproducible.
pub fn storm_salarydb(employees: i64, iters: i64) -> (Program, MutationPlan) {
    let mut pb = ProgramBuilder::new();
    let sal = pb.class("SalaryEmployee").build();
    let grade = pb.instance_field(sal, "grade", Ty::Int);
    let salary = pb.instance_field(sal, "salary", Ty::Double);

    let mut m = pb.ctor(sal, vec![Ty::Int]);
    let this = m.this();
    let g = m.param(0);
    m.put_field(this, grade, g);
    m.ret(None);
    m.build();

    // raise(): the paper's branch ladder, then the hostile self-store.
    let mut m = pb.method(sal, "raise", MethodSig::void());
    let this = m.this();
    let g = m.reg();
    m.get_field(g, this, grade);
    let s = m.reg();
    m.get_field(s, this, salary);
    let l1 = m.label();
    let l2 = m.label();
    let l3 = m.label();
    let done = m.label();
    m.br_icmp_imm(CmpOp::Ne, g, 0, l1);
    let k = m.imm_d(1.0);
    m.dadd(s, s, k);
    m.jmp(done);
    m.bind(l1);
    m.br_icmp_imm(CmpOp::Ne, g, 1, l2);
    let k = m.imm_d(2.0);
    m.dadd(s, s, k);
    m.jmp(done);
    m.bind(l2);
    m.br_icmp_imm(CmpOp::Ne, g, 2, l3);
    let k = m.imm_d(1.01);
    m.dmul(s, s, k);
    m.jmp(done);
    m.bind(l3);
    let k = m.imm_d(1.02);
    m.dmul(s, s, k);
    m.bind(done);
    // Dead pure arithmetic: 40 multiplies whose results are never used.
    // `dce` strips the whole chain at opt1+, the baseline executes it —
    // the modeled (and host) cost of being deoptimized to the slow tier.
    let three = m.imm(3);
    let mut pad = m.reg();
    m.imul(pad, three, three);
    for _ in 0..39 {
        let next = m.reg();
        m.imul(next, pad, three);
        pad = next;
    }
    m.put_field(this, salary, s);
    // The no-op state re-store that keeps the storm alive.
    m.put_field(this, grade, g);
    m.ret(None);
    let raise = m.build();

    let mut m = pb.static_method(sal, "main", MethodSig::void());
    let n = m.imm(employees);
    let arr = m.reg();
    m.new_arr(arr, ElemKind::Ref, n);
    let i = m.reg();
    m.const_i(i, 0);
    let fill_head = m.label();
    let fill_done = m.label();
    m.bind(fill_head);
    m.br_icmp(CmpOp::Ge, i, n, fill_done);
    let four = m.imm(4);
    let g = m.reg();
    m.irem(g, i, four);
    let o = m.reg();
    m.new_obj(o, sal);
    m.call_ctor(o, sal, vec![g]);
    m.astore(arr, i, o);
    m.iadd_imm(i, i, 1);
    m.jmp(fill_head);
    m.bind(fill_done);

    let it = m.reg();
    m.const_i(it, 0);
    let ohead = m.label();
    let odone = m.label();
    m.bind(ohead);
    let lim = m.imm(iters);
    m.br_icmp(CmpOp::Ge, it, lim, odone);
    let j = m.reg();
    m.const_i(j, 0);
    let ihead = m.label();
    let idone = m.label();
    m.bind(ihead);
    m.br_icmp(CmpOp::Ge, j, n, idone);
    let o = m.reg();
    m.aload(o, arr, j);
    m.call_virtual(None, o, "raise", vec![]);
    m.iadd_imm(j, j, 1);
    m.jmp(ihead);
    m.bind(idone);
    m.iadd_imm(it, it, 1);
    m.jmp(ohead);
    m.bind(odone);

    let j = m.reg();
    m.const_i(j, 0);
    let shead = m.label();
    let sdone = m.label();
    m.bind(shead);
    m.br_icmp(CmpOp::Ge, j, n, sdone);
    let o = m.reg();
    m.aload(o, arr, j);
    let sv = m.reg();
    m.get_field(sv, o, salary);
    m.sink_double(sv);
    m.iadd_imm(j, j, 1);
    m.jmp(shead);
    m.bind(sdone);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);
    let program = pb.finish().expect("storm SalaryDB verifies");

    let plan = MutationPlan {
        classes: vec![MutableClass {
            class: sal,
            instance_state_fields: vec![grade],
            static_state_fields: vec![],
            hot_states: (0..4)
                .map(|v| HotState {
                    instance_values: vec![(grade, Value::Int(v))],
                    static_values: vec![],
                    frequency: 0.25,
                })
                .collect(),
            mutable_methods: vec![raise],
            field_scores: vec![],
        }],
        // Specialize at opt0 so special code exists from the first compile
        // — the storm needs no adaptive warm-up.
        mutation_level: 0,
        k: 0,
        emit_guards: true,
    };
    (program, plan)
}

/// The storm-bench VM cadence: sampling aggressive enough that `raise` is
/// promoted to opt2 within the first few percent of a [`storm_salarydb`]
/// run. The storm's tier gap (padded baseline vs slim opt2 general code)
/// only opens once the method is promoted; before that, both the governed
/// and ungoverned runs storm between identical level-0 versions.
pub fn storm_config() -> VmConfig {
    VmConfig {
        sample_period: 2_000,
        opt1_samples: 2,
        opt2_samples: 4,
        ..Default::default()
    }
}

/// Renders the tail of a traced run's event stream — the post-mortem
/// attached to differential mismatches.
pub fn trace_tail(vm: &Vm, n: usize) -> String {
    use std::fmt::Write as _;
    let tail = vm.state.tracer.last(n);
    let mut out = String::new();
    let _ = writeln!(out, "--- last {} trace events before divergence ---", tail.len());
    for ev in &tail {
        let _ = writeln!(out, "  seq {:>6}  cycle {:>10}  {:?}", ev.seq, ev.cycle, ev.event);
    }
    if vm.state.tracer.dropped() > 0 {
        let _ = writeln!(out, "  ({} older events overwritten)", vm.state.tracer.dropped());
    }
    out
}

/// Dumps the traced event tail, the heap & state census and the top
/// profile cells to stderr, then panics with `msg`.
pub fn fail_with_trace(vm: &Vm, msg: String) -> ! {
    eprint!("{}", trace_tail(vm, 50));
    eprintln!("{}", vm.state.census());
    if vm.state.profiler.enabled() {
        eprintln!("{}", vm.profile());
    }
    panic!("{msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_roundtrip_on_a_workload() {
        let w = find_workload("SalaryDB");
        let prepared = prepare_workload(&w);
        let mut vm = prepared.make_vm(harness_config(&w));
        w.run(&mut vm).expect("run");
        let a = observe(&vm);
        assert!(a.clock > 0 && a.ops > 0);
        assert_eq!(a.clock, vm.cycles());
        // Deterministic VM: a second identical run fingerprints equally.
        let mut vm2 = prepared.make_vm(harness_config(&w));
        w.run(&mut vm2).expect("run");
        assert_eq!(a, observe(&vm2));
    }

    #[test]
    fn big_heap_config_only_grows_the_heap() {
        let w = find_workload("SimLogic");
        let a = harness_config(&w);
        let b = big_heap_config(&w);
        assert_eq!(b.sample_period, a.sample_period);
        assert!(b.heap_bytes >= a.heap_bytes);
    }

    #[test]
    #[should_panic(expected = "not in catalog")]
    fn unknown_workload_panics() {
        let _ = find_workload("NoSuchWorkload");
    }
}
