#![warn(missing_docs)]

//! # dchm-testutil
//!
//! Shared plumbing for the differential test suites and the conformance
//! fuzzer. `crates/vm/tests/{deopt,fault_injection,codecache,trace}.rs`
//! each used to carry a private copy of the same observable-fingerprint
//! struct, harness VM cadence and prepared-pipeline boilerplate; they and
//! the `dchm-fuzz` driver now share this one, so a harness fix (or a new
//! observable) lands in every differential check at once.
//!
//! The central contract is [`Obs`]: the complete modeled fingerprint of a
//! finished run. Two runs that must be "bit-identical" in the paper's
//! sense compare equal here — output text, checksum, the modeled clock and
//! its execution/GC split, and the op count.

use dchm_bytecode::Program;
use dchm_core::pipeline::{prepare, PipelineConfig, Prepared};
use dchm_core::{MutationEngine, MutationPlan, OlcReport};
use dchm_vm::{Vm, VmConfig};
use dchm_workloads::{catalog, Scale, Workload};

/// Observable fingerprint of one finished run.
///
/// Equality is the strongest comparison the suites use: output text,
/// checksum, the full modeled clock, its execution and GC components, and
/// the executed-op count. Suites that may only compare *output* (e.g.
/// forced-guard-failure runs, which legitimately re-bill execution)
/// compare the [`Obs::text`]/[`Obs::checksum`] fields directly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Obs {
    /// The VM output log.
    pub text: String,
    /// The VM output checksum (sink intrinsics fold into this).
    pub checksum: u64,
    /// Total modeled cycles (execution + compile + GC).
    pub clock: u64,
    /// Application execution cycles.
    pub exec_cycles: u64,
    /// Collector cycles.
    pub gc_cycles: u64,
    /// Executed bytecode ops.
    pub ops: u64,
}

/// Extracts the fingerprint of a finished run.
pub fn observe(vm: &Vm) -> Obs {
    let s = vm.stats();
    Obs {
        text: vm.state.output.text.clone(),
        checksum: vm.state.output.checksum,
        clock: vm.cycles(),
        exec_cycles: s.exec_cycles,
        gc_cycles: s.gc_cycles,
        ops: s.ops_executed,
    }
}

/// The determinism-harness VM cadence: sampling fast enough that
/// small-scale workloads reach opt2 early, like the paper's warm-up.
pub fn harness_config(w: &Workload) -> VmConfig {
    let mut c = w.vm_config();
    c.sample_period = 15_000;
    c.opt1_samples = 3;
    c.opt2_samples = 8;
    c
}

/// [`harness_config`] with the heap enlarged so organic GC never runs —
/// the fault-injection suites need injected GCs to be the only collector
/// activity, or billing comparisons would drown in cadence shifts.
pub fn big_heap_config(w: &Workload) -> VmConfig {
    let mut c = harness_config(w);
    c.heap_bytes = 512 << 20;
    c
}

/// Looks up a small-scale workload from the Table 1 catalog by name.
///
/// # Panics
/// Panics if no such workload exists — a typo in a test, not a runtime
/// condition.
pub fn find_workload(name: &str) -> Workload {
    catalog(Scale::Small)
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("workload {name} not in catalog"))
}

/// Runs the offline pipeline (profile → analyze → plan) for `w` under an
/// explicit profiling VM config.
///
/// # Panics
/// Panics if the profiling run traps.
pub fn prepare_with(w: &Workload, profile_vm: VmConfig) -> Prepared {
    let cfg = PipelineConfig {
        profile_vm,
        ..Default::default()
    };
    let wl = w.clone();
    prepare(w.program.clone(), &cfg, move |vm| {
        wl.run(vm).expect("profiling run must not trap");
    })
}

/// [`prepare_with`] under the standard [`harness_config`] cadence.
pub fn prepare_workload(w: &Workload) -> Prepared {
    prepare_with(w, harness_config(w))
}

/// A VM with `plan` attached via a fresh [`MutationEngine`] (empty OLC
/// report) — the hand-built-plan pattern of the deopt suite and the fuzz
/// oracle, which synthesize plans instead of profiling for them.
pub fn attach_plan(p: &Program, plan: MutationPlan, cfg: VmConfig) -> Vm {
    MutationEngine::new(plan, OlcReport::default()).attach(p.clone(), cfg)
}

/// Attaches `plan` and runs the program entry to completion.
///
/// # Panics
/// Panics if the run traps; use [`attach_plan`] + `run_entry` when a trap
/// is an expected outcome.
pub fn run_with_plan(p: &Program, plan: MutationPlan, cfg: VmConfig) -> Vm {
    let mut vm = attach_plan(p, plan, cfg);
    vm.run_entry().expect("run must not trap");
    vm
}

/// Renders the tail of a traced run's event stream — the post-mortem
/// attached to differential mismatches.
pub fn trace_tail(vm: &Vm, n: usize) -> String {
    use std::fmt::Write as _;
    let tail = vm.state.tracer.last(n);
    let mut out = String::new();
    let _ = writeln!(out, "--- last {} trace events before divergence ---", tail.len());
    for ev in &tail {
        let _ = writeln!(out, "  seq {:>6}  cycle {:>10}  {:?}", ev.seq, ev.cycle, ev.event);
    }
    if vm.state.tracer.dropped() > 0 {
        let _ = writeln!(out, "  ({} older events overwritten)", vm.state.tracer.dropped());
    }
    out
}

/// Dumps the traced event tail to stderr, then panics with `msg`.
pub fn fail_with_trace(vm: &Vm, msg: String) -> ! {
    eprint!("{}", trace_tail(vm, 50));
    panic!("{msg}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_roundtrip_on_a_workload() {
        let w = find_workload("SalaryDB");
        let prepared = prepare_workload(&w);
        let mut vm = prepared.make_vm(harness_config(&w));
        w.run(&mut vm).expect("run");
        let a = observe(&vm);
        assert!(a.clock > 0 && a.ops > 0);
        assert_eq!(a.clock, vm.cycles());
        // Deterministic VM: a second identical run fingerprints equally.
        let mut vm2 = prepared.make_vm(harness_config(&w));
        w.run(&mut vm2).expect("run");
        assert_eq!(a, observe(&vm2));
    }

    #[test]
    fn big_heap_config_only_grows_the_heap() {
        let w = find_workload("SimLogic");
        let a = harness_config(&w);
        let b = big_heap_config(&w);
        assert_eq!(b.sample_period, a.sample_period);
        assert!(b.heap_bytes >= a.heap_bytes);
    }

    #[test]
    #[should_panic(expected = "not in catalog")]
    fn unknown_workload_panics() {
        let _ = find_workload("NoSuchWorkload");
    }
}
