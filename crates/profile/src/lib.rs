#![warn(missing_docs)]

//! # dchm-profile
//!
//! The offline profiling pipeline of the paper's Figure 3:
//!
//! 1. **Hot-method profiling** ([`hot`]) — the stand-in for Intel VTune:
//!    run the program once with mutation off and record per-method call
//!    frequencies and cycle shares.
//! 2. **Field-value sampling** ([`values`]) — the paper's augmented Jikes
//!    RVM: watch candidate state fields and histogram the values written to
//!    them, from which hot states are derived.
//!
//! Both profilers are deterministic (the VM's clock is a cycle model), so a
//! profiling run and a measured run see identical behaviour.

pub mod hot;
pub mod values;

pub use hot::{profile_hot_methods, HotMethodReport};
pub use values::{profile_field_values, ValueHistogram, ValueProfiler, ValueReport};
