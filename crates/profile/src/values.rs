//! State-field value sampling.
//!
//! The paper augments Jikes to record "the possible values for each field
//! and the distribution of the values of a field over time" (Sec. 3.1).
//! Here an observer watches candidate state fields and histograms every
//! value stored to them; hot states fall out of the histograms.

use dchm_bytecode::{ClassId, FieldId, Program, Value};
use dchm_vm::{Vm, VmConfig, VmObserver};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// A hashable key for observed values (doubles keyed by bit pattern).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ValueKey {
    /// Integer value.
    Int(i64),
    /// Double, by bits.
    Double(u64),
    /// Null reference.
    Null,
}

impl ValueKey {
    /// Keys a runtime value. Object references are all collapsed to `Null`
    /// (reference identity is never a specializable constant).
    pub fn of(v: Value) -> ValueKey {
        match v {
            Value::Int(i) => ValueKey::Int(i),
            Value::Double(d) => ValueKey::Double(d.to_bits()),
            Value::Ref(_) | Value::Null => ValueKey::Null,
        }
    }

    /// Back to a [`Value`].
    pub fn to_value(self) -> Value {
        match self {
            ValueKey::Int(i) => Value::Int(i),
            ValueKey::Double(b) => Value::Double(f64::from_bits(b)),
            ValueKey::Null => Value::Null,
        }
    }
}

/// Histogram of values stored to one field.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ValueHistogram {
    /// Value -> store count.
    pub counts: HashMap<ValueKey, u64>,
    /// Total stores observed.
    pub total: u64,
}

impl ValueHistogram {
    fn record(&mut self, v: Value) {
        self.add(v, 1);
    }

    /// Adds `count` observations of `v` (used by heap-census seeding in the
    /// online pipeline).
    pub fn add(&mut self, v: Value, count: u64) {
        *self.counts.entry(ValueKey::of(v)).or_insert(0) += count;
        self.total += count;
    }

    /// Values sorted by frequency (descending), with relative frequency.
    pub fn ranked(&self) -> Vec<(Value, f64)> {
        let mut v: Vec<(ValueKey, u64)> = self.counts.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| format!("{:?}", a.0).cmp(&format!("{:?}", b.0))));
        v.into_iter()
            .map(|(k, c)| (k.to_value(), c as f64 / self.total.max(1) as f64))
            .collect()
    }
}

/// The value-sampling report.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ValueReport {
    /// Per-field histograms.
    pub fields: HashMap<FieldId, ValueHistogram>,
    /// Instance-store counts per (class, field): which exact classes
    /// actually carried the stores.
    pub by_class: HashMap<(ClassId, FieldId), u64>,
}

impl ValueReport {
    /// Histogram of one field (empty if never stored).
    pub fn histogram(&self, f: FieldId) -> ValueHistogram {
        self.fields.get(&f).cloned().unwrap_or_default()
    }

    /// Records an observation of an instance field on `class` (heap census).
    pub fn add_instance(&mut self, class: ClassId, field: FieldId, value: Value, count: u64) {
        self.fields.entry(field).or_default().add(value, count);
        *self.by_class.entry((class, field)).or_insert(0) += count;
    }

    /// Records an observation of a static field (heap census).
    pub fn add_static(&mut self, field: FieldId, value: Value, count: u64) {
        self.fields.entry(field).or_default().add(value, count);
    }
}

/// The observer; shares its store so the report survives the VM.
#[derive(Clone, Debug)]
pub struct ValueProfiler {
    watch: HashSet<FieldId>,
    store: Rc<RefCell<ValueReport>>,
}

impl ValueProfiler {
    /// Creates a profiler watching `fields`.
    pub fn new(fields: impl IntoIterator<Item = FieldId>) -> Self {
        ValueProfiler {
            watch: fields.into_iter().collect(),
            store: Rc::new(RefCell::new(ValueReport::default())),
        }
    }

    /// Snapshot of the collected report.
    pub fn report(&self) -> ValueReport {
        self.store.borrow().clone()
    }
}

impl VmObserver for ValueProfiler {
    fn watched_fields(&self) -> HashSet<FieldId> {
        self.watch.clone()
    }

    fn on_instance_store(&mut self, class: ClassId, field: FieldId, value: Value) {
        let mut s = self.store.borrow_mut();
        s.fields.entry(field).or_default().record(value);
        *s.by_class.entry((class, field)).or_insert(0) += 1;
    }

    fn on_static_store(&mut self, field: FieldId, value: Value) {
        self.store
            .borrow_mut()
            .fields
            .entry(field)
            .or_default()
            .record(value);
    }
}

/// Runs `driver` with a value profiler attached and returns the report.
pub fn profile_field_values(
    program: Program,
    config: VmConfig,
    fields: impl IntoIterator<Item = FieldId>,
    driver: impl FnOnce(&mut Vm),
) -> ValueReport {
    let profiler = ValueProfiler::new(fields);
    let report_handle = profiler.clone();
    let mut vm = Vm::new(program, config);
    vm.attach_observer(Box::new(profiler));
    driver(&mut vm);
    report_handle.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty};

    #[test]
    fn histogram_finds_dominant_value() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let f = pb.instance_field(c, "grade", Ty::Int);
        pb.trivial_ctor(c);
        let mut m = pb.method(c, "setg", MethodSig::new(vec![Ty::Int], None));
        let this = m.this();
        let v = m.param(0);
        m.put_field(this, f, v);
        m.ret(None);
        m.build();
        let mut m = pb.static_method(c, "main", MethodSig::void());
        let o = m.reg();
        m.new_init(o, c, vec![]);
        let i = m.reg();
        m.const_i(i, 0);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        let lim = m.imm(100);
        m.br_icmp(CmpOp::Ge, i, lim, done);
        // 90% of stores write 2, 10% write i % 7.
        let ten = m.imm(10);
        let rem = m.reg();
        m.irem(rem, i, ten);
        let in_minority = m.label();
        let after = m.label();
        let zero = m.imm(0);
        m.br_icmp(CmpOp::Eq, rem, zero, in_minority);
        let two = m.imm(2);
        m.call_virtual(None, o, "setg", vec![two]);
        m.jmp(after);
        m.bind(in_minority);
        let seven = m.imm(7);
        let odd = m.reg();
        m.irem(odd, i, seven);
        m.call_virtual(None, o, "setg", vec![odd]);
        m.bind(after);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(done);
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        let p = pb.finish().unwrap();

        let report = profile_field_values(p, VmConfig::default(), [f], |vm| {
            vm.run_entry().unwrap();
        });
        let hist = report.histogram(f);
        assert_eq!(hist.total, 100);
        let ranked = hist.ranked();
        assert_eq!(ranked[0].0, Value::Int(2));
        assert!(ranked[0].1 >= 0.9);
        // Class attribution recorded.
        assert_eq!(report.by_class.get(&(c, f)), Some(&100));
    }

    #[test]
    fn value_key_roundtrip() {
        for v in [Value::Int(-3), Value::Double(2.5), Value::Null] {
            assert!(ValueKey::of(v).to_value().key_eq(v));
        }
        // NaN keys stably.
        let k1 = ValueKey::of(Value::Double(f64::NAN));
        let k2 = ValueKey::of(Value::Double(f64::NAN));
        assert_eq!(k1, k2);
    }

    #[test]
    fn unwatched_fields_not_recorded() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let f = pb.static_field(c, "s", Ty::Int, 0i64.into());
        let g = pb.static_field(c, "t", Ty::Int, 0i64.into());
        let mut m = pb.static_method(c, "main", MethodSig::void());
        let v = m.imm(5);
        m.put_static(f, v);
        m.put_static(g, v);
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        let report = profile_field_values(p, VmConfig::default(), [f], |vm| {
            vm.run_entry().unwrap();
        });
        assert_eq!(report.histogram(f).total, 1);
        assert_eq!(report.histogram(g).total, 0);
    }
}
