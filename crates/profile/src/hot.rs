//! Hot-method profiling — the reproduction's Intel VTune.

use dchm_bytecode::{MethodId, Program};
use dchm_vm::{Vm, VmConfig};

/// Per-method hotness derived from a profiling run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HotMethodReport {
    /// `hotness[m]` = fraction of application cycles spent in method `m`
    /// (self time), in `[0, 1]`.
    pub hotness: Vec<f64>,
    /// Raw self-cycles per method.
    pub cycles: Vec<u64>,
    /// Invocation counts per method.
    pub invocations: Vec<u64>,
    /// Total application cycles of the profiling run.
    pub total_cycles: u64,
}

impl HotMethodReport {
    /// Hotness of one method.
    pub fn hotness_of(&self, m: MethodId) -> f64 {
        self.hotness.get(m.index()).copied().unwrap_or(0.0)
    }

    /// The `n` hottest methods, hottest first.
    pub fn top(&self, n: usize) -> Vec<MethodId> {
        let mut ids: Vec<MethodId> = (0..self.hotness.len()).map(MethodId::from_index).collect();
        ids.sort_by(|a, b| {
            self.hotness[b.index()]
                .partial_cmp(&self.hotness[a.index()])
                .unwrap()
                .then(a.cmp(b))
        });
        ids.truncate(n);
        ids
    }

    /// Extracts the report from a finished VM.
    pub fn from_vm(vm: &Vm) -> Self {
        let stats = vm.stats();
        let total: u64 = stats.per_method.iter().map(|p| p.cycles).sum();
        let cycles: Vec<u64> = stats.per_method.iter().map(|p| p.cycles).collect();
        let invocations: Vec<u64> = stats.per_method.iter().map(|p| p.invocations).collect();
        let hotness = cycles
            .iter()
            .map(|&c| {
                if total == 0 {
                    0.0
                } else {
                    c as f64 / total as f64
                }
            })
            .collect();
        HotMethodReport {
            hotness,
            cycles,
            invocations,
            total_cycles: total,
        }
    }
}

/// Runs `driver` on a fresh mutation-off VM and reports method hotness.
///
/// The driver receives the VM and runs the workload (usually
/// `vm.run_entry()` or a sequence of `call_static`s).
pub fn profile_hot_methods(
    program: Program,
    config: VmConfig,
    driver: impl FnOnce(&mut Vm),
) -> HotMethodReport {
    let mut vm = Vm::new(program, config);
    driver(&mut vm);
    HotMethodReport::from_vm(&vm)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty};

    #[test]
    fn hot_loop_method_dominates() {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        // cold(): one add. hot(): 10_000 adds.
        let mut m = pb.static_method(c, "cold", MethodSig::new(vec![], Some(Ty::Int)));
        let r = m.imm(1);
        m.ret(Some(r));
        let cold = m.build();
        let mut m = pb.static_method(c, "hot", MethodSig::new(vec![], Some(Ty::Int)));
        let i = m.reg();
        m.const_i(i, 0);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        let lim = m.imm(10_000);
        m.br_icmp(CmpOp::Ge, i, lim, done);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(done);
        m.ret(Some(i));
        let hot = m.build();
        let mut m = pb.static_method(c, "main", MethodSig::void());
        let a = m.reg();
        m.call_static(Some(a), cold, vec![]);
        m.call_static(Some(a), hot, vec![]);
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        let p = pb.finish().unwrap();

        let report = profile_hot_methods(p, VmConfig::default(), |vm| {
            vm.run_entry().unwrap();
        });
        assert_eq!(report.top(1), vec![hot]);
        assert!(report.hotness_of(hot) > 0.9);
        assert!(report.hotness_of(cold) < 0.01);
        assert_eq!(report.invocations[hot.index()], 1);
        let sum: f64 = report.hotness.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
