//! The `dchm-fuzz` CLI: drive seed ranges through the configuration
//! lattice, shrink and persist any divergence, and (re)generate the
//! checked-in corpus.
//!
//! ```text
//! dchm-fuzz [--seeds A..B] [--budget-secs N] [--out DIR] [--break-guards]
//! dchm-fuzz --write-corpus [DIR]
//! ```
//!
//! Exit status 0 means every seed conformed; 1 means a divergence was
//! found, minimized, and written to the out directory as JSON.

use dchm_fuzz::{check_spec, corpus_specs, generate, lattice, minimize, tampered, Spec};
use serde::Serialize;
use std::time::Instant;

/// A minimized divergence, as persisted to `--out`.
#[derive(Serialize)]
struct Repro {
    seed: u64,
    kind: String,
    config_a: String,
    config_b: String,
    detail: String,
    spec: Spec,
}

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_range(s: &str) -> Option<(u64, u64)> {
    let (a, b) = s.split_once("..")?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    if args.iter().any(|a| a == "--write-corpus") {
        let dir = flag_value(&args, "--write-corpus")
            .filter(|v| !v.starts_with("--"))
            .unwrap_or_else(|| format!("{}/corpus", env!("CARGO_MANIFEST_DIR")));
        std::fs::create_dir_all(&dir).expect("create corpus dir");
        for (name, spec) in corpus_specs() {
            let path = format!("{dir}/{name}.json");
            let json = serde_json::to_string_pretty(&spec).expect("serialize spec");
            std::fs::write(&path, json + "\n").expect("write corpus spec");
            println!("wrote {path}");
        }
        return;
    }

    let (lo, hi) = flag_value(&args, "--seeds")
        .as_deref()
        .map(|s| parse_range(s).unwrap_or_else(|| panic!("bad --seeds range: {s}")))
        .unwrap_or((0, 50));
    let budget_secs: Option<u64> = flag_value(&args, "--budget-secs").map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("bad --budget-secs: {v}"))
    });
    let out_dir = flag_value(&args, "--out").unwrap_or_else(|| "fuzz-repros".into());
    let break_guards = args.iter().any(|a| a == "--break-guards");

    let mut configs = lattice();
    if break_guards {
        // The deliberate bug: one mutation-on config silently loses its
        // guards while staying in the strict comparison groups.
        configs = tampered(&configs, "adaptive-mut");
        eprintln!("break-guards: guard emission disabled on `adaptive-mut`");
    }
    eprintln!(
        "fuzzing seeds {lo}..{hi} across {} configs{}",
        configs.len(),
        budget_secs
            .map(|b| format!(", budget {b}s"))
            .unwrap_or_default()
    );

    let start = Instant::now();
    let mut ran = 0u64;
    for seed in lo..hi {
        if let Some(b) = budget_secs {
            if start.elapsed().as_secs() >= b {
                eprintln!("budget exhausted after {ran} seeds");
                break;
            }
        }
        let spec = generate(seed);
        if let Some(d) = check_spec(&spec, &configs) {
            eprintln!(
                "seed {seed}: {} divergence between {} and {} — shrinking",
                d.kind, d.config_a, d.config_b
            );
            let min = minimize(&spec, &configs, d.kind);
            let d = check_spec(&min, &configs).expect("minimized spec still diverges");
            let repro = Repro {
                seed,
                kind: d.kind.to_string(),
                config_a: d.config_a.clone(),
                config_b: d.config_b.clone(),
                detail: d.detail.clone(),
                spec: min,
            };
            std::fs::create_dir_all(&out_dir).expect("create out dir");
            let path = format!("{out_dir}/seed-{seed}.json");
            std::fs::write(
                &path,
                serde_json::to_string_pretty(&repro).expect("serialize repro") + "\n",
            )
            .expect("write repro");
            eprintln!("minimized repro written to {path}");
            eprintln!("{}", d.detail);
            std::process::exit(1);
        }
        ran += 1;
        if ran.is_multiple_of(25) {
            let rate = ran as f64 / start.elapsed().as_secs_f64();
            eprintln!("  {ran} seeds, {rate:.1} programs/sec");
        }
    }
    let rate = ran as f64 / start.elapsed().as_secs_f64().max(1e-9);
    println!(
        "{ran} seeds, 0 divergences, {:.1} programs/sec across {} configs",
        rate,
        configs.len()
    );
}
