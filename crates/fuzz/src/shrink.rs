//! Deterministic greedy shrinker: given a spec whose lattice run diverges,
//! find a smaller spec that still diverges.
//!
//! Candidates are proposed coarse-to-fine — fewer iterations, then whole
//! actions, then whole groups (classes), then per-group trimmings (drop the
//! subclass, the interface, the static state, a field, the self-flip) —
//! and each accepted candidate restarts the pass, so the result is a local
//! fixpoint: no single remaining simplification preserves the divergence.
//! Every candidate re-lowers through the strict builder; anything that
//! fails to lower (impossible by construction, but the check is free) is
//! simply skipped.

use crate::gen::{Action, Spec};

/// All one-step simplifications of `spec`, coarsest first.
pub fn candidates(spec: &Spec) -> Vec<Spec> {
    let mut out = Vec::new();
    let mut push = |s: Spec| {
        if s != *spec {
            out.push(s);
        }
    };

    if spec.iters > 1 {
        push(Spec {
            iters: 1,
            ..spec.clone()
        });
        push(Spec {
            iters: spec.iters / 2,
            ..spec.clone()
        });
    }

    for i in 0..spec.actions.len() {
        let mut s = spec.clone();
        s.actions.remove(i);
        push(s);
    }

    for g in 0..spec.groups.len() {
        let mut s = spec.clone();
        s.groups.remove(g);
        push(s);
    }

    for (g, gs) in spec.groups.iter().enumerate() {
        if gs.has_subclass {
            let mut s = spec.clone();
            s.groups[g].has_subclass = false;
            push(s);
        }
        if gs.has_interface {
            let mut s = spec.clone();
            s.groups[g].has_interface = false;
            push(s);
        }
        if gs.static_state.is_some() {
            let mut s = spec.clone();
            s.groups[g].static_state = None;
            push(s);
        }
        if gs.work_self_flip {
            let mut s = spec.clone();
            s.groups[g].work_self_flip = false;
            push(s);
        }
        for f in 0..gs.fields.len() {
            if gs.fields.len() > 1 {
                let mut s = spec.clone();
                s.groups[g].fields.remove(f);
                push(s);
            }
        }
    }

    for (i, a) in spec.actions.iter().enumerate() {
        if let Action::AllocBurst { group, count } = a {
            if *count > 1 {
                let mut s = spec.clone();
                s.actions[i] = Action::AllocBurst {
                    group: *group,
                    count: 1,
                };
                push(s);
            }
        }
    }

    out
}

/// Greedily shrinks `spec` while `still` (re-lower, re-plan, re-run the
/// relevant configs) keeps returning true for the candidate.
pub fn shrink(spec: &Spec, still: &mut dyn FnMut(&Spec) -> bool) -> Spec {
    let mut cur = spec.clone();
    'fixpoint: loop {
        for cand in candidates(&cur) {
            if still(&cand) {
                cur = cand;
                continue 'fixpoint;
            }
        }
        return cur;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FieldSpec, GroupSpec};

    #[test]
    fn candidates_are_strictly_simpler_or_equal_size() {
        let spec = generate(3);
        for c in candidates(&spec) {
            assert_ne!(c, spec);
            assert!(
                c.iters < spec.iters
                    || c.actions.len() <= spec.actions.len()
                    || c.groups.len() < spec.groups.len()
            );
        }
    }

    #[test]
    fn shrink_reaches_a_fixpoint_under_a_size_predicate() {
        // A predicate that only cares about one structural feature: the
        // shrinker must strip everything else away.
        let spec = (0..100)
            .map(generate)
            .find(|s| s.groups.iter().any(|g| g.work_self_flip))
            .expect("some early seed has a self-flipping group");
        let min = shrink(&spec, &mut |s: &Spec| {
            s.groups.iter().any(|g| g.work_self_flip)
        });
        assert!(min.groups.iter().any(|g| g.work_self_flip));
        assert_eq!(min.groups.len(), 1);
        assert!(min.actions.is_empty());
        assert_eq!(min.iters, 1);
        // Fixpoint: no remaining one-step simplification satisfies the
        // predicate (the only candidates left drop the flipping group).
        for c in candidates(&min) {
            assert!(!c.groups.iter().any(|g| g.work_self_flip));
        }
    }

    #[test]
    fn shrinking_a_storm_preserves_the_flip_loop() {
        // Shrink the checked-in two-class storm under "still wakes the
        // governor": the minimizer may drop a class and the redundant
        // explicit flips, but the storm engine itself — a self-flipping
        // `work` driven by a call action, looped enough to trip the
        // throttle threshold — must survive.
        let (_, spec) = crate::corpus_specs()
            .into_iter()
            .find(|(n, _)| *n == "two-class-storm")
            .expect("corpus has the storm case");
        let cfgs = crate::lattice();
        let gov = cfgs.iter().find(|c| c.name == "adaptive-mut").unwrap();
        let storms = |s: &Spec| {
            crate::compile_spec(s)
                .map(|(p, plan)| crate::run_config(&p, &plan, gov).specials_throttled > 0)
                .unwrap_or(false)
        };
        assert!(storms(&spec), "the corpus case must storm to begin with");
        let min = shrink(&spec, &mut |s: &Spec| storms(s));
        assert!(storms(&min));
        assert_eq!(min.groups.len(), 1);
        assert!(min.groups[0].work_self_flip);
        assert!(min
            .actions
            .iter()
            .any(|a| matches!(a, Action::CallWork { .. })));
        assert!(min.iters > 1, "one lap cannot trip the throttle threshold");
    }

    #[test]
    fn fully_minimal_specs_produce_no_self_candidates() {
        let tiny = Spec {
            groups: vec![GroupSpec {
                fields: vec![FieldSpec { hot: 0, alt: 1 }],
                has_interface: false,
                has_subclass: false,
                static_state: None,
                work_self_flip: false,
            }],
            actions: vec![],
            iters: 1,
        };
        // Only the group-removal candidate remains.
        let cands = candidates(&tiny);
        assert_eq!(cands.len(), 1);
        assert!(cands[0].groups.is_empty());
    }
}
