//! The multi-config differential oracle: run one program + plan through
//! every lattice entry and compare fingerprints at the strictness each
//! pairing is entitled to (see [`crate::lattice`]).

use crate::lattice::{ConfigSpec, Fault, FleetMode};
use dchm_core::MutationPlan;
use dchm_testutil::{attach_plan, observe, Obs};
use dchm_vm::fleet::{run_fleet, FleetConfig};
use dchm_vm::{FaultConfig, FaultInjector, SharedCodeCache, VmConfig};
use std::sync::Arc;

/// Heap for configs that should collect during allocation bursts: sized so
/// a few hundred burst objects (header + 8 bytes per field) exhaust it and
/// collections land mid-flip, while the live set (a handful of driver
/// objects) stays tiny.
const SMALL_HEAP: usize = 32 << 10;
/// Heap for fault-injection configs: organic GC never fires, so injected
/// (free) GCs are the only collector activity.
const BIG_HEAP: usize = 512 << 20;
/// Safety net against generator bugs; generated programs execute a few
/// hundred thousand ops, nowhere near this.
const FUEL: u64 = 20_000_000;

/// Full fingerprint of one lattice run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzObs {
    /// `Debug` rendering of the `run_entry` result (value or trap).
    pub result: String,
    /// Output + modeled-clock fingerprint.
    pub obs: Obs,
    /// Object TIB-pointer flips performed by the mutation engine.
    pub tib_flips: u64,
    /// Special TIBs created.
    pub special_tibs: u64,
    /// State-guard failures observed.
    pub guard_failures: u64,
    /// Frames deoptimized onto baseline code.
    pub deopts: u64,
    /// Deopt-storm throttle episodes started by the governor.
    pub specials_throttled: u64,
    /// Specials permanently blacklisted by the governor.
    pub specials_blacklisted: u64,
    /// Compilations that failed (all injected in this harness).
    pub compile_failures: u64,
    /// (method, level) pairs quarantined after repeated compile failures.
    pub compile_quarantines: u64,
}

impl FuzzObs {
    /// The globally-comparable slice: result, output text, checksum.
    pub fn output(&self) -> (&str, &str, u64) {
        (&self.result, &self.obs.text, self.obs.checksum)
    }
}

/// Runs `p` under one lattice configuration and fingerprints it.
pub fn run_config(p: &dchm_bytecode::Program, plan: &MutationPlan, c: &ConfigSpec) -> FuzzObs {
    let mut plan = plan.clone();
    if c.mutate {
        plan.emit_guards = c.emit_guards;
        // Specialize at the code level this tier actually compiles, so
        // every mutation-on config exercises its specializer.
        plan.mutation_level = c.initial_level;
    } else {
        // Hot states stripped, classes kept: patch-point instrumentation
        // stays identical to mutation-on runs, nothing ever specializes.
        for mc in &mut plan.classes {
            mc.hot_states.clear();
        }
    }

    let mut cfg = VmConfig {
        heap_bytes: if c.big_heap { BIG_HEAP } else { SMALL_HEAP },
        initial_level: c.initial_level,
        fuel: Some(FUEL),
        code_cache_capacity: c.cache_capacity,
        ..VmConfig::default()
    };
    if c.adaptive {
        cfg.sample_period = 600;
        cfg.opt1_samples = 2;
        cfg.opt2_samples = 4;
    } else {
        cfg.sample_period = u64::MAX;
    }
    cfg.governor.enabled = c.governor;
    // Explicit either way: the default config arms the profiler, and the
    // lattice wants exactly one profiled member per comparison, not all.
    cfg.profile_period = if c.profile { 2_500 } else { 0 };
    if let Some(depth) = c.max_frame_depth {
        cfg.max_frame_depth = Some(depth);
    }

    // One tenant run. The fingerprint stays host-free (`FuzzObs` carries
    // only modeled observables and is compared with `==`); the wall and
    // shared-cache counters ride alongside so fleet modes can assert them
    // without ever leaking into the compared value.
    let run_one = |shared: Option<Arc<SharedCodeCache>>| -> (FuzzObs, u64, u64) {
        let mut vm = attach_plan(p, plan.clone(), cfg.clone());
        if let Some(sc) = shared {
            vm.state.attach_shared_cache(sc);
        }
        if c.tracing {
            vm.enable_tracing(16 * 1024);
        }
        match c.fault {
            Fault::None => {}
            Fault::Transparent(seed) => {
                vm.state.injector = Some(FaultInjector::new(FaultConfig {
                    period: 1,
                    ..FaultConfig::transparent(seed)
                }));
            }
            Fault::GuardFail(seed) => {
                vm.state.injector = Some(FaultInjector::new(FaultConfig::guard_failures(seed)));
            }
            Fault::CompileFail(seed) => {
                vm.state.injector = Some(FaultInjector::new(FaultConfig::compile_failures(seed)));
            }
        }

        let result = format!("{:?}", vm.run_entry());
        let s = vm.stats();
        let obs = FuzzObs {
            result,
            obs: observe(&vm),
            tib_flips: s.tib_flips,
            special_tibs: s.special_tibs,
            guard_failures: s.guard_failures,
            deopts: s.deopts,
            specials_throttled: s.specials_throttled,
            specials_blacklisted: s.specials_blacklisted,
            compile_failures: s.compile_failures,
            compile_quarantines: s.compile_quarantines,
        };
        (obs, vm.state.compile_wall_nanos, vm.state.shared_misses)
    };

    match c.fleet {
        FleetMode::Solo => run_one(None).0,
        FleetMode::SharedFleet => {
            // The identical run executed on a fleet shard thread with a
            // shared cache attached; the clock-group comparison against the
            // solo reference proves the whole stack transparent.
            let shared = Arc::new(SharedCodeCache::new(1024));
            run_fleet(&FleetConfig::dynamic(2), &[()], |_ctx, ()| {
                run_one(Some(Arc::clone(&shared))).0
            })
            .results
            .into_iter()
            .next()
            .expect("one job yields one result")
        }
        FleetMode::TenantPair => {
            // Tenant 1 populates, tenant 2 must be answered entirely from
            // the cache: zero misses, hence *exactly* zero compiler wall.
            let shared = Arc::new(SharedCodeCache::new(1024));
            let (first, _, _) = run_one(Some(Arc::clone(&shared)));
            let (second, wall, misses) = run_one(Some(shared));
            assert_eq!(first, second, "identical tenants diverged");
            assert_eq!(misses, 0, "tenant 2 fell through to its compiler");
            assert_eq!(wall, 0, "tenant 2 ran a compiler pipeline");
            second
        }
    }
}

/// A conformance violation between two lattice configurations.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// `"output"` (global identity broken) or `"clock"` (full-fingerprint
    /// identity broken inside a clock group).
    pub kind: &'static str,
    /// Reference config of the comparison group.
    pub config_a: String,
    /// The config that disagreed with it.
    pub config_b: String,
    /// Both fingerprints, rendered.
    pub detail: String,
}

/// Runs the whole lattice and returns the first divergence, if any.
///
/// Output identity is checked first (it is the conformance property;
/// a clock mismatch usually rides along with it), then full-fingerprint
/// identity inside each non-empty clock group.
pub fn check(
    p: &dchm_bytecode::Program,
    plan: &MutationPlan,
    configs: &[ConfigSpec],
) -> Option<Divergence> {
    let results: Vec<FuzzObs> = configs.iter().map(|c| run_config(p, plan, c)).collect();

    let find = |key: fn(&ConfigSpec) -> &'static str,
                    eq: fn(&FuzzObs, &FuzzObs) -> bool,
                    kind: &'static str| {
        let mut refs: Vec<(&str, usize)> = Vec::new();
        for (i, c) in configs.iter().enumerate() {
            let group = key(c);
            if group.is_empty() {
                continue;
            }
            match refs.iter().find(|(g, _)| *g == group) {
                None => refs.push((group, i)),
                Some(&(_, r)) => {
                    if !eq(&results[r], &results[i]) {
                        return Some(Divergence {
                            kind,
                            config_a: configs[r].name.to_string(),
                            config_b: configs[i].name.to_string(),
                            detail: format!(
                                "{}: {:?}\n{}: {:?}",
                                configs[r].name, results[r], configs[i].name, results[i]
                            ),
                        });
                    }
                }
            }
        }
        None
    };

    find(
        |c| c.output_group,
        |a, b| a.output() == b.output(),
        "output",
    )
    .or_else(|| find(|c| c.clock_group, |a, b| a == b, "clock"))
}
