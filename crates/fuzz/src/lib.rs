#![warn(missing_docs)]

//! # dchm-fuzz
//!
//! Differential conformance fuzzer for the DCHM runtime: seeded generation
//! of valid-by-construction hierarchy/state programs ([`gen`]), a lattice
//! of VM configurations spanning tiers, mutation modes, cache capacities,
//! tracing and fault injection ([`lattice`]), a multi-config oracle
//! asserting bit-identical modeled observables at the strictness each
//! config pairing is entitled to ([`oracle`]), and a greedy shrinker that
//! minimizes any divergence to a small repro ([`shrink`]).
//!
//! The `dchm-fuzz` binary drives seed ranges through the whole stack; the
//! checked-in specs under `corpus/` replay known edge cases as ordinary
//! tests (`tests/corpus.rs`), and `tests/selftest.rs` proves the oracle
//! catches a deliberately broken guard site and shrinks it to a minimal
//! program.

pub mod gen;
pub mod lattice;
pub mod oracle;
pub mod shrink;

pub use gen::{generate, lower, Spec};
pub use lattice::{lattice, tampered, ConfigSpec};
pub use oracle::{check, run_config, Divergence, FuzzObs};
pub use shrink::shrink;

use dchm_core::{synthesize_plan, MutationPlan, SynthConfig};

/// The synthesis tunables every lattice run shares. `mutation_level` and
/// `emit_guards` here are placeholders — [`oracle::run_config`] overrides
/// both per configuration.
pub fn synth_config() -> SynthConfig {
    SynthConfig {
        mutation_level: 0,
        emit_guards: true,
        max_state_fields: 2,
        max_states: 4,
        include_statics: true,
    }
}

/// Lowers a spec and synthesizes its shared mutation plan.
///
/// Returns `None` if the spec fails the strict builder — impossible for
/// generator output (covered by tests), tolerated so shrinker candidates
/// can be checked without panicking.
pub fn compile_spec(spec: &Spec) -> Option<(dchm_bytecode::Program, MutationPlan)> {
    let p = lower(spec).ok()?;
    let plan = synthesize_plan(&p, &synth_config());
    Some((p, plan))
}

/// Lattice-checks one spec: lower, synthesize, run every config, compare.
pub fn check_spec(spec: &Spec, configs: &[ConfigSpec]) -> Option<Divergence> {
    let (p, plan) = compile_spec(spec)?;
    check(&p, &plan, configs)
}

/// Shrinks a diverging spec to a local minimum, preserving divergence
/// *kind* (an output divergence never degrades into a mere clock one).
pub fn minimize(spec: &Spec, configs: &[ConfigSpec], kind: &str) -> Spec {
    shrink(spec, &mut |s: &Spec| {
        check_spec(s, configs).is_some_and(|d| d.kind == kind)
    })
}

/// The checked-in corpus: named edge-case specs replayed as ordinary tests
/// (`tests/corpus.rs`) and regenerable with `dchm-fuzz --write-corpus`.
pub fn corpus_specs() -> Vec<(&'static str, Spec)> {
    use gen::{Action, FieldSpec, GroupSpec};
    let group = |fields: Vec<FieldSpec>| GroupSpec {
        fields,
        has_interface: false,
        has_subclass: false,
        static_state: None,
        work_self_flip: false,
    };
    let f = |hot, alt| FieldSpec { hot, alt };
    vec![
        // A class with no state at all: `work` lowers to a bare `Ret`, the
        // synthesized plan is empty, and every config must still agree.
        (
            "empty-method",
            Spec {
                groups: vec![group(vec![])],
                actions: vec![
                    Action::CallWork { group: 0, sub: false },
                    Action::CallViaInterface { group: 0 },
                ],
                iters: 40,
            },
        ),
        // Heavy allocation bursts on a tiny heap interleaved with state
        // flips: collections land mid-flip, and TIB-flipped objects must
        // survive the collector.
        (
            "mutation-during-gc",
            Spec {
                groups: vec![GroupSpec {
                    fields: vec![f(2, 9)],
                    has_interface: false,
                    has_subclass: true,
                    static_state: None,
                    work_self_flip: false,
                }],
                actions: vec![
                    Action::Flip { group: 0, sub: false, field: 0, alt: true },
                    Action::AllocBurst { group: 0, count: 6 },
                    Action::Flip { group: 0, sub: false, field: 0, alt: false },
                    Action::AllocBurst { group: 0, count: 6 },
                    Action::AllocBurst { group: 0, count: 6 },
                    Action::CallWork { group: 0, sub: false },
                ],
                iters: 150,
            },
        ),
        // The guarded-deopt hazard on the very first invocation: the ctor
        // enters the hot state, the single `work` call runs specialized and
        // immediately stores its way out of the state mid-frame.
        (
            "guard-fail-first-call",
            Spec {
                groups: vec![GroupSpec {
                    fields: vec![f(1, 5)],
                    has_interface: false,
                    has_subclass: false,
                    static_state: None,
                    work_self_flip: true,
                }],
                actions: vec![Action::CallWork { group: 0, sub: false }],
                iters: 1,
            },
        ),
        // Interface dispatch against an object that keeps flipping between
        // special and class TIBs, with a never-mutated subclass sharing the
        // selector.
        (
            "interface-dispatch-flip",
            Spec {
                groups: vec![GroupSpec {
                    fields: vec![f(0, 7)],
                    has_interface: true,
                    has_subclass: true,
                    static_state: None,
                    work_self_flip: false,
                }],
                actions: vec![
                    Action::CallViaInterface { group: 0 },
                    Action::Flip { group: 0, sub: false, field: 0, alt: true },
                    Action::CallViaInterface { group: 0 },
                    Action::Flip { group: 0, sub: false, field: 0, alt: false },
                    Action::CallWork { group: 0, sub: true },
                ],
                iters: 80,
            },
        ),
        // Two classes whose `work` stores out of the hot state mid-frame
        // and straight back in: every call is a guard failure, a deopt and
        // a re-arm. Hundreds of iterations over two independent sites is a
        // textbook deopt storm — the resilience governor must throttle the
        // churn without changing a single output byte, and the spec is the
        // minimal flip loop the shrinker must preserve (see
        // `shrink::tests`).
        (
            "two-class-storm",
            Spec {
                groups: vec![
                    GroupSpec {
                        fields: vec![f(1, 5)],
                        has_interface: false,
                        has_subclass: false,
                        static_state: None,
                        work_self_flip: true,
                    },
                    GroupSpec {
                        fields: vec![f(2, 6)],
                        has_interface: false,
                        has_subclass: false,
                        static_state: None,
                        work_self_flip: true,
                    },
                ],
                actions: vec![
                    Action::Flip { group: 0, sub: false, field: 0, alt: false },
                    Action::CallWork { group: 0, sub: false },
                    Action::Flip { group: 1, sub: false, field: 0, alt: false },
                    Action::CallWork { group: 1, sub: false },
                ],
                iters: 400,
            },
        ),
        // The shared-compilation workout: two groups mixing instance and
        // static hot states, interface dispatch, subclassing and mid-frame
        // self-flips, busy enough that a tenant compiles specials across
        // several sites. Replayed through the `two-tenant-shared` lattice
        // config, the second identical tenant must be answered entirely
        // from the shared artifact cache (zero compiler wall) while its
        // fingerprint stays bit-identical.
        (
            "two-tenant-shared",
            Spec {
                groups: vec![
                    GroupSpec {
                        fields: vec![f(1, 5)],
                        has_interface: true,
                        has_subclass: false,
                        static_state: Some(f(2, 7)),
                        work_self_flip: true,
                    },
                    GroupSpec {
                        fields: vec![f(3, 6)],
                        has_interface: false,
                        has_subclass: true,
                        static_state: None,
                        work_self_flip: false,
                    },
                ],
                actions: vec![
                    Action::CallWork { group: 0, sub: false },
                    Action::CallStaticCalc { group: 0 },
                    Action::Flip { group: 1, sub: false, field: 0, alt: true },
                    Action::CallWork { group: 1, sub: true },
                    Action::CallViaInterface { group: 0 },
                    Action::Flip { group: 1, sub: false, field: 0, alt: false },
                    Action::CallWork { group: 1, sub: false },
                ],
                iters: 120,
            },
        ),
        // Static (class-TIB/JTOC) state flipping under a specialized
        // static reader, alongside instance state on the same class.
        (
            "static-state-flip",
            Spec {
                groups: vec![GroupSpec {
                    fields: vec![f(3, 4)],
                    has_interface: false,
                    has_subclass: false,
                    static_state: Some(f(1, 8)),
                    work_self_flip: false,
                }],
                actions: vec![
                    Action::CallStaticCalc { group: 0 },
                    Action::FlipStatic { group: 0, alt: true },
                    Action::CallStaticCalc { group: 0 },
                    Action::FlipStatic { group: 0, alt: false },
                    Action::CallWork { group: 0, sub: false },
                ],
                iters: 100,
            },
        ),
    ]
}
