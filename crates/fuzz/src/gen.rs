//! Seeded program generation: a compact [`Spec`] describing a class
//! hierarchy with hot state, and its lowering to verified bytecode.
//!
//! Specs are the fuzzer's shrinkable currency: small, serde-serializable
//! (the corpus is Spec JSON), and lowered to a [`Program`] through the
//! strict builder path (`finish_strict`), so every candidate the shrinker
//! proposes is valid by construction — linked, verified, reachable, and
//! terminating (the only loop is the driver's bounded iteration counter).
//!
//! The generated shapes are biased toward the paper's hot patterns:
//! small hierarchies (base + optional subclass + optional interface),
//! `int` state fields constructors pin to constants (the primary hot
//! state), setter methods main flips between the hot and an alternate
//! value, optional static state behind a static reader/setter pair, work
//! methods that read state every call, allocation bursts for GC pressure,
//! and optionally a work body that stores state *while its own frame is
//! live* — the guarded-deoptimization hazard.

use dchm_bytecode::{
    ClassId, CmpOp, FieldId, MethodId, MethodSig, Program, ProgramBuilder, Reg, Ty, Value,
    VerifyError,
};
use serde::{Deserialize, Serialize};

/// A splitmix64 generator: tiny, seedable, and good enough to stir specs.
pub struct Rng(u64);

impl Rng {
    /// Creates a generator for `seed`.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// True with probability `percent`/100.
    pub fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// One `int` state field: the constant its constructor pins (`hot`) and
/// the distinct alternate value the program flips it to.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Constructor-assigned constant — the primary hot-state binding.
    pub hot: i64,
    /// The other value stores flip to (always != `hot`).
    pub alt: i64,
}

/// One hierarchy group: a base class with state, and optional trimmings.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct GroupSpec {
    /// Instance state fields (1..=2 when generated).
    pub fields: Vec<FieldSpec>,
    /// Declare an interface the base implements; `work` dispatches
    /// through it from some actions.
    pub has_interface: bool,
    /// Add a subclass overriding `work` (never mutated — Fig. 6).
    pub has_subclass: bool,
    /// Static state field + static reader/setter pair.
    pub static_state: Option<FieldSpec>,
    /// `work` stores the alternate into field 0 mid-body and restores it —
    /// leaves the hot state *inside a live (possibly specialized) frame*,
    /// the exact hazard state guards close.
    pub work_self_flip: bool,
}

/// One statement of the driver loop's body.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Action {
    /// Virtual `work()` on the group's base (`sub: false`) or subclass
    /// object.
    CallWork {
        /// Group index (mod group count).
        group: u8,
        /// Dispatch on the subclass object if the group has one.
        sub: bool,
    },
    /// `work()` through the group's interface (plain virtual call when the
    /// group has none).
    CallViaInterface {
        /// Group index (mod group count).
        group: u8,
    },
    /// Call the field's setter with the hot or alternate constant.
    Flip {
        /// Group index (mod group count).
        group: u8,
        /// Flip on the subclass object instead of the base object.
        sub: bool,
        /// Field index (mod field count).
        field: u8,
        /// Store the alternate value (true) or re-enter the hot value.
        alt: bool,
    },
    /// Call the static setter with the hot or alternate constant.
    FlipStatic {
        /// Group index (mod group count).
        group: u8,
        /// Store the alternate value (true) or re-enter the hot value.
        alt: bool,
    },
    /// Allocate `count` immediately-dead objects — GC pressure, and patch
    /// points at every constructor exit.
    AllocBurst {
        /// Group index (mod group count).
        group: u8,
        /// Burst size (capped at 6 when lowered).
        count: u8,
    },
    /// Read a state field directly from the driver and sink it.
    ReadField {
        /// Group index (mod group count).
        group: u8,
        /// Read from the subclass object.
        sub: bool,
        /// Field index (mod field count).
        field: u8,
    },
    /// Call the group's static state reader.
    CallStaticCalc {
        /// Group index (mod group count).
        group: u8,
    },
}

/// A complete generated program description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Spec {
    /// Hierarchy groups (classes come out in group order).
    pub groups: Vec<GroupSpec>,
    /// The driver loop's body.
    pub actions: Vec<Action>,
    /// Driver loop trip count.
    pub iters: u32,
}

/// Generates the spec for `seed`. Same seed, same spec, always.
pub fn generate(seed: u64) -> Spec {
    let mut r = Rng::new(seed);
    let ngroups = 1 + r.below(3);
    let groups = (0..ngroups)
        .map(|_| {
            let nfields = 1 + r.below(2);
            let fields = (0..nfields)
                .map(|_| {
                    let hot = r.below(9) as i64 - 3;
                    let alt = hot + 1 + r.below(7) as i64;
                    FieldSpec { hot, alt }
                })
                .collect();
            GroupSpec {
                fields,
                has_interface: r.chance(50),
                has_subclass: r.chance(50),
                static_state: r.chance(40).then(|| {
                    let hot = r.below(10) as i64;
                    let alt = hot + 1 + r.below(5) as i64;
                    FieldSpec { hot, alt }
                }),
                work_self_flip: r.chance(40),
            }
        })
        .collect();
    let nactions = 4 + r.below(13);
    let actions = (0..nactions)
        .map(|_| {
            let group = r.below(ngroups) as u8;
            match r.below(11) {
                0..=2 => Action::CallWork {
                    group,
                    sub: r.chance(50),
                },
                3 => Action::CallViaInterface { group },
                4 | 5 => Action::Flip {
                    group,
                    sub: r.chance(50),
                    field: r.below(2) as u8,
                    alt: r.chance(50),
                },
                6 => Action::FlipStatic {
                    group,
                    alt: r.chance(50),
                },
                7 | 8 => Action::AllocBurst {
                    group,
                    count: 2 + r.below(5) as u8,
                },
                9 => Action::ReadField {
                    group,
                    sub: r.chance(50),
                    field: r.below(2) as u8,
                },
                _ => Action::CallStaticCalc { group },
            }
        })
        .collect();
    Spec {
        groups,
        actions,
        iters: 30 + r.below(121) as u32,
    }
}

/// Lowered handles for one group, used while emitting the driver.
struct GroupIds {
    base: ClassId,
    sub: Option<ClassId>,
    iface: Option<ClassId>,
    fields: Vec<FieldId>,
    slevel: Option<MethodId>,
    calc: Option<MethodId>,
}

/// Lowers a spec to a linked, verified, reachability-checked program.
///
/// Total on every spec (degenerate ones included): action indices wrap
/// modulo the group/field counts, groups may be empty, and actions whose
/// target feature was shrunk away lower to nothing — so every spec the
/// shrinker can produce is a valid program.
pub fn lower(spec: &Spec) -> Result<Program, VerifyError> {
    let mut pb = ProgramBuilder::new();
    let mut ids: Vec<GroupIds> = Vec::new();

    for (g, gs) in spec.groups.iter().enumerate() {
        let iface = gs.has_interface.then(|| {
            let i = pb.class(&format!("I{g}")).interface().build();
            pb.abstract_method(i, "work", MethodSig::void());
            i
        });
        let mut cb = pb.class(&format!("C{g}"));
        if let Some(i) = iface {
            cb = cb.implements(i);
        }
        let base = cb.build();
        let fields: Vec<FieldId> = (0..gs.fields.len())
            .map(|j| pb.instance_field(base, &format!("f{j}"), Ty::Int))
            .collect();
        let sfield = gs
            .static_state
            .as_ref()
            .map(|fs| pb.static_field(base, "S", Ty::Int, Value::Int(fs.hot)));

        let mut m = pb.ctor(base, vec![]);
        let this = m.this();
        for (j, fs) in gs.fields.iter().enumerate() {
            let v = m.imm(fs.hot);
            m.put_field(this, fields[j], v);
        }
        m.ret(None);
        m.build();

        // work(): read every state field (foldable in special code), then
        // optionally leave and re-enter the hot state mid-frame.
        let mut m = pb.method(base, "work", MethodSig::void());
        let this = m.this();
        for &f in &fields {
            let r = m.reg();
            m.get_field(r, this, f);
            m.sink_int(r);
        }
        if let Some(sf) = sfield {
            let r = m.reg();
            m.get_static(r, sf);
            m.sink_int(r);
        }
        if gs.work_self_flip && !gs.fields.is_empty() {
            let a = m.imm(spec.groups[g].fields[0].alt);
            m.put_field(this, fields[0], a);
            let r = m.reg();
            m.get_field(r, this, fields[0]);
            m.sink_int(r);
            let h = m.imm(spec.groups[g].fields[0].hot);
            m.put_field(this, fields[0], h);
        }
        m.ret(None);
        m.build();

        // flipJ(v): the single-store setter shape plan synthesis maps
        // constant call arguments through.
        for (j, &f) in fields.iter().enumerate() {
            let mut m = pb.method(base, &format!("flip{j}"), MethodSig::new(vec![Ty::Int], None));
            let this = m.this();
            let v = m.param(0);
            m.put_field(this, f, v);
            m.ret(None);
            m.build();
        }

        let (slevel, calc) = match sfield {
            Some(sf) => {
                let mut m =
                    pb.static_method(base, "slevel", MethodSig::new(vec![Ty::Int], None));
                let v = m.param(0);
                m.put_static(sf, v);
                m.ret(None);
                let slevel = m.build();
                let mut m = pb.static_method(base, "calc", MethodSig::void());
                let r = m.reg();
                m.get_static(r, sf);
                m.sink_int(r);
                m.ret(None);
                (Some(slevel), Some(m.build()))
            }
            None => (None, None),
        };

        let sub = gs.has_subclass.then(|| {
            let sub = pb.class(&format!("D{g}")).extends(base).build();
            let mut m = pb.ctor(sub, vec![]);
            let this = m.this();
            m.call_ctor(this, base, vec![]);
            m.ret(None);
            m.build();
            // Override reading the inherited state, plus a marker so the
            // two implementations are observably different.
            let mut m = pb.method(sub, "work", MethodSig::void());
            let this = m.this();
            for &f in &fields {
                let r = m.reg();
                m.get_field(r, this, f);
                m.sink_int(r);
            }
            let marker = m.imm(1_000 + g as i64);
            m.sink_int(marker);
            m.ret(None);
            m.build();
            sub
        });

        ids.push(GroupIds {
            base,
            sub,
            iface,
            fields,
            slevel,
            calc,
        });
    }

    let driver = pb.class("Main").build();
    let mut m = pb.static_method(driver, "main", MethodSig::void());
    let objs: Vec<(Reg, Reg)> = ids
        .iter()
        .map(|gi| {
            let b = m.reg();
            m.new_init(b, gi.base, vec![]);
            let s = m.reg();
            m.new_init(s, gi.sub.unwrap_or(gi.base), vec![]);
            (b, s)
        })
        .collect();
    let burst = m.reg();

    if !spec.groups.is_empty() && !spec.actions.is_empty() && spec.iters > 0 {
        let cnt = m.reg();
        m.const_i(cnt, spec.iters as i64);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.br_icmp_imm(CmpOp::Le, cnt, 0, done);
        for a in &spec.actions {
            let n = spec.groups.len();
            match a {
                Action::CallWork { group, sub } => {
                    let gi = *group as usize % n;
                    let obj = if *sub { objs[gi].1 } else { objs[gi].0 };
                    m.call_virtual(None, obj, "work", vec![]);
                }
                Action::CallViaInterface { group } => {
                    let gi = *group as usize % n;
                    match ids[gi].iface {
                        Some(i) => m.call_interface(None, i, objs[gi].0, "work", vec![]),
                        None => m.call_virtual(None, objs[gi].0, "work", vec![]),
                    }
                }
                Action::Flip {
                    group,
                    sub,
                    field,
                    alt,
                } => {
                    let gi = *group as usize % n;
                    if ids[gi].fields.is_empty() {
                        continue;
                    }
                    let fi = *field as usize % ids[gi].fields.len();
                    let fs = &spec.groups[gi].fields[fi];
                    let v = m.imm(if *alt { fs.alt } else { fs.hot });
                    let obj = if *sub { objs[gi].1 } else { objs[gi].0 };
                    m.call_virtual(None, obj, &format!("flip{fi}"), vec![v]);
                }
                Action::FlipStatic { group, alt } => {
                    let gi = *group as usize % n;
                    if let (Some(slevel), Some(fs)) =
                        (ids[gi].slevel, spec.groups[gi].static_state.as_ref())
                    {
                        let v = m.imm(if *alt { fs.alt } else { fs.hot });
                        m.call_static(None, slevel, vec![v]);
                    }
                }
                Action::AllocBurst { group, count } => {
                    let gi = *group as usize % n;
                    for _ in 0..(*count).min(6) {
                        m.new_init(burst, ids[gi].base, vec![]);
                    }
                }
                Action::ReadField { group, sub, field } => {
                    let gi = *group as usize % n;
                    if ids[gi].fields.is_empty() {
                        continue;
                    }
                    let fi = *field as usize % ids[gi].fields.len();
                    let obj = if *sub { objs[gi].1 } else { objs[gi].0 };
                    let r = m.reg();
                    m.get_field(r, obj, ids[gi].fields[fi]);
                    m.sink_int(r);
                }
                Action::CallStaticCalc { group } => {
                    let gi = *group as usize % n;
                    if let Some(calc) = ids[gi].calc {
                        m.call_static(None, calc, vec![]);
                    }
                }
            }
        }
        m.iadd_imm(cnt, cnt, -1);
        m.jmp(head);
        m.bind(done);
    }
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);
    pb.finish_strict()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(42), generate(42));
        assert_ne!(generate(42), generate(43));
    }

    #[test]
    fn first_kiloseed_lowers_clean() {
        for seed in 0..1000 {
            let spec = generate(seed);
            lower(&spec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn degenerate_specs_lower_clean() {
        let empty = Spec {
            groups: vec![],
            actions: vec![Action::CallWork { group: 3, sub: true }],
            iters: 10,
        };
        lower(&empty).expect("empty spec lowers");

        let no_trimmings = Spec {
            groups: vec![GroupSpec {
                fields: vec![FieldSpec { hot: 1, alt: 2 }],
                has_interface: false,
                has_subclass: false,
                static_state: None,
                work_self_flip: false,
            }],
            actions: vec![
                Action::CallViaInterface { group: 0 },
                Action::FlipStatic { group: 0, alt: true },
                Action::CallStaticCalc { group: 0 },
                Action::Flip { group: 9, sub: true, field: 9, alt: false },
            ],
            iters: 1,
        };
        lower(&no_trimmings).expect("actions on absent features lower to nothing");
    }

    #[test]
    fn specs_roundtrip_through_json() {
        let spec = generate(7);
        let json = serde_json::to_string(&spec).expect("serialize");
        let back: Spec = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(spec, back);
    }
}
