//! The configuration lattice: every generated program runs once per entry,
//! and the oracle compares fingerprints at two strictness levels.
//!
//! * **Output identity** — result value, output text and checksum — is the
//!   global conformance property: it must hold across tiers, adaptive
//!   recompilation, mutation on/off, cache capacities, tracing and fault
//!   injection. The single exception is guards-off mutation
//!   (`output_group: "noguard"`): running specialization *without* its
//!   safety net legitimately lets stale specialized frames misbehave, so
//!   those configs are only compared among themselves.
//! * **Full identity** — the whole [`crate::oracle::FuzzObs`], modeled
//!   clock and mutation counters included — holds inside a `clock_group`:
//!   configs that differ only in machinery the model promises is
//!   transparent (cache capacity, tracing, transparent faults).
//!
//! Forced-guard-failure injection changes which code version executes
//! (and therefore billing), so that config carries an empty clock group:
//! it participates in the output check only. The same goes for disarming
//! the resilience governor under mutation. Identically-seeded storm and
//! compile-failure twins, by contrast, share a clock group: governor
//! decisions themselves must be bit-deterministic.

/// Host-side perturbation applied to a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// No injector.
    None,
    /// Transparent faults (forced GCs, IC bumps, silent recompiles) at
    /// every allocation point, from this seed.
    Transparent(u64),
    /// Forced guard failures from this seed.
    GuardFail(u64),
    /// Forced compile failures from this seed: every faulted compile
    /// tiers the method down to its cached baseline and eventually
    /// quarantines it. Output must not move.
    CompileFail(u64),
}

/// How many fleet tenants execute the config and what they share.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FleetMode {
    /// One VM, no fleet machinery (the default).
    Solo,
    /// The identical run executed inside a 2-worker `dchm_vm::fleet` shard
    /// pool probing a shared compile-artifact cache: executor threads and
    /// artifact sharing must be invisible to the full fingerprint, so the
    /// config shares its solo twin's clock group.
    SharedFleet,
    /// Two identical tenants through one shared cache, fingerprinting the
    /// second: full-fingerprint identity with solo, *and* the oracle
    /// asserts the second tenant ran zero compiler pipelines
    /// (`compile_wall_nanos == 0`, no shared-cache misses).
    TenantPair,
}

/// One VM configuration of the lattice.
#[derive(Clone, Debug)]
pub struct ConfigSpec {
    /// Display name, unique in the lattice.
    pub name: &'static str,
    /// Level methods are first compiled at.
    pub initial_level: u8,
    /// Adaptive promotion on (fast cadence) or pinned at `initial_level`.
    pub adaptive: bool,
    /// Attach the synthesized plan with its hot states (true) or with hot
    /// states stripped — identical instrumentation, no specialization.
    pub mutate: bool,
    /// Plant state guards in special code. Ignored when `mutate` is off.
    pub emit_guards: bool,
    /// State-keyed code cache capacity (0 disables).
    pub cache_capacity: usize,
    /// Fly the flight recorder.
    pub tracing: bool,
    /// Arm the cycle-attribution profiler (fast period). Like tracing, a
    /// transparent observer: it shares the reference's clock group.
    pub profile: bool,
    /// Fault injection.
    pub fault: Fault,
    /// 512 MiB heap (no organic GC) instead of the tiny default that
    /// forces collections during allocation bursts.
    pub big_heap: bool,
    /// Resilience governor (deopt-storm throttling + compile quarantine)
    /// armed. Off is the ungoverned reference: identical output, possibly
    /// different billing once a storm actually triggers.
    pub governor: bool,
    /// Frame-depth ceiling override (`None` keeps the VM default). An
    /// unhit ceiling must be fully transparent.
    pub max_frame_depth: Option<usize>,
    /// Fleet execution mode (see [`FleetMode`]); host-side machinery only,
    /// so every mode may share a clock group with its solo twin.
    pub fleet: FleetMode,
    /// Configs sharing a non-empty clock group must match on the full
    /// fingerprint. Empty = compared for output only.
    pub clock_group: &'static str,
    /// Output-identity partition ("main" or "noguard").
    pub output_group: &'static str,
}

impl ConfigSpec {
    const fn base(name: &'static str, clock_group: &'static str) -> Self {
        ConfigSpec {
            name,
            initial_level: 0,
            adaptive: false,
            mutate: false,
            emit_guards: true,
            cache_capacity: 0,
            tracing: false,
            profile: false,
            fault: Fault::None,
            big_heap: false,
            governor: true,
            max_frame_depth: None,
            fleet: FleetMode::Solo,
            clock_group,
            output_group: "main",
        }
    }
}

/// The full lattice, 26 configurations.
pub fn lattice() -> Vec<ConfigSpec> {
    // Mutation off across the tier ladder: output must be tier-invariant.
    let mut v = vec![
        ConfigSpec::base("base0-nomut", "t0-off"),
        ConfigSpec {
            initial_level: 1,
            ..ConfigSpec::base("opt1-nomut", "t1-off")
        },
        ConfigSpec {
            initial_level: 2,
            ..ConfigSpec::base("opt2-nomut", "t2-off")
        },
        ConfigSpec {
            adaptive: true,
            ..ConfigSpec::base("adaptive-nomut", "ad-off")
        },
        // No mutation means no guard failures, so the governor never acts:
        // disabling it must be invisible down to the modeled clock.
        ConfigSpec {
            adaptive: true,
            governor: false,
            ..ConfigSpec::base("adaptive-nomut-nogov", "ad-off")
        },
    ];

    // Mutation on, adaptive: the cache-capacity/tracing transparency group.
    let ad_on = |name, cache_capacity, tracing| ConfigSpec {
        adaptive: true,
        mutate: true,
        cache_capacity,
        tracing,
        ..ConfigSpec::base(name, "ad-on")
    };
    v.push(ad_on("adaptive-mut", 1024, false));
    v.push(ad_on("adaptive-mut-nocache", 0, false));
    v.push(ad_on("adaptive-mut-cache1", 1, false));
    v.push(ad_on("adaptive-mut-traced", 1024, true));
    // The attribution profiler is a transparent observer like the tracer:
    // same clock group, full-fingerprint identity required.
    v.push(ConfigSpec {
        profile: true,
        ..ad_on("adaptive-mut-profiled", 1024, false)
    });
    // An unhit frame-depth ceiling is fully transparent: generated
    // programs never recurse, so 64 frames is bottomless for them.
    v.push(ConfigSpec {
        max_frame_depth: Some(64),
        ..ad_on("adaptive-mut-depth64", 1024, false)
    });
    // Fleet transparency: the very same adaptive-mut run inside a shard
    // pool with a shared compile-artifact cache must carry the reference's
    // full fingerprint — shard threads and artifact adoption are host-side
    // machinery, invisible to the modeled state by construction.
    v.push(ConfigSpec {
        fleet: FleetMode::SharedFleet,
        ..ad_on("fleet-shared-cache", 1024, false)
    });
    // Two identical tenants through one cache: the second must match the
    // solo fingerprint while running zero compiler pipelines (the oracle
    // asserts compile_wall_nanos == 0 on it).
    v.push(ConfigSpec {
        fleet: FleetMode::TenantPair,
        ..ad_on("two-tenant-shared", 1024, false)
    });
    // Governor disarmed under mutation: organic flip churn may legally
    // bill differently once a real storm would have been damped, so this
    // config participates in the output check only.
    v.push(ConfigSpec {
        governor: false,
        clock_group: "",
        ..ad_on("adaptive-mut-nogov", 1024, false)
    });

    // Mutation on at pinned tiers.
    v.push(ConfigSpec {
        mutate: true,
        cache_capacity: 1024,
        ..ConfigSpec::base("base0-mut", "t0-on")
    });
    v.push(ConfigSpec {
        initial_level: 2,
        mutate: true,
        cache_capacity: 1024,
        ..ConfigSpec::base("opt2-mut", "t2-on")
    });

    // Guards off: quarantined output group (stale specialized frames are
    // allowed to misbehave — that divergence is the hazard itself, see
    // vm/tests/deopt.rs), but the two members must still agree with each
    // other in full.
    let no_guard = |name, cache_capacity| ConfigSpec {
        adaptive: true,
        mutate: true,
        emit_guards: false,
        cache_capacity,
        output_group: "noguard",
        ..ConfigSpec::base(name, "ad-ng")
    };
    v.push(no_guard("adaptive-noguard", 1024));
    v.push(no_guard("adaptive-noguard-nocache", 0));

    // Big heap: the fault-injection transparency group (injected GCs must
    // be the only collector activity, mirroring vm/tests/fault_injection).
    let big = |name, fault, tracing, clock_group| ConfigSpec {
        adaptive: true,
        mutate: true,
        cache_capacity: 1024,
        tracing,
        fault,
        big_heap: true,
        ..ConfigSpec::base(name, clock_group)
    };
    v.push(big("adaptive-mut-big", Fault::None, false, "big"));
    v.push(big(
        "adaptive-mut-big-faultA",
        Fault::Transparent(0xA11CE),
        true,
        "big",
    ));
    v.push(big(
        "adaptive-mut-big-faultB",
        Fault::Transparent(0xB0B),
        false,
        "big",
    ));
    // Forced guard failures change which code version runs (and bills):
    // output check only.
    v.push(big(
        "adaptive-mut-big-guardfail",
        Fault::GuardFail(0xC0FFEE),
        true,
        "",
    ));

    // Governor determinism twins: identical forced-guard-fail storms must
    // produce bit-identical throttle/blacklist decisions — the pair shares
    // a clock group, so any nondeterminism in the governor (hash-order
    // iteration, host-time leakage) surfaces as a full-fingerprint split.
    // The second twin flies the recorder: tracing stays transparent even
    // while the governor is acting.
    v.push(big(
        "adaptive-mut-storm1",
        Fault::GuardFail(0x5707),
        false,
        "storm",
    ));
    v.push(big(
        "adaptive-mut-storm2",
        Fault::GuardFail(0x5707),
        true,
        "storm",
    ));

    // Compile-failure quarantine twins: every faulted compile tiers down
    // to the cached baseline, and decisions must be bit-identical.
    v.push(big(
        "adaptive-mut-cfail1",
        Fault::CompileFail(0xFA11),
        false,
        "cfail",
    ));
    v.push(big(
        "adaptive-mut-cfail2",
        Fault::CompileFail(0xFA11),
        true,
        "cfail",
    ));

    v
}

/// A copy of `configs` with guard emission silently cleared on the config
/// named `name` — the deliberate one-guard-site break used to prove the
/// oracle and shrinker end to end (`--break-guards`).
pub fn tampered(configs: &[ConfigSpec], name: &str) -> Vec<ConfigSpec> {
    configs
        .iter()
        .map(|c| {
            let mut c = c.clone();
            if c.name == name {
                c.emit_guards = false;
            }
            c
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_are_unique_and_groups_consistent() {
        let l = lattice();
        assert_eq!(l.len(), 26);
        let names: HashSet<_> = l.iter().map(|c| c.name).collect();
        assert_eq!(names.len(), l.len());
        for c in &l {
            if c.fleet != FleetMode::Solo {
                // Fleet modes are host-side machinery: they must claim full
                // fingerprint identity with their solo clock-group twins,
                // never hide behind an output-only comparison.
                assert!(!c.clock_group.is_empty(), "{} must carry a clock group", c.name);
            }
            assert!(c.output_group == "main" || c.output_group == "noguard");
            if c.output_group == "noguard" {
                assert!(c.mutate && !c.emit_guards);
            }
            if let Fault::Transparent(_) | Fault::GuardFail(_) | Fault::CompileFail(_) = c.fault {
                assert!(c.big_heap, "fault configs need the quiet heap");
            }
            if !c.governor {
                // Ungoverned references compare against governed configs:
                // output-only unless mutation (hence storms) is impossible.
                assert!(!c.mutate || c.clock_group.is_empty());
            }
        }
    }

    #[test]
    fn tampering_flips_exactly_one_config() {
        let l = lattice();
        let t = tampered(&l, "adaptive-mut");
        let changed: Vec<_> = l
            .iter()
            .zip(&t)
            .filter(|(a, b)| a.emit_guards != b.emit_guards)
            .collect();
        assert_eq!(changed.len(), 1);
        assert_eq!(changed[0].0.name, "adaptive-mut");
    }
}
