//! Replays the checked-in corpus specs through the full configuration
//! lattice as ordinary tests — every edge case the fuzzer development
//! surfaced stays a permanent conformance check.

use dchm_fuzz::{check_spec, compile_spec, corpus_specs, lattice, Spec};
use std::path::Path;

fn corpus_dir() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"))
}

fn load(name: &str) -> Spec {
    let path = corpus_dir().join(format!("{name}.json"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()))
}

/// Every checked-in file must match the in-crate definition (regenerate
/// with `cargo run -p dchm-fuzz -- --write-corpus` after editing), and
/// every definition must be checked in.
#[test]
fn corpus_files_match_definitions() {
    for (name, spec) in corpus_specs() {
        assert_eq!(load(name), spec, "{name}.json is stale");
    }
    let on_disk = std::fs::read_dir(corpus_dir()).expect("corpus dir exists").count();
    assert_eq!(on_disk, corpus_specs().len(), "unknown files in corpus/");
}

#[test]
fn corpus_has_at_least_five_cases() {
    assert!(corpus_specs().len() >= 5);
}

fn check_case(name: &str) {
    let spec = load(name);
    if let Some(d) = check_spec(&spec, &lattice()) {
        panic!(
            "{name}: {} divergence between {} and {}\n{}",
            d.kind, d.config_a, d.config_b, d.detail
        );
    }
}

#[test]
fn empty_method_conforms() {
    check_case("empty-method");
    // And it really is the no-state edge: the synthesized plan is empty.
    let (_, plan) = compile_spec(&load("empty-method")).unwrap();
    assert!(plan.classes.is_empty());
}

#[test]
fn mutation_during_gc_conforms() {
    check_case("mutation-during-gc");
    // The scenario must actually collect on the small heap and flip TIBs,
    // or it is not testing mutation during GC.
    use dchm_fuzz::{lattice, run_config};
    let (p, plan) = compile_spec(&load("mutation-during-gc")).unwrap();
    let cfgs = lattice();
    let adaptive_mut = cfgs.iter().find(|c| c.name == "adaptive-mut").unwrap();
    let obs = run_config(&p, &plan, adaptive_mut);
    assert!(obs.obs.gc_cycles > 0, "no GC ran: {obs:?}");
    assert!(obs.tib_flips > 0, "no TIB flips: {obs:?}");
}

#[test]
fn guard_fail_first_call_conforms() {
    check_case("guard-fail-first-call");
    use dchm_fuzz::{lattice, run_config};
    let (p, plan) = compile_spec(&load("guard-fail-first-call")).unwrap();
    let cfgs = lattice();
    let adaptive_mut = cfgs.iter().find(|c| c.name == "adaptive-mut").unwrap();
    let obs = run_config(&p, &plan, adaptive_mut);
    assert!(obs.guard_failures > 0, "guard never failed: {obs:?}");
    assert!(obs.deopts > 0, "nothing deoptimized: {obs:?}");
}

#[test]
fn interface_dispatch_flip_conforms() {
    check_case("interface-dispatch-flip");
}

#[test]
fn two_class_storm_conforms() {
    check_case("two-class-storm");
    // The scenario must actually storm hard enough to wake the governor —
    // and the lattice check above has already proven that throttling moved
    // no output byte anywhere.
    use dchm_fuzz::{lattice, run_config};
    let (p, plan) = compile_spec(&load("two-class-storm")).unwrap();
    let cfgs = lattice();
    let adaptive_mut = cfgs.iter().find(|c| c.name == "adaptive-mut").unwrap();
    assert!(adaptive_mut.governor);
    let obs = run_config(&p, &plan, adaptive_mut);
    assert!(obs.guard_failures > 0, "storm never failed a guard: {obs:?}");
    assert!(obs.specials_throttled > 0, "governor never throttled: {obs:?}");
    // The ungoverned reference rides the full storm: strictly more deopts,
    // same output (checked by `check_case` via the output group).
    let nogov = cfgs.iter().find(|c| c.name == "adaptive-mut-nogov").unwrap();
    let raw = run_config(&p, &plan, nogov);
    assert_eq!(raw.specials_throttled, 0);
    assert!(
        raw.deopts > obs.deopts,
        "governor did not damp the storm: off {} vs on {}",
        raw.deopts,
        obs.deopts
    );
}

#[test]
fn static_state_flip_conforms() {
    check_case("static-state-flip");
}

#[test]
fn two_tenant_shared_conforms() {
    // The lattice replay includes the `fleet-shared-cache` and
    // `two-tenant-shared` configs, whose oracle already asserts the second
    // tenant runs zero compiler pipelines.
    check_case("two-tenant-shared");

    // And directly: the scenario must actually exercise shared
    // compilation — a tenant that never compiles would pass the lattice
    // check vacuously.
    use dchm_testutil::{attach_plan, observe};
    use dchm_vm::{SharedCodeCache, VmConfig};
    use std::sync::Arc;
    let (p, plan) = compile_spec(&load("two-tenant-shared")).unwrap();
    let shared = Arc::new(SharedCodeCache::new(1024));
    let run = || {
        let cfg = VmConfig {
            sample_period: 600,
            opt1_samples: 2,
            opt2_samples: 4,
            code_cache_capacity: 1024,
            fuel: Some(20_000_000),
            ..VmConfig::default()
        };
        let mut vm = attach_plan(&p, plan.clone(), cfg);
        vm.state.attach_shared_cache(Arc::clone(&shared));
        let result = format!("{:?}", vm.run_entry());
        (
            (result, observe(&vm)),
            vm.state.compile_wall_nanos,
            vm.state.shared_hits,
            vm.state.shared_misses,
        )
    };
    let (fp1, wall1, _hits1, misses1) = run();
    let (fp2, wall2, hits2, misses2) = run();
    assert_eq!(fp1, fp2, "identical tenants diverged");
    assert!(misses1 > 0, "tenant 1 never compiled — scenario too trivial");
    assert!(wall1 > 0, "tenant 1 paid no compiler wall");
    assert!(hits2 > 0, "tenant 2 adopted nothing");
    assert_eq!(misses2, 0, "tenant 2 fell through to its compiler");
    assert_eq!(wall2, 0, "tenant 2 ran a compiler pipeline");
}

/// Every corpus case replayed with the cycle-attribution profiler armed:
/// output and modeled clock must match the unprofiled reference
/// bit-for-bit, and the busy cases must actually collect samples. (The
/// lattice's `adaptive-mut-profiled` member checks the same property
/// against the whole comparison group; this is the direct pairwise form.)
#[test]
fn corpus_replay_with_profiling_is_transparent() {
    use dchm_testutil::{attach_plan, observe};
    use dchm_vm::VmConfig;

    let mut sampled_anywhere = false;
    for (name, _) in corpus_specs() {
        let (p, plan) = compile_spec(&load(name)).unwrap();
        let run = |period: u64| {
            let cfg = VmConfig {
                profile_period: period,
                fuel: Some(20_000_000),
                ..VmConfig::default()
            };
            let mut vm = attach_plan(&p, plan.clone(), cfg);
            let result = format!("{:?}", vm.run_entry());
            (result, observe(&vm), vm.state.profiler.samples())
        };
        let (res_off, obs_off, samples_off) = run(0);
        let (res_on, obs_on, samples_on) = run(2_500);
        assert_eq!(samples_off, 0, "{name}: period 0 must disable sampling");
        assert_eq!(
            (res_on, obs_on),
            (res_off, obs_off),
            "{name}: profiling moved the result, output or clock"
        );
        sampled_anywhere |= samples_on > 0;
    }
    assert!(sampled_anywhere, "no corpus case was long enough to sample");
}
