//! The fuzzer's own acceptance tests: the generated population exercises
//! the paper's machinery (the oracle is not vacuously green), and a
//! deliberately broken guard site is caught and shrunk to a minimal repro.

use dchm_fuzz::{
    check_spec, compile_spec, generate, lattice, lower, minimize, run_config, tampered,
};

/// A fuzzer whose programs never specialize, flip or deoptimize would pass
/// the lattice trivially. Sweep the first seeds and demand the machinery
/// lights up somewhere in the population.
#[test]
fn generated_population_exercises_the_machinery() {
    let cfgs = lattice();
    let adaptive_mut = cfgs.iter().find(|c| c.name == "adaptive-mut").unwrap();
    let (mut specials, mut flips, mut fails, mut deopts, mut gcs) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for seed in 0..12 {
        let (p, plan) = compile_spec(&generate(seed)).expect("generator output lowers");
        let o = run_config(&p, &plan, adaptive_mut);
        specials += o.special_tibs;
        flips += o.tib_flips;
        fails += o.guard_failures;
        deopts += o.deopts;
        gcs += u64::from(o.obs.gc_cycles > 0);
    }
    assert!(specials > 0, "no special TIBs across the population");
    assert!(flips > 0, "no TIB flips across the population");
    assert!(fails > 0, "no guard failures across the population");
    assert!(deopts > 0, "no deopts across the population");
    assert!(gcs > 0, "no run collected on the small heap");
}

/// The acceptance scenario: silently strip guard emission from one
/// mutation-on config (what `--break-guards` does), prove the oracle
/// reports an *output* divergence, and shrink it below the issue's bound —
/// at most 3 classes and a 10-instruction offending method.
#[test]
fn broken_guard_site_is_caught_and_shrinks_small() {
    let configs = tampered(&lattice(), "adaptive-mut");

    let (seed, spec, d) = (0..200)
        .find_map(|seed| {
            let spec = generate(seed);
            check_spec(&spec, &configs)
                .filter(|d| d.kind == "output")
                .map(|d| (seed, spec, d))
        })
        .expect("some early seed must expose the missing guards as wrong output");

    let min = minimize(&spec, &configs, "output");
    let d2 = check_spec(&min, &configs).expect("minimized spec still diverges");
    assert_eq!(d2.kind, "output", "shrinking degraded the divergence kind");

    let p = lower(&min).expect("minimized spec lowers");
    assert!(
        p.classes.len() <= 3,
        "seed {seed} ({} vs {}): minimized to {} classes",
        d.config_a,
        d.config_b,
        p.classes.len()
    );
    let offending = p
        .methods
        .iter()
        .filter(|m| m.name == "work")
        .map(|m| m.code.len())
        .max()
        .expect("minimized program keeps a work method");
    assert!(
        offending <= 10,
        "seed {seed}: offending method still has {offending} instructions"
    );
}

/// Untampered, the same population conforms — the companion assertion that
/// makes the test above meaningful.
#[test]
fn untampered_lattice_is_clean_on_the_selftest_seeds() {
    let configs = lattice();
    for seed in 0..12 {
        if let Some(d) = check_spec(&generate(seed), &configs) {
            panic!(
                "seed {seed}: {} divergence between {} and {}\n{}",
                d.kind, d.config_a, d.config_b, d.detail
            );
        }
    }
}
