//! GC transparency: a program must compute the same results regardless of
//! heap size (i.e., regardless of how many collections run). Exercises
//! allocation-heavy object graphs with cross-references, arrays of
//! references and dead cycles, generated randomly by proptest.

use proptest::prelude::*;

use dchm_bytecode::{CmpOp, ElemKind, MethodSig, ProgramBuilder, Ty};
use dchm_vm::{Vm, VmConfig};

/// Builds a program that creates `churn` linked nodes per round for
/// `rounds` rounds, keeping only every `keep_mod`-th node alive in a ref
/// array, then folds the survivors' payloads into the checksum.
fn churn_program(rounds: i64, churn: i64, keep_mod: i64) -> dchm_bytecode::Program {
    let mut pb = ProgramBuilder::new();
    let node = pb.class("Node").build();
    let payload = pb.instance_field(node, "payload", Ty::Int);
    let next = pb.instance_field(node, "next", Ty::Ref(node));
    let mut m = pb.ctor(node, vec![Ty::Int]);
    let this = m.this();
    let p = m.param(0);
    m.put_field(this, payload, p);
    m.ret(None);
    m.build();

    let mut m = pb.static_method(node, "main", MethodSig::void());
    let keep_n = m.imm(64);
    let keep = m.reg();
    m.new_arr(keep, ElemKind::Ref, keep_n);
    let slot = m.reg();
    m.const_i(slot, 0);
    let r = m.reg();
    m.const_i(r, 0);
    let rh = m.label();
    let rd = m.label();
    m.bind(rh);
    let rlim = m.imm(rounds);
    m.br_icmp(CmpOp::Ge, r, rlim, rd);
    // Build a chain of `churn` nodes; most become garbage immediately.
    let prev = m.reg();
    m.const_null(prev);
    let i = m.reg();
    m.const_i(i, 0);
    let ih = m.label();
    let id = m.label();
    m.bind(ih);
    let clim = m.imm(churn);
    m.br_icmp(CmpOp::Ge, i, clim, id);
    let val = m.reg();
    m.imul(val, r, clim);
    m.iadd(val, val, i);
    let n = m.reg();
    m.new_obj(n, node);
    m.call_ctor(n, node, vec![val]);
    m.put_field(n, next, prev);
    m.mov(prev, n);
    // Keep every keep_mod-th node.
    let km = m.imm(keep_mod);
    let rem = m.reg();
    m.irem(rem, val, km);
    let skip = m.label();
    let zero = m.imm(0);
    m.br_icmp(CmpOp::Ne, rem, zero, skip);
    let sslot = m.reg();
    let k64 = m.imm(64);
    m.irem(sslot, slot, k64);
    m.astore(keep, sslot, n);
    m.iadd_imm(slot, slot, 1);
    m.bind(skip);
    m.iadd_imm(i, i, 1);
    m.jmp(ih);
    m.bind(id);
    m.iadd_imm(r, r, 1);
    m.jmp(rh);
    m.bind(rd);

    // Fold surviving payloads (walking next-chains a few hops).
    let j = m.reg();
    m.const_i(j, 0);
    let sh = m.label();
    let sd = m.label();
    m.bind(sh);
    let k64b = m.imm(64);
    m.br_icmp(CmpOp::Ge, j, k64b, sd);
    let cur = m.reg();
    m.aload(cur, keep, j);
    let nil = m.reg();
    m.const_null(nil);
    let hops = m.reg();
    m.const_i(hops, 0);
    let wh = m.label();
    let wd = m.label();
    m.bind(wh);
    let isnil = m.reg();
    m.ref_eq(isnil, cur, nil);
    m.br_if(isnil, wd);
    let three = m.imm(3);
    m.br_icmp(CmpOp::Ge, hops, three, wd);
    let pv = m.reg();
    m.get_field(pv, cur, payload);
    m.sink_int(pv);
    m.get_field(cur, cur, next);
    m.iadd_imm(hops, hops, 1);
    m.jmp(wh);
    m.bind(wd);
    m.iadd_imm(j, j, 1);
    m.jmp(sh);
    m.bind(sd);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);
    pb.finish().unwrap()
}

fn run_with_heap(p: &dchm_bytecode::Program, heap: usize) -> (u64, u64, u64) {
    let cfg = VmConfig {
        heap_bytes: heap,
        fuel: Some(20_000_000),
        ..Default::default()
    };
    let mut vm = Vm::new(p.clone(), cfg);
    vm.run_entry().unwrap();
    (
        vm.state.output.checksum,
        vm.state.heap.stats.gc_count,
        vm.state.heap.stats.bytes_allocated,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gc_never_changes_results(
        rounds in 2i64..8,
        churn in 10i64..80,
        keep_mod in 2i64..9,
    ) {
        let p = churn_program(rounds, churn, keep_mod);
        // Small heap: many GCs. Large heap: none.
        let (sum_small, gcs_small, allocated) = run_with_heap(&p, 448 << 10);
        let (sum_large, gcs_large, _) = run_with_heap(&p, 64 << 20);
        prop_assert_eq!(sum_small, sum_large, "GC changed observable behaviour");
        prop_assert_eq!(gcs_large, 0);
        // Whenever total allocation exceeded the small heap, collections
        // must actually have happened.
        if allocated > (448 << 10) {
            prop_assert!(gcs_small > 0, "small heap never collected");
        }
    }
}

#[test]
fn chains_survive_collections_through_next_pointers() {
    let p = churn_program(16, 120, 3);
    let (sum, gcs, _) = run_with_heap(&p, 48 << 10);
    assert!(gcs > 0);
    assert_ne!(sum, 0);
}
