//! Fault-injection differential runner (ISSUE 3 tentpole).
//!
//! The injector perturbs the *host-side machinery* — forced GCs at
//! allocation points, global IC-version bumps, silent same-level
//! recompilation — none of which may move observable output or the modeled
//! clock by a single tick. Every workload of the paper's Table 1 is run
//! with injection off (reference) and on at three seeds; the observable
//! fingerprint must be bit-identical.
//!
//! Forced guard failures are different: they legitimately change which code
//! version executes (specialized frames deoptimize to baseline, which is
//! billed differently), so those runs assert *output* identity only —
//! the correctness property guards exist to protect.
//!
//! Heaps are enlarged so no organic collection fires: an injected (free)
//! GC must then be the only collector activity, keeping billing untouched.
//!
//! Extra seed: set `DCHM_FAULT_SEED=<n>` to add a fourth seed to every
//! sweep (the CI fault-injection job pins one).

use dchm_testutil::{big_heap_config, fail_with_trace, find_workload, observe, prepare_with};
use dchm_vm::{FaultConfig, FaultInjector, RunError, Vm, VmConfig};
use dchm_workloads::Workload;

fn seeds() -> Vec<u64> {
    let mut s = vec![1, 2, 3];
    if let Ok(v) = std::env::var("DCHM_FAULT_SEED") {
        if let Ok(n) = v.parse::<u64>() {
            if !s.contains(&n) {
                s.push(n);
            }
        }
    }
    s
}

fn run_mutated(w: &Workload, injector: Option<FaultInjector>, trace: bool) -> Vm {
    let prepared = prepare_with(w, big_heap_config(w));
    let mut vm = prepared.make_vm(big_heap_config(w));
    if trace {
        // Injected runs fly the flight recorder: every injected fault lands
        // in the ring as a `FaultInjected` event, so a divergence below can
        // name the faults that preceded it. Tracing itself is covered by
        // the same fingerprint comparison — the reference run is untraced.
        vm.enable_tracing(16 * 1024);
    }
    vm.state.injector = injector;
    w.run(&mut vm).expect("mutated run must not trap");
    vm
}

fn check_workload(name: &str) {
    let w = find_workload(name);
    let reference = observe(&run_mutated(&w, None, false));
    assert!(reference.clock > 0);

    for seed in seeds() {
        // Transparent faults: GC at allocations, IC bumps, silent
        // recompiles — at *every* allocation point (period 1), the most
        // hostile schedule. Fingerprint must not move at all.
        let cfg = FaultConfig {
            period: 1,
            ..FaultConfig::transparent(seed)
        };
        let vm = run_mutated(&w, Some(FaultInjector::new(cfg)), true);
        let inj = vm.state.injector.as_ref().expect("injector survives");
        assert!(
            inj.gcs + inj.ic_bumps + inj.recompiles > 0,
            "{name}: seed {seed} injected nothing — the sweep proves nothing"
        );
        let got = observe(&vm);
        if got != reference {
            fail_with_trace(
                &vm,
                format!(
                    "{name}: transparent fault injection (seed {seed}) perturbed the run \
                     ({} gcs, {} ic bumps, {} recompiles injected)\n got: {got:?}\n ref: {reference:?}",
                    inj.gcs, inj.ic_bumps, inj.recompiles
                ),
            );
        }

        // Forced guard failures: output identity only — deoptimized frames
        // legitimately execute (and bill) baseline instead of specialized
        // code.
        let vm = run_mutated(
            &w,
            Some(FaultInjector::new(FaultConfig::guard_failures(seed))),
            true,
        );
        let got = observe(&vm);
        if got.text != reference.text || got.checksum != reference.checksum {
            fail_with_trace(
                &vm,
                format!(
                    "{name}: forced guard failures (seed {seed}) changed observable output\n \
                     got: {got:?}\n ref: {reference:?}"
                ),
            );
        }
        let inj = vm.state.injector.as_ref().expect("injector survives");
        if inj.forced_guard_fails > 0 {
            assert!(
                vm.stats().deopts >= 1,
                "{name}: forced guard failures must deoptimize"
            );
            // Every injector-forced failure is mirrored in the event
            // stream (ring capacity permitting, which 16k covers here).
            let forced_events = vm
                .trace_events()
                .iter()
                .filter(|e| {
                    matches!(
                        e.event,
                        dchm_vm::trace::TraceEvent::GuardFail { forced: true, .. }
                    )
                })
                .count() as u64;
            assert_eq!(
                forced_events, inj.forced_guard_fails,
                "{name}: forced guard failures must all be traced"
            );
        }
    }
}

#[test]
fn salarydb_bit_identical_under_injection() {
    check_workload("SalaryDB");
}

#[test]
fn simlogic_bit_identical_under_injection() {
    check_workload("SimLogic");
}

#[test]
fn csv2xml_bit_identical_under_injection() {
    check_workload("CSVToXML");
}

#[test]
fn java2xhtml_bit_identical_under_injection() {
    check_workload("Java2XHTML");
}

#[test]
fn weka_bit_identical_under_injection() {
    check_workload("Weka");
}

#[test]
fn jbb2000_bit_identical_under_injection() {
    check_workload("SPECjbb2000");
}

#[test]
fn jbb2005_bit_identical_under_injection() {
    check_workload("SPECjbb2005");
}

mod fuzz {
    //! Proptest differential fuzzing: random verified programs whose hot
    //! method reads and writes the state fields its specialized version is
    //! bound to, run mutation-off, mutation-on, and mutation-on under fault
    //! injection. Observable results must be identical everywhere, and the
    //! transparent-fault run must match the uninjected mutated run on the
    //! modeled clock too.

    use dchm_bytecode::{
        ClassId, CmpOp, FieldId, IBinOp, MethodId, MethodSig, Program, ProgramBuilder, Ty, Value,
    };
    use dchm_core::{HotState, MutableClass, MutationEngine, MutationPlan, OlcReport};
    use dchm_vm::{FaultConfig, FaultInjector, RunError, VmConfig};
    use proptest::prelude::*;

    const POOL: usize = 4;

    #[derive(Clone, Debug)]
    enum Stmt {
        Const(usize, i64),
        Bin(IBinOp, usize, usize, usize),
        StoreField(usize, usize),
        LoadField(usize, usize),
        Sink(usize),
        /// Allocate a garbage object: an injection site for the fault
        /// injector (and a ctor-exit patch point).
        Alloc,
        If(CmpOp, usize, usize, Vec<Stmt>, Vec<Stmt>),
        Loop(u8, Vec<Stmt>),
    }

    fn leaf() -> impl Strategy<Value = Stmt> {
        prop_oneof![
            (0..POOL, -8i64..9).prop_map(|(r, v)| Stmt::Const(r, v)),
            (
                prop_oneof![
                    Just(IBinOp::Add),
                    Just(IBinOp::Sub),
                    Just(IBinOp::Mul),
                    Just(IBinOp::Div),
                    Just(IBinOp::Rem),
                    Just(IBinOp::Xor),
                ],
                0..POOL,
                0..POOL,
                0..POOL
            )
                .prop_map(|(op, d, a, b)| Stmt::Bin(op, d, a, b)),
            (0..2usize, 0..POOL).prop_map(|(f, r)| Stmt::StoreField(f, r)),
            (0..POOL, 0..2usize).prop_map(|(r, f)| Stmt::LoadField(r, f)),
            (0..POOL).prop_map(Stmt::Sink),
            Just(Stmt::Alloc),
        ]
    }

    fn stmt() -> impl Strategy<Value = Stmt> {
        leaf().prop_recursive(3, 24, 6, |inner| {
            prop_oneof![
                (
                    prop_oneof![
                        Just(CmpOp::Eq),
                        Just(CmpOp::Ne),
                        Just(CmpOp::Lt),
                        Just(CmpOp::Ge)
                    ],
                    0..POOL,
                    0..POOL,
                    prop::collection::vec(inner.clone(), 0..4),
                    prop::collection::vec(inner.clone(), 0..4)
                )
                    .prop_map(|(c, a, b, t, e)| Stmt::If(c, a, b, t, e)),
                (1u8..4, prop::collection::vec(inner, 1..4))
                    .prop_map(|(n, body)| Stmt::Loop(n, body)),
            ]
        })
    }

    fn emit(
        m: &mut dchm_bytecode::MethodBuilder<'_>,
        pool: &[dchm_bytecode::Reg],
        this: dchm_bytecode::Reg,
        cls: ClassId,
        fields: &[FieldId],
        stmts: &[Stmt],
    ) {
        for s in stmts {
            match s {
                Stmt::Const(r, v) => m.const_i(pool[*r], *v),
                Stmt::Bin(op, d, a, b) => m.ibin(*op, pool[*d], pool[*a], pool[*b]),
                Stmt::StoreField(f, r) => m.put_field(this, fields[*f], pool[*r]),
                Stmt::LoadField(r, f) => m.get_field(pool[*r], this, fields[*f]),
                Stmt::Sink(r) => m.sink_int(pool[*r]),
                Stmt::Alloc => {
                    let g = m.reg();
                    m.new_init(g, cls, vec![]);
                }
                Stmt::If(op, a, b, then_s, else_s) => {
                    let l_else = m.label();
                    let l_end = m.label();
                    let neg = op.negated();
                    m.br_icmp(neg, pool[*a], pool[*b], l_else);
                    emit(m, pool, this, cls, fields, then_s);
                    m.jmp(l_end);
                    m.bind(l_else);
                    emit(m, pool, this, cls, fields, else_s);
                    m.bind(l_end);
                }
                Stmt::Loop(n, body) => {
                    let cnt = m.reg();
                    m.const_i(cnt, *n as i64);
                    let head = m.label();
                    let done = m.label();
                    m.bind(head);
                    let zero = m.imm(0);
                    m.br_icmp(CmpOp::Le, cnt, zero, done);
                    emit(m, pool, this, cls, fields, body);
                    let one = m.imm(1);
                    m.isub(cnt, cnt, one);
                    m.jmp(head);
                    m.bind(done);
                }
            }
        }
    }

    /// class P { int f0 = 1, f1 = 2; void work(){ <random body> } }
    /// main: o = new P(); o.work(); o.work();
    /// The ctor leaves every P in the hot state {f0:1, f1:2}; random
    /// stores inside work() knock `o` out of it mid-frame.
    fn build(stmts: &[Stmt]) -> (Program, ClassId, FieldId, FieldId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("P").build();
        let f0 = pb.instance_field(c, "f0", Ty::Int);
        let f1 = pb.instance_field(c, "f1", Ty::Int);
        let mut m = pb.ctor(c, vec![]);
        let this = m.this();
        let one = m.imm(1);
        m.put_field(this, f0, one);
        let two = m.imm(2);
        m.put_field(this, f1, two);
        m.ret(None);
        m.build();

        let mut m = pb.method(c, "work", MethodSig::void());
        let this = m.this();
        let pool: Vec<_> = (0..POOL).map(|_| m.reg()).collect();
        for (i, &r) in pool.iter().enumerate() {
            m.const_i(r, i as i64 + 1);
        }
        emit(&mut m, &pool, this, c, &[f0, f1], stmts);
        for &r in &pool {
            m.sink_int(r);
        }
        m.ret(None);
        let work = m.build();

        let mut m = pb.static_method(c, "main", MethodSig::void());
        let o = m.reg();
        m.new_init(o, c, vec![]);
        m.call_virtual(None, o, "work", vec![]);
        m.call_virtual(None, o, "work", vec![]);
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        (pb.finish().expect("generated program verifies"), c, f0, f1, work)
    }

    fn plan(c: ClassId, f0: FieldId, f1: FieldId, work: MethodId, hot: bool) -> MutationPlan {
        MutationPlan {
            classes: vec![MutableClass {
                class: c,
                instance_state_fields: vec![f0, f1],
                static_state_fields: vec![],
                hot_states: if hot {
                    vec![HotState {
                        instance_values: vec![(f0, Value::Int(1)), (f1, Value::Int(2))],
                        static_values: vec![],
                        frequency: 1.0,
                    }]
                } else {
                    vec![]
                },
                mutable_methods: vec![work],
                field_scores: vec![],
            }],
            mutation_level: 2,
            k: 0,
            emit_guards: true,
        }
    }

    fn run(
        p: &Program,
        plan: MutationPlan,
        injector: Option<FaultInjector>,
    ) -> (Result<Option<Value>, RunError>, u64, u64, u64) {
        let engine = MutationEngine::new(plan, OlcReport::default());
        let cfg = VmConfig {
            heap_bytes: 64 << 20,
            fuel: Some(2_000_000),
            ..Default::default()
        };
        let mut vm = engine.attach(p.clone(), cfg);
        vm.state.injector = injector;
        let r = vm.run_entry();
        (
            r,
            vm.state.output.checksum,
            vm.cycles(),
            vm.stats().ops_executed,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn mutation_and_injection_never_change_results(
            stmts in prop::collection::vec(stmt(), 1..12),
            seed in 1u64..1_000,
        ) {
            let (p, c, f0, f1, work) = build(&stmts);
            let (r_off, sum_off, _, _) = run(&p, plan(c, f0, f1, work, false), None);
            let (r_on, sum_on, clock_on, ops_on) = run(&p, plan(c, f0, f1, work, true), None);
            prop_assert_eq!(&r_off, &r_on, "mutation changed the result");
            prop_assert_eq!(sum_off, sum_on, "mutation changed the output");

            let inj = FaultInjector::new(FaultConfig {
                period: 1,
                ..FaultConfig::transparent(seed)
            });
            let (r_t, sum_t, clock_t, ops_t) = run(&p, plan(c, f0, f1, work, true), Some(inj));
            prop_assert_eq!(&r_on, &r_t, "transparent faults changed the result");
            prop_assert_eq!(sum_on, sum_t, "transparent faults changed the output");
            prop_assert_eq!(clock_on, clock_t, "transparent faults moved the clock");
            prop_assert_eq!(ops_on, ops_t, "transparent faults changed op count");

            let inj = FaultInjector::new(FaultConfig::guard_failures(seed));
            let (r_g, sum_g, _, _) = run(&p, plan(c, f0, f1, work, true), Some(inj));
            prop_assert_eq!(&r_on, &r_g, "forced guard failures changed the result");
            prop_assert_eq!(sum_on, sum_g, "forced guard failures changed the output");
        }
    }
}

#[test]
fn fuel_exhaustion_is_a_clean_typed_trap_under_injection() {
    // An unbounded loop with a fuel limit must surface RunError::OutOfFuel
    // — not a panic, not a wedged VM — whether or not faults are flying.
    use dchm_bytecode::{MethodSig, ProgramBuilder};
    let mut pb = ProgramBuilder::new();
    let c = pb.class("Spin").build();
    let mut m = pb.static_method(c, "main", MethodSig::void());
    let o = m.reg();
    let head = m.label();
    m.bind(head);
    m.new_obj(o, c); // allocation site: gives at_alloc faults a home
    m.jmp(head);
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();

    for injector in [
        None,
        Some(FaultInjector::new(FaultConfig::transparent(7))),
        Some(FaultInjector::new(FaultConfig::guard_failures(7))),
    ] {
        let cfg = VmConfig {
            fuel: Some(200_000),
            heap_bytes: 64 << 20,
            ..Default::default()
        };
        let mut vm = Vm::new(p.clone(), cfg);
        vm.state.injector = injector;
        let err = vm.run_entry().expect_err("loop must exhaust fuel");
        assert!(matches!(err, RunError::OutOfFuel), "got {err}");
    }
}
