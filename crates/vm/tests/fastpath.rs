//! Tests for the interpreter fast path: inline-cache behaviour under
//! mid-loop TIB mutation, and trap (not panic) semantics for `Unreachable`
//! terminators.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use dchm_bytecode::value::ObjRef;
use dchm_bytecode::{ClassId, CmpOp, FieldId, MethodId, MethodSig, ProgramBuilder, Ty, Value};
use dchm_ir::{Block, Function, Term};
use dchm_vm::{
    CodeMeta, CodeSlot, MutationHandler, PatchSpec, RunError, TibId, Vm, VmConfig, VmState,
};

/// Flips the stored object's TIB on every state-field write: value 1 means
/// "hot state" (special TIB), anything else the class TIB — a miniature of
/// the mutation engine's `object_tib_follows_state_changes` rule.
#[derive(Clone, Default)]
struct TibFlipper(Rc<RefCell<Option<(TibId, TibId)>>>); // (class TIB, special TIB)

impl MutationHandler for TibFlipper {
    fn on_instance_store(&mut self, vm: &mut VmState, obj: ObjRef, _c: ClassId, field: FieldId) {
        let Some((class_tib, special_tib)) = *self.0.borrow() else {
            return;
        };
        let slot = vm.program.field(field).slot as usize;
        let hot = vm.heap.object(obj).fields[slot] == Value::Int(1);
        vm.set_object_tib(obj, if hot { special_tib } else { class_tib });
    }
    fn on_static_store(&mut self, _: &mut VmState, _: FieldId) {}
    fn on_ctor_exit(&mut self, _: &mut VmState, _: ObjRef, _: ClassId) {}
    fn on_recompiled(&mut self, _: &mut VmState, _: MethodId, _: u8) {}
}

#[test]
fn tib_flip_mid_loop_redispatches_cached_call_site() {
    // One virtual call site (inside `phase`) is executed under three TIB
    // regimes: class TIB, special TIB, class TIB again. The monomorphic
    // inline cache must hit within a regime and naturally miss (re-dispatch
    // through the new TIB) right after each flip — no explicit invalidation.
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").build();
    let s = pb.instance_field(c, "s", Ty::Int);
    pb.trivial_ctor(c);
    // get() -> 1: the general behaviour.
    let mut m = pb.method(c, "get", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(1);
    m.ret(Some(r));
    m.build();
    // hotget() -> 2: stands in for the state-specialized version.
    let mut m = pb.method(c, "hotget", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(2);
    m.ret(Some(r));
    let hotget = m.build();
    // set(v): the state-field write the handler watches.
    let mut m = pb.method(c, "set", MethodSig::new(vec![Ty::Int], None));
    let this = m.this();
    let v = m.param(0);
    m.put_field(this, s, v);
    m.ret(None);
    m.build();
    // phase(o, v, n): o.set(v), then n calls of o.get() through ONE site.
    let mut m = pb.static_method(
        c,
        "phase",
        MethodSig::new(vec![Ty::Ref(c), Ty::Int, Ty::Int], Some(Ty::Int)),
    );
    let o = m.param(0);
    let v = m.param(1);
    let n = m.param(2);
    m.call_virtual(None, o, "set", vec![v]);
    let acc = m.reg();
    let i = m.reg();
    let t = m.reg();
    m.const_i(acc, 0);
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    m.call_virtual(Some(t), o, "get", vec![]);
    m.iadd(acc, acc, t);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    let phase = m.build();
    let mut m = pb.static_method(c, "mk", MethodSig::new(vec![], Some(Ty::Ref(c))));
    let o = m.reg();
    m.new_init(o, c, vec![]);
    m.ret(Some(o));
    let mk = m.build();
    let p = pb.finish().unwrap();

    let flipper = TibFlipper::default();
    let mut vm = Vm::with_handler(p, VmConfig::default(), Box::new(flipper.clone()));
    vm.state.patch_spec = PatchSpec {
        instance_fields: [s].into_iter().collect(),
        ..Default::default()
    };

    let obj = vm.call_static(mk, &[]).unwrap().unwrap();
    let Value::Ref(oref) = obj else { panic!() };
    vm.state.add_handle(oref);

    // Special TIB for C's hot state: get's slot points at hotget's code.
    let hot_cid = vm.state.ensure_compiled(hotget);
    let sel_get = vm.state.program.selector("get").unwrap();
    let vslot = vm.state.program.class(c).vtable_slot(sel_get).unwrap();
    let special = vm.state.create_special_tib(c, 0);
    vm.state.sync_special_from_class(c, special, &[vslot]);
    vm.state.set_tib_slot(special, vslot, CodeSlot::Code(hot_cid));
    *flipper.0.borrow_mut() = Some((vm.state.class_tib(c), special));

    let five = Value::Int(5);
    let cold = Value::Int(0);
    let hot = Value::Int(1);
    // Cold: 5 x get() = 5.
    assert_eq!(
        vm.call_static(phase, &[obj, cold, five]).unwrap(),
        Some(Value::Int(5))
    );
    // Hot: the same cached site must now dispatch to hotget: 5 x 2 = 10.
    assert_eq!(
        vm.call_static(phase, &[obj, hot, five]).unwrap(),
        Some(Value::Int(10))
    );
    // And back.
    assert_eq!(
        vm.call_static(phase, &[obj, cold, five]).unwrap(),
        Some(Value::Int(5))
    );

    let stats = vm.stats();
    assert_eq!(stats.tib_flips, 3, "one flip per phase's set()");
    // Within a phase the get-site hits; across flips it must miss and
    // re-dispatch. 15 get() calls, at least one miss per regime change.
    assert!(stats.ic_hits >= 10, "ic_hits = {}", stats.ic_hits);
    assert!(stats.ic_misses >= 3, "ic_misses = {}", stats.ic_misses);
}

#[test]
fn unreachable_terminator_traps_instead_of_panicking() {
    // Simulate an optimizer bug: after normal compilation, swap main's code
    // for a function whose entry block "was proven dead". Executing it must
    // surface RunError::UnreachableExecuted, leaving the VM inspectable.
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").build();
    let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(7);
    m.ret(Some(r));
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();

    let mut vm = Vm::new(p, VmConfig::default());
    let cid = vm.state.ensure_compiled(main);
    let broken = Function {
        blocks: vec![Block::new(Term::Unreachable)],
        num_regs: 0,
        arg_count: 0,
    };
    vm.state.code[cid.index()].meta = Arc::new(CodeMeta::build(&broken));
    vm.state.code[cid.index()].func = Arc::new(broken);

    assert_eq!(vm.run_entry().unwrap_err(), RunError::UnreachableExecuted);
    // Post-mortem state is still consistent: the trapping frame is intact.
    assert_eq!(vm.state.frames.len(), 1);
}
