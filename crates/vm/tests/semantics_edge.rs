//! Edge-case semantics: numeric conversions, wrapping arithmetic, deep
//! recursion (the frame stack is heap-allocated, so Java-scale recursion
//! depth must not overflow the host stack), and intrinsic behaviour.

use dchm_bytecode::{CmpOp, IntrinsicKind, MethodSig, ProgramBuilder, Ty, Value};
use dchm_vm::{Vm, VmConfig};

fn eval_main(build: impl FnOnce(&mut dchm_bytecode::MethodBuilder<'_>)) -> Value {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").build();
    let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
    build(&mut m);
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();
    let mut vm = Vm::new(p, VmConfig::default());
    vm.run_entry().unwrap().unwrap()
}

#[test]
fn d2i_saturates_and_nan_is_zero() {
    let v = eval_main(|m| {
        let acc = m.reg();
        m.const_i(acc, 0);
        for (val, expect) in [
            (1e300, i64::MAX),
            (-1e300, i64::MIN),
            (f64::NAN, 0),
            (2.9, 2),
            (-2.9, -2),
        ] {
            let d = m.imm_d(val);
            let i = m.reg();
            m.d2i(i, d);
            let e = m.imm(expect);
            let ok = m.reg();
            m.icmp(CmpOp::Eq, ok, i, e);
            m.iadd(acc, acc, ok);
        }
        m.ret(Some(acc));
    });
    assert_eq!(v, Value::Int(5));
}

#[test]
fn integer_arithmetic_wraps() {
    let v = eval_main(|m| {
        let max = m.imm(i64::MAX);
        let one = m.imm(1);
        let r = m.reg();
        m.iadd(r, max, one);
        m.ret(Some(r));
    });
    assert_eq!(v, Value::Int(i64::MIN));

    let v = eval_main(|m| {
        let min = m.imm(i64::MIN);
        let r = m.reg();
        m.ineg(r, min);
        m.ret(Some(r));
    });
    assert_eq!(v, Value::Int(i64::MIN)); // -MIN wraps to MIN
}

#[test]
fn shift_counts_are_mod_64() {
    let v = eval_main(|m| {
        let one = m.imm(1);
        let sh = m.imm(65); // behaves as << 1
        let r = m.reg();
        m.ibin(dchm_bytecode::IBinOp::Shl, r, one, sh);
        m.ret(Some(r));
    });
    assert_eq!(v, Value::Int(2));
}

#[test]
fn min_max_abs_intrinsics() {
    let v = eval_main(|m| {
        let a = m.imm(-7);
        let b = m.imm(3);
        let lo = m.reg();
        m.intrinsic(Some(lo), IntrinsicKind::IMin, vec![a, b]);
        let hi = m.reg();
        m.intrinsic(Some(hi), IntrinsicKind::IMax, vec![a, b]);
        let abs = m.reg();
        m.intrinsic(Some(abs), IntrinsicKind::IAbs, vec![lo]);
        // abs(min(-7,3)) * 100 + max(-7,3) = 703
        let hundred = m.imm(100);
        let r = m.reg();
        m.imul(r, abs, hundred);
        m.iadd(r, r, hi);
        m.ret(Some(r));
    });
    assert_eq!(v, Value::Int(703));
}

#[test]
fn dsqrt_and_dabs() {
    let v = eval_main(|m| {
        let x = m.imm_d(-16.0);
        let ax = m.reg();
        m.intrinsic(Some(ax), IntrinsicKind::DAbs, vec![x]);
        let r = m.reg();
        m.dsqrt(r, ax);
        let i = m.reg();
        m.d2i(i, r);
        m.ret(Some(i));
    });
    assert_eq!(v, Value::Int(4));
}

/// 200k-deep self-recursion through virtual dispatch: the interpreter's
/// activation stack is a heap `Vec`, so this must not overflow the host
/// stack (a native-recursion evaluator would die at a few thousand frames).
#[test]
fn deep_recursion_does_not_overflow_host_stack() {
    let mut pb = ProgramBuilder::new();
    let helper = pb.class("Deep").build();
    pb.trivial_ctor(helper);
    let mut m = pb.method(helper, "go", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let this = m.this();
    let n = m.param(0);
    let base = m.label();
    m.br_icmp_imm(CmpOp::Le, n, 0, base);
    let one = m.imm(1);
    let n1 = m.reg();
    m.isub(n1, n, one);
    let r = m.reg();
    m.call_virtual(Some(r), this, "go", vec![n1]); // self-recursion by name
    m.iadd(r, r, one);
    m.ret(Some(r));
    m.bind(base);
    let zero = m.imm(0);
    m.ret(Some(zero));
    m.build();

    let mut m = pb.static_method(helper, "main", MethodSig::new(vec![], Some(Ty::Int)));
    let o = m.reg();
    m.new_init(o, helper, vec![]);
    let depth = m.imm(200_000);
    let out = m.reg();
    m.call_virtual(Some(out), o, "go", vec![depth]);
    m.ret(Some(out));
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();

    // Recursion this deep with inlining is fine, but keep the test focused
    // on frame-stack depth at the baseline tier.
    let cfg = VmConfig {
        sample_period: u64::MAX,
        ..Default::default()
    };
    let mut vm = Vm::new(p, cfg);
    assert_eq!(vm.run_entry().unwrap(), Some(Value::Int(200_000)));
}

#[test]
fn checkcast_null_passes_and_bad_cast_traps() {
    let mut pb = ProgramBuilder::new();
    let a = pb.class("A").build();
    let b = pb.class("B").extends(a).build();
    let other = pb.class("Other").build();
    pb.trivial_ctor(a);
    pb.trivial_ctor(other);
    let _ = b;
    let mut m = pb.static_method(a, "main", MethodSig::void());
    let n = m.reg();
    m.const_null(n);
    m.check_cast(n, b); // null passes any cast
    let o = m.reg();
    m.new_init(o, other, vec![]);
    m.check_cast(o, a); // Other is not an A -> trap
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();
    let mut vm = Vm::new(p, VmConfig::default());
    assert_eq!(vm.run_entry().unwrap_err(), dchm_vm::RunError::ClassCast);
}
