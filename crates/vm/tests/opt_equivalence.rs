//! Property test: the optimizing compiler preserves semantics.
//!
//! Random programs (arithmetic, branches, loops, field traffic) are executed
//! twice — compiled at opt0 and at opt2 (constant propagation, branch
//! folding, strength reduction, DCE, inlining) — and must produce identical
//! results, output checksums and traps.

use proptest::prelude::*;

use dchm_bytecode::{CmpOp, IBinOp, MethodSig, ProgramBuilder, Ty, Value};
use dchm_vm::{RunError, Vm, VmConfig};

const POOL: usize = 4;

#[derive(Clone, Debug)]
enum Stmt {
    Const(usize, i64),
    Bin(IBinOp, usize, usize, usize),
    StoreField(usize, usize),
    LoadField(usize, usize),
    Sink(usize),
    If(CmpOp, usize, usize, Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
}

fn leaf() -> impl Strategy<Value = Stmt> {
    prop_oneof![
        (0..POOL, -8i64..9).prop_map(|(r, v)| Stmt::Const(r, v)),
        (
            prop_oneof![
                Just(IBinOp::Add),
                Just(IBinOp::Sub),
                Just(IBinOp::Mul),
                Just(IBinOp::Div),
                Just(IBinOp::Rem),
                Just(IBinOp::And),
                Just(IBinOp::Or),
                Just(IBinOp::Xor),
            ],
            0..POOL,
            0..POOL,
            0..POOL
        )
            .prop_map(|(op, d, a, b)| Stmt::Bin(op, d, a, b)),
        (0..2usize, 0..POOL).prop_map(|(f, r)| Stmt::StoreField(f, r)),
        (0..POOL, 0..2usize).prop_map(|(r, f)| Stmt::LoadField(r, f)),
        (0..POOL).prop_map(Stmt::Sink),
    ]
}

fn stmt() -> impl Strategy<Value = Stmt> {
    leaf().prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(CmpOp::Eq),
                    Just(CmpOp::Ne),
                    Just(CmpOp::Lt),
                    Just(CmpOp::Ge)
                ],
                0..POOL,
                0..POOL,
                prop::collection::vec(inner.clone(), 0..4),
                prop::collection::vec(inner.clone(), 0..4)
            )
                .prop_map(|(c, a, b, t, e)| Stmt::If(c, a, b, t, e)),
            (1u8..4, prop::collection::vec(inner, 1..4))
                .prop_map(|(n, body)| Stmt::Loop(n, body)),
        ]
    })
}

fn emit(
    m: &mut dchm_bytecode::MethodBuilder<'_>,
    pool: &[dchm_bytecode::Reg],
    obj: dchm_bytecode::Reg,
    fields: &[dchm_bytecode::FieldId],
    stmts: &[Stmt],
) {
    for s in stmts {
        match s {
            Stmt::Const(r, v) => m.const_i(pool[*r], *v),
            Stmt::Bin(op, d, a, b) => m.ibin(*op, pool[*d], pool[*a], pool[*b]),
            Stmt::StoreField(f, r) => m.put_field(obj, fields[*f], pool[*r]),
            Stmt::LoadField(r, f) => m.get_field(pool[*r], obj, fields[*f]),
            Stmt::Sink(r) => m.sink_int(pool[*r]),
            Stmt::If(op, a, b, then_s, else_s) => {
                let l_else = m.label();
                let l_end = m.label();
                let neg = op.negated();
                m.br_icmp(neg, pool[*a], pool[*b], l_else);
                emit(m, pool, obj, fields, then_s);
                m.jmp(l_end);
                m.bind(l_else);
                emit(m, pool, obj, fields, else_s);
                m.bind(l_end);
            }
            Stmt::Loop(n, body) => {
                let cnt = m.reg();
                m.const_i(cnt, *n as i64);
                let head = m.label();
                let done = m.label();
                m.bind(head);
                let zero = m.imm(0);
                m.br_icmp(CmpOp::Le, cnt, zero, done);
                emit(m, pool, obj, fields, body);
                let one = m.imm(1);
                m.isub(cnt, cnt, one);
                m.jmp(head);
                m.bind(done);
            }
        }
    }
}

fn build_and_run(stmts: &[Stmt], level: u8) -> (Result<Option<Value>, RunError>, u64) {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("P").build();
    let f0 = pb.instance_field(c, "f0", Ty::Int);
    let f1 = pb.instance_field(c, "f1", Ty::Int);
    pb.trivial_ctor(c);
    let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
    let obj = m.reg();
    m.new_init(obj, c, vec![]);
    let pool: Vec<_> = (0..POOL).map(|_| m.reg()).collect();
    for (i, &r) in pool.iter().enumerate() {
        m.const_i(r, i as i64 + 1);
    }
    emit(&mut m, &pool, obj, &[f0, f1], stmts);
    for &r in &pool {
        m.sink_int(r);
    }
    m.ret(Some(pool[0]));
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().expect("generated program verifies");

    let cfg = VmConfig {
        initial_level: level,
        sample_period: u64::MAX, // no recompilation mid-run
        fuel: Some(2_000_000),
        ..Default::default()
    };
    let mut vm = Vm::new(p, cfg);
    let r = vm.run_entry();
    (r, vm.state.output.checksum)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn opt2_matches_opt0(stmts in prop::collection::vec(stmt(), 1..12)) {
        let (r0, sum0) = build_and_run(&stmts, 0);
        let (r2, sum2) = build_and_run(&stmts, 2);
        prop_assert_eq!(&r0, &r2, "result diverged");
        prop_assert_eq!(sum0, sum2, "output checksum diverged");
    }

    #[test]
    fn opt1_matches_opt0(stmts in prop::collection::vec(stmt(), 1..12)) {
        let (r0, sum0) = build_and_run(&stmts, 0);
        let (r1, sum1) = build_and_run(&stmts, 1);
        prop_assert_eq!(&r0, &r1);
        prop_assert_eq!(sum0, sum1);
    }
}
