//! End-to-end execution tests for the VM: dispatch semantics, adaptive
//! recompilation, GC, traps, patch-point delivery.

use dchm_bytecode::value::ObjRef;
use dchm_bytecode::{
    ClassId, CmpOp, FieldId, MethodId, MethodSig, ProgramBuilder, Ty, Value,
};
use dchm_vm::{MutationHandler, PatchSpec, RunError, Vm, VmConfig, VmState};

fn run_main(
    build: impl FnOnce(&mut ProgramBuilder) -> MethodId,
    config: VmConfig,
) -> (Vm, Result<Option<Value>, RunError>) {
    let mut pb = ProgramBuilder::new();
    let main = build(&mut pb);
    pb.set_entry(main);
    let p = pb.finish().expect("program verifies");
    let mut vm = Vm::new(p, config);
    let r = vm.run_entry();
    (vm, r)
}

#[test]
fn loop_sum_in_virtual_method() {
    let (vm, r) = run_main(
        |pb| {
            let c = pb.class("Adder").build();
            pb.trivial_ctor(c);
            let mut m = pb.method(c, "sum", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
            let n = m.param(0);
            let acc = m.reg();
            let i = m.reg();
            m.const_i(acc, 0);
            m.const_i(i, 0);
            let head = m.label();
            let done = m.label();
            m.bind(head);
            m.br_icmp(CmpOp::Ge, i, n, done);
            m.iadd(acc, acc, i);
            m.iadd_imm(i, i, 1);
            m.jmp(head);
            m.bind(done);
            m.ret(Some(acc));
            m.build();

            let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
            let obj = m.reg();
            m.new_init(obj, c, vec![]);
            let n = m.imm(100);
            let out = m.reg();
            m.call_virtual(Some(out), obj, "sum", vec![n]);
            m.ret(Some(out));
            m.build()
        },
        VmConfig::default(),
    );
    assert_eq!(r.unwrap(), Some(Value::Int(4950)));
    assert!(vm.stats().ops_executed > 300);
    assert!(vm.cycles() > 0);
}

#[test]
fn virtual_dispatch_picks_override() {
    let (_, r) = run_main(
        |pb| {
            let a = pb.class("A").build();
            let b = pb.class("B").extends(a).build();
            pb.trivial_ctor(a);
            pb.trivial_ctor(b);
            let mut m = pb.method(a, "tag", MethodSig::new(vec![], Some(Ty::Int)));
            let r = m.imm(1);
            m.ret(Some(r));
            m.build();
            let mut m = pb.method(b, "tag", MethodSig::new(vec![], Some(Ty::Int)));
            let r = m.imm(2);
            m.ret(Some(r));
            m.build();

            let mut m = pb.static_method(a, "main", MethodSig::new(vec![], Some(Ty::Int)));
            let oa = m.reg();
            let ob = m.reg();
            m.new_init(oa, a, vec![]);
            m.new_init(ob, b, vec![]);
            let ta = m.reg();
            let tb = m.reg();
            m.call_virtual(Some(ta), oa, "tag", vec![]);
            m.call_virtual(Some(tb), ob, "tag", vec![]);
            let ten = m.imm(10);
            let out = m.reg();
            m.imul(out, ta, ten);
            m.iadd(out, out, tb);
            m.ret(Some(out));
            m.build()
        },
        VmConfig::default(),
    );
    assert_eq!(r.unwrap(), Some(Value::Int(12)));
}

#[test]
fn invokespecial_super_and_private() {
    let (_, r) = run_main(
        |pb| {
            let a = pb.class("A").build();
            let b = pb.class("B").extends(a).build();
            pb.trivial_ctor(a);
            pb.trivial_ctor(b);
            let mut m = pb.method(a, "f", MethodSig::new(vec![], Some(Ty::Int)));
            let r = m.imm(7);
            m.ret(Some(r));
            m.build();
            // B overrides f, but also calls super::f via invokespecial on A.
            let mut m = pb.method(b, "f", MethodSig::new(vec![], Some(Ty::Int)));
            let this = m.this();
            let sup = m.reg();
            m.call_special(Some(sup), a, "f", this, vec![]);
            let hundred = m.imm(100);
            let out = m.reg();
            m.iadd(out, sup, hundred);
            m.ret(Some(out));
            m.build();
            // Private method is statically bound.
            let mut m = pb.method(b, "secret", MethodSig::new(vec![], Some(Ty::Int)));
            m.private();
            let r = m.imm(1000);
            m.ret(Some(r));
            m.build();
            let mut m = pb.method(b, "call_secret", MethodSig::new(vec![], Some(Ty::Int)));
            let this = m.this();
            let s = m.reg();
            m.call_special(Some(s), b, "secret", this, vec![]);
            m.ret(Some(s));
            m.build();

            let mut m = pb.static_method(a, "main", MethodSig::new(vec![], Some(Ty::Int)));
            let ob = m.reg();
            m.new_init(ob, b, vec![]);
            let f = m.reg();
            m.call_virtual(Some(f), ob, "f", vec![]); // B::f = 107
            let s = m.reg();
            m.call_virtual(Some(s), ob, "call_secret", vec![]); // 1000
            let out = m.reg();
            m.iadd(out, f, s);
            m.ret(Some(out));
            m.build()
        },
        VmConfig::default(),
    );
    assert_eq!(r.unwrap(), Some(Value::Int(1107)));
}

#[test]
fn interface_dispatch() {
    let (_, r) = run_main(
        |pb| {
            let shape = pb.class("Shape").interface().build();
            pb.abstract_method(shape, "area", MethodSig::new(vec![], Some(Ty::Int)));
            let sq = pb.class("Square").implements(shape).build();
            let tri = pb.class("Tri").implements(shape).build();
            pb.trivial_ctor(sq);
            pb.trivial_ctor(tri);
            let mut m = pb.method(sq, "area", MethodSig::new(vec![], Some(Ty::Int)));
            let r = m.imm(4);
            m.ret(Some(r));
            m.build();
            let mut m = pb.method(tri, "area", MethodSig::new(vec![], Some(Ty::Int)));
            let r = m.imm(3);
            m.ret(Some(r));
            m.build();

            let mut m = pb.static_method(sq, "main", MethodSig::new(vec![], Some(Ty::Int)));
            let a = m.reg();
            let b = m.reg();
            m.new_init(a, sq, vec![]);
            m.new_init(b, tri, vec![]);
            let x = m.reg();
            let y = m.reg();
            m.call_interface(Some(x), shape, a, "area", vec![]);
            m.call_interface(Some(y), shape, b, "area", vec![]);
            let out = m.reg();
            m.iadd(out, x, y);
            m.ret(Some(out));
            m.build()
        },
        VmConfig::default(),
    );
    assert_eq!(r.unwrap(), Some(Value::Int(7)));
}

#[test]
fn adaptive_system_promotes_hot_method_and_preserves_result() {
    let build = |pb: &mut ProgramBuilder| {
        let c = pb.class("Hot").build();
        pb.trivial_ctor(c);
        let mut m = pb.method(c, "work", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
        let n = m.param(0);
        let acc = m.reg();
        let i = m.reg();
        m.const_i(acc, 0);
        m.const_i(i, 0);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        m.br_icmp(CmpOp::Ge, i, n, done);
        let t = m.reg();
        let three = m.imm(3);
        m.imul(t, i, three);
        m.iadd(acc, acc, t);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(done);
        m.ret(Some(acc));
        m.build();

        let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
        let obj = m.reg();
        m.new_init(obj, c, vec![]);
        let total = m.reg();
        m.const_i(total, 0);
        let i = m.reg();
        m.const_i(i, 0);
        let head = m.label();
        let done = m.label();
        m.bind(head);
        let lim = m.imm(600);
        m.br_icmp(CmpOp::Ge, i, lim, done);
        let n = m.imm(50);
        let w = m.reg();
        m.call_virtual(Some(w), obj, "work", vec![n]);
        m.iadd(total, total, w);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(done);
        m.ret(Some(total));
        m.build()
    };
    // Expected: 600 * sum(3i, i<50) = 600 * 3675
    let expected = Some(Value::Int(600 * 3675));

    let cfg = VmConfig {
        sample_period: 20_000, // sample aggressively
        ..Default::default()
    };
    let (vm, r) = run_main(build, cfg);
    assert_eq!(r.unwrap(), expected);
    // The hot loop methods got promoted to opt2.
    let hot = vm.stats().hot_methods();
    let top = &vm.stats().per_method[hot[0].0.index()];
    assert_eq!(top.level, Some(2), "hottest method should reach opt2");
    assert!(top.recompiles >= 1);
    assert!(vm.stats().compile_cycles > 0);
    assert!(vm.stats().samples_taken > 10);

    // A VM that never samples computes the same answer (semantic equivalence
    // across tiers).
    let cfg0 = VmConfig {
        sample_period: u64::MAX,
        ..Default::default()
    };
    let (vm0, r0) = run_main(build, cfg0);
    assert_eq!(r0.unwrap(), expected);
    assert_eq!(vm0.stats().compiles_by_level[2], 0);
}

#[test]
fn gc_runs_and_program_survives() {
    let cfg = VmConfig {
        heap_bytes: 8 << 10, // 8 KB: forces many collections
        ..Default::default()
    };
    let (vm, r) = run_main(
        |pb| {
            let c = pb.class("Churn").build();
            pb.instance_field(c, "x", Ty::Int);
            pb.trivial_ctor(c);
            let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
            let i = m.reg();
            m.const_i(i, 0);
            let head = m.label();
            let done = m.label();
            m.bind(head);
            let lim = m.imm(2000);
            m.br_icmp(CmpOp::Ge, i, lim, done);
            let o = m.reg();
            m.new_init(o, c, vec![]); // instantly garbage
            m.iadd_imm(i, i, 1);
            m.jmp(head);
            m.bind(done);
            m.ret(Some(i));
            m.build()
        },
        cfg,
    );
    assert_eq!(r.unwrap(), Some(Value::Int(2000)));
    assert!(vm.state.heap.stats.gc_count > 0, "GC must have run");
    assert!(vm.stats().gc_cycles > 0);
}

#[test]
fn traps_propagate() {
    // Divide by zero.
    let (_, r) = run_main(
        |pb| {
            let c = pb.class("C").build();
            let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
            let a = m.imm(1);
            let z = m.imm(0);
            let out = m.reg();
            m.idiv(out, a, z);
            m.ret(Some(out));
            m.build()
        },
        VmConfig::default(),
    );
    assert_eq!(r.unwrap_err(), RunError::DivideByZero);

    // Null pointer.
    let (_, r) = run_main(
        |pb| {
            let c = pb.class("C").build();
            let f = pb.instance_field(c, "x", Ty::Int);
            let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
            let n = m.reg();
            m.const_null(n);
            let out = m.reg();
            m.get_field(out, n, f);
            m.ret(Some(out));
            m.build()
        },
        VmConfig::default(),
    );
    assert_eq!(r.unwrap_err(), RunError::NullPointer);

    // Array bounds.
    let (_, r) = run_main(
        |pb| {
            let c = pb.class("C").build();
            let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
            let len = m.imm(2);
            let arr = m.reg();
            m.new_arr(arr, dchm_bytecode::ElemKind::Int, len);
            let idx = m.imm(5);
            let out = m.reg();
            m.aload(out, arr, idx);
            m.ret(Some(out));
            m.build()
        },
        VmConfig::default(),
    );
    assert!(matches!(r.unwrap_err(), RunError::ArrayBounds { index: 5, len: 2 }));
}

#[test]
fn fuel_guard_catches_infinite_loop() {
    let cfg = VmConfig {
        fuel: Some(10_000),
        ..Default::default()
    };
    let (_, r) = run_main(
        |pb| {
            let c = pb.class("C").build();
            let mut m = pb.static_method(c, "main", MethodSig::void());
            let head = m.label();
            m.bind(head);
            let x = m.imm(1);
            m.sink_int(x);
            m.jmp(head);
            m.build()
        },
        cfg,
    );
    assert_eq!(r.unwrap_err(), RunError::OutOfFuel);
}

#[test]
fn output_text_and_checksum() {
    let (vm, r) = run_main(
        |pb| {
            let c = pb.class("C").build();
            let mut m = pb.static_method(c, "main", MethodSig::void());
            let a = m.imm(65);
            m.intrinsic(None, dchm_bytecode::IntrinsicKind::PrintChar, vec![a]);
            let b = m.imm(42);
            m.print_int(b);
            m.sink_int(b);
            m.ret(None);
            m.build()
        },
        VmConfig::default(),
    );
    r.unwrap();
    assert_eq!(vm.state.output.text, "A42\n");
    assert_ne!(vm.state.output.checksum, 0);
}

/// A recording handler proving patch points fire with the right payloads.
#[derive(Default)]
struct Recorder {
    ctor_exits: Vec<(ObjRef, ClassId)>,
    inst_stores: Vec<(ObjRef, FieldId)>,
    static_stores: Vec<FieldId>,
    recompiles: Vec<(MethodId, u8)>,
}

// The handler needs shared access from the test after the run; use a thin
// Rc<RefCell<>> wrapper.
#[derive(Clone, Default)]
struct SharedRecorder(std::rc::Rc<std::cell::RefCell<Recorder>>);

impl MutationHandler for SharedRecorder {
    fn on_instance_store(&mut self, _vm: &mut VmState, obj: ObjRef, _c: ClassId, f: FieldId) {
        self.0.borrow_mut().inst_stores.push((obj, f));
    }
    fn on_static_store(&mut self, _vm: &mut VmState, f: FieldId) {
        self.0.borrow_mut().static_stores.push(f);
    }
    fn on_ctor_exit(&mut self, _vm: &mut VmState, obj: ObjRef, c: ClassId) {
        self.0.borrow_mut().ctor_exits.push((obj, c));
    }
    fn on_recompiled(&mut self, _vm: &mut VmState, m: MethodId, l: u8) {
        self.0.borrow_mut().recompiles.push((m, l));
    }
}

#[test]
fn patch_points_fire() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("M").build();
    let grade = pb.instance_field(c, "grade", Ty::Int);
    let mode = pb.static_field(c, "mode", Ty::Int, 0i64.into());
    // ctor sets grade = param.
    let mut m = pb.ctor(c, vec![Ty::Int]);
    let this = m.this();
    let g = m.param(0);
    m.put_field(this, grade, g);
    m.ret(None);
    m.build();
    // setter reassigns grade.
    let mut m = pb.method(c, "promote", MethodSig::new(vec![Ty::Int], None));
    let this = m.this();
    let g = m.param(0);
    m.put_field(this, grade, g);
    m.ret(None);
    m.build();

    let mut m = pb.static_method(c, "main", MethodSig::void());
    let obj = m.reg();
    let one = m.imm(1);
    m.new_init(obj, c, vec![one]);
    let two = m.imm(2);
    m.call_virtual(None, obj, "promote", vec![two]);
    let five = m.imm(5);
    m.put_static(mode, five);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();

    let rec = SharedRecorder::default();
    let mut vm = Vm::with_handler(p, VmConfig::default(), Box::new(rec.clone()));
    vm.state.patch_spec = PatchSpec {
        instance_fields: [grade].into_iter().collect(),
        static_fields: [mode].into_iter().collect(),
        ctor_classes: [c].into_iter().collect(),
    };
    vm.run_entry().unwrap();

    let r = rec.0.borrow();
    // The ctor stores grade (1 inst store) and exits (1 ctor exit);
    // promote stores grade again (1 inst store); main stores mode (1 static).
    assert_eq!(r.ctor_exits.len(), 1);
    assert_eq!(r.ctor_exits[0].1, c);
    assert_eq!(r.inst_stores.len(), 2);
    assert!(r.inst_stores.iter().all(|&(_, f)| f == grade));
    assert_eq!(r.static_stores, vec![mode]);
    // Initial compiles reported (main + ctor + promote at opt0).
    assert!(r.recompiles.iter().all(|&(_, l)| l == 0));
    assert!(r.recompiles.len() >= 3);
}

#[test]
fn checkcast_transparent_to_special_tibs() {
    // Flip an object's TIB to a special TIB and verify instanceof/checkcast
    // still see the class (Sec. 3.2.3: type info entry, not TIB identity).
    let mut pb = ProgramBuilder::new();
    let a = pb.class("A").build();
    let b = pb.class("B").extends(a).build();
    pb.trivial_ctor(b);
    let mut m = pb.static_method(b, "test", MethodSig::new(vec![Ty::Ref(a)], Some(Ty::Int)));
    let o = m.param(0);
    m.check_cast(o, b); // must not trap
    let out = m.reg();
    m.instance_of(out, o, a);
    m.ret(Some(out));
    let test = m.build();
    let mut m = pb.static_method(b, "mk", MethodSig::new(vec![], Some(Ty::Ref(b))));
    let o = m.reg();
    m.new_init(o, b, vec![]);
    m.ret(Some(o));
    let mk = m.build();
    let p = pb.finish().unwrap();

    let mut vm = Vm::new(p, VmConfig::default());
    let obj = vm.call_static(mk, &[]).unwrap().unwrap();
    let Value::Ref(oref) = obj else { panic!() };
    vm.state.add_handle(oref);
    // Create and install a special TIB for B.
    let special = vm.state.create_special_tib(b, 0);
    vm.state.sync_special_from_class(b, special, &[]);
    vm.state.set_object_tib(oref, special);
    let r = vm.call_static(test, &[obj]).unwrap();
    assert_eq!(r, Some(Value::Int(1)));
}

#[test]
fn dispatch_through_special_tib_runs_patched_code() {
    // The core mutation mechanism: after repointing a TIB slot at different
    // compiled code, dispatch through the special TIB runs that code with
    // no extra dispatch work.
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").build();
    pb.trivial_ctor(c);
    let mut m = pb.method(c, "v", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(10);
    m.ret(Some(r));
    m.build();
    // A second method whose compiled code we'll graft into v's slot.
    let mut m = pb.method(c, "w", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(99);
    m.ret(Some(r));
    let w = m.build();
    let mut m = pb.static_method(c, "mk", MethodSig::new(vec![], Some(Ty::Ref(c))));
    let o = m.reg();
    m.new_init(o, c, vec![]);
    m.ret(Some(o));
    let mk = m.build();
    let mut m = pb.static_method(c, "callv", MethodSig::new(vec![Ty::Ref(c)], Some(Ty::Int)));
    let o = m.param(0);
    let out = m.reg();
    m.call_virtual(Some(out), o, "v", vec![]);
    m.ret(Some(out));
    let callv = m.build();
    let p = pb.finish().unwrap();

    let mut vm = Vm::new(p, VmConfig::default());
    let obj = vm.call_static(mk, &[]).unwrap().unwrap();
    let Value::Ref(oref) = obj else { panic!() };
    vm.state.add_handle(oref);

    // Baseline: v returns 10.
    assert_eq!(vm.call_static(callv, &[obj]).unwrap(), Some(Value::Int(10)));

    // Build a special TIB whose v-slot points at w's code.
    let w_cid = vm.state.ensure_compiled(w);
    let sel_v = vm.state.program.selector("v").unwrap();
    let vslot = vm.state.program.class(c).vtable_slot(sel_v).unwrap();
    let special = vm.state.create_special_tib(c, 0);
    vm.state.sync_special_from_class(c, special, &[vslot]);
    vm.state
        .set_tib_slot(special, vslot, dchm_vm::CodeSlot::Code(w_cid));
    vm.state.set_object_tib(oref, special);
    assert_eq!(vm.call_static(callv, &[obj]).unwrap(), Some(Value::Int(99)));

    // Flip back to the class TIB: original behaviour returns.
    let class_tib = vm.state.class_tib(c);
    vm.state.set_object_tib(oref, class_tib);
    assert_eq!(vm.call_static(callv, &[obj]).unwrap(), Some(Value::Int(10)));
}

#[test]
fn static_override_redirects_statically_bound_calls() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").build();
    let mut m = pb.static_method(c, "f", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(1);
    m.ret(Some(r));
    let f = m.build();
    let mut m = pb.static_method(c, "g", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(2);
    m.ret(Some(r));
    let g = m.build();
    let mut m = pb.static_method(c, "callf", MethodSig::new(vec![], Some(Ty::Int)));
    let out = m.reg();
    m.call_static(Some(out), f, vec![]);
    m.ret(Some(out));
    let callf = m.build();
    let p = pb.finish().unwrap();

    let mut vm = Vm::new(p, VmConfig::default());
    assert_eq!(vm.call_static(callf, &[]).unwrap(), Some(Value::Int(1)));
    let g_cid = vm.state.ensure_compiled(g);
    vm.state.set_static_override(f, Some(g_cid));
    assert_eq!(vm.call_static(callf, &[]).unwrap(), Some(Value::Int(2)));
    vm.state.set_static_override(f, None);
    assert_eq!(vm.call_static(callf, &[]).unwrap(), Some(Value::Int(1)));
}
