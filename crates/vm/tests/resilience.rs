//! Resilience-governor acceptance suite (ISSUE 8 tentpole).
//!
//! The storm scenario is [`dchm_testutil::storm_salarydb`]: SalaryDB's
//! branch ladder plus a no-op `grade` re-store at the end of `raise()`.
//! Under `FaultConfig::guard_failures` at period 1 every specialized
//! `raise()` call guard-fails, deoptimizes, finishes at baseline — and the
//! re-store's patch point flips the object straight back onto its special
//! TIB, re-arming the storm for the next call. An ungoverned VM grinds
//! through that forever; the governor must throttle per-site
//! respecialization with exponential backoff and eventually blacklist the
//! specials, while changing *nothing* about the program's output.
//!
//! The other half of the suite drives the containment boundary: injected
//! panics become typed `RunError::VmInvariant` with a poisoned VM, injected
//! OOM becomes `RunError::OutOfMemory`, and `max_frame_depth` turns runaway
//! recursion into `RunError::StackOverflow` — all without ever aborting the
//! test harness.

// The vendored proptest shim's macro is token-munching; long property
// bodies need headroom.
#![recursion_limit = "1024"]

use dchm_bytecode::{CmpOp, MethodSig, Program, ProgramBuilder, Ty, Value};
use dchm_testutil::{
    attach_plan, find_workload, harness_config, observe, prepare_workload, storm_config,
    storm_salarydb, Obs,
};
use dchm_trace::TraceEvent;
use dchm_vm::{FaultConfig, FaultInjector, GovernorConfig, RunError, Vm, VmConfig};
use dchm_workloads::{catalog, Scale};

/// Governor tuned so a ~1k-call storm walks the full escalation ladder
/// (throttle → doubled backoffs → blacklist) inside one small test run.
/// Production defaults use the same shape with larger constants.
fn test_governor() -> GovernorConfig {
    GovernorConfig {
        storm_window: 50_000,
        throttle_threshold: 8,
        blacklist_threshold: 32,
        backoff_base: 1_000,
        backoff_max_exp: 4,
        ..Default::default()
    }
}

/// One storm run: specials exist from the first compile (the plan's
/// `mutation_level` is 0), every guard is forced to fail (period 1).
fn run_storm(seed: u64, governor_on: bool, trace: bool) -> Vm {
    let (p, plan) = storm_salarydb(24, 40);
    let mut vm = attach_plan(&p, plan, VmConfig::default());
    if trace {
        vm.enable_tracing(1 << 16);
    }
    vm.state.config.governor = test_governor();
    vm.state.config.governor.enabled = governor_on;
    vm.state.injector = Some(FaultInjector::new(FaultConfig {
        period: 1,
        ..FaultConfig::guard_failures(seed)
    }));
    vm.run_entry().expect("storm run completes");
    vm
}

/// The core acceptance property: under a sustained forced-guard-fail storm
/// the governed VM produces bit-identical output while the escalation
/// ladder (throttle → backoff → blacklist) caps the deopt churn at a small
/// constant per site — the ungoverned VM deopts on *every* call forever.
///
/// The modeled clock may not grow: guards are 0-cycle and the deopt
/// transition is unbilled, so damping the storm can only remove host-side
/// work (the wall-clock ops/sec gate lives in `bench_resilience`, where
/// the storm is large enough to time reliably).
#[test]
fn governed_storm_same_output_with_damped_churn() {
    let off = run_storm(1, false, false);
    let on = run_storm(1, true, false);

    assert_eq!(off.state.output.text, on.state.output.text);
    assert_eq!(off.state.output.checksum, on.state.output.checksum);

    let s = on.stats();
    assert!(s.specials_throttled > 0, "storm never throttled");
    assert!(s.specials_blacklisted >= 1, "storm never blacklisted");
    assert!(
        on.cycles() <= off.cycles(),
        "governor made the storm slower on the modeled clock"
    );
    // The ungoverned VM deopts and TIB-flips persistently more: the
    // governed run stops churning once every site is pinned.
    assert!(
        off.stats().deopts >= 4 * s.deopts,
        "churn not damped: off {} deopts vs on {}",
        off.stats().deopts,
        s.deopts
    );
    assert!(off.stats().tib_flips >= 4 * s.tib_flips);
}

/// The tiering acceptance gate: with the adaptive system promoting
/// `raise` to opt2 (the `storm_config` cadence), a deopt storm pins every
/// call to the padded level-0 baseline, while the governed VM escalates to
/// pinned *general opt2* code — at least twice the modeled throughput for
/// the same output. This is the deterministic form of the wall-clock
/// ops/sec gate `bench_resilience` measures.
#[test]
fn governed_storm_doubles_modeled_throughput_under_tiering() {
    let mut clocks = Vec::new();
    let mut outputs = Vec::new();
    for on in [false, true] {
        let (p, plan) = storm_salarydb(24, 400);
        let mut vm = attach_plan(&p, plan, storm_config());
        vm.state.config.governor.enabled = on;
        vm.state.injector = Some(FaultInjector::new(FaultConfig {
            period: 1,
            ..FaultConfig::guard_failures(1)
        }));
        vm.run_entry().expect("storm run completes");
        clocks.push(vm.cycles());
        outputs.push((vm.state.output.text.clone(), vm.state.output.checksum));
    }
    assert_eq!(outputs[0], outputs[1], "governor changed storm output");
    assert!(
        clocks[0] >= 2 * clocks[1],
        "tiered storm not 2x damped: off {} vs on {}",
        clocks[0],
        clocks[1]
    );
}

/// Governor decisions are pure functions of (method id, binding
/// fingerprint, modeled clock): re-running the same storm gives the same
/// fingerprint and the same throttle/blacklist counts, across seeds.
#[test]
fn storm_decisions_bit_identical_across_runs() {
    for seed in [1u64, 2, 3] {
        let a = run_storm(seed, true, false);
        let b = run_storm(seed, true, false);
        assert_eq!(observe(&a), observe(&b), "seed {seed} diverged");
        let (sa, sb) = (a.stats(), b.stats());
        assert_eq!(sa.specials_throttled, sb.specials_throttled);
        assert_eq!(sa.specials_blacklisted, sb.specials_blacklisted);
        assert_eq!(sa.deopts, sb.deopts);
    }
}

/// Every throttle event's backoff must match the deterministic schedule:
/// episode `n` backs off exactly `base << min(n-1, max_exp)` modeled
/// cycles from the cycle it fired at.
#[test]
fn backoff_schedule_is_exponential_and_monotone() {
    let vm = run_storm(1, true, true);
    let cfg = test_governor();
    let mut episodes_seen = 0u32;
    let mut max_episode = 0u32;
    for ev in vm.state.tracer.events() {
        if let TraceEvent::SpecialThrottled { episode, until_cycle, .. } = ev.event {
            let want = cfg.backoff_base << (episode - 1).min(cfg.backoff_max_exp);
            assert_eq!(
                until_cycle - ev.cycle,
                want,
                "episode {episode} backed off {} cycles, want {want}",
                until_cycle - ev.cycle
            );
            episodes_seen += 1;
            max_episode = max_episode.max(episode);
        }
    }
    assert!(episodes_seen >= 2, "storm produced {episodes_seen} throttle events");
    assert!(max_episode >= 2, "backoff never escalated past episode 1");
}

/// Once the last special is blacklisted the storm is over for good: no
/// deoptimization can happen afterwards, because every site is pinned to
/// general (guard-free) code permanently.
#[test]
fn blacklisted_specials_never_reenter() {
    let vm = run_storm(1, true, true);
    let events = vm.state.tracer.events();
    let last_blacklist = events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::SpecialBlacklisted { .. }))
        .map(|e| e.seq)
        .max()
        .expect("storm must blacklist at least one special");
    // The guard failure that *triggered* the final blacklist still has to
    // deoptimize its own frame (the verdict lands before the transfer), so
    // exactly one deopt may trail the event; none after that.
    let late_deopts = events
        .iter()
        .filter(|e| e.seq > last_blacklist && matches!(e.event, TraceEvent::Deopt { .. }))
        .count();
    assert!(
        late_deopts <= 1,
        "{late_deopts} deopts after the last blacklist — a banned special re-entered"
    );
}

/// A governor that never fires is invisible: with no injector the storm
/// program's guards all pass (the re-store flips to the *same* state), so
/// governor-on and governor-off runs must agree on output AND clock.
#[test]
fn untriggered_governor_is_clock_transparent_on_storm_program() {
    let mut obs = Vec::new();
    for on in [true, false] {
        let (p, plan) = storm_salarydb(24, 40);
        let mut vm = attach_plan(&p, plan, VmConfig::default());
        vm.state.config.governor.enabled = on;
        vm.run_entry().expect("quiet run completes");
        assert_eq!(vm.stats().specials_throttled, 0);
        assert_eq!(vm.stats().specials_blacklisted, 0);
        obs.push(observe(&vm));
    }
    assert_eq!(obs[0], obs[1]);
}

/// Same transparency property over the full Table 1 catalog: the governor
/// ships enabled by default, and on healthy workloads (no injected
/// faults, no storms) disabling it must not move a single modeled cycle.
#[test]
fn untriggered_governor_is_clock_transparent_on_all_workloads() {
    for w in catalog(Scale::Small) {
        let prepared = prepare_workload(&w);
        let mut obs = Vec::new();
        for on in [true, false] {
            let mut vm = prepared.make_vm(harness_config(&w));
            vm.state.config.governor.enabled = on;
            w.run(&mut vm).expect("workload runs");
            assert_eq!(vm.stats().specials_throttled, 0, "{}: governor fired organically", w.name);
            obs.push(observe(&vm));
        }
        assert_eq!(obs[0], obs[1], "{}: governor toggle moved the fingerprint", w.name);
    }
}

/// Compile failures tier the affected method down to its cached level-0
/// baseline; persistent failure quarantines the (method, level) pair.
/// Output must be identical to a fault-free run — only billing may move.
#[test]
fn compile_failures_tier_down_without_changing_output() {
    let (p, plan) = storm_salarydb(24, 40);
    let reference = {
        let mut vm = attach_plan(&p, plan.clone(), VmConfig::default());
        vm.run_entry().expect("reference run completes");
        vm
    };
    let mut vm = attach_plan(&p, plan, VmConfig::default());
    vm.enable_tracing(1 << 16);
    vm.state.injector = Some(FaultInjector::new(FaultConfig {
        period: 1,
        ..FaultConfig::compile_failures(3)
    }));
    vm.run_entry().expect("tier-down run completes");

    assert_eq!(reference.state.output.text, vm.state.output.text);
    assert_eq!(reference.state.output.checksum, vm.state.output.checksum);
    let s = vm.stats();
    assert!(s.compile_failures > 0, "no compile failures injected");
    assert!(s.compile_quarantines > 0, "period-1 failures never quarantined");

    // Stale-hit regression: while a (method, level) pair is quarantined the
    // compile path is gated *before* the codecache probe, so no cache hit
    // for that pair may appear inside a quarantine's backoff interval.
    let events = vm.state.tracer.events();
    for q in &events {
        let TraceEvent::CompileQuarantine { method, level, until_cycle, .. } = q.event else {
            continue;
        };
        for h in &events {
            if let TraceEvent::CodeCacheHit { method: hm, level: hl, .. } = h.event {
                assert!(
                    !(hm == method && hl == level && h.seq > q.seq && h.cycle < until_cycle),
                    "codecache hit for quarantined (method {method}, level {level}) \
                     inside its backoff window"
                );
            }
        }
    }
}

/// Injected panics must not cross the `Vm::run` boundary: the harness sees
/// a typed `VmInvariant`, the VM is poisoned, and any further run refuses
/// with `Poisoned` instead of touching suspect state.
#[test]
fn injected_panic_is_contained_and_poisons_the_vm() {
    let (p, plan) = storm_salarydb(24, 40);
    let mut vm = attach_plan(&p, plan, VmConfig::default());
    vm.state.injector = Some(FaultInjector::new(FaultConfig {
        gc_at_alloc: false,
        ic_bumps: false,
        recompiles: false,
        panic_at_op: true,
        period: 5,
        ..FaultConfig::transparent(7)
    }));
    match vm.run_entry() {
        Err(RunError::VmInvariant { what }) => {
            assert!(what.contains("contained panic"), "unexpected invariant: {what}")
        }
        other => panic!("expected contained panic, got {other:?}"),
    }
    assert!(vm.state.poisoned);
    assert!(matches!(vm.run_entry(), Err(RunError::Poisoned)));
}

/// Injected OOM at an allocation point surfaces as the ordinary typed
/// `OutOfMemory` trap — a recoverable error, not poison.
#[test]
fn injected_oom_reports_out_of_memory() {
    let (p, plan) = storm_salarydb(24, 40);
    let mut vm = attach_plan(&p, plan, VmConfig::default());
    vm.state.injector = Some(FaultInjector::new(FaultConfig {
        gc_at_alloc: false,
        ic_bumps: false,
        recompiles: false,
        oom_at_alloc: true,
        period: 5,
        ..FaultConfig::transparent(7)
    }));
    assert!(matches!(vm.run_entry(), Err(RunError::OutOfMemory { .. })));
    assert!(!vm.state.poisoned, "typed OOM must not poison the VM");
}

/// depth-`n` self-recursion through virtual dispatch (the semantics_edge
/// recursion shape, parameterized).
fn recursion_program(depth: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let helper = pb.class("Deep").build();
    pb.trivial_ctor(helper);
    let mut m = pb.method(helper, "go", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let this = m.this();
    let n = m.param(0);
    let base = m.label();
    m.br_icmp_imm(CmpOp::Le, n, 0, base);
    let one = m.imm(1);
    let n1 = m.reg();
    m.isub(n1, n, one);
    let r = m.reg();
    m.call_virtual(Some(r), this, "go", vec![n1]);
    m.iadd(r, r, one);
    m.ret(Some(r));
    m.bind(base);
    let zero = m.imm(0);
    m.ret(Some(zero));
    m.build();

    let mut m = pb.static_method(helper, "main", MethodSig::new(vec![], Some(Ty::Int)));
    let o = m.reg();
    m.new_init(o, helper, vec![]);
    let d = m.imm(depth);
    let out = m.reg();
    m.call_virtual(Some(out), o, "go", vec![d]);
    m.ret(Some(out));
    let main = m.build();
    pb.set_entry(main);
    pb.finish().unwrap()
}

fn recursion_config(limit: Option<usize>) -> VmConfig {
    VmConfig {
        sample_period: u64::MAX,
        max_frame_depth: limit,
        ..Default::default()
    }
}

/// The frame-depth limit converts runaway recursion into a typed
/// `StackOverflow` naming the depth the call would have reached.
#[test]
fn frame_depth_limit_traps_deep_recursion() {
    let mut vm = Vm::new(recursion_program(200), recursion_config(Some(50)));
    match vm.run_entry() {
        Err(RunError::StackOverflow { depth, limit }) => {
            assert_eq!(limit, 50);
            assert_eq!(depth, 51, "overflow must fire on the first over-limit push");
        }
        other => panic!("expected stack overflow, got {other:?}"),
    }
    assert!(!vm.state.poisoned, "stack overflow is a trap, not poison");
}

/// A limit that is never hit is free: runs under `Some(big)` and `None`
/// produce identical fingerprints (the check is host-side, 0 cycles).
#[test]
fn unhit_frame_depth_limit_is_cycle_transparent() {
    let mut obs: Vec<Obs> = Vec::new();
    for limit in [None, Some(1_000)] {
        let mut vm = Vm::new(recursion_program(200), recursion_config(limit));
        assert_eq!(vm.run_entry().unwrap(), Some(Value::Int(200)));
        obs.push(observe(&vm));
    }
    assert_eq!(obs[0], obs[1]);
}

/// A zero-frame budget refuses even the entry call.
#[test]
fn zero_frame_budget_refuses_entry() {
    let mut vm = Vm::new(recursion_program(1), recursion_config(Some(0)));
    assert!(matches!(
        vm.run_entry(),
        Err(RunError::StackOverflow { limit: 0, .. })
    ));
}

/// SalaryDB from the real catalog survives a forced-guard-fail storm with
/// the *default production* governor config too — fewer escalations at
/// this scale, but output stays equal and throttling engages.
#[test]
fn catalog_salarydb_storm_is_damped_with_default_config() {
    let w = find_workload("SalaryDB");
    let prepared = prepare_workload(&w);
    let mut obs = Vec::new();
    let mut throttled = 0;
    for on in [false, true] {
        let mut vm = prepared.make_vm(harness_config(&w));
        vm.state.config.governor.enabled = on;
        vm.state.injector = Some(FaultInjector::new(FaultConfig {
            period: 1,
            ..FaultConfig::guard_failures(1)
        }));
        w.run(&mut vm).expect("storm run completes");
        if on {
            throttled = vm.stats().specials_throttled;
        }
        obs.push((vm.state.output.text.clone(), vm.state.output.checksum));
    }
    assert_eq!(obs[0], obs[1], "governor changed SalaryDB output under storm");
    assert!(throttled > 0, "default config never throttled a period-1 storm");
}

mod properties {
    use super::*;
    use proptest::prelude::*;

    /// Re-runs one storm schedule twice and returns (fingerprint, governor
    /// stats) of the first, asserting the second is bit-identical.
    fn storm_twice(employees: i64, iters: i64, seed: u64) -> (Obs, u64, u64) {
        let mut out = None;
        for _ in 0..2 {
            let (p, plan) = storm_salarydb(employees, iters);
            let mut vm = attach_plan(&p, plan, VmConfig::default());
            vm.state.config.governor = test_governor();
            vm.state.injector = Some(FaultInjector::new(FaultConfig {
                period: 1,
                ..FaultConfig::guard_failures(seed)
            }));
            vm.run_entry().expect("storm run completes");
            let got = (
                observe(&vm),
                vm.stats().specials_throttled,
                vm.stats().specials_blacklisted,
            );
            match &out {
                None => out = Some(got),
                Some(first) => assert_eq!(*first, got, "storm schedule not reproducible"),
            }
        }
        out.unwrap()
    }

    /// Any storm schedule (any shape, any seed) is deterministic, and the
    /// governed run never changes output relative to ungoverned.
    fn check_random_schedule(employees: i64, iters: i64, seed: u64) {
        let (gov, _, _) = storm_twice(employees, iters, seed);

        let (p, plan) = storm_salarydb(employees, iters);
        let mut vm = attach_plan(&p, plan, VmConfig::default());
        vm.state.config.governor = test_governor();
        vm.state.config.governor.enabled = false;
        vm.state.injector = Some(FaultInjector::new(FaultConfig {
            period: 1,
            ..FaultConfig::guard_failures(seed)
        }));
        vm.run_entry().expect("ungoverned run completes");
        assert_eq!(vm.state.output.text, gov.text);
        assert_eq!(vm.state.output.checksum, gov.checksum);
        assert!(vm.cycles() >= gov.clock, "governor made the storm slower");
    }

    /// Backoff deadlines never regress: per run, every throttle event's
    /// `until_cycle` is past its own fire cycle, and fire cycles only move
    /// forward (episodes escalate with the modeled clock).
    fn check_monotone_deadlines(seed: u64) {
        let (p, plan) = storm_salarydb(16, 32);
        let mut vm = attach_plan(&p, plan, VmConfig::default());
        vm.enable_tracing(1 << 16);
        vm.state.config.governor = test_governor();
        vm.state.injector = Some(FaultInjector::new(FaultConfig {
            period: 1,
            ..FaultConfig::guard_failures(seed)
        }));
        vm.run_entry().expect("storm run completes");
        let mut last_until = 0u64;
        let mut last_cycle = 0u64;
        for ev in vm.state.tracer.events() {
            if let TraceEvent::SpecialThrottled { until_cycle, .. } = ev.event {
                assert!(ev.cycle >= last_cycle);
                assert!(until_cycle > ev.cycle);
                assert!(until_cycle >= last_until || ev.cycle >= last_until);
                last_until = until_cycle;
                last_cycle = ev.cycle;
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn random_storm_schedules_are_deterministic(
            employees in 4i64..24,
            iters in 4i64..32,
            seed in 1u64..1024,
        ) {
            check_random_schedule(employees, iters, seed);
        }

        #[test]
        fn backoff_deadlines_are_monotone(seed in 1u64..256) {
            check_monotone_deadlines(seed);
        }
    }
}
