//! Compiled-code cache differential tests (ISSUE 6 tentpole).
//!
//! The cache's contract: at *any* capacity — including tiny capacities that
//! force constant eviction — and under any interleaving of state flips,
//! adaptive recompiles, plan reloads (which flush the cache via the
//! compiler-environment fingerprint) and fault-injected silent recompiles,
//! the VM must never execute stale specialized code. The check is
//! differential bit-identity: output text, checksum, modeled clock and op
//! count must match a cache-disabled run of the identical scenario, because
//! the cache is only allowed to elide host-side pipeline work.

use dchm_core::pipeline::Prepared;
use dchm_core::MutationEngine;
use dchm_testutil::{find_workload, harness_config, observe, prepare_workload};
use dchm_vm::{FaultConfig, FaultInjector, Vm};
use dchm_workloads::Workload;

fn prepare_small(name: &str) -> (Workload, Prepared) {
    let w = find_workload(name);
    let prepared = prepare_workload(&w);
    (w, prepared)
}

/// Runs `rounds` rounds of plan-reload churn: each round builds a fresh
/// engine (same plan, per-round `emit_guards` flag) and installs it online
/// into the *running* VM, then runs the workload again. Guard-flag changes
/// alter the compiler-environment fingerprint, exercising whole-cache
/// invalidation; small capacities exercise LRU eviction; a transparent
/// fault injector adds silent recompiles through the cache.
fn churn(
    w: &Workload,
    prepared: &Prepared,
    capacity: usize,
    guard_flags: &[bool],
    fault_seed: Option<u64>,
) -> Vm {
    let mut cfg = harness_config(w);
    cfg.code_cache_capacity = capacity;
    let mut vm = Vm::new(prepared.program.clone(), cfg);
    if let Some(seed) = fault_seed {
        // Period 1: inject at every allocation point, the most hostile
        // schedule (a third of the draws are silent recompiles).
        let cfg = FaultConfig {
            period: 1,
            ..FaultConfig::transparent(seed)
        };
        vm.state.injector = Some(FaultInjector::new(cfg));
    }
    for &emit_guards in guard_flags {
        let mut plan = prepared.plan.clone();
        plan.emit_guards = emit_guards;
        let engine = MutationEngine::new(plan, prepared.olc.clone());
        engine.install_online(&mut vm);
        w.run(&mut vm).expect("churn round must not trap");
    }
    vm
}

#[test]
fn churn_reuses_cached_code_and_stays_bit_identical() {
    let (w, prepared) = prepare_small("SalaryDB");
    let on = churn(&w, &prepared, 1024, &[true, true, true], None);
    let off = churn(&w, &prepared, 0, &[true, true, true], None);
    assert_eq!(observe(&on), observe(&off), "cache changed a modeled observable");

    let s = on.stats();
    assert!(s.code_cache_hits > 0, "plan-reload churn must produce hits");
    assert!(s.code_cache_misses > 0);
    assert_eq!(off.stats().code_cache_hits, 0, "disabled cache counted hits");
    assert_eq!(off.stats().code_cache_misses, 0, "disabled cache counted misses");
    // Hits reuse stored code ids, so the cached run's immortal code store
    // is strictly smaller — that is the space half of the win.
    assert!(
        on.state.code.len() < off.state.code.len(),
        "hits must not append duplicate code ({} vs {})",
        on.state.code.len(),
        off.state.code.len()
    );
    // The lift cache shares one baseline per method across every compile.
    assert!(on.state.lift_cache.hits > 0, "baseline lifts must be shared");
}

#[test]
fn plan_reload_with_changed_guard_config_invalidates() {
    let (w, prepared) = prepare_small("SalaryDB");
    // Rounds alternate guard emission: every flip changes the compiler
    // environment fingerprint, so each reinstall must flush the cache.
    let vm = churn(&w, &prepared, 1024, &[true, false, true], None);
    let s = vm.stats();
    assert!(
        s.code_cache_invalidations >= 2,
        "guard-config flips must flush (got {})",
        s.code_cache_invalidations
    );
    // And the flushes must not leak stale specialized code into the run.
    let off = churn(&w, &prepared, 0, &[true, false, true], None);
    assert_eq!(observe(&vm), observe(&off));
}

#[test]
fn tiny_capacity_evicts_but_never_executes_stale_code() {
    let (w, prepared) = prepare_small("SimLogic");
    let on = churn(&w, &prepared, 2, &[true, true], None);
    let off = churn(&w, &prepared, 0, &[true, true], None);
    assert_eq!(observe(&on), observe(&off));
    assert!(
        on.stats().code_cache_evictions > 0,
        "capacity 2 must evict under churn"
    );
}

#[test]
fn silent_fault_recompiles_hit_the_cache_without_touching_stats() {
    let (w, prepared) = prepare_small("SalaryDB");
    let flags = [true];
    let seed = 20_060_326;
    let on = churn(&w, &prepared, 1024, &flags, Some(seed));
    let off = churn(&w, &prepared, 0, &flags, Some(seed));
    let clean = churn(&w, &prepared, 1024, &flags, None);

    // Transparent faults stay transparent with the cache on.
    assert_eq!(observe(&on), observe(&off));
    assert_eq!(observe(&on), observe(&clean));
    let injected = on.state.injector.as_ref().expect("injector survives").recompiles;
    assert!(injected > 0, "seed must inject recompiles to prove anything");
    // Silent recompiles route through the cache: every injected recompile
    // of already-cached general code reuses the stored version instead of
    // appending an identical copy to the immortal code store...
    assert!(
        on.state.code.len() < off.state.code.len(),
        "cached silent recompiles must not duplicate code ({} vs {})",
        on.state.code.len(),
        off.state.code.len()
    );
    // ...and none of it shows in the stats: the injected run's cache
    // counters match the uninjected run's exactly.
    assert_eq!(on.stats().code_cache_hits, clean.stats().code_cache_hits);
    assert_eq!(on.stats().code_cache_misses, clean.stats().code_cache_misses);
    assert_eq!(on.stats().code_cache_evictions, clean.stats().code_cache_evictions);
}

mod fuzz {
    //! Random interleavings of state flips (the workloads themselves),
    //! adaptive recompiles, plan reloads with toggled guard config,
    //! LRU evictions (tiny capacities) and silent injected recompiles:
    //! cache-on must be bit-identical to cache-off in every scenario.

    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn random_churn_is_bit_identical_at_any_capacity(
            which in 0usize..2,
            capacity in 1usize..5,
            raw_flags in prop::collection::vec(0u8..2, 1..4),
            raw_fault in 0u64..1_000,
        ) {
            let name = ["SalaryDB", "SimLogic"][which];
            let guard_flags: Vec<bool> = raw_flags.iter().map(|&b| b == 1).collect();
            // 0 means "no injector"; anything else is the injector seed.
            let fault = (raw_fault != 0).then_some(raw_fault);
            let (w, prepared) = prepare_small(name);
            let on = churn(&w, &prepared, capacity, &guard_flags, fault);
            let off = churn(&w, &prepared, 0, &guard_flags, fault);
            prop_assert_eq!(
                observe(&on),
                observe(&off),
                "{}: capacity {} flags {:?} fault {:?} diverged",
                name,
                capacity,
                &guard_flags,
                fault
            );
        }
    }
}
