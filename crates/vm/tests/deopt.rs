//! The ISSUE-3 acceptance scenario: a method stores to its own state field
//! while a *specialized frame for that object is live on the stack*. The
//! post-store guard must fail, the frame must deoptimize to baseline code
//! mid-method, the object's TIB must end up restored to the class TIB, and
//! the run's observable output and modeled execution cycles must be
//! bit-identical to a mutation-off run of the same instrumented program.
//!
//! The mutation-off comparator uses the same engine with an identical plan
//! whose `hot_states` list is empty: patch points (and their 3-cycle
//! `Notify*` ops) are instrumented identically, but no special TIB is ever
//! created and no code is specialized. Compile-cycle billing legitimately
//! differs (the technique pays for its special compiles); the *execution*
//! clock and the GC clock must not move by a single tick, because state
//! guards are free (0-cycle) and the deopt transition itself is unbilled.

use dchm_bytecode::{ClassId, FieldId, MethodId, MethodSig, Program, ProgramBuilder, Ty, Value};
use dchm_core::{HotState, MutableClass, MutationPlan};
use dchm_testutil::run_with_plan;
use dchm_vm::{Vm, VmConfig};

/// class Acct { int s; static Acct KEEP;
///   Acct(int k){ s = k; }
///   void go(int v){ int t = v*3; s = v; sink(s + t); } }
/// main: o = new Acct(7); KEEP = o; o.go(5); o.go(9);
fn build() -> (Program, ClassId, FieldId, FieldId, MethodId) {
    let mut pb = ProgramBuilder::new();
    let acct = pb.class("Acct").build();
    let s = pb.instance_field(acct, "s", Ty::Int);
    let keep = pb.static_field(acct, "KEEP", Ty::Ref(acct), Value::Null);

    let mut m = pb.ctor(acct, vec![Ty::Int]);
    let this = m.this();
    let k = m.param(0);
    m.put_field(this, s, k);
    m.ret(None);
    m.build();

    let mut m = pb.method(acct, "go", MethodSig::new(vec![Ty::Int], None));
    let this = m.this();
    let v = m.param(0);
    let three = m.imm(3);
    let t = m.reg();
    m.imul(t, v, three);
    m.put_field(this, s, v);
    let r = m.reg();
    m.get_field(r, this, s);
    let u = m.reg();
    m.iadd(u, r, t);
    m.sink_int(u);
    m.ret(None);
    let go = m.build();

    let mut m = pb.static_method(acct, "main", MethodSig::void());
    let o = m.reg();
    let seven = m.imm(7);
    m.new_init(o, acct, vec![seven]);
    m.put_static(keep, o);
    let five = m.imm(5);
    m.call_virtual(None, o, "go", vec![five]);
    let nine = m.imm(9);
    m.call_virtual(None, o, "go", vec![nine]);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);
    (pb.finish().unwrap(), acct, s, keep, go)
}

/// A plan binding `s == 7` as the single hot state of `Acct`. With
/// `hot_states: false` the same classes/fields are declared (identical
/// instrumentation) but nothing is ever specialized.
fn plan(acct: ClassId, s: FieldId, go: MethodId, hot_states: bool, emit_guards: bool) -> MutationPlan {
    MutationPlan {
        classes: vec![MutableClass {
            class: acct,
            instance_state_fields: vec![s],
            static_state_fields: vec![],
            hot_states: if hot_states {
                vec![HotState {
                    instance_values: vec![(s, Value::Int(7))],
                    static_values: vec![],
                    frequency: 1.0,
                }]
            } else {
                vec![]
            },
            mutable_methods: vec![go],
            field_scores: vec![],
        }],
        // Specialize at opt0 so the special body is op-for-op the baseline
        // plus guards plus state-field folds — the exec clocks then compare
        // exactly (no inlining reshapes the prefix).
        mutation_level: 0,
        k: 0,
        emit_guards,
    }
}

fn run(p: &Program, plan: MutationPlan) -> Vm {
    run_with_plan(p, plan, VmConfig::default())
}

#[test]
fn state_store_in_live_specialized_frame_deoptimizes_to_baseline() {
    let (p, acct, s, keep, go) = build();

    let mutated = run(&p, plan(acct, s, go, true, true));
    let off = run(&p, plan(acct, s, go, false, true));

    // The specialized frame hit its post-store guard and deoptimized.
    let st = mutated.stats();
    assert!(st.guards_executed >= 2, "entry + post-store guard");
    assert_eq!(st.guard_failures, 1, "exactly the s=5 store fails");
    assert_eq!(st.deopts, 1);
    assert!(st.special_tibs >= 1, "ctor exit flipped into the hot state");

    // Observable output is bit-identical to the mutation-off run: the
    // deoptimized baseline re-reads s and sinks 5+15, not the stale 7+15.
    assert_eq!(mutated.state.output.text, off.state.output.text);
    assert_eq!(mutated.state.output.checksum, off.state.output.checksum);

    // Modeled execution and GC cycles are identical; only compile billing
    // (special compile + baseline compile for the deopt target) differs.
    assert_eq!(st.exec_cycles, off.stats().exec_cycles);
    assert_eq!(st.gc_cycles, off.stats().gc_cycles);

    // The object's TIB was restored to the class TIB.
    let Value::Ref(obj) = mutated.state.get_static(keep) else {
        panic!("KEEP must hold the object");
    };
    assert_eq!(
        mutated.state.heap.object(obj).tib,
        mutated.state.class_tib(acct),
        "object must leave the special TIB when it leaves the hot state"
    );
}

#[test]
fn without_guards_the_stale_specialized_frame_misbehaves() {
    let (p, acct, s, _, go) = build();

    let unguarded = run(&p, plan(acct, s, go, true, false));
    let off = run(&p, plan(acct, s, go, false, true));

    // No guards were planted, so nothing deoptimized …
    assert_eq!(unguarded.stats().guards_executed, 0);
    assert_eq!(unguarded.stats().deopts, 0);
    // … and the live specialized frame kept running with the stale s==7
    // fold after the store: observable output diverges. This is exactly
    // the wrong-code hazard the guard subsystem exists to close.
    assert_ne!(unguarded.state.output.checksum, off.state.output.checksum);
}

#[test]
fn deopt_is_idempotent_across_repeated_mutations() {
    // Re-enter the hot state and leave it again: every entry re-flips the
    // TIB and every in-frame exit deoptimizes afresh.
    let mut pb = ProgramBuilder::new();
    let acct = pb.class("Acct").build();
    let s = pb.instance_field(acct, "s", Ty::Int);

    let mut m = pb.ctor(acct, vec![Ty::Int]);
    let this = m.this();
    let k = m.param(0);
    m.put_field(this, s, k);
    m.ret(None);
    m.build();

    // flip(v): s = v; sink(s)  — called alternating v=7 (enter hot) and
    // v=1 (leave hot, from inside specialized code once flipped).
    let mut m = pb.method(acct, "flip", MethodSig::new(vec![Ty::Int], None));
    let this = m.this();
    let v = m.param(0);
    m.put_field(this, s, v);
    let r = m.reg();
    m.get_field(r, this, s);
    m.sink_int(r);
    m.ret(None);
    let flip = m.build();

    let mut m = pb.static_method(acct, "main", MethodSig::void());
    let o = m.reg();
    let seven = m.imm(7);
    m.new_init(o, acct, vec![seven]);
    let one = m.imm(1);
    for _ in 0..3 {
        m.call_virtual(None, o, "flip", vec![one]);
        m.call_virtual(None, o, "flip", vec![seven]);
    }
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();

    let mutated = run(&p, plan(acct, s, flip, true, true));
    let off = run(&p, plan(acct, s, flip, false, true));
    // Each of the three `flip(1)` calls runs in specialized code (the
    // preceding flip(7) re-entered the hot state) and deoptimizes.
    assert_eq!(mutated.stats().deopts, 3);
    assert_eq!(mutated.state.output.checksum, off.state.output.checksum);
    assert_eq!(mutated.stats().exec_cycles, off.stats().exec_cycles);
}
