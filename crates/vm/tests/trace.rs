//! ISSUE-4 acceptance tests for the structured event layer.
//!
//! Two properties anchor the tracer's usefulness and its zero-cost claim:
//!
//! 1. **Causality**: a guard failure produces the `GuardFail` → `Deopt` →
//!    `BaselineResume` subsequence with monotone modeled-cycle stamps and
//!    the right method/object ids, with the receiver's restoring `TibFlip`
//!    in between. The `GuardFail`→`BaselineResume` cycle distance *is* the
//!    deopt latency (it covers the baseline compile stall).
//! 2. **Transparency**: tracing on vs. off leaves the modeled clock, the
//!    op count, and the workload output bit-identical — events stamp the
//!    clock but never charge it, including under fault injection.

use dchm_bytecode::{ClassId, FieldId, MethodId, MethodSig, Program, ProgramBuilder, Ty, Value};
use dchm_core::{HotState, MutableClass, MutationPlan};
use dchm_testutil::{attach_plan, find_workload, harness_config, observe, prepare_with};
use dchm_vm::trace::{Stamped, TraceEvent};
use dchm_vm::{FaultConfig, FaultInjector, Vm, VmConfig};
use dchm_workloads::{catalog, Scale, Workload};

/// The ISSUE-3 deopt scenario: `go` stores to its own state field while a
/// specialized frame for the receiver is live, so the post-store guard
/// fails mid-method (see `tests/deopt.rs` for the semantic assertions).
fn build() -> (Program, ClassId, FieldId, FieldId, MethodId) {
    let mut pb = ProgramBuilder::new();
    let acct = pb.class("Acct").build();
    let s = pb.instance_field(acct, "s", Ty::Int);
    let keep = pb.static_field(acct, "KEEP", Ty::Ref(acct), Value::Null);

    let mut m = pb.ctor(acct, vec![Ty::Int]);
    let this = m.this();
    let k = m.param(0);
    m.put_field(this, s, k);
    m.ret(None);
    m.build();

    let mut m = pb.method(acct, "go", MethodSig::new(vec![Ty::Int], None));
    let this = m.this();
    let v = m.param(0);
    let three = m.imm(3);
    let t = m.reg();
    m.imul(t, v, three);
    m.put_field(this, s, v);
    let r = m.reg();
    m.get_field(r, this, s);
    let u = m.reg();
    m.iadd(u, r, t);
    m.sink_int(u);
    m.ret(None);
    let go = m.build();

    let mut m = pb.static_method(acct, "main", MethodSig::void());
    let o = m.reg();
    let seven = m.imm(7);
    m.new_init(o, acct, vec![seven]);
    m.put_static(keep, o);
    let five = m.imm(5);
    m.call_virtual(None, o, "go", vec![five]);
    let nine = m.imm(9);
    m.call_virtual(None, o, "go", vec![nine]);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);
    (pb.finish().unwrap(), acct, s, keep, go)
}

fn plan(acct: ClassId, s: FieldId, go: MethodId) -> MutationPlan {
    MutationPlan {
        classes: vec![MutableClass {
            class: acct,
            instance_state_fields: vec![s],
            static_state_fields: vec![],
            hot_states: vec![HotState {
                instance_values: vec![(s, Value::Int(7))],
                static_values: vec![],
                frequency: 1.0,
            }],
            mutable_methods: vec![go],
            field_scores: vec![],
        }],
        mutation_level: 0,
        k: 0,
        emit_guards: true,
    }
}

/// First event at/after index `from` matching `pred`, with its index.
fn find_from<F: Fn(&TraceEvent) -> bool>(
    events: &[Stamped],
    from: usize,
    pred: F,
) -> Option<(usize, Stamped)> {
    events[from..]
        .iter()
        .position(|e| pred(&e.event))
        .map(|i| (from + i, events[from + i]))
}

#[test]
fn guard_fail_deopt_resume_sequence_with_monotone_stamps() {
    let (p, acct, s, keep, go) = build();
    let mut vm = attach_plan(&p, plan(acct, s, go), VmConfig::default());
    vm.enable_tracing(4096);
    vm.run_entry().expect("run must not trap");

    let Value::Ref(obj) = vm.state.get_static(keep) else {
        panic!("KEEP must hold the object");
    };
    let events = vm.trace_events();
    assert!(!events.is_empty(), "tracing was on; events must exist");

    // Global sanity: seq strictly increasing, cycles non-decreasing in
    // emission order (the modeled clock never goes backwards).
    for w in events.windows(2) {
        assert!(w[1].seq > w[0].seq, "seq must be strictly monotone");
        assert!(w[1].cycle >= w[0].cycle, "cycle stamps must be monotone");
    }

    // The lifecycle prefix: the hot method's special version was compiled,
    // and the constructor exit flipped the object into the special TIB.
    let (ci, compile) = find_from(&events, 0, |e| {
        matches!(e, TraceEvent::SpecialCompile { .. })
    })
    .expect("a special version of `go` must be compiled");
    assert_eq!(compile.event.method(), Some(go.0));
    let (ei, enter) = find_from(&events, 0, |e| {
        matches!(e, TraceEvent::StateTransition { entered: true, .. })
    })
    .expect("ctor exit must enter the hot state");
    assert_eq!(enter.event.object(), Some(obj.0));

    // The store `s = 5` fires its patch point first: the engine reads the
    // new state, sees no hot match, and flips the receiver back to the
    // class TIB — so the exiting StateTransition precedes the guard
    // failure in the stream.
    let start = ci.max(ei);
    let (_, exit) = find_from(&events, start, |e| {
        matches!(e, TraceEvent::StateTransition { entered: false, .. })
    })
    .expect("the s=5 store must leave the hot state");
    assert_eq!(exit.event.object(), Some(obj.0));

    // The acceptance subsequence: GuardFail → Deopt → BaselineResume, all
    // for the same method and receiver. They need not be adjacent — the
    // deopt path may compile baseline code in between.
    let (fi, fail) = find_from(&events, start, |e| {
        matches!(e, TraceEvent::GuardFail { .. })
    })
    .expect("the s=5 store must fail its post-store guard");
    let TraceEvent::GuardFail { method, obj: failed_obj, forced, .. } = fail.event else {
        unreachable!()
    };
    assert_eq!(method, go.0, "guard failed in the specialized method");
    assert_eq!(failed_obj, obj.0, "guard failed on the KEEP receiver");
    assert!(!forced, "organic failure, not injected");

    let (di, deopt) = find_from(&events, fi + 1, |e| {
        matches!(e, TraceEvent::Deopt { .. })
    })
    .expect("the failing frame must deoptimize");
    let TraceEvent::Deopt { method, obj: deopt_obj, from_code, to_code } = deopt.event else {
        unreachable!()
    };
    assert_eq!(method, go.0);
    assert_eq!(deopt_obj, obj.0);
    assert_ne!(from_code, to_code, "deopt must move to different code");

    let (_, resume) = find_from(&events, di + 1, |e| {
        matches!(e, TraceEvent::BaselineResume { .. })
    })
    .expect("execution must resume in baseline code");
    let TraceEvent::BaselineResume { method, code, .. } = resume.event else {
        unreachable!()
    };
    assert_eq!(method, go.0);
    assert_eq!(code, to_code, "resume lands in the deopt target");

    // Deopt latency: the resume is stamped after any baseline compile
    // stall, so the GuardFail→BaselineResume cycle distance is exactly the
    // compile billing (zero when level-0 general code is reused as the
    // deopt target, as here — the transition itself is free).
    assert!(resume.cycle >= fail.cycle, "resume cannot precede the failure");
    if vm.stats().deopt_baseline_compiles > 0 {
        assert!(
            resume.cycle > fail.cycle,
            "a billed baseline compile must show up as deopt latency"
        );
    } else {
        assert_eq!(
            resume.cycle, fail.cycle,
            "no compile stall means zero deopt latency"
        );
    }
    assert_eq!(vm.stats().deopts, 1);
    assert_eq!(vm.state.tracer.dropped(), 0, "4096-slot ring must suffice");
}

fn run_mutated(w: &Workload, trace: bool, injector: Option<FaultInjector>) -> Vm {
    let prepared = prepare_with(w, harness_config(w));
    let mut vm = prepared.make_vm(harness_config(w));
    if trace {
        vm.enable_tracing(8192);
    }
    vm.state.injector = injector;
    w.run(&mut vm).expect("mutated run must not trap");
    vm
}

#[test]
fn tracing_leaves_every_workload_bit_identical() {
    for w in catalog(Scale::Small) {
        let off = run_mutated(&w, false, None);
        let on = run_mutated(&w, true, None);
        assert_eq!(
            observe(&on),
            observe(&off),
            "{}: tracing must not move output or the modeled clock",
            w.name
        );
        assert!(
            !on.trace_events().is_empty(),
            "{}: a mutated run must produce events (at minimum compiles)",
            w.name
        );
        assert!(off.trace_events().is_empty(), "tracing-off records nothing");
    }
}

#[test]
fn tracing_is_transparent_under_fault_injection() {
    // Tracing and the fault injector compose: with both on, the run still
    // matches the plain (untraced, uninjected) reference bit-for-bit for
    // transparent faults, and the injected faults show up as events.
    let w = find_workload("SalaryDB");
    let reference = observe(&run_mutated(&w, false, None));
    let cfg = FaultConfig {
        period: 1,
        ..FaultConfig::transparent(42)
    };
    let vm = run_mutated(&w, true, Some(FaultInjector::new(cfg)));
    assert_eq!(observe(&vm), reference, "trace+inject perturbed SalaryDB");

    let inj = vm.state.injector.as_ref().expect("injector survives");
    let injected = inj.gcs + inj.ic_bumps + inj.recompiles;
    assert!(injected > 0, "the schedule must have injected something");
    let traced_faults = vm
        .trace_events()
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::FaultInjected { .. }))
        .count() as u64;
    // The ring may have overwritten early faults; everything still held
    // must be a genuine injection.
    assert!(traced_faults > 0, "injected faults must be traced");
    assert!(traced_faults <= injected);
}
