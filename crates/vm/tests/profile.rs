//! Acceptance tests for the cycle-attribution profiler and the heap &
//! state census.
//!
//! The anchor property is the same one the tracer carries: attribution is
//! **transparent**. Profiling on vs. off leaves the modeled clock, the op
//! count and the workload output bit-identical — samples stamp the clock
//! but never charge it. On top of that the profiler is **deterministic**:
//! the sampling schedule is a pure function of the clock trajectory, so
//! the same run folds to the same `.folded` text every time, and host-side
//! caches (which elide wall work, never modeled work) cannot move it.

use dchm_testutil::{find_workload, harness_config, observe, prepare_with};
use dchm_vm::trace::TraceEvent;
use dchm_vm::{Vm, VmConfig};
use dchm_workloads::{catalog, Scale, Workload};

/// One mutated run with an explicit profile period (0 = off).
fn run_profiled(w: &Workload, period: u64) -> Vm {
    let mut cfg = harness_config(w);
    cfg.profile_period = period;
    let prepared = prepare_with(w, harness_config(w));
    let mut vm = prepared.make_vm(cfg);
    w.run(&mut vm).expect("mutated run must not trap");
    vm
}

#[test]
fn profiling_leaves_every_workload_bit_identical() {
    for w in catalog(Scale::Small) {
        let off = run_profiled(&w, 0);
        let on = run_profiled(&w, VmConfig::default().profile_period);
        assert_eq!(
            observe(&on),
            observe(&off),
            "{}: profiling must not move output or the modeled clock",
            w.name
        );
        assert!(
            on.state.profiler.samples() > 0,
            "{}: the default period must produce samples",
            w.name
        );
        assert_eq!(
            off.state.profiler.samples(),
            0,
            "{}: period 0 must disable sampling",
            w.name
        );
    }
}

#[test]
fn folded_output_is_identical_across_runs() {
    let w = find_workload("SalaryDB");
    let a = run_profiled(&w, 2_500).profile_folded();
    let b = run_profiled(&w, 2_500).profile_folded();
    assert!(!a.is_empty(), "SalaryDB must fold to at least one stack");
    assert_eq!(a, b, "same clock trajectory must fold identically");
}

#[test]
fn folded_output_is_identical_across_cache_capacities() {
    // The code cache elides host-side compile work only; the modeled clock
    // — and therefore the sampling schedule — must not notice it.
    let w = find_workload("SalaryDB");
    let folded: Vec<String> = [VmConfig::default().code_cache_capacity, 0]
        .into_iter()
        .map(|capacity| {
            let mut cfg = harness_config(&w);
            cfg.profile_period = 2_500;
            cfg.code_cache_capacity = capacity;
            let prepared = prepare_with(&w, harness_config(&w));
            let mut vm = prepared.make_vm(cfg);
            w.run(&mut vm).expect("mutated run must not trap");
            vm.profile_folded()
        })
        .collect();
    assert_eq!(folded[0], folded[1], "cache capacity moved the profile");
}

#[test]
fn profile_cells_attribute_tiers_and_states() {
    let w = find_workload("SalaryDB");
    let vm = run_profiled(&w, 2_500);
    let snap = vm.profile();
    assert_eq!(snap.period, 2_500);
    assert!(snap.samples > 0);
    let total: u64 = snap.cells.iter().map(|c| c.self_samples).sum();
    assert_eq!(total, snap.samples, "self samples partition the total");
    // The folded text and the cell table agree on the leaf totals.
    let leaves = dchm_vm::trace::profile::folded_leaf_cells(&vm.profile_folded());
    let folded_total: u64 = leaves.values().sum();
    assert_eq!(folded_total, snap.samples);
    // Display is the stable top-10 table used by fail_with_trace.
    let shown = format!("{snap}");
    assert!(shown.contains("samples"), "table must have a header");
}

#[test]
fn census_conserves_heap_bytes_at_any_tick() {
    for w in catalog(Scale::Small) {
        let vm = run_profiled(&w, 0);
        let census = vm.state.census();
        assert_eq!(
            census.total_bytes(),
            census.heap_used_bytes,
            "{}: census walk must account for every live byte",
            w.name
        );
        assert_eq!(
            census.heap_used_bytes,
            vm.state.heap.used_bytes() as u64,
            "{}: census snapshot disagrees with the heap accountant",
            w.name
        );
        let per_class_objects: u64 = census.per_class.iter().map(|c| c.objects).sum();
        assert_eq!(per_class_objects, census.live_objects);
        let per_tib_objects: u64 = census.per_tib.iter().map(|t| t.objects).sum();
        assert_eq!(per_tib_objects, census.live_objects);
    }
}

#[test]
fn census_is_transparent_and_traced_on_gc() {
    let w = find_workload("SalaryDB");
    // Tracing + profiling on: the run still matches the bare reference.
    let reference = observe(&run_profiled(&w, 0));
    let mut cfg = harness_config(&w);
    cfg.profile_period = 2_500;
    let prepared = prepare_with(&w, harness_config(&w));
    let mut vm = prepared.make_vm(cfg);
    vm.enable_tracing(16 * 1024);
    w.run(&mut vm).expect("mutated run must not trap");
    assert_eq!(observe(&vm), reference, "trace+profile perturbed SalaryDB");

    let events = vm.trace_events();
    let samples = events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::ProfileSample { .. }))
        .count();
    assert!(samples > 0, "profiler samples must reach the trace stream");
    // Every GC in the ring is followed by a census counter event.
    let gcs = events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::GcEnd { .. }))
        .count();
    let censuses = events
        .iter()
        .filter(|e| matches!(e.event, TraceEvent::Census { .. }))
        .count();
    if gcs > 0 {
        assert!(censuses >= gcs, "each traced GC must emit a census");
    }
}

#[test]
fn residency_tracker_survives_collection() {
    // The residency histogram only ever grows from TIB flips the engine
    // performs; after a full run its open stays refer to live objects only
    // (GC prunes dead entries), so a census never resurrects a dead object.
    let w = find_workload("SalaryDB");
    let vm = run_profiled(&w, 0);
    let census = vm.state.census();
    for r in &census.residency {
        let open = r.residency.count - r.exits.min(r.residency.count);
        assert!(
            open as usize <= census.live_objects as usize,
            "open stays cannot exceed live objects"
        );
    }
}
