//! Per-shard bit-identity: the sharded fleet executor must be invisible to
//! every modeled observable. Each (workload, config) job run inside a
//! 1/2/4/8-worker fleet — with or without the shared compile-artifact
//! cache, under fault injection or not — produces output, modeled clock,
//! full stats and `.folded` profile identical to its solo run. Host-side
//! effects (compile wall time, shared-cache hit counters) are exactly
//! where sharing is *allowed* to show, and the suite asserts those too:
//! the second identical tenant runs zero compiler pipelines.

use dchm_testutil::fleet::{run_job, run_jobs_fleet, FleetJob, JobReport};
use dchm_testutil::find_workload;
use dchm_vm::fleet::FleetConfig;
use dchm_vm::{FaultConfig, SharedCodeCache};
use dchm_workloads::{catalog, Driver, Scale};
use std::sync::{Arc, OnceLock};

/// The 7-workload catalog as harness jobs plus their solo goldens,
/// computed once per test binary (offline pipelines are the slow part).
fn goldens() -> &'static Vec<(FleetJob, JobReport)> {
    static GOLDENS: OnceLock<Vec<(FleetJob, JobReport)>> = OnceLock::new();
    GOLDENS.get_or_init(|| {
        catalog(Scale::Small)
            .iter()
            .map(|w| {
                let job = FleetJob::for_workload(w);
                let solo = run_job(&job, None);
                (job, solo)
            })
            .collect()
    })
}

fn assert_shard_matches_solo(ctx: &str, name: &str, shard: &JobReport, solo: &JobReport) {
    assert_eq!(
        shard.obs, solo.obs,
        "{ctx}: {name} observable fingerprint diverged from solo"
    );
    assert_eq!(shard.stats, solo.stats, "{ctx}: {name} stats diverged");
    assert_eq!(shard.folded, solo.folded, "{ctx}: {name} profile diverged");
}

#[test]
fn fleet_is_bit_identical_to_solo_at_every_worker_count() {
    let goldens = goldens();
    let jobs: Vec<FleetJob> = goldens.iter().map(|(j, _)| j.clone()).collect();
    for workers in [1, 2, 4, 8] {
        let reports = run_jobs_fleet(&FleetConfig::dynamic(workers), &jobs, None);
        for ((job, solo), rep) in goldens.iter().zip(&reports) {
            assert_shard_matches_solo(&format!("{workers}-worker fleet"), &job.name, rep, solo);
            assert_eq!(rep.shared_hits + rep.shared_misses, 0, "no shared cache attached");
        }
    }
}

#[test]
fn shared_cache_fleet_is_bit_identical_and_replicas_hit() {
    let goldens = goldens();
    // Two replicas of every workload: the second replica of each program is
    // an identical tenant and can be answered entirely from the shared
    // cache (when scheduling happens to serialize them) — and must be
    // bit-identical either way.
    let mut jobs: Vec<FleetJob> = Vec::new();
    for (j, _) in goldens {
        for replica in 0..2 {
            let mut job = j.clone();
            job.name = format!("{}[{replica}]", j.name);
            jobs.push(job);
        }
    }
    for workers in [2, 4, 8] {
        let shared = Arc::new(SharedCodeCache::new(4096));
        let reports = run_jobs_fleet(&FleetConfig::dynamic(workers), &jobs, Some(&shared));
        for (i, rep) in reports.iter().enumerate() {
            let (_, solo) = &goldens[i / 2];
            assert_shard_matches_solo(
                &format!("{workers}-worker shared fleet"),
                &jobs[i].name,
                rep,
                solo,
            );
        }
        let s = shared.stats();
        assert!(s.inserts > 0, "tenants must publish artifacts");
        assert!(
            reports.iter().map(|r| r.shared_hits).sum::<u64>() > 0,
            "identical replicas must hit the shared cache"
        );
        // Distinct programs have distinct scopes: 7 workloads × 2 replicas
        // never exceed the capacity, so nothing is evicted here.
        assert_eq!(s.evictions, 0);
    }
}

#[test]
fn second_identical_tenant_runs_zero_compiler_pipelines() {
    let (job, solo) = &goldens()[0]; // SalaryDB
    let shared = Arc::new(SharedCodeCache::new(4096));
    let first = run_job(job, Some(&shared));
    let second = run_job(job, Some(&shared));
    assert_shard_matches_solo("tenant 1", &job.name, &first, solo);
    assert_shard_matches_solo("tenant 2", &job.name, &second, solo);
    assert!(first.shared_misses > 0, "tenant 1 populates the cache");
    assert!(first.compile_wall_nanos > 0, "tenant 1 pays the compiles");
    assert!(second.shared_hits > 0, "tenant 2 adopts artifacts");
    assert_eq!(second.shared_misses, 0, "every tenant-2 request is answered");
    assert_eq!(
        second.compile_wall_nanos, 0,
        "an identical tenant's compile wall must be exactly zero"
    );
}

#[test]
fn fleet_under_fault_injection_is_bit_identical_to_solo_injection() {
    // Fault-injected tenants: the injector draws are seeded per tenant, so
    // a shard's sequence is the solo sequence regardless of interleaving.
    let mut jobs = Vec::new();
    for (name, fault) in [
        ("SalaryDB", FaultConfig::transparent(0xD1CE)),
        ("SalaryDB", FaultConfig::guard_failures(0x5EED)),
        ("SimLogic", FaultConfig::transparent(0xD1CE)),
        ("SimLogic", FaultConfig::compile_failures(0xFA11)),
    ] {
        let mut job = FleetJob::for_workload(&find_workload(name));
        job.name = format!("{name}+{fault:?}");
        job.fault = Some(fault);
        jobs.push(job);
    }
    let solos: Vec<JobReport> = jobs.iter().map(|j| run_job(j, None)).collect();
    for workers in [2, 4] {
        let shared = Arc::new(SharedCodeCache::new(4096));
        let reports = run_jobs_fleet(&FleetConfig::dynamic(workers), &jobs, Some(&shared));
        for ((job, solo), rep) in jobs.iter().zip(&solos).zip(&reports) {
            assert_shard_matches_solo(
                &format!("{workers}-worker fault fleet"),
                &job.name,
                rep,
                solo,
            );
        }
    }
}

#[test]
fn eviction_churn_never_invalidates_in_flight_tenant_code() {
    // The cross-tenant stale-hit regression at VM level (mirrors the
    // quarantine stale-hit test of the resilience suite): tenant A adopts
    // artifacts from a pathological capacity-1 shared cache, tenant B's
    // compiles churn every one of A's entries out of the map while A is
    // mid-run — A's installed code must stay alive and bit-exact, because
    // eviction drops map entries, never the Arc'd artifacts A holds.
    let a = find_workload("SPECjbb2000");
    let Driver::Warehouse {
        setup,
        run,
        txns,
        warehouses,
    } = a.driver
    else {
        panic!("SPECjbb2000 is warehouse-driven");
    };
    let job_a = FleetJob::for_workload(&a);
    let job_b = FleetJob::for_workload(&find_workload("SimLogic"));
    let solo = run_job(&job_a, None);

    let shared = Arc::new(SharedCodeCache::new(1));
    let mut vm = job_a.prepared.make_vm_shared(job_a.config.clone(), &shared);
    vm.call_static(setup, &[]).expect("setup");
    vm.call_static(run, &[dchm_bytecode::Value::Int(txns)])
        .expect("first warehouse");
    // Tenant B churns the capacity-1 cache while A is in flight.
    let _ = run_job(&job_b, Some(&shared));
    assert!(
        shared.stats().evictions > 0,
        "capacity-1 shared cache must churn"
    );
    for _ in 1..warehouses {
        vm.call_static(run, &[dchm_bytecode::Value::Int(txns)])
            .expect("remaining warehouses");
    }
    let rep = JobReport::of(&vm);
    assert_shard_matches_solo("churned tenant", &job_a.name, &rep, &solo);
}

mod interleavings {
    //! Random fleets: shard counts, job orders (replicas included), shared
    //! cache on/off and fault-injection seeds — every shard must reproduce
    //! its solo golden bit for bit.

    use super::*;
    use proptest::prelude::*;

    /// Deterministic Fisher–Yates driven by splitmix64.
    fn shuffle<T>(items: &mut [T], mut seed: u64) {
        let mut next = || {
            seed = seed.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        for i in (1..items.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(6))]

        #[test]
        fn random_fleets_reproduce_solo_goldens(
            workers in 1usize..9,
            order_seed in 0u64..1_000,
            with_shared in 0u8..2,
            fault_seed in 0u64..1_000,
        ) {
            let goldens = goldens();
            // Base jobs + one faulted SalaryDB replica (seeded per case)
            // + one clean SalaryDB replica, in a random order.
            let mut indexed: Vec<(usize, FleetJob)> = goldens
                .iter()
                .enumerate()
                .map(|(i, (j, _))| (i, j.clone()))
                .collect();
            let mut faulted = goldens[0].0.clone();
            faulted.fault = Some(FaultConfig::guard_failures(fault_seed + 1));
            let faulted_solo = run_job(&faulted, None);
            indexed.push((usize::MAX, faulted));
            indexed.push((0, goldens[0].0.clone()));
            shuffle(&mut indexed, order_seed);

            let jobs: Vec<FleetJob> = indexed.iter().map(|(_, j)| j.clone()).collect();
            let shared = (with_shared == 1).then(|| Arc::new(SharedCodeCache::new(4096)));
            let reports = run_jobs_fleet(
                &FleetConfig::dynamic(workers),
                &jobs,
                shared.as_ref(),
            );
            for ((gi, job), rep) in indexed.iter().zip(&reports) {
                let solo = if *gi == usize::MAX { &faulted_solo } else { &goldens[*gi].1 };
                prop_assert_eq!(&rep.obs, &solo.obs, "{} diverged (workers {})", &job.name, workers);
                prop_assert_eq!(&rep.stats, &solo.stats, "{} stats diverged", &job.name);
                prop_assert_eq!(&rep.folded, &solo.folded, "{} profile diverged", &job.name);
            }
        }
    }
}
