//! Dispatch semantics under stress: deep hierarchies, megamorphic call
//! sites, IMT conflicts (more interface selectors than IMT slots), and
//! interface dispatch through flipped (special) TIBs.

use dchm_bytecode::{CmpOp, ElemKind, MethodSig, ProgramBuilder, Ty, Value};
use dchm_vm::{CodeSlot, Vm, VmConfig, IMT_SLOTS};

#[test]
fn deep_hierarchy_overrides_resolve_bottom_up() {
    // A chain of 12 classes; every third class overrides tag().
    let mut pb = ProgramBuilder::new();
    let mut classes = Vec::new();
    let root = pb.class("C0").build();
    classes.push(root);
    for i in 1..12 {
        let c = pb.class(&format!("C{i}")).extends(classes[i - 1]).build();
        classes.push(c);
    }
    for (i, &c) in classes.iter().enumerate() {
        pb.trivial_ctor(c);
        if i % 3 == 0 {
            let mut m = pb.method(c, "tag", MethodSig::new(vec![], Some(Ty::Int)));
            let r = m.imm(i as i64);
            m.ret(Some(r));
            m.build();
        }
    }
    // main: instantiate each leaf-ish class and dispatch.
    let mut m = pb.static_method(root, "main", MethodSig::new(vec![], Some(Ty::Int)));
    let acc = m.reg();
    m.const_i(acc, 0);
    for &c in &classes {
        let o = m.reg();
        m.new_init(o, c, vec![]);
        let t = m.reg();
        m.call_virtual(Some(t), o, "tag", vec![]);
        m.iadd(acc, acc, t);
    }
    m.ret(Some(acc));
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();

    let mut vm = Vm::new(p, VmConfig::default());
    // Each class resolves to the nearest override at or below... above it:
    // C0,C1,C2 -> 0; C3,C4,C5 -> 3; C6..8 -> 6; C9..11 -> 9.
    let expected: i64 = (0..12).map(|i| (i / 3) * 3).sum();
    assert_eq!(vm.run_entry().unwrap(), Some(Value::Int(expected)));
}

#[test]
fn megamorphic_call_site_dispatches_correctly() {
    // One call site, eight receiver classes.
    let mut pb = ProgramBuilder::new();
    let base = pb.class("Base").build();
    pb.trivial_ctor(base);
    let mut m = pb.method(base, "v", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(0);
    m.ret(Some(r));
    m.build();
    let mut subs = Vec::new();
    for i in 1..=8 {
        let c = pb.class(&format!("S{i}")).extends(base).build();
        pb.trivial_ctor(c);
        let mut m = pb.method(c, "v", MethodSig::new(vec![], Some(Ty::Int)));
        let r = m.imm(i);
        m.ret(Some(r));
        m.build();
        subs.push(c);
    }
    let mut m = pb.static_method(base, "main", MethodSig::new(vec![], Some(Ty::Int)));
    let n = m.imm(9);
    let arr = m.reg();
    m.new_arr(arr, ElemKind::Ref, n);
    let zero = m.imm(0);
    let ob = m.reg();
    m.new_init(ob, base, vec![]);
    m.astore(arr, zero, ob);
    for (i, &c) in subs.iter().enumerate() {
        let idx = m.imm(i as i64 + 1);
        let o = m.reg();
        m.new_init(o, c, vec![]);
        m.astore(arr, idx, o);
    }
    // Dispatch in a loop over all receivers, many times.
    let acc = m.reg();
    m.const_i(acc, 0);
    let round = m.reg();
    m.const_i(round, 0);
    let rh = m.label();
    let rd = m.label();
    m.bind(rh);
    let rl = m.imm(200);
    m.br_icmp(CmpOp::Ge, round, rl, rd);
    let i = m.reg();
    m.const_i(i, 0);
    let ih = m.label();
    let id = m.label();
    m.bind(ih);
    m.br_icmp(CmpOp::Ge, i, n, id);
    let o = m.reg();
    m.aload(o, arr, i);
    let t = m.reg();
    m.call_virtual(Some(t), o, "v", vec![]);
    m.iadd(acc, acc, t);
    m.iadd_imm(i, i, 1);
    m.jmp(ih);
    m.bind(id);
    m.iadd_imm(round, round, 1);
    m.jmp(rh);
    m.bind(rd);
    m.ret(Some(acc));
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();

    // Aggressive sampling so recompilation churns mid-run.
    let cfg = VmConfig {
        sample_period: 5_000,
        opt1_samples: 2,
        opt2_samples: 4,
        ..Default::default()
    };
    let mut vm = Vm::new(p, cfg);
    assert_eq!(
        vm.run_entry().unwrap(),
        Some(Value::Int(200 * (0..=8).sum::<i64>()))
    );
}

#[test]
fn imt_conflicts_resolve_by_search() {
    // One interface with more methods than IMT slots: conflicts guaranteed.
    let n_methods = IMT_SLOTS + 5;
    let mut pb = ProgramBuilder::new();
    let iface = pb.class("Wide").interface().build();
    for i in 0..n_methods {
        pb.abstract_method(iface, &format!("m{i}"), MethodSig::new(vec![], Some(Ty::Int)));
    }
    let c = pb.class("Impl").implements(iface).build();
    pb.trivial_ctor(c);
    for i in 0..n_methods {
        let mut m = pb.method(c, &format!("m{i}"), MethodSig::new(vec![], Some(Ty::Int)));
        let r = m.imm(i as i64 * 10);
        m.ret(Some(r));
        m.build();
    }
    let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
    let o = m.reg();
    m.new_init(o, c, vec![]);
    let acc = m.reg();
    m.const_i(acc, 0);
    for i in 0..n_methods {
        let t = m.reg();
        m.call_interface(Some(t), iface, o, &format!("m{i}"), vec![]);
        m.iadd(acc, acc, t);
    }
    m.ret(Some(acc));
    let main = m.build();
    pb.set_entry(main);
    let p = pb.finish().unwrap();

    let mut vm = Vm::new(p, VmConfig::default());
    let expected: i64 = (0..n_methods as i64).map(|i| i * 10).sum();
    assert_eq!(vm.run_entry().unwrap(), Some(Value::Int(expected)));
}

#[test]
fn interface_dispatch_through_special_tib_runs_special_code() {
    // The paper's Sec. 3.2.3 extension: the IMT resolves to a TIB offset,
    // so a flipped TIB routes interface calls to special code with no
    // extra IMTs.
    let mut pb = ProgramBuilder::new();
    let iface = pb.class("Runnable").interface().build();
    pb.abstract_method(iface, "run", MethodSig::new(vec![], Some(Ty::Int)));
    let c = pb.class("Job").implements(iface).build();
    pb.trivial_ctor(c);
    let mut m = pb.method(c, "run", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(1);
    m.ret(Some(r));
    m.build();
    let mut m = pb.method(c, "alt", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(77);
    m.ret(Some(r));
    let alt = m.build();
    let mut m = pb.static_method(c, "mk", MethodSig::new(vec![], Some(Ty::Ref(c))));
    let o = m.reg();
    m.new_init(o, c, vec![]);
    m.ret(Some(o));
    let mk = m.build();
    let mut m = pb.static_method(c, "call_iface", MethodSig::new(vec![Ty::Ref(iface)], Some(Ty::Int)));
    let o = m.param(0);
    let t = m.reg();
    m.call_interface(Some(t), iface, o, "run", vec![]);
    m.ret(Some(t));
    let call_iface = m.build();
    let p = pb.finish().unwrap();

    let mut vm = Vm::new(p, VmConfig::default());
    let obj = vm.call_static(mk, &[]).unwrap().unwrap();
    let Value::Ref(oref) = obj else { panic!() };
    vm.state.add_handle(oref);
    assert_eq!(vm.call_static(call_iface, &[obj]).unwrap(), Some(Value::Int(1)));

    // Graft alt's code into run's slot in a special TIB and flip.
    let alt_cid = vm.state.ensure_compiled(alt);
    let sel_run = vm.state.program.selector("run").unwrap();
    let job = vm.state.program.class_by_name("Job").unwrap();
    let vslot = vm.state.program.class(job).vtable_slot(sel_run).unwrap();
    let special = vm.state.create_special_tib(job, 0);
    vm.state.sync_special_from_class(job, special, &[vslot]);
    vm.state.set_tib_slot(special, vslot, CodeSlot::Code(alt_cid));
    vm.state.set_object_tib(oref, special);
    assert_eq!(
        vm.call_static(call_iface, &[obj]).unwrap(),
        Some(Value::Int(77)),
        "interface dispatch must flow through the special TIB"
    );
}
