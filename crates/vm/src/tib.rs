//! Type Information Blocks (TIBs) and Interface Method Tables (IMTs).
//!
//! A TIB is the Jikes name for a virtual-function table plus type metadata.
//! Every class gets one *class TIB* at startup; the mutation engine clones
//! it into *special TIBs*, one per hot state of a mutable class, and swaps
//! method entries between general and specialized compiled code (paper
//! Sections 2–3). Type tests always consult the TIB's type-information
//! entry — never TIB-pointer identity — so special TIBs are invisible to
//! `instanceof`/`checkcast` (Sec. 3.2.3).
//!
//! Interface dispatch uses a fixed-size IMT hashed by selector. A class TIB
//! and all its special TIBs share a single IMT: IMT entries resolve to a
//! *TIB offset* rather than a code pointer (the modification Sec. 3.2.3
//! proposes), so the final load goes through whichever TIB the object
//! currently carries.

use crate::state::CodeSlot;
use dchm_bytecode::{ClassId, SelectorId};
use std::fmt;

/// Number of IMT slots (Jikes' static compilation constant).
pub const IMT_SLOTS: usize = 29;

/// Identifies a TIB in the [`crate::VmState`]'s TIB table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TibId(pub u32);

impl TibId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TibId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tib{}", self.0)
    }
}

impl fmt::Display for TibId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tib{}", self.0)
    }
}

/// Whether a TIB is the canonical class TIB or a mutation-created special.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TibKind {
    /// The one TIB every instance starts with.
    Class,
    /// A special TIB for hot state `state_index` of the class.
    Special {
        /// Index of the hot state this TIB embodies (engine-defined).
        state_index: usize,
    },
}

/// One IMT slot.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum ImtEntry {
    /// No interface method hashes here.
    #[default]
    Empty,
    /// Exactly one interface method: resolved directly to a vtable offset.
    Single {
        /// The selector (for debugging; dispatch doesn't re-check it).
        sel: SelectorId,
        /// Offset into the TIB's method array.
        vslot: u32,
    },
    /// Conflict stub: multiple methods hash here; dispatch searches by
    /// selector (charged extra cycles by the evaluator).
    Conflict(Vec<(SelectorId, u32)>),
}

/// An interface method table, shared by a class TIB and its special TIBs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Imt {
    /// The slots.
    pub slots: Vec<ImtEntry>,
}

impl Default for Imt {
    fn default() -> Self {
        Imt {
            slots: vec![ImtEntry::Empty; IMT_SLOTS],
        }
    }
}

impl Imt {
    /// The slot a selector hashes to.
    #[inline]
    pub fn slot_of(sel: SelectorId) -> usize {
        sel.0 as usize % IMT_SLOTS
    }

    /// Adds `sel -> vslot`, upgrading to a conflict entry if needed.
    pub fn add(&mut self, sel: SelectorId, vslot: u32) {
        let slot = &mut self.slots[Self::slot_of(sel)];
        match slot {
            ImtEntry::Empty => *slot = ImtEntry::Single { sel, vslot },
            ImtEntry::Single { sel: s0, vslot: v0 } => {
                if *s0 == sel {
                    *slot = ImtEntry::Single { sel, vslot };
                } else {
                    *slot = ImtEntry::Conflict(vec![(*s0, *v0), (sel, vslot)]);
                }
            }
            ImtEntry::Conflict(list) => {
                if let Some(e) = list.iter_mut().find(|(s, _)| *s == sel) {
                    e.1 = vslot;
                } else {
                    list.push((sel, vslot));
                }
            }
        }
    }

    /// Resolves a selector; `(vslot, conflicted)`.
    pub fn lookup(&self, sel: SelectorId) -> Option<(u32, bool)> {
        match &self.slots[Self::slot_of(sel)] {
            ImtEntry::Empty => None,
            ImtEntry::Single { sel: s, vslot } => {
                if *s == sel {
                    Some((*vslot, false))
                } else {
                    None
                }
            }
            ImtEntry::Conflict(list) => list
                .iter()
                .find(|(s, _)| *s == sel)
                .map(|(_, v)| (*v, true)),
        }
    }
}

/// A Type Information Block.
#[derive(Clone, PartialEq, Debug)]
pub struct Tib {
    /// Type-information entry: the exact class this TIB describes. Identical
    /// between a class TIB and its specials; `instanceof`/`checkcast` use
    /// only this.
    pub class: ClassId,
    /// Class TIB or special TIB.
    pub kind: TibKind,
    /// Method entries, indexed by vtable slot. Specials start as exact
    /// copies of the class TIB (lazy compilation stays intact) and are
    /// repointed at special compiled code by the mutation engine.
    pub methods: Vec<CodeSlot>,
    /// Index of the shared IMT (one per class; specials share it).
    pub imt: u32,
}

impl Tib {
    /// Modeled memory footprint in bytes: one word per method entry plus a
    /// three-word header (type info, kind/status, IMT pointer).
    pub fn bytes(&self) -> usize {
        12 + 4 * self.methods.len()
    }

    /// The special-state index this TIB embodies, or `None` for the class
    /// TIB — the census/profiler view of [`TibKind`].
    #[inline]
    pub fn special_state(&self) -> Option<u32> {
        match self.kind {
            TibKind::Class => None,
            TibKind::Special { state_index } => Some(state_index as u32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imt_single_then_conflict() {
        let mut imt = Imt::default();
        let s1 = SelectorId(3);
        let s2 = SelectorId(3 + IMT_SLOTS as u32); // same slot, different selector
        imt.add(s1, 10);
        assert_eq!(imt.lookup(s1), Some((10, false)));
        imt.add(s2, 20);
        assert_eq!(imt.lookup(s1), Some((10, true)));
        assert_eq!(imt.lookup(s2), Some((20, true)));
        // Updating an existing conflicted entry replaces it.
        imt.add(s1, 11);
        assert_eq!(imt.lookup(s1), Some((11, true)));
    }

    #[test]
    fn imt_update_single() {
        let mut imt = Imt::default();
        let s = SelectorId(5);
        imt.add(s, 1);
        imt.add(s, 2);
        assert_eq!(imt.lookup(s), Some((2, false)));
    }

    #[test]
    fn imt_miss_is_none() {
        let imt = Imt::default();
        assert_eq!(imt.lookup(SelectorId(0)), None);
        let mut imt = Imt::default();
        imt.add(SelectorId(0), 4);
        // Different selector hashing to the same slot misses on a Single.
        assert_eq!(imt.lookup(SelectorId(IMT_SLOTS as u32)), None);
    }

    #[test]
    fn tib_bytes_scale_with_methods() {
        let t = Tib {
            class: ClassId(0),
            kind: TibKind::Class,
            methods: vec![CodeSlot::Lazy; 5],
            imt: 0,
        };
        assert_eq!(t.bytes(), 12 + 20);
    }
}
