//! The optimizing compiler driver: lifts bytecode, instruments mutation
//! patch points, inlines (including OLC specialization inlining and the
//! paper's Section 5 inline-vs-specialize trade-off), optionally applies
//! state specialization, and runs the scalar pipeline for the level.

use crate::hooks::{CompilerHints, PatchSpec};
use crate::state::VmState;
use dchm_bytecode::{
    ClassId, FieldId, Instr, MethodId, MethodKind, Op, Program, Reg, SelectorId, Value,
};
use dchm_ir::cost::{op_size, CostModel};
use dchm_ir::passes::inline::{inline_call, CallSite};
use dchm_ir::passes::{run_pipeline, specialize, Bindings, OptConfig};
use dchm_ir::{lift, BlockId, Function, Term};
use std::collections::{HashMap, HashSet};

/// One resume point in a method's *baseline* code version (the pure
/// lift + instrument translation, before inlining, specialization and the
/// scalar pipeline).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeoptPoint {
    /// Baseline block index.
    pub block: u32,
    /// Baseline op index within that block where execution resumes.
    pub op: u32,
}

/// Per-method deopt side table carried by a guarded specialized compiled
/// method: maps each planted guard id to the baseline coordinate where the
/// frame resumes after deoptimization. Guard coordinates are recorded at
/// insertion time — before any transformation — so they are valid in the
/// baseline version no matter how far the optimizer reshapes the
/// specialized one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeoptInfo {
    /// Resume points indexed by guard id.
    pub points: Vec<DeoptPoint>,
}

/// Result of one compilation.
#[derive(Debug)]
pub struct CompileOutcome {
    /// The optimized, executable function.
    pub func: Function,
    /// Modeled machine-code size in bytes.
    pub size_bytes: usize,
    /// Cycles the compilation cost.
    pub compile_cycles: u64,
    /// Deopt side table (guarded specialized compiles only).
    pub deopt: Option<DeoptInfo>,
}

/// Modeled size of a function in bytes.
pub fn func_size_bytes(f: &Function) -> usize {
    f.blocks
        .iter()
        .map(|b| b.ops.iter().map(op_size).sum::<usize>() + 4)
        .sum()
}

/// Incremental FNV-1a, shared by the compile-environment and state-binding
/// fingerprints of the code cache.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Fnv {
    h: u64,
}

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    pub(crate) fn mix_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.h ^= b as u64;
            self.h = self.h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a value in with the same equivalence as [`Value::key_eq`]:
    /// doubles by bit pattern (all NaNs equal their own bit pattern, `-0.0`
    /// distinct from `0.0`).
    pub(crate) fn mix_value(&mut self, v: &Value) {
        match v {
            Value::Int(i) => {
                self.mix_u64(0x11);
                self.mix_u64(*i as u64);
            }
            Value::Double(d) => {
                self.mix_u64(0x22);
                self.mix_u64(d.to_bits());
            }
            Value::Ref(r) => {
                self.mix_u64(0x33);
                self.mix_u64(r.0 as u64);
            }
            Value::Null => self.mix_u64(0x44),
        }
    }

    pub(crate) fn finish(self) -> u64 {
        self.h
    }
}

/// Everything the optimizing compiler reads from the VM, borrowed into one
/// `Sync` bundle. `VmState` itself holds `Rc`s and cannot cross threads;
/// this bundle can, which is what lets a batched compile run its pipelines
/// on worker threads while the state stays on the VM thread.
#[derive(Clone, Copy)]
pub struct CompileEnv<'a> {
    /// The program being compiled.
    pub program: &'a Program,
    /// Patch points the compiler must instrument.
    pub patch_spec: &'a PatchSpec,
    /// Mutation-engine compile-time facts (OLC, Section 5 heuristic, guards).
    pub hints: &'a CompilerHints,
    /// Selector -> unique implementation map for CHA-style devirtualization.
    pub unique_impl: &'a HashMap<SelectorId, MethodId>,
    /// `VmConfig::enable_inlining`.
    pub enable_inlining: bool,
    /// `VmConfig::max_inline_size`.
    pub max_inline_size: usize,
    /// `VmConfig::max_inline_depth`.
    pub max_inline_depth: usize,
}

// The whole point of the bundle: workers may share it.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<CompileEnv<'static>>();
};

impl<'a> CompileEnv<'a> {
    /// Borrows the compile-relevant slices of a `VmState`.
    pub fn of(state: &'a VmState) -> Self {
        CompileEnv {
            program: &state.program,
            patch_spec: &state.patch_spec,
            hints: &state.hints,
            unique_impl: &state.unique_impl,
            enable_inlining: state.config.enable_inlining,
            max_inline_size: state.config.max_inline_size,
            max_inline_depth: state.config.max_inline_depth,
        }
    }

    /// FNV-1a fingerprint of every compiler input that can change what code
    /// a given `(method, level, bindings)` request produces: the patch
    /// spec, the hints (OLC tables, Section 5 parameters, guard emission)
    /// and the inlining configuration. Hash-map contents are folded in
    /// sorted order so the value is deterministic. The code cache treats
    /// any change of this fingerprint as a full invalidation event.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        let sorted = |set: &HashSet<FieldId>| {
            let mut v: Vec<FieldId> = set.iter().copied().collect();
            v.sort();
            v
        };
        for f in sorted(&self.patch_spec.instance_fields) {
            h.mix_u64(1);
            h.mix_u64(f.index() as u64);
        }
        for f in sorted(&self.patch_spec.static_fields) {
            h.mix_u64(2);
            h.mix_u64(f.index() as u64);
        }
        let mut ctors: Vec<ClassId> = self.patch_spec.ctor_classes.iter().copied().collect();
        ctors.sort_by_key(|c| c.index());
        for c in ctors {
            h.mix_u64(3);
            h.mix_u64(c.index() as u64);
        }
        h.mix_u64(4);
        h.mix_u64(self.hints.k as u64);
        h.mix_u64(self.hints.emit_guards as u64);
        let mut spec: Vec<(MethodId, usize)> = self
            .hints
            .spec_field_count
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect();
        spec.sort();
        for (m, n) in spec {
            h.mix_u64(5);
            h.mix_u64(m.index() as u64);
            h.mix_u64(n as u64);
        }
        let mut olc: Vec<&FieldId> = self.hints.olc.keys().collect();
        olc.sort();
        for k in olc {
            let info = &self.hints.olc[k];
            h.mix_u64(6);
            h.mix_u64(k.index() as u64);
            h.mix_u64(info.ref_field.index() as u64);
            h.mix_u64(info.exact_class.index() as u64);
            let mut bindings: Vec<(FieldId, Value)> =
                info.bindings.iter().map(|(f, v)| (*f, *v)).collect();
            bindings.sort_by_key(|(f, _)| *f);
            for (f, v) in bindings {
                h.mix_u64(f.index() as u64);
                h.mix_value(&v);
            }
        }
        h.mix_u64(7);
        h.mix_u64(self.enable_inlining as u64);
        h.mix_u64(self.max_inline_size as u64);
        h.mix_u64(self.max_inline_depth as u64);
        h.finish()
    }
}

/// Lifts `mid` and instruments its patch points: the *baseline* form every
/// compile of the method starts from, and the unit the VM's lift cache
/// memoizes (one lift shared by the general version and all of its state
/// specializations).
pub fn lift_baseline(env: &CompileEnv<'_>, mid: MethodId) -> Function {
    let md = env.program.method(mid);
    debug_assert!(
        md.kind != MethodKind::Abstract,
        "cannot compile abstract method {}",
        md.name
    );
    let mut f = lift(&md.code, md.num_regs, md.arg_count() as u16);
    instrument(&mut f, env.program, env.patch_spec, mid);
    f
}

/// Compiles `mid` at `level`; `bindings` requests a state-specialized
/// version (the "special compiled code" of the paper).
pub fn compile(
    state: &VmState,
    mid: MethodId,
    level: u8,
    bindings: Option<&Bindings>,
) -> CompileOutcome {
    let env = CompileEnv::of(state);
    let baseline = lift_baseline(&env, mid);
    compile_in(&env, &baseline, mid, level, bindings)
}

/// Compiles `mid` from an already lifted + instrumented `baseline` (see
/// [`lift_baseline`]). Pure with respect to the VM: reads only the `Sync`
/// [`CompileEnv`], so batched compilation may call it from worker threads.
pub fn compile_in(
    env: &CompileEnv<'_>,
    baseline: &Function,
    mid: MethodId,
    level: u8,
    bindings: Option<&Bindings>,
) -> CompileOutcome {
    let program = env.program;
    let md = program.method(mid);
    let arg_count = md.arg_count() as u16;
    let mut f = baseline.clone();

    // Guards must go in *now*, while the function is still coordinate-
    // identical to the baseline version a deoptimizing frame resumes in.
    let mut deopt = None;
    let mut guarded_fields: Option<HashSet<FieldId>> = None;
    if let Some(b) = bindings {
        if env.hints.emit_guards && !b.is_empty() {
            let has_receiver = md.kind != MethodKind::Static;
            deopt = Some(insert_guards(&mut f, b, has_receiver, arg_count));
            guarded_fields = Some(
                b.instance
                    .keys()
                    .chain(b.statics.keys())
                    .copied()
                    .collect(),
            );
        }
    }

    if level >= 1 && env.enable_inlining {
        inline_pass(
            &mut f,
            program,
            env.patch_spec,
            env.hints,
            env.unique_impl,
            mid,
            env.max_inline_size,
            env.max_inline_depth,
            guarded_fields.as_ref(),
        );
    }

    if let Some(b) = bindings {
        specialize(&mut f, b);
    }

    // Compilation cost scales with the *input* size (after inlining, which
    // is what makes SPECjbb's compile-time increase outpace its code-size
    // increase — Sec. 7.2). Special versions are generated in the same
    // compilation session as the general version ("the specialized versions
    // are generated at the same time", Sec. 3.2.2) and share its front-end
    // analysis, so they are billed at a fraction of a full compile.
    let input_bytes = func_size_bytes(&f);
    let mut compile_cycles = CostModel::compile_cost(input_bytes, level) + 1_000;
    if bindings.is_some() {
        compile_cycles = compile_cycles * 2 / 5;
    }

    run_pipeline(&mut f, &OptConfig::level(level));
    let size_bytes = func_size_bytes(&f);
    CompileOutcome {
        func: f,
        size_bytes,
        compile_cycles,
        deopt,
    }
}

/// Plants state guards into a freshly lifted + instrumented function and
/// builds its deopt side table.
///
/// One guard goes at method entry (resuming at baseline `(0, 0)` with only
/// the arguments live) and one after every store to a bound state field —
/// after the store's `Notify*` patch op when present, so the mutation
/// engine has already reacted (restoring the object's class TIB) by the
/// time the guard re-checks the bindings and deoptimizes.
fn insert_guards(f: &mut Function, b: &Bindings, has_receiver: bool, arg_count: u16) -> DeoptInfo {
    // Bindings are HashMaps; sort so the emitted guard ops (and therefore
    // compiled code and its modeled size) are deterministic.
    let obj = if has_receiver && !b.instance.is_empty() {
        Some(Reg(0))
    } else {
        None
    };
    let mut instance: Vec<(FieldId, Value)> = if obj.is_some() {
        b.instance.iter().map(|(k, v)| (*k, *v)).collect()
    } else {
        Vec::new()
    };
    instance.sort_by_key(|(k, _)| *k);
    let mut statics: Vec<(FieldId, Value)> = b.statics.iter().map(|(k, v)| (*k, *v)).collect();
    statics.sort_by_key(|(k, _)| *k);
    let bound: HashSet<FieldId> = b.instance.keys().chain(b.statics.keys()).copied().collect();
    // Every baseline register is live at a post-store guard (conservative:
    // the deopt remap copies the whole baseline window verbatim).
    let live_prefix = f.num_regs;

    let mut table = DeoptInfo::default();
    for (bi, block) in f.blocks.iter_mut().enumerate() {
        let old_ops = std::mem::take(&mut block.ops);
        let mut new_ops = Vec::with_capacity(old_ops.len() + 1);
        // Position in the *baseline* block: counts every op except the
        // guards themselves (which do not exist in baseline code).
        let mut baseline_idx: u32 = 0;
        let mut iter = old_ops.into_iter().peekable();
        while let Some(op) = iter.next() {
            let bound_store = matches!(
                &op,
                Op::PutField { field, .. } | Op::PutStatic { field, .. }
                    if bound.contains(field)
            );
            new_ops.push(op);
            baseline_idx += 1;
            if bound_store {
                // Keep the Notify (inserted by `instrument`) ahead of the
                // guard: the handler flips TIBs first, then we re-check.
                if matches!(
                    iter.peek(),
                    Some(Op::NotifyInstStore { .. } | Op::NotifyStaticStore { .. })
                ) {
                    new_ops.push(iter.next().expect("peeked"));
                    baseline_idx += 1;
                }
                let guard = table.points.len() as u32;
                table.points.push(DeoptPoint {
                    block: bi as u32,
                    op: baseline_idx,
                });
                new_ops.push(Op::GuardState {
                    obj,
                    instance: instance.clone(),
                    statics: statics.clone(),
                    guard,
                    live_prefix,
                });
            }
        }
        block.ops = new_ops;
    }

    // Entry guard: resume at the very top of baseline code, where only the
    // argument registers hold meaningful values.
    let guard = table.points.len() as u32;
    table.points.push(DeoptPoint { block: 0, op: 0 });
    f.blocks[0].ops.insert(
        0,
        Op::GuardState {
            obj,
            instance,
            statics,
            guard,
            live_prefix: arg_count,
        },
    );
    table
}

/// Inserts `Notify*` patch ops after state-field stores and before
/// constructor returns (paper Fig. 4's instrumentation sites).
fn instrument(f: &mut Function, program: &Program, spec: &PatchSpec, mid: MethodId) {
    if spec.is_empty() {
        return;
    }
    let md = program.method(mid);
    for block in &mut f.blocks {
        let mut ops = Vec::with_capacity(block.ops.len());
        for op in block.ops.drain(..) {
            let notify = match &op {
                Op::PutField { obj, field, .. } if spec.instance_fields.contains(field) => {
                    Some(Op::NotifyInstStore {
                        obj: *obj,
                        class: program.field(*field).owner,
                        field: *field,
                    })
                }
                Op::PutStatic { field, .. } if spec.static_fields.contains(field) => {
                    Some(Op::NotifyStaticStore { field: *field })
                }
                _ => None,
            };
            ops.push(op);
            if let Some(n) = notify {
                ops.push(n);
            }
        }
        block.ops = ops;
        if md.kind == MethodKind::Constructor
            && spec.ctor_classes.contains(&md.owner)
            && matches!(block.term, Term::Ret(_))
        {
            block.ops.push(Op::NotifyCtorExit {
                obj: Reg(0),
                class: md.owner,
            });
        }
    }
}

/// A candidate for inlining found during the scan.
struct Candidate {
    site: CallSite,
    target: MethodId,
    recv: Option<Reg>,
    args: Vec<Reg>,
    dst: Option<Reg>,
    /// Object-lifetime-constant bindings to specialize the callee body with
    /// before splicing (exact-type receiver, Sec. 4/5).
    olc: Option<Bindings>,
}

#[allow(clippy::too_many_arguments)]
fn inline_pass(
    f: &mut Function,
    program: &Program,
    spec: &PatchSpec,
    hints: &CompilerHints,
    unique_impl: &HashMap<dchm_bytecode::SelectorId, MethodId>,
    mid: MethodId,
    max_size: usize,
    max_depth: usize,
    guarded_fields: Option<&HashSet<FieldId>>,
) {
    let mut budget = 12usize;
    for _round in 0..max_depth {
        let mut progressed = false;
        // Re-scan after every splice: indices shift.
        while budget > 0 {
            let Some(c) =
                find_candidate(f, program, hints, unique_impl, mid, max_size, guarded_fields)
            else {
                break;
            };
            let callee_md = program.method(c.target);
            let mut callee = lift(
                &callee_md.code,
                callee_md.num_regs,
                callee_md.arg_count() as u16,
            );
            instrument(&mut callee, program, spec, c.target);
            if let Some(b) = &c.olc {
                specialize(&mut callee, b);
            }
            let mut arg_regs = Vec::with_capacity(callee.arg_count as usize);
            if let Some(r) = c.recv {
                arg_regs.push(r);
            }
            arg_regs.extend(&c.args);
            if inline_call(f, c.site, &callee, &arg_regs, c.dst).is_err() {
                // Register/block capacity exhausted: stop inlining; the
                // function is already correct without the splice.
                break;
            }
            budget -= 1;
            progressed = true;
        }
        if !progressed {
            break;
        }
    }
}

/// Scans for the first inlinable call site. With `guarded_fields` set (a
/// guarded specialized compile), callees that store any of those state
/// fields are never inlined: such a store inside a spliced body would have
/// no post-store guard, letting the frame keep running stale specialized
/// code undetected.
#[allow(clippy::too_many_arguments)]
fn find_candidate(
    f: &Function,
    program: &Program,
    hints: &CompilerHints,
    unique_impl: &HashMap<dchm_bytecode::SelectorId, MethodId>,
    mid: MethodId,
    max_size: usize,
    guarded_fields: Option<&HashSet<FieldId>>,
) -> Option<Candidate> {
    for (bi, block) in f.blocks.iter().enumerate() {
        for (oi, op) in block.ops.iter().enumerate() {
            let site = CallSite {
                block: BlockId::from_index(bi),
                op_index: oi,
            };
            let cand = match op {
                Op::CallStatic { dst, method, args } => Some(Candidate {
                    site,
                    target: *method,
                    recv: None,
                    args: args.clone(),
                    dst: *dst,
                    olc: None,
                }),
                Op::CallSpecial {
                    dst,
                    class,
                    sel,
                    obj,
                    args,
                } => program.resolve_special(*class, *sel).map(|t| Candidate {
                    site,
                    target: t,
                    recv: Some(*obj),
                    args: args.clone(),
                    dst: *dst,
                    olc: None,
                }),
                Op::CallVirtual {
                    dst,
                    sel,
                    obj,
                    args,
                } => {
                    // Exact-type receiver through an OLC private reference
                    // field beats CHA: it also yields constant bindings.
                    let exact = exact_receiver(block, oi, *obj, hints);
                    match exact {
                        Some(olc_info) => {
                            program.resolve_virtual(olc_info.0, *sel).map(|t| Candidate {
                                site,
                                target: t,
                                recv: Some(*obj),
                                args: args.clone(),
                                dst: *dst,
                                olc: Some(olc_info.1),
                            })
                        }
                        None => unique_impl.get(sel).map(|&t| Candidate {
                            site,
                            target: t,
                            recv: Some(*obj),
                            args: args.clone(),
                            dst: *dst,
                            olc: None,
                        }),
                    }
                }
                _ => None,
            };
            let Some(cand) = cand else { continue };
            if cand.target == mid {
                continue; // no direct recursion
            }
            let callee = program.method(cand.target);
            if callee.kind == MethodKind::Abstract || callee.code.is_empty() {
                continue;
            }
            if callee.code.len() > max_size {
                continue;
            }
            if let Some(bound) = guarded_fields {
                let stores_bound = callee.code.iter().any(|ins| {
                    matches!(
                        ins,
                        Instr::Op(Op::PutField { field, .. } | Op::PutStatic { field, .. })
                            if bound.contains(field)
                    )
                });
                if stores_bound {
                    continue;
                }
            }
            // Section 5 trade-off: for a mutable method with M specializable
            // state fields and no OLC constants, inline only if the call
            // site passes more than M + k constants; otherwise leave the
            // call for state specialization through special TIBs.
            if cand.olc.is_none() {
                if let Some(&m_fields) = hints.spec_field_count.get(&cand.target) {
                    if m_fields > 0 {
                        let n = const_args(block, oi, &cand.args);
                        if (n as i64) <= m_fields as i64 + hints.k {
                            continue;
                        }
                    }
                }
            }
            return Some(cand);
        }
    }
    None
}

/// If `obj` was loaded, within this block and with no intervening
/// redefinition, from a private reference field with OLC info, returns the
/// exact class and the constant bindings.
fn exact_receiver(
    block: &dchm_ir::Block,
    call_idx: usize,
    obj: Reg,
    hints: &CompilerHints,
) -> Option<(ClassId, Bindings)> {
    for prev in block.ops[..call_idx].iter().rev() {
        if prev.def() == Some(obj) {
            if let Op::GetField { field, .. } = prev {
                if let Some(info) = hints.olc.get(field) {
                    let b = Bindings {
                        instance: info.bindings.clone(),
                        ..Default::default()
                    };
                    return Some((info.exact_class, b));
                }
            }
            return None; // redefined by something else
        }
    }
    None
}

/// `N` of the Section 5 heuristic: how many argument registers are defined
/// by constants earlier in the same block.
fn const_args(block: &dchm_ir::Block, call_idx: usize, args: &[Reg]) -> usize {
    let mut n = 0;
    for &a in args {
        for prev in block.ops[..call_idx].iter().rev() {
            if prev.def() == Some(a) {
                if matches!(prev, Op::ConstI { .. } | Op::ConstD { .. }) {
                    n += 1;
                }
                break;
            }
        }
    }
    n
}

/// Helper for the mutation engine: builds [`Bindings`] from plain maps.
pub fn bindings_from(
    instance: &[(FieldId, Value)],
    statics: &[(FieldId, Value)],
) -> Bindings {
    Bindings {
        instance: instance.iter().copied().collect(),
        statics: statics.iter().copied().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{VmConfig, VmState};
    use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty};

    /// Program with: class C { int s; void set(int v){ s = v; } },
    /// a helper `static int add1(int)`, and a main calling both.
    fn build_state(spec: PatchSpec) -> (VmState, MethodId, MethodId, FieldId, ClassId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let s = pb.instance_field(c, "s", Ty::Int);
        pb.trivial_ctor(c);

        let mut m = pb.method(c, "set", MethodSig::new(vec![Ty::Int], None));
        let this = m.this();
        let v = m.param(0);
        m.put_field(this, s, v);
        m.ret(None);
        m.build();

        let mut m = pb.static_method(c, "add1", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
        let x = m.param(0);
        let one = m.imm(1);
        let r = m.reg();
        m.iadd(r, x, one);
        m.ret(Some(r));
        let add1 = m.build();

        let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
        let obj = m.reg();
        m.new_init(obj, c, vec![]);
        let arg = m.imm(41);
        let out = m.reg();
        m.call_static(Some(out), add1, vec![arg]);
        m.call_virtual(None, obj, "set", vec![out]);
        m.ret(Some(out));
        let main = m.build();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        let mut st = VmState::new(p, VmConfig::default());
        st.patch_spec = spec;
        (st, main, add1, s, c)
    }

    #[test]
    fn instrumentation_adds_notify_after_store() {
        let mut spec = PatchSpec::default();
        let (st0, _, _, s, c) = build_state(PatchSpec::default());
        spec.instance_fields.insert(s);
        spec.ctor_classes.insert(c);
        drop(st0);
        let (st, _, _, s, c) = build_state(spec);
        let set = st.program.method_by_name(c, "set").unwrap();
        let out = compile(&st, set, 0, None);
        let has_notify = out.func.blocks.iter().any(|b| {
            b.ops.windows(2).any(|w| {
                matches!(w[0], Op::PutField { .. })
                    && matches!(w[1], Op::NotifyInstStore { field, .. } if field == s)
            })
        });
        assert!(has_notify, "{}", out.func);
        // Constructor gets a ctor-exit patch point.
        let ctor = st.program.method_by_name(c, "<init>").unwrap();
        let out = compile(&st, ctor, 0, None);
        let has_ctor_exit = out
            .func
            .blocks
            .iter()
            .any(|b| b.ops.iter().any(|o| matches!(o, Op::NotifyCtorExit { .. })));
        assert!(has_ctor_exit);
    }

    #[test]
    fn no_instrumentation_when_spec_empty() {
        let (st, _, _, _, c) = build_state(PatchSpec::default());
        let set = st.program.method_by_name(c, "set").unwrap();
        let out = compile(&st, set, 0, None);
        for b in &out.func.blocks {
            for op in &b.ops {
                assert!(!matches!(
                    op,
                    Op::NotifyInstStore { .. } | Op::NotifyCtorExit { .. }
                ));
            }
        }
    }

    #[test]
    fn opt1_inlines_static_and_unique_virtual() {
        let (st, main, _, _, _) = build_state(PatchSpec::default());
        let o0 = compile(&st, main, 0, None);
        let o1 = compile(&st, main, 1, None);
        let calls = |f: &Function| {
            f.blocks
                .iter()
                .flat_map(|b| b.ops.iter())
                .filter(|o| o.is_call())
                .count()
        };
        // opt0 keeps calls (ctor + add1 + set); opt1 inlines add1 and set
        // (unique impl) and the trivial ctor.
        assert!(calls(&o0.func) >= 3);
        assert_eq!(calls(&o1.func), 0, "{}", o1.func);
    }

    #[test]
    fn opt2_folds_inlined_constants() {
        let (st, main, _, _, _) = build_state(PatchSpec::default());
        let o2 = compile(&st, main, 2, None);
        // add1(41) folds to 42: a `const 42` exists and no IBin remains.
        let has42 = o2
            .func
            .blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .any(|o| matches!(o, Op::ConstI { val: 42, .. }));
        assert!(has42, "{}", o2.func);
    }

    #[test]
    fn compile_cost_grows_with_level() {
        let (st, main, _, _, _) = build_state(PatchSpec::default());
        let c0 = compile(&st, main, 0, None).compile_cycles;
        let c2 = compile(&st, main, 2, None).compile_cycles;
        assert!(c2 > c0);
    }

    #[test]
    fn tradeoff_skips_inlining_mutable_class_methods() {
        let (mut st, main, _, _, c) = build_state(PatchSpec::default());
        // Mark set() a mutable method with one specializable field; calls
        // to it with no constant args must NOT be inlined (N=1 const arg
        // vs M+k=1: 1 > 1 is false).
        let set = st.program.method_by_name(c, "set").unwrap();
        st.hints.spec_field_count.insert(set, 1);
        st.hints.k = 0;
        let o1 = compile(&st, main, 1, None);
        let set_calls = o1
            .func
            .blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .filter(|o| matches!(o, Op::CallVirtual { .. }))
            .count();
        assert_eq!(set_calls, 1, "set() must remain a virtual call");
        // With a strongly negative k, inlining wins again.
        st.hints.k = -10;
        let o1b = compile(&st, main, 1, None);
        let set_calls_b = o1b
            .func
            .blocks
            .iter()
            .flat_map(|b| b.ops.iter())
            .filter(|o| matches!(o, Op::CallVirtual { .. }))
            .count();
        assert_eq!(set_calls_b, 0);
    }

    /// class G { int s; int bump(int v){ s = v; return s; }
    ///           void set2(int v){ s = v; } void work(int v){ set2(v); } }
    /// with `s` registered as a patch-point field.
    fn build_guard_state() -> (VmState, MethodId, MethodId, FieldId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("G").build();
        let s = pb.instance_field(c, "s", Ty::Int);
        pb.trivial_ctor(c);

        let mut m = pb.method(c, "bump", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
        let this = m.this();
        let v = m.param(0);
        m.put_field(this, s, v);
        let r = m.reg();
        m.get_field(r, this, s);
        m.ret(Some(r));
        let bump = m.build();

        let mut m = pb.method(c, "set2", MethodSig::new(vec![Ty::Int], None));
        let this = m.this();
        let v = m.param(0);
        m.put_field(this, s, v);
        m.ret(None);
        m.build();

        let mut m = pb.method(c, "work", MethodSig::new(vec![Ty::Int], None));
        let this = m.this();
        let v = m.param(0);
        m.call_virtual(None, this, "set2", vec![v]);
        m.ret(None);
        let work = m.build();

        let mut m = pb.static_method(c, "main", MethodSig::new(vec![], None));
        m.ret(None);
        let main = m.build();
        pb.set_entry(main);
        let p = pb.finish().unwrap();
        let mut st = VmState::new(p, VmConfig::default());
        st.patch_spec.instance_fields.insert(s);
        (st, bump, work, s)
    }

    #[test]
    fn guards_planted_with_baseline_side_table() {
        let (st, bump, _, s) = build_guard_state();
        let b = bindings_from(&[(s, Value::Int(7))], &[]);
        let out = compile(&st, bump, 2, Some(&b));
        let table = out.deopt.expect("guarded compile must carry a side table");
        // Entry guard is the first op and resumes at baseline (0, 0) with
        // only the arguments (receiver + v) live.
        let entry = &out.func.blocks[0].ops[0];
        let Op::GuardState {
            guard, live_prefix, ..
        } = entry
        else {
            panic!("entry op is not a guard: {entry:?}");
        };
        assert_eq!(table.points[*guard as usize], DeoptPoint { block: 0, op: 0 });
        assert_eq!(*live_prefix, 2, "entry guard keeps only this + v live");
        // The post-store guard resumes in *baseline* code right after the
        // PutField + Notify pair: at the GetField that re-reads the field.
        let baseline = compile(&st, bump, 0, None).func;
        let post = table
            .points
            .iter()
            .find(|p| **p != DeoptPoint { block: 0, op: 0 })
            .expect("post-store guard");
        let ops = &baseline.blocks[post.block as usize].ops;
        assert!(
            matches!(ops[post.op as usize], Op::GetField { .. }),
            "resume op: {:?}",
            ops[post.op as usize]
        );
        assert!(
            matches!(ops[post.op as usize - 1], Op::NotifyInstStore { .. }),
            "guard must sit after the store's notify"
        );
    }

    #[test]
    fn guard_insertion_can_be_disabled() {
        let (mut st, bump, _, s) = build_guard_state();
        st.hints.emit_guards = false;
        let b = bindings_from(&[(s, Value::Int(7))], &[]);
        let out = compile(&st, bump, 2, Some(&b));
        assert!(out.deopt.is_none());
        for block in &out.func.blocks {
            for op in &block.ops {
                assert!(!matches!(op, Op::GuardState { .. }));
            }
        }
    }

    #[test]
    fn guarded_compiles_refuse_to_inline_bound_store_callees() {
        let (st, _, work, s) = build_guard_state();
        let b = bindings_from(&[(s, Value::Int(7))], &[]);
        let calls = |f: &Function| {
            f.blocks
                .iter()
                .flat_map(|bl| bl.ops.iter())
                .filter(|o| o.is_call())
                .count()
        };
        // set2 stores the bound field: a spliced copy would carry no
        // post-store guard, so the guarded compile must keep the call.
        let guarded = compile(&st, work, 2, Some(&b));
        assert!(guarded.deopt.is_some());
        assert!(calls(&guarded.func) >= 1, "{}", guarded.func);
        // With guards off the usual inliner behaviour returns.
        let mut st = st;
        st.hints.emit_guards = false;
        let unguarded = compile(&st, work, 2, Some(&b));
        assert_eq!(calls(&unguarded.func), 0, "{}", unguarded.func);
    }

    #[test]
    fn specialized_compile_is_smaller() {
        // raise()-style method: branch ladder on a state field.
        let mut pb = ProgramBuilder::new();
        let c = pb.class("S").build();
        let g = pb.instance_field(c, "g", Ty::Int);
        pb.trivial_ctor(c);
        let mut m = pb.method(c, "work", MethodSig::new(vec![], Some(Ty::Int)));
        let this = m.this();
        let gv = m.reg();
        m.get_field(gv, this, g);
        let l1 = m.label();
        let r = m.reg();
        m.br_icmp_imm(CmpOp::Ne, gv, 0, l1);
        m.const_i(r, 100);
        m.ret(Some(r));
        m.bind(l1);
        m.const_i(r, 200);
        m.ret(Some(r));
        let work = m.build();
        let p = pb.finish().unwrap();
        let st = VmState::new(p, VmConfig::default());

        let general = compile(&st, work, 2, None);
        let b = bindings_from(&[(g, Value::Int(0))], &[]);
        let special = compile(&st, work, 2, Some(&b));
        assert!(special.size_bytes < general.size_bytes);
        // The specialized version returns the constant directly.
        assert!(special
            .func
            .blocks
            .iter()
            .flat_map(|x| x.ops.iter())
            .any(|o| matches!(o, Op::ConstI { val: 100, .. })));
        assert!(!special
            .func
            .blocks
            .iter()
            .flat_map(|x| x.ops.iter())
            .any(|o| matches!(o, Op::GetField { .. })));
    }
}
