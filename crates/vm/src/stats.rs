//! Execution, compilation and space statistics — the raw material for every
//! figure in the paper's evaluation.

use dchm_bytecode::MethodId;

/// Per-method profile counters. Sampling information is keyed by *method*,
/// not compiled method, so general and special compiled code share hotness
/// (paper Sec. 3.2.3, last paragraph).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MethodProfile {
    /// Invocation count.
    pub invocations: u64,
    /// Adaptive-system samples attributed to this method.
    pub samples: u64,
    /// Cycles executed while this method's frame was on top.
    pub cycles: u64,
    /// Current optimization level of the valid general compiled method
    /// (`None` until first compiled).
    pub level: Option<u8>,
    /// Times recompiled (level promotions).
    pub recompiles: u32,
}

/// Whole-VM statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct VmStats {
    /// Cycles spent executing application code.
    pub exec_cycles: u64,
    /// Cycles spent in the optimizing compiler (all levels, specials
    /// included).
    pub compile_cycles: u64,
    /// Cycles spent compiling *special* (mutation) versions only.
    pub special_compile_cycles: u64,
    /// Cycles spent in GC.
    pub gc_cycles: u64,
    /// Ops executed.
    pub ops_executed: u64,
    /// Samples taken by the adaptive system.
    pub samples_taken: u64,
    /// Number of general compiled methods ever produced, by level (0, 1, 2).
    pub compiles_by_level: [u64; 3],
    /// Bytes of general compiled code ever produced, by level.
    pub code_bytes_by_level: [u64; 3],
    /// Number of special (state-specialized) compiled methods produced.
    pub special_compiles: u64,
    /// Bytes of special compiled code produced.
    pub special_code_bytes: u64,
    /// Bytes of class TIBs (created at startup).
    pub class_tib_bytes: u64,
    /// Bytes of special TIBs (created by the mutation engine) — Figure 12.
    pub special_tib_bytes: u64,
    /// Number of special TIBs created.
    pub special_tibs: u64,
    /// Object-TIB-pointer flips performed by the mutation engine.
    pub tib_flips: u64,
    /// Code-pointer patches applied to TIBs/JTOC by the engine.
    pub code_patches: u64,
    /// Inline-cache hits at receiver-polymorphic call sites (host-side
    /// fast path; no effect on modeled cycles).
    pub ic_hits: u64,
    /// Inline-cache misses (empty, stale-generation or wrong-TIB entries).
    pub ic_misses: u64,
    /// Global inline-cache invalidations (generation bumps) caused by
    /// code installs, TIB/JTOC patches and mutable-class marking.
    pub ic_invalidations: u64,
    /// State guards executed in specialized code (passing or failing).
    pub guards_executed: u64,
    /// Guard failures observed (state mismatch or forced by the injector).
    pub guard_failures: u64,
    /// Frames deoptimized onto baseline code after a guard failure.
    pub deopts: u64,
    /// Baseline (deopt-target) code versions compiled on first deopt of a
    /// method.
    pub deopt_baseline_compiles: u64,
    /// Per-method profiles, indexed by [`MethodId`].
    pub per_method: Vec<MethodProfile>,
}

impl VmStats {
    /// Creates stats sized for `num_methods`.
    pub fn new(num_methods: usize) -> Self {
        VmStats {
            per_method: vec![MethodProfile::default(); num_methods],
            ..Default::default()
        }
    }

    /// Total modeled cycles: execution + compilation + GC. This is the
    /// "wall clock" all throughput numbers divide by.
    pub fn total_cycles(&self) -> u64 {
        self.exec_cycles + self.compile_cycles + self.gc_cycles
    }

    /// Total bytes of opt-compiled code (general, all levels).
    pub fn general_code_bytes(&self) -> u64 {
        self.code_bytes_by_level.iter().sum()
    }

    /// Profile for one method.
    ///
    /// # Panics
    /// Panics if `m` is out of range.
    pub fn method(&self, m: MethodId) -> &MethodProfile {
        &self.per_method[m.index()]
    }

    /// Methods sorted by self-cycles, hottest first — the reproduction's
    /// stand-in for the paper's VTune hot-function list.
    pub fn hot_methods(&self) -> Vec<(MethodId, MethodProfile)> {
        let mut v: Vec<(MethodId, MethodProfile)> = self
            .per_method
            .iter()
            .enumerate()
            .map(|(i, p)| (MethodId::from_index(i), *p))
            .collect();
        v.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut s = VmStats::new(2);
        s.exec_cycles = 10;
        s.compile_cycles = 5;
        s.gc_cycles = 1;
        assert_eq!(s.total_cycles(), 16);
        s.code_bytes_by_level = [100, 200, 300];
        assert_eq!(s.general_code_bytes(), 600);
    }

    #[test]
    fn hot_methods_sorted_desc() {
        let mut s = VmStats::new(3);
        s.per_method[0].cycles = 5;
        s.per_method[1].cycles = 50;
        s.per_method[2].cycles = 10;
        let hot = s.hot_methods();
        assert_eq!(hot[0].0, MethodId(1));
        assert_eq!(hot[1].0, MethodId(2));
        assert_eq!(hot[2].0, MethodId(0));
    }
}
