//! Execution, compilation and space statistics — the raw material for every
//! figure in the paper's evaluation.

use dchm_bytecode::MethodId;
use serde::Serialize;
use std::fmt;

/// Per-method profile counters. Sampling information is keyed by *method*,
/// not compiled method, so general and special compiled code share hotness
/// (paper Sec. 3.2.3, last paragraph).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct MethodProfile {
    /// Invocation count.
    pub invocations: u64,
    /// Adaptive-system samples attributed to this method.
    pub samples: u64,
    /// Cycles executed while this method's frame was on top.
    pub cycles: u64,
    /// Current optimization level of the valid general compiled method
    /// (`None` until first compiled).
    pub level: Option<u8>,
    /// Times recompiled (level promotions).
    pub recompiles: u32,
}

impl fmt::Display for MethodProfile {
    /// One stable line: `inv N  samples N  cycles N  level L  recompiles N`
    /// (`level -` until first compiled).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "inv {:<10} samples {:<6} cycles {:<12} level {:<5} recompiles {}",
            self.invocations,
            self.samples,
            self.cycles,
            match self.level {
                Some(l) => format!("opt{l}"),
                None => "-".to_string(),
            },
            self.recompiles
        )
    }
}

/// Whole-VM statistics.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct VmStats {
    /// Cycles spent executing application code.
    pub exec_cycles: u64,
    /// Cycles spent in the optimizing compiler (all levels, specials
    /// included).
    pub compile_cycles: u64,
    /// Cycles spent compiling *special* (mutation) versions only.
    pub special_compile_cycles: u64,
    /// Cycles spent in GC.
    pub gc_cycles: u64,
    /// Ops executed.
    pub ops_executed: u64,
    /// Samples taken by the adaptive system.
    pub samples_taken: u64,
    /// Number of general compiled methods ever produced, by level (0, 1, 2).
    pub compiles_by_level: [u64; 3],
    /// Bytes of general compiled code ever produced, by level.
    pub code_bytes_by_level: [u64; 3],
    /// Number of special (state-specialized) compiled methods produced.
    pub special_compiles: u64,
    /// Bytes of special compiled code produced.
    pub special_code_bytes: u64,
    /// Bytes of class TIBs (created at startup).
    pub class_tib_bytes: u64,
    /// Bytes of special TIBs (created by the mutation engine) — Figure 12.
    pub special_tib_bytes: u64,
    /// Number of special TIBs created.
    pub special_tibs: u64,
    /// Object-TIB-pointer flips performed by the mutation engine.
    pub tib_flips: u64,
    /// Code-pointer patches applied to TIBs/JTOC by the engine.
    pub code_patches: u64,
    /// Inline-cache hits at receiver-polymorphic call sites (host-side
    /// fast path; no effect on modeled cycles).
    pub ic_hits: u64,
    /// Inline-cache misses (empty, stale-generation or wrong-TIB entries).
    pub ic_misses: u64,
    /// Global inline-cache invalidations (generation bumps) caused by
    /// code installs, TIB/JTOC patches and mutable-class marking.
    pub ic_invalidations: u64,
    /// State guards executed in specialized code (passing or failing).
    pub guards_executed: u64,
    /// Guard failures observed (state mismatch or forced by the injector).
    pub guard_failures: u64,
    /// Frames deoptimized onto baseline code after a guard failure.
    pub deopts: u64,
    /// Baseline (deopt-target) code versions compiled on first deopt of a
    /// method.
    pub deopt_baseline_compiles: u64,
    /// Compilation requests answered by the compiled-code cache (the stored
    /// version was reinstalled; modeled billing unchanged, host pipeline
    /// work elided).
    pub code_cache_hits: u64,
    /// Compilation requests that ran the full pipeline and populated the
    /// cache (silent fault-injected recompiles are never counted).
    pub code_cache_misses: u64,
    /// Entries dropped by the cache's LRU capacity bound.
    pub code_cache_evictions: u64,
    /// Whole-cache flushes caused by compiler-environment changes (plan
    /// installs, guard-config or inlining-config changes).
    pub code_cache_invalidations: u64,
    /// Specials throttled by the resilience governor (deopt-storm backoff
    /// episodes started).
    pub specials_throttled: u64,
    /// Specials permanently blacklisted by the governor after repeated
    /// storm episodes.
    pub specials_blacklisted: u64,
    /// Injected or organic compilation failures observed (the compile was
    /// abandoned and tiered down; nothing was cached).
    pub compile_failures: u64,
    /// `(method, level)` pairs quarantined by the governor after repeated
    /// compile failures.
    pub compile_quarantines: u64,
    /// Per-method profiles, indexed by [`MethodId`].
    pub per_method: Vec<MethodProfile>,
}

impl VmStats {
    /// Creates stats sized for `num_methods`.
    pub fn new(num_methods: usize) -> Self {
        VmStats {
            per_method: vec![MethodProfile::default(); num_methods],
            ..Default::default()
        }
    }

    /// Total modeled cycles: execution + compilation + GC. This is the
    /// "wall clock" all throughput numbers divide by.
    pub fn total_cycles(&self) -> u64 {
        self.exec_cycles + self.compile_cycles + self.gc_cycles
    }

    /// Total bytes of opt-compiled code (general, all levels).
    pub fn general_code_bytes(&self) -> u64 {
        self.code_bytes_by_level.iter().sum()
    }

    /// Profile for one method.
    ///
    /// # Panics
    /// Panics if `m` is out of range.
    pub fn method(&self, m: MethodId) -> &MethodProfile {
        &self.per_method[m.index()]
    }

    /// Methods sorted by self-cycles, hottest first — the reproduction's
    /// stand-in for the paper's VTune hot-function list.
    pub fn hot_methods(&self) -> Vec<(MethodId, MethodProfile)> {
        let mut v: Vec<(MethodId, MethodProfile)> = self
            .per_method
            .iter()
            .enumerate()
            .map(|(i, p)| (MethodId::from_index(i), *p))
            .collect();
        v.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(&b.0)));
        v
    }
}

impl fmt::Display for VmStats {
    /// A stable eight-row summary table (the bench bins' standard dump):
    /// cycles, ops, compiles, TIB/mutation work, inline caches, the
    /// compiled-code cache, guards, the resilience governor. Layout and
    /// field order are part of the output contract — scripts may grep it.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_cycles();
        let pct = |part: u64| {
            if total == 0 {
                0.0
            } else {
                part as f64 / total as f64 * 100.0
            }
        };
        writeln!(
            f,
            "cycles    total {}  exec {} ({:.1}%)  compile {} ({:.1}%)  gc {} ({:.1}%)",
            total,
            self.exec_cycles,
            pct(self.exec_cycles),
            self.compile_cycles,
            pct(self.compile_cycles),
            self.gc_cycles,
            pct(self.gc_cycles)
        )?;
        writeln!(
            f,
            "ops       executed {}  samples {}",
            self.ops_executed, self.samples_taken
        )?;
        writeln!(
            f,
            "compiles  opt0 {} ({} B)  opt1 {} ({} B)  opt2 {} ({} B)  special {} ({} B)",
            self.compiles_by_level[0],
            self.code_bytes_by_level[0],
            self.compiles_by_level[1],
            self.code_bytes_by_level[1],
            self.compiles_by_level[2],
            self.code_bytes_by_level[2],
            self.special_compiles,
            self.special_code_bytes
        )?;
        writeln!(
            f,
            "tibs      class {} B  special {} ({} B)  flips {}  code patches {}",
            self.class_tib_bytes,
            self.special_tibs,
            self.special_tib_bytes,
            self.tib_flips,
            self.code_patches
        )?;
        writeln!(
            f,
            "icache    hits {}  misses {}  invalidations {}",
            self.ic_hits, self.ic_misses, self.ic_invalidations
        )?;
        writeln!(
            f,
            "codecache hits {}  misses {}  evictions {}  invalidations {}",
            self.code_cache_hits,
            self.code_cache_misses,
            self.code_cache_evictions,
            self.code_cache_invalidations
        )?;
        writeln!(
            f,
            "guards    executed {}  failed {}  deopts {}  baseline compiles {}",
            self.guards_executed,
            self.guard_failures,
            self.deopts,
            self.deopt_baseline_compiles
        )?;
        write!(
            f,
            "governor  throttled {}  blacklisted {}  compile failures {}  quarantines {}",
            self.specials_throttled,
            self.specials_blacklisted,
            self.compile_failures,
            self.compile_quarantines
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let mut s = VmStats::new(2);
        s.exec_cycles = 10;
        s.compile_cycles = 5;
        s.gc_cycles = 1;
        assert_eq!(s.total_cycles(), 16);
        s.code_bytes_by_level = [100, 200, 300];
        assert_eq!(s.general_code_bytes(), 600);
    }

    #[test]
    fn hot_methods_sorted_desc() {
        let mut s = VmStats::new(3);
        s.per_method[0].cycles = 5;
        s.per_method[1].cycles = 50;
        s.per_method[2].cycles = 10;
        let hot = s.hot_methods();
        assert_eq!(hot[0].0, MethodId(1));
        assert_eq!(hot[1].0, MethodId(2));
        assert_eq!(hot[2].0, MethodId(0));
    }

    #[test]
    fn display_is_a_stable_table() {
        let mut s = VmStats::new(1);
        s.exec_cycles = 75;
        s.compile_cycles = 25;
        s.ops_executed = 10;
        s.compiles_by_level = [2, 1, 0];
        s.code_bytes_by_level = [64, 32, 0];
        s.tib_flips = 3;
        let text = s.to_string();
        assert!(text.contains("cycles    total 100  exec 75 (75.0%)  compile 25 (25.0%)"));
        assert!(text.contains("ops       executed 10  samples 0"));
        assert!(text.contains("compiles  opt0 2 (64 B)  opt1 1 (32 B)"));
        assert!(text.contains("flips 3"));
        assert!(text.contains("codecache hits 0  misses 0  evictions 0  invalidations 0"));
        assert!(text.contains("guards    executed 0"));
        assert!(text.contains("governor  throttled 0  blacklisted 0  compile failures 0  quarantines 0"));
        assert_eq!(text.lines().count(), 8);

        let p = MethodProfile { invocations: 4, level: Some(2), ..Default::default() };
        let line = p.to_string();
        assert!(line.contains("inv 4"));
        assert!(line.contains("level opt2"));
        assert!(MethodProfile::default().to_string().contains("level -"));
    }

    #[test]
    fn stats_serialize_to_json() {
        let mut s = VmStats::new(2);
        s.exec_cycles = 5;
        s.compiles_by_level = [1, 2, 3];
        s.per_method[1].invocations = 9;
        s.per_method[1].level = Some(1);
        let json = serde_json::to_string(&s).unwrap();
        assert!(json.contains("\"exec_cycles\":5"));
        assert!(json.contains("\"compiles_by_level\":[1,2,3]"));
        assert!(json.contains("\"invocations\":9"));
        // `Option<u8>` levels render as null / the number.
        assert!(json.contains("\"level\":null"));
        assert!(json.contains("\"level\":1"));
    }
}
