//! The evaluator: executes compiled IR with deterministic cycle accounting,
//! TIB-based dispatch, adaptive sampling, and delivery of mutation patch
//! points to the [`MutationHandler`].

use crate::error::RunError;
use crate::hooks::{MutationHandler, NoopHandler, VmObserver};
use crate::state::{CodeSlot, CompiledId, Frame, VmConfig, VmState};
use crate::stats::VmStats;
use dchm_bytecode::value::ObjRef;
use dchm_bytecode::{
    ClassId, IntrinsicKind, MethodId, MethodKind, Op, Program, Reg, SelectorId, Value,
};
use dchm_ir::cost::{op_cost, CostModel};
use dchm_ir::Term;
use std::fmt::Write as _;

/// Extra cycles for an IMT conflict stub search (Sec. 3.2.3).
const IMT_CONFLICT_COST: u64 = 6;
/// Extra load when dispatching an interface method on a mutable class
/// (the IMT stores a TIB offset instead of a code pointer — Sec. 3.2.3).
const IMT_MUTABLE_EXTRA_LOAD: u64 = 1;

enum Flow {
    Continue,
    PushedFrame,
}

/// The virtual machine: state + mutation handler + optional observer.
pub struct Vm {
    /// All runtime state (public: the mutation engine manipulates it).
    pub state: VmState,
    handler: Box<dyn MutationHandler>,
    observer: Option<Box<dyn VmObserver>>,
    watched: Vec<bool>,
}

impl Vm {
    /// Creates a VM with mutation disabled ([`NoopHandler`]).
    pub fn new(program: Program, config: VmConfig) -> Self {
        Self::with_handler(program, config, Box::new(NoopHandler))
    }

    /// Creates a VM with a mutation handler attached.
    pub fn with_handler(
        program: Program,
        config: VmConfig,
        handler: Box<dyn MutationHandler>,
    ) -> Self {
        Vm {
            state: VmState::new(program, config),
            handler,
            observer: None,
            watched: Vec::new(),
        }
    }

    /// Replaces the mutation handler (e.g. after installing a plan).
    pub fn set_handler(&mut self, handler: Box<dyn MutationHandler>) {
        self.handler = handler;
    }

    /// Attaches a profiling observer; its watch set is captured now.
    pub fn attach_observer(&mut self, obs: Box<dyn VmObserver>) {
        let mut watched = vec![false; self.state.program.fields.len()];
        for f in obs.watched_fields() {
            watched[f.index()] = true;
        }
        self.watched = watched;
        self.observer = Some(obs);
    }

    /// Detaches and returns the observer.
    pub fn detach_observer(&mut self) -> Option<Box<dyn VmObserver>> {
        self.watched.clear();
        self.observer.take()
    }

    /// Total modeled cycles so far (execution + compilation + GC).
    pub fn cycles(&self) -> u64 {
        self.state.clock
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &VmStats {
        &self.state.stats
    }

    /// Runs the program entry point.
    ///
    /// # Errors
    /// Propagates any [`RunError`] trap; [`RunError::NoEntry`] if the
    /// program has none.
    pub fn run_entry(&mut self) -> Result<Option<Value>, RunError> {
        let entry = self.state.program.entry.ok_or(RunError::NoEntry)?;
        self.call_static(entry, &[])
    }

    /// Calls a static method from the host with `args`.
    ///
    /// # Errors
    /// Propagates any trap raised during execution.
    ///
    /// # Panics
    /// Panics if called re-entrantly (frames not empty) or if `mid` is not
    /// a static method.
    pub fn call_static(&mut self, mid: MethodId, args: &[Value]) -> Result<Option<Value>, RunError> {
        assert!(self.state.frames.is_empty(), "re-entrant call_static");
        assert_eq!(
            self.state.program.method(mid).kind,
            MethodKind::Static,
            "call_static target must be static"
        );
        let cid = self.state.ensure_compiled(mid);
        self.drain_events();
        let cm = &self.state.code[cid.index()];
        let func = cm.func.clone();
        let mut regs = vec![Value::Int(0); func.num_regs as usize];
        regs[..args.len()].copy_from_slice(args);
        self.state.stats.per_method[mid.index()].invocations += 1;
        self.state.frames.push(Frame {
            method: mid,
            func,
            regs,
            block: 0,
            op: 0,
            ret_dst: None,
        });
        self.run_loop()
    }

    // -----------------------------------------------------------------
    // Core loop
    // -----------------------------------------------------------------

    fn run_loop(&mut self) -> Result<Option<Value>, RunError> {
        let mut final_ret: Option<Value> = None;
        'frames: loop {
            let (func, method) = match self.state.frames.last() {
                Some(fr) => (fr.func.clone(), fr.method),
                None => break,
            };
            loop {
                let (bi, mut oi) = {
                    let fr = self.state.frames.last().expect("frame");
                    (fr.block as usize, fr.op as usize)
                };
                let block = &func.blocks[bi];
                while oi < block.ops.len() {
                    let op = &block.ops[oi];
                    oi += 1;
                    {
                        let fr = self.state.frames.last_mut().expect("frame");
                        fr.op = oi as u32;
                    }
                    let cost = op_cost(op);
                    self.charge(method, cost);
                    self.state.stats.ops_executed += 1;
                    if let Some(fuel) = self.state.config.fuel {
                        if self.state.stats.ops_executed > fuel {
                            return Err(RunError::OutOfFuel);
                        }
                    }
                    match self.exec_op(op, method)? {
                        Flow::Continue => {}
                        Flow::PushedFrame => continue 'frames,
                    }
                }

                // Terminator.
                self.charge(method, CostModel::TERM_COST);
                match block.term.clone() {
                    Term::Jmp(b) => {
                        let fr = self.state.frames.last_mut().expect("frame");
                        fr.block = b.0;
                        fr.op = 0;
                    }
                    Term::Br { cond, t, f } => {
                        let v = self.reg(cond).as_int();
                        let fr = self.state.frames.last_mut().expect("frame");
                        fr.block = if v != 0 { t.0 } else { f.0 };
                        fr.op = 0;
                    }
                    Term::Ret(v) => {
                        let popped = self.state.frames.pop().expect("frame");
                        let val = v.map(|r| popped.regs[r.index()]);
                        self.charge(method, CostModel::FRAME_COST);
                        match self.state.frames.last_mut() {
                            Some(caller) => {
                                if let Some(dst) = popped.ret_dst {
                                    caller.regs[dst.index()] =
                                        val.expect("non-void return expected");
                                }
                            }
                            None => final_ret = val,
                        }
                        self.maybe_sample(method);
                        continue 'frames;
                    }
                    Term::Unreachable => {
                        unreachable!("executed Unreachable terminator (optimizer bug)")
                    }
                }
                self.maybe_sample(method);
            }
        }
        Ok(final_ret)
    }

    #[inline]
    fn charge(&mut self, method: MethodId, cycles: u64) {
        self.state.clock += cycles;
        self.state.stats.exec_cycles += cycles;
        self.state.stats.per_method[method.index()].cycles += cycles;
    }

    #[inline]
    fn reg(&self, r: Reg) -> Value {
        self.state.frames.last().expect("frame").regs[r.index()]
    }

    #[inline]
    fn set_reg(&mut self, r: Reg, v: Value) {
        self.state.frames.last_mut().expect("frame").regs[r.index()] = v;
    }

    fn maybe_sample(&mut self, method: MethodId) {
        if self.state.clock < self.state.next_sample_at {
            return;
        }
        let st = &mut self.state;
        // Deterministic jitter (splitmix-style hash of the tick count)
        // breaks resonance between the sample period and loop periods —
        // without it a tight loop whose cost divides the period would pin
        // every sample on the same method.
        let tick = st.stats.samples_taken;
        let jitter = {
            let mut z = tick.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let spread = (st.config.sample_period / 2).max(1);
        st.next_sample_at = st.clock + st.config.sample_period * 3 / 4 + jitter % spread;
        st.stats.samples_taken += 1;
        st.stats.per_method[method.index()].samples += 1;
        if let Some(obs) = &mut self.observer {
            obs.on_sample(method);
        }
        let samples = st.stats.per_method[method.index()].samples;
        let cur = st.level_of(method).unwrap_or(0);
        let target = if samples >= st.config.opt2_samples {
            2
        } else if samples >= st.config.opt1_samples {
            1
        } else {
            cur
        };
        if target > cur {
            st.recompile(method, target);
            self.drain_events();
        }
    }

    fn drain_events(&mut self) {
        for (m, l) in self.state.take_recompile_events() {
            self.handler.on_recompiled(&mut self.state, m, l);
        }
    }

    // -----------------------------------------------------------------
    // Op execution
    // -----------------------------------------------------------------

    fn exec_op(&mut self, op: &Op, method: MethodId) -> Result<Flow, RunError> {
        match op {
            Op::ConstI { dst, val } => self.set_reg(*dst, Value::Int(*val)),
            Op::ConstD { dst, val } => self.set_reg(*dst, Value::Double(*val)),
            Op::ConstNull { dst } => self.set_reg(*dst, Value::Null),
            Op::Mov { dst, src } => {
                let v = self.reg(*src);
                self.set_reg(*dst, v);
            }
            Op::IBin { op: bin, dst, a, b } => {
                let (a, b) = (self.reg(*a).as_int(), self.reg(*b).as_int());
                let r = bin.eval(a, b).ok_or(RunError::DivideByZero)?;
                self.set_reg(*dst, Value::Int(r));
            }
            Op::INeg { dst, a } => {
                let v = self.reg(*a).as_int().wrapping_neg();
                self.set_reg(*dst, Value::Int(v));
            }
            Op::DBin { op: bin, dst, a, b } => {
                let (a, b) = (self.reg(*a).as_double(), self.reg(*b).as_double());
                self.set_reg(*dst, Value::Double(bin.eval(a, b)));
            }
            Op::DNeg { dst, a } => {
                let v = -self.reg(*a).as_double();
                self.set_reg(*dst, Value::Double(v));
            }
            Op::I2D { dst, a } => {
                let v = self.reg(*a).as_int() as f64;
                self.set_reg(*dst, Value::Double(v));
            }
            Op::D2I { dst, a } => {
                let v = self.reg(*a).as_double() as i64;
                self.set_reg(*dst, Value::Int(v));
            }
            Op::ICmp { op: cmp, dst, a, b } => {
                let r = cmp.eval_int(self.reg(*a).as_int(), self.reg(*b).as_int());
                self.set_reg(*dst, Value::Int(r as i64));
            }
            Op::DCmp { op: cmp, dst, a, b } => {
                let r = cmp.eval_double(self.reg(*a).as_double(), self.reg(*b).as_double());
                self.set_reg(*dst, Value::Int(r as i64));
            }
            Op::RefEq { dst, a, b } => {
                let r = match (self.reg(*a), self.reg(*b)) {
                    (Value::Null, Value::Null) => true,
                    (Value::Ref(x), Value::Ref(y)) => x == y,
                    (Value::Null, Value::Ref(_)) | (Value::Ref(_), Value::Null) => false,
                    (x, y) => panic!("RefEq on non-references {x:?}, {y:?}"),
                };
                self.set_reg(*dst, Value::Int(r as i64));
            }
            Op::New { dst, class } => {
                let r = self.state.alloc_object(*class)?;
                self.set_reg(*dst, Value::Ref(r));
            }
            Op::GetField { dst, obj, field } => {
                let o = self.obj_ref(*obj)?;
                let slot = self.state.program.field(*field).slot as usize;
                let v = self.state.heap.object(o).fields[slot];
                self.set_reg(*dst, v);
            }
            Op::PutField { obj, field, src } => {
                let o = self.obj_ref(*obj)?;
                let v = self.reg(*src);
                let slot = self.state.program.field(*field).slot as usize;
                self.state.heap.object_mut(o).fields[slot] = v;
                if !self.watched.is_empty() && self.watched[field.index()] {
                    let class = self.state.heap.object(o).class;
                    if let Some(obs) = &mut self.observer {
                        obs.on_instance_store(class, *field, v);
                    }
                }
            }
            Op::GetStatic { dst, field } => {
                let v = self.state.get_static(*field);
                self.set_reg(*dst, v);
            }
            Op::PutStatic { field, src } => {
                let v = self.reg(*src);
                self.state.set_static(*field, v);
                if !self.watched.is_empty() && self.watched[field.index()] {
                    if let Some(obs) = &mut self.observer {
                        obs.on_static_store(*field, v);
                    }
                }
            }
            Op::CallVirtual {
                dst,
                sel,
                obj,
                args,
            } => {
                let recv = self.obj_ref(*obj)?;
                let (target, cid) = self.dispatch_virtual(recv, *sel)?;
                return self.push_call(target, cid, Some(Value::Ref(recv)), args, *dst);
            }
            Op::CallSpecial {
                dst,
                class,
                sel,
                obj,
                args,
            } => {
                let recv = self.obj_ref(*obj)?;
                let target = self
                    .state
                    .resolve_special_cached(*class, *sel)
                    .ok_or_else(|| RunError::NoSuchMethod {
                        what: format!("{}::{}", class, sel),
                    })?;
                let cid = self.dispatch_static_bound(target);
                return self.push_call(target, cid, Some(Value::Ref(recv)), args, *dst);
            }
            Op::CallStatic { dst, method: m, args } => {
                let cid = self.dispatch_static_bound(*m);
                return self.push_call(*m, cid, None, args, *dst);
            }
            Op::CallInterface {
                dst,
                iface: _,
                sel,
                obj,
                args,
            } => {
                let recv = self.obj_ref(*obj)?;
                let (target, cid) = self.dispatch_interface(recv, *sel, method)?;
                return self.push_call(target, cid, Some(Value::Ref(recv)), args, *dst);
            }
            Op::InstanceOf { dst, obj, class } => {
                let r = match self.reg(*obj) {
                    Value::Null => false,
                    Value::Ref(o) => {
                        // Type tests consult the TIB's type-information
                        // entry, never TIB identity (Sec. 3.2.3).
                        let tib = self.state.heap.object(o).tib;
                        let oc = self.state.tibs[tib.index()].class;
                        self.state.program.instance_of(oc, *class)
                    }
                    v => panic!("instanceof on non-reference {v:?}"),
                };
                self.set_reg(*dst, Value::Int(r as i64));
            }
            Op::CheckCast { obj, class } => match self.reg(*obj) {
                Value::Null => {}
                Value::Ref(o) => {
                    let tib = self.state.heap.object(o).tib;
                    let oc = self.state.tibs[tib.index()].class;
                    if !self.state.program.instance_of(oc, *class) {
                        return Err(RunError::ClassCast);
                    }
                }
                v => panic!("checkcast on non-reference {v:?}"),
            },
            Op::NewArr { dst, kind, len } => {
                let n = self.reg(*len).as_int();
                let r = self.state.alloc_array(*kind, n)?;
                self.set_reg(*dst, Value::Ref(r));
            }
            Op::ALoad { dst, arr, idx } => {
                let a = self.obj_ref(*arr)?;
                let i = self.reg(*idx).as_int();
                let arr = self.state.heap.array(a);
                let v = *arr
                    .elems
                    .get(usize::try_from(i).map_err(|_| RunError::ArrayBounds {
                        index: i,
                        len: arr.elems.len(),
                    })?)
                    .ok_or(RunError::ArrayBounds {
                        index: i,
                        len: arr.elems.len(),
                    })?;
                self.set_reg(*dst, v);
            }
            Op::AStore { arr, idx, src } => {
                let a = self.obj_ref(*arr)?;
                let i = self.reg(*idx).as_int();
                let v = self.reg(*src);
                let arr = self.state.heap.array_mut(a);
                let len = arr.elems.len();
                let slot = arr
                    .elems
                    .get_mut(usize::try_from(i).map_err(|_| RunError::ArrayBounds {
                        index: i,
                        len,
                    })?)
                    .ok_or(RunError::ArrayBounds { index: i, len })?;
                *slot = v;
            }
            Op::ALen { dst, arr } => {
                let a = self.obj_ref(*arr)?;
                let n = self.state.heap.array(a).elems.len() as i64;
                self.set_reg(*dst, Value::Int(n));
            }
            Op::Intrinsic { dst, kind, args } => self.exec_intrinsic(*dst, *kind, args),
            Op::NotifyCtorExit { obj, class } => {
                if let Value::Ref(o) = self.reg(*obj) {
                    self.handler.on_ctor_exit(&mut self.state, o, *class);
                }
            }
            Op::NotifyInstStore { obj, class, field } => {
                if let Value::Ref(o) = self.reg(*obj) {
                    self.handler
                        .on_instance_store(&mut self.state, o, *class, *field);
                }
            }
            Op::NotifyStaticStore { field } => {
                self.handler.on_static_store(&mut self.state, *field);
            }
        }
        Ok(Flow::Continue)
    }

    fn exec_intrinsic(&mut self, dst: Option<Reg>, kind: IntrinsicKind, args: &[Reg]) {
        match kind {
            IntrinsicKind::PrintInt => {
                let v = self.reg(args[0]).as_int();
                let _ = writeln!(self.state.output.text, "{v}");
            }
            IntrinsicKind::PrintDouble => {
                let v = self.reg(args[0]).as_double();
                let _ = writeln!(self.state.output.text, "{v}");
            }
            IntrinsicKind::PrintChar => {
                let v = self.reg(args[0]).as_int();
                let c = char::from_u32(v as u32).unwrap_or('\u{FFFD}');
                self.state.output.text.push(c);
            }
            IntrinsicKind::SinkInt => {
                let v = self.reg(args[0]).as_int();
                self.state.output.sink_int(v);
            }
            IntrinsicKind::SinkDouble => {
                let v = self.reg(args[0]).as_double();
                self.state.output.sink_double(v);
            }
            IntrinsicKind::DSqrt => {
                let v = self.reg(args[0]).as_double().sqrt();
                self.set_reg(dst.expect("DSqrt needs dst"), Value::Double(v));
            }
            IntrinsicKind::DAbs => {
                let v = self.reg(args[0]).as_double().abs();
                self.set_reg(dst.expect("DAbs needs dst"), Value::Double(v));
            }
            IntrinsicKind::IAbs => {
                let v = self.reg(args[0]).as_int().wrapping_abs();
                self.set_reg(dst.expect("IAbs needs dst"), Value::Int(v));
            }
            IntrinsicKind::IMin => {
                let v = self.reg(args[0]).as_int().min(self.reg(args[1]).as_int());
                self.set_reg(dst.expect("IMin needs dst"), Value::Int(v));
            }
            IntrinsicKind::IMax => {
                let v = self.reg(args[0]).as_int().max(self.reg(args[1]).as_int());
                self.set_reg(dst.expect("IMax needs dst"), Value::Int(v));
            }
        }
    }

    #[inline]
    fn obj_ref(&self, r: Reg) -> Result<ObjRef, RunError> {
        self.reg(r).as_ref_opt().ok_or(RunError::NullPointer)
    }

    /// Virtual dispatch through the object's (possibly special) TIB.
    fn dispatch_virtual(
        &mut self,
        recv: ObjRef,
        sel: SelectorId,
    ) -> Result<(MethodId, CompiledId), RunError> {
        let (tib, class) = {
            let o = self.state.heap.object(recv);
            (o.tib, o.class)
        };
        let vslot = self
            .state
            .program
            .class(class)
            .vtable_slot(sel)
            .ok_or_else(|| RunError::NoSuchMethod {
                what: format!(
                    "{}::{}",
                    self.state.program.class(class).name,
                    self.state.program.selector_name(sel)
                ),
            })? as usize;
        self.resolve_slot(tib, class, vslot)
    }

    /// Interface dispatch through the shared IMT.
    fn dispatch_interface(
        &mut self,
        recv: ObjRef,
        sel: SelectorId,
        caller: MethodId,
    ) -> Result<(MethodId, CompiledId), RunError> {
        let (tib, class) = {
            let o = self.state.heap.object(recv);
            (o.tib, o.class)
        };
        let imt_idx = self.state.tibs[tib.index()].imt as usize;
        let hit = self.state.imts[imt_idx].lookup(sel);
        let vslot = match hit {
            Some((v, conflicted)) => {
                if conflicted {
                    self.charge(caller, IMT_CONFLICT_COST);
                }
                v as usize
            }
            None => {
                // Robust fallback through the vtable mapping.
                self.state
                    .program
                    .class(class)
                    .vtable_slot(sel)
                    .ok_or_else(|| RunError::NoSuchMethod {
                        what: format!(
                            "interface {} on {}",
                            self.state.program.selector_name(sel),
                            self.state.program.class(class).name
                        ),
                    })? as usize
            }
        };
        if self.state.mutable_classes.contains(&class) {
            self.charge(caller, IMT_MUTABLE_EXTRA_LOAD);
        }
        self.resolve_slot(tib, class, vslot)
    }

    /// Resolves a TIB method slot, compiling lazily on first touch.
    fn resolve_slot(
        &mut self,
        tib: crate::tib::TibId,
        class: ClassId,
        vslot: usize,
    ) -> Result<(MethodId, CompiledId), RunError> {
        match self.state.tibs[tib.index()].methods[vslot] {
            CodeSlot::Code(cid) => Ok((self.state.code[cid.index()].method, cid)),
            CodeSlot::Lazy => {
                let mid = self.state.program.class(class).vtable[vslot];
                if self.state.program.method(mid).kind == MethodKind::Abstract {
                    return Err(RunError::AbstractCall {
                        method: self.state.program.method(mid).name.clone(),
                    });
                }
                let cid = self.state.ensure_compiled(mid);
                self.drain_events();
                // The install (and possibly the mutation handler) filled the
                // slot; if the dispatching TIB still says Lazy (e.g. an
                // unsynced special TIB), fall back to the general code.
                match self.state.tibs[tib.index()].methods[vslot] {
                    CodeSlot::Code(c) => Ok((self.state.code[c.index()].method, c)),
                    CodeSlot::Lazy => {
                        self.state.tibs[tib.index()].methods[vslot] = CodeSlot::Code(cid);
                        Ok((mid, cid))
                    }
                }
            }
        }
    }

    /// Statically-bound dispatch (JTOC): honors the mutation engine's
    /// override, otherwise the one valid general compiled method.
    fn dispatch_static_bound(&mut self, mid: MethodId) -> CompiledId {
        if let Some(cid) = self.state.static_override[mid.index()] {
            return cid;
        }
        let cid = self.state.ensure_compiled(mid);
        self.drain_events();
        // Re-check: the handler may have installed an override.
        self.state.static_override[mid.index()].unwrap_or(cid)
    }

    fn push_call(
        &mut self,
        target: MethodId,
        cid: CompiledId,
        recv: Option<Value>,
        args: &[Reg],
        dst: Option<Reg>,
    ) -> Result<Flow, RunError> {
        let func = self.state.code[cid.index()].func.clone();
        let mut regs = vec![Value::Int(0); func.num_regs as usize];
        let mut i = 0;
        if let Some(r) = recv {
            regs[0] = r;
            i = 1;
        }
        for &a in args {
            regs[i] = self.reg(a);
            i += 1;
        }
        self.state.clock += CostModel::FRAME_COST;
        self.state.stats.exec_cycles += CostModel::FRAME_COST;
        self.state.stats.per_method[target.index()].invocations += 1;
        self.state.frames.push(Frame {
            method: target,
            func,
            regs,
            block: 0,
            op: 0,
            ret_dst: dst,
        });
        Ok(Flow::PushedFrame)
    }
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("clock", &self.state.clock)
            .field("frames", &self.state.frames.len())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}
