//! The evaluator: executes compiled IR with deterministic cycle accounting,
//! TIB-based dispatch, adaptive sampling, and delivery of mutation patch
//! points to the [`MutationHandler`].
//!
//! # Fast-path structure
//!
//! The hot loop runs on a *local execution cursor* — `(func, method, cid,
//! base, block, op)` held in locals rather than re-read from
//! `frames.last()` per op — and writes the cursor back to the frame only at
//! call boundaries, traps and fuel exhaustion. Registers live in the pooled
//! [`VmState::reg_stack`] (each frame owns a contiguous window), so a call
//! extends the pool instead of allocating a fresh `Vec`. All ops dispatch
//! through a single `match` in the loop body (no second dispatch through a
//! helper). Cycle and op charges accumulate per basic block and flush
//! before every point that observes the clock (terminators/`maybe_sample`,
//! call dispatch, traps), keeping the *modeled* cycle counts bit-identical
//! to per-op accounting; the fuel check is likewise hoisted to block
//! granularity (loops always cross a block boundary, so infinite loops
//! still trap). Receiver-polymorphic call sites carry monomorphic inline
//! caches keyed on the receiver's TIB (see [`VmState::ic_lookup`]),
//! invalidated wholesale whenever the mutation engine patches TIBs, the
//! JTOC, or installs code.

use crate::error::RunError;
use crate::hooks::{MutationHandler, NoopHandler, VmObserver};
use crate::state::{CodeSlot, CompiledId, Frame, VmConfig, VmState, STATIC_SITE_TIB};
use crate::stats::VmStats;
use crate::tib::TibId;
use dchm_bytecode::value::ObjRef;
use dchm_bytecode::{
    ClassId, IntrinsicKind, MethodId, MethodKind, Op, Program, Reg, SelectorId, Value,
};
use dchm_ir::cost::CostModel;
use dchm_trace::profile::{FrameKey, ProfileSnapshot, NO_STATE};
use dchm_trace::{FaultKind, Stamped, TraceEvent, NO_ID};
use dchm_ir::Term;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Extra cycles for an IMT conflict stub search (Sec. 3.2.3).
const IMT_CONFLICT_COST: u64 = 6;
/// Extra load when dispatching an interface method on a mutable class
/// (the IMT stores a TIB offset instead of a code pointer — Sec. 3.2.3).
const IMT_MUTABLE_EXTRA_LOAD: u64 = 1;

/// The virtual machine: state + mutation handler + optional observer.
pub struct Vm {
    /// All runtime state (public: the mutation engine manipulates it).
    pub state: VmState,
    handler: Box<dyn MutationHandler>,
    observer: Option<Box<dyn VmObserver>>,
    watched: Vec<bool>,
}

impl Vm {
    /// Creates a VM with mutation disabled ([`NoopHandler`]).
    pub fn new(program: Program, config: VmConfig) -> Self {
        Self::with_handler(program, config, Box::new(NoopHandler))
    }

    /// Creates a VM with a mutation handler attached.
    pub fn with_handler(
        program: Program,
        config: VmConfig,
        handler: Box<dyn MutationHandler>,
    ) -> Self {
        Vm {
            state: VmState::new(program, config),
            handler,
            observer: None,
            watched: Vec::new(),
        }
    }

    /// Replaces the mutation handler (e.g. after installing a plan).
    pub fn set_handler(&mut self, handler: Box<dyn MutationHandler>) {
        self.handler = handler;
    }

    /// Attaches a profiling observer; its watch set is captured now.
    pub fn attach_observer(&mut self, obs: Box<dyn VmObserver>) {
        let mut watched = vec![false; self.state.program.fields.len()];
        for f in obs.watched_fields() {
            watched[f.index()] = true;
        }
        self.watched = watched;
        self.observer = Some(obs);
    }

    /// Detaches and returns the observer.
    pub fn detach_observer(&mut self) -> Option<Box<dyn VmObserver>> {
        self.watched.clear();
        self.observer.take()
    }

    /// Total modeled cycles so far (execution + compilation + GC).
    pub fn cycles(&self) -> u64 {
        self.state.clock
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> &VmStats {
        &self.state.stats
    }

    /// Enables structured event tracing into a fresh fixed-capacity ring
    /// buffer (see [`dchm_trace`]). Tracing is host-side only: modeled
    /// cycles and program output are bit-identical with it on or off.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.state.tracer.enable_ring(capacity);
    }

    /// Buffered trace events oldest-first (empty when tracing is off).
    pub fn trace_events(&self) -> Vec<Stamped> {
        self.state.tracer.events()
    }

    /// The cycle-attribution profile with method names resolved: the
    /// ranked (method × tier × receiver-state) cell table.
    pub fn profile(&self) -> ProfileSnapshot {
        self.state
            .profiler
            .snapshot(|m| self.state.method_display_name(MethodId(m)))
    }

    /// The profile's folded-stack lines (Brendan Gregg `.folded` format,
    /// flamegraph-ready), byte-identical across repeated runs.
    pub fn profile_folded(&self) -> String {
        self.state
            .profiler
            .folded(|m| self.state.method_display_name(MethodId(m)))
    }

    /// Runs the program entry point.
    ///
    /// # Errors
    /// Propagates any [`RunError`] trap; [`RunError::NoEntry`] if the
    /// program has none.
    pub fn run_entry(&mut self) -> Result<Option<Value>, RunError> {
        let entry = self.state.program.entry.ok_or(RunError::NoEntry)?;
        self.call_static(entry, &[])
    }

    /// Calls a static method from the host with `args`.
    ///
    /// This is the VM's hard containment boundary: any panic escaping the
    /// evaluator (or code it calls into) is caught and converted into a
    /// typed [`RunError::VmInvariant`], with the VM *poisoned* — its heap
    /// and code state are suspect, so every later call returns
    /// [`RunError::Poisoned`] instead of executing on corrupt state.
    ///
    /// # Errors
    /// Propagates any trap raised during execution;
    /// [`RunError::Poisoned`] when an earlier run was contained.
    ///
    /// # Panics
    /// Panics if called re-entrantly (frames not empty) or if `mid` is not
    /// a static method.
    pub fn call_static(&mut self, mid: MethodId, args: &[Value]) -> Result<Option<Value>, RunError> {
        if self.state.poisoned {
            return Err(RunError::Poisoned);
        }
        assert!(self.state.frames.is_empty(), "re-entrant call_static");
        assert_eq!(
            self.state.program.method(mid).kind,
            MethodKind::Static,
            "call_static target must be static"
        );
        if let Some(limit) = self.state.config.max_frame_depth {
            if limit == 0 {
                return Err(RunError::StackOverflow { depth: 1, limit });
            }
        }
        let cid = self.state.ensure_compiled(mid);
        self.drain_events();
        let nregs = self.state.code[cid.index()].func.num_regs as usize;
        let base = self.state.reg_stack.len();
        self.state.reg_stack.resize(base + nregs, Value::Int(0));
        self.state.reg_stack[base..base + args.len()].copy_from_slice(args);
        self.state.stats.per_method[mid.index()].invocations += 1;
        self.state.frames.push(Frame {
            method: mid,
            cid,
            base,
            block: 0,
            op: 0,
            ret_dst: None,
        });
        match catch_unwind(AssertUnwindSafe(|| self.run_loop())) {
            Ok(r) => r,
            Err(payload) => {
                self.state.poisoned = true;
                self.state.frames.clear();
                self.state.reg_stack.clear();
                let what = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic with non-string payload".to_string());
                Err(RunError::VmInvariant { what: format!("contained panic: {what}") })
            }
        }
    }

    // -----------------------------------------------------------------
    // Core loop
    // -----------------------------------------------------------------

    fn run_loop(&mut self) -> Result<Option<Value>, RunError> {
        let mut final_ret: Option<Value> = None;
        // `config.fuel` cannot change mid-run; fold the `Option` away so the
        // per-block check is a single compare.
        let fuel_limit = self.state.config.fuel.unwrap_or(u64::MAX);
        // Not a `while let`: the loop body re-borrows `self.state` mutably
        // throughout, so the cursor must be destructured to `Copy` locals
        // in a scope of its own.
        #[allow(clippy::while_let_loop)]
        'frames: loop {
            // (Re)load the execution cursor from the top frame. The frame's
            // block/op stay stale until the cursor is written back at a
            // call, trap or fuel stop.
            let (method, cid, base, mut bi, mut oi) = match self.state.frames.last() {
                Some(fr) => (
                    fr.method,
                    fr.cid,
                    fr.base,
                    fr.block as usize,
                    fr.op as usize,
                ),
                None => break,
            };
            let cm = &self.state.code[cid.index()];
            let func = Arc::clone(&cm.func);
            let meta = Arc::clone(&cm.meta);
            // The ops in `seg..oi` form the straight-line segment executed
            // since the last flush; its cycle cost is the prefix-sum
            // difference, so nothing is accumulated per op. Flushed before
            // anything that observes the clock or op count: terminators
            // (sampling), call dispatch (compilation), traps and the fuel
            // stop. Both are (re)assigned at every block entry.
            let mut seg;
            let mut prefix;
            macro_rules! flush {
                () => {
                    let span = prefix[oi] - prefix[seg];
                    if span != 0 {
                        self.charge(method, span);
                    }
                    self.state.stats.ops_executed += (oi - seg) as u64;
                    // Dead on paths that exit the loop right after.
                    #[allow(unused_assignments)]
                    {
                        seg = oi;
                    }
                };
            }
            macro_rules! trap {
                ($e:expr) => {{
                    flush!();
                    self.write_back(bi, oi);
                    return Err($e);
                }};
            }
            macro_rules! reg {
                ($r:expr) => {
                    self.state.reg_stack[base + $r.index()]
                };
            }
            macro_rules! non_null {
                ($r:expr) => {
                    match reg!($r).as_ref_opt() {
                        Some(o) => o,
                        None => trap!(RunError::NullPointer),
                    }
                };
            }
            loop {
                // Fuel check, hoisted to block granularity: every loop
                // crosses a block boundary, so runaway programs still stop.
                // Nothing is pending here (blocks are entered flushed), so
                // trap directly.
                if self.state.stats.ops_executed > fuel_limit {
                    self.write_back(bi, oi);
                    return Err(RunError::OutOfFuel);
                }
                let block = &func.blocks[bi];
                prefix = meta.prefix(bi);
                seg = oi;
                let nops = block.ops.len();
                for op in &block.ops[oi..] {
                    oi += 1;
                    match op {
                        Op::ConstI { dst, val } => reg!(dst) = Value::Int(*val),
                        Op::ConstD { dst, val } => reg!(dst) = Value::Double(*val),
                        Op::ConstNull { dst } => reg!(dst) = Value::Null,
                        Op::Mov { dst, src } => reg!(dst) = reg!(src),
                        Op::IBin { op: bin, dst, a, b } => {
                            let (a, b) = (reg!(a).as_int(), reg!(b).as_int());
                            let r = match bin.eval(a, b) {
                                Some(r) => r,
                                None => trap!(RunError::DivideByZero),
                            };
                            reg!(dst) = Value::Int(r);
                        }
                        Op::INeg { dst, a } => {
                            reg!(dst) = Value::Int(reg!(a).as_int().wrapping_neg());
                        }
                        Op::DBin { op: bin, dst, a, b } => {
                            let (a, b) = (reg!(a).as_double(), reg!(b).as_double());
                            reg!(dst) = Value::Double(bin.eval(a, b));
                        }
                        Op::DNeg { dst, a } => {
                            reg!(dst) = Value::Double(-reg!(a).as_double());
                        }
                        Op::I2D { dst, a } => {
                            reg!(dst) = Value::Double(reg!(a).as_int() as f64);
                        }
                        Op::D2I { dst, a } => {
                            reg!(dst) = Value::Int(reg!(a).as_double() as i64);
                        }
                        Op::ICmp { op: cmp, dst, a, b } => {
                            let r = cmp.eval_int(reg!(a).as_int(), reg!(b).as_int());
                            reg!(dst) = Value::Int(r as i64);
                        }
                        Op::DCmp { op: cmp, dst, a, b } => {
                            let r = cmp.eval_double(reg!(a).as_double(), reg!(b).as_double());
                            reg!(dst) = Value::Int(r as i64);
                        }
                        Op::RefEq { dst, a, b } => {
                            let r = match (reg!(a), reg!(b)) {
                                (Value::Null, Value::Null) => true,
                                (Value::Ref(x), Value::Ref(y)) => x == y,
                                (Value::Null, Value::Ref(_)) | (Value::Ref(_), Value::Null) => {
                                    false
                                }
                                (x, y) => trap!(RunError::TypeConfusion {
                                    what: format!("RefEq on non-references {x:?}, {y:?}"),
                                }),
                            };
                            reg!(dst) = Value::Int(r as i64);
                        }
                        Op::New { dst, class } => {
                            let r = match self.state.alloc_object(*class) {
                                Ok(r) => r,
                                Err(e) => trap!(e),
                            };
                            reg!(dst) = Value::Ref(r);
                        }
                        Op::GetField { dst, obj, field } => {
                            let o = non_null!(obj);
                            let slot = self.state.field_slot(*field);
                            let v = match self.state.heap.try_object(o) {
                                Ok(od) => od.fields[slot],
                                Err(e) => trap!(e),
                            };
                            reg!(dst) = v;
                        }
                        Op::PutField { obj, field, src } => {
                            let o = non_null!(obj);
                            let v = reg!(src);
                            let slot = self.state.field_slot(*field);
                            match self.state.heap.try_object_mut(o) {
                                Ok(od) => od.fields[slot] = v,
                                Err(e) => trap!(e),
                            }
                            if !self.watched.is_empty() && self.watched[field.index()] {
                                let class = self.state.heap.object(o).class;
                                if let Some(obs) = &mut self.observer {
                                    obs.on_instance_store(class, *field, v);
                                }
                            }
                        }
                        Op::GetStatic { dst, field } => {
                            reg!(dst) = self.state.get_static(*field);
                        }
                        Op::PutStatic { field, src } => {
                            let v = reg!(src);
                            self.state.set_static(*field, v);
                            if !self.watched.is_empty() && self.watched[field.index()] {
                                if let Some(obs) = &mut self.observer {
                                    obs.on_static_store(*field, v);
                                }
                            }
                        }
                        Op::CallVirtual {
                            dst,
                            sel,
                            obj,
                            args,
                        } => {
                            flush!();
                            let recv = non_null!(obj);
                            let tib = match self.state.heap.try_object(recv) {
                                Ok(od) => od.tib,
                                Err(e) => trap!(e),
                            };
                            let site = meta.site(bi, oi - 1);
                            let (target, tcid) = match self.state.ic_lookup(cid, site, tib) {
                                Some((m, c, _)) => (m, c),
                                None => match self.dispatch_virtual(recv, *sel) {
                                    Ok((m, c)) => {
                                        self.state.ic_store(cid, site, tib, m, c, 0);
                                        (m, c)
                                    }
                                    Err(e) => trap!(e),
                                },
                            };
                            self.write_back(bi, oi);
                            self.push_call(target, tcid, Some(Value::Ref(recv)), args, *dst, base)?;
                            continue 'frames;
                        }
                        Op::CallInterface {
                            dst,
                            iface: _,
                            sel,
                            obj,
                            args,
                        } => {
                            flush!();
                            let recv = non_null!(obj);
                            let tib = match self.state.heap.try_object(recv) {
                                Ok(od) => od.tib,
                                Err(e) => trap!(e),
                            };
                            let site = meta.site(bi, oi - 1);
                            let (target, tcid) = match self.state.ic_lookup(cid, site, tib) {
                                Some((m, c, extra)) => {
                                    // Replay the deterministic dispatch
                                    // extras the slow path would charge.
                                    if extra != 0 {
                                        self.charge(method, extra);
                                    }
                                    (m, c)
                                }
                                None => match self.dispatch_interface(recv, *sel, method) {
                                    Ok((m, c, extra)) => {
                                        self.state.ic_store(cid, site, tib, m, c, extra);
                                        (m, c)
                                    }
                                    Err(e) => trap!(e),
                                },
                            };
                            self.write_back(bi, oi);
                            self.push_call(target, tcid, Some(Value::Ref(recv)), args, *dst, base)?;
                            continue 'frames;
                        }
                        Op::CallSpecial {
                            dst,
                            class,
                            sel,
                            obj,
                            args,
                        } => {
                            flush!();
                            let recv = non_null!(obj);
                            let site = meta.site(bi, oi - 1);
                            let (target, tcid) =
                                match self.state.ic_lookup(cid, site, STATIC_SITE_TIB) {
                                    Some((m, c, _)) => (m, c),
                                    None => {
                                        let target = match self
                                            .state
                                            .resolve_special_cached(*class, *sel)
                                        {
                                            Some(t) => t,
                                            None => trap!(RunError::NoSuchMethod {
                                                what: format!("{}::{}", class, sel),
                                            }),
                                        };
                                        let tcid = self.dispatch_static_bound(target);
                                        self.state
                                            .ic_store(cid, site, STATIC_SITE_TIB, target, tcid, 0);
                                        (target, tcid)
                                    }
                                };
                            self.write_back(bi, oi);
                            self.push_call(target, tcid, Some(Value::Ref(recv)), args, *dst, base)?;
                            continue 'frames;
                        }
                        Op::CallStatic {
                            dst,
                            method: m,
                            args,
                        } => {
                            flush!();
                            let site = meta.site(bi, oi - 1);
                            let tcid = match self.state.ic_lookup(cid, site, STATIC_SITE_TIB) {
                                Some((_, c, _)) => c,
                                None => {
                                    let c = self.dispatch_static_bound(*m);
                                    self.state.ic_store(cid, site, STATIC_SITE_TIB, *m, c, 0);
                                    c
                                }
                            };
                            self.write_back(bi, oi);
                            self.push_call(*m, tcid, None, args, *dst, base)?;
                            continue 'frames;
                        }
                        Op::InstanceOf { dst, obj, class } => {
                            let r = match reg!(obj) {
                                Value::Null => false,
                                Value::Ref(o) => {
                                    // Type tests consult the TIB's
                                    // type-information entry, never TIB
                                    // identity (Sec. 3.2.3).
                                    let tib = self.state.heap.object(o).tib;
                                    let oc = self.state.tibs[tib.index()].class;
                                    self.state.program.instance_of(oc, *class)
                                }
                                v => trap!(RunError::TypeConfusion {
                                    what: format!("instanceof on non-reference {v:?}"),
                                }),
                            };
                            reg!(dst) = Value::Int(r as i64);
                        }
                        Op::CheckCast { obj, class } => match reg!(obj) {
                            Value::Null => {}
                            Value::Ref(o) => {
                                let tib = self.state.heap.object(o).tib;
                                let oc = self.state.tibs[tib.index()].class;
                                if !self.state.program.instance_of(oc, *class) {
                                    trap!(RunError::ClassCast);
                                }
                            }
                            v => trap!(RunError::TypeConfusion {
                                what: format!("checkcast on non-reference {v:?}"),
                            }),
                        },
                        Op::NewArr { dst, kind, len } => {
                            let n = reg!(len).as_int();
                            let r = match self.state.alloc_array(*kind, n) {
                                Ok(r) => r,
                                Err(e) => trap!(e),
                            };
                            reg!(dst) = Value::Ref(r);
                        }
                        Op::ALoad { dst, arr, idx } => {
                            let a = non_null!(arr);
                            let i = reg!(idx).as_int();
                            let arr = match self.state.heap.try_array(a) {
                                Ok(ad) => ad,
                                Err(e) => trap!(e),
                            };
                            let v = usize::try_from(i)
                                .ok()
                                .and_then(|ix| arr.elems.get(ix).copied());
                            match v {
                                Some(v) => reg!(dst) = v,
                                None => {
                                    let len = arr.elems.len();
                                    trap!(RunError::ArrayBounds { index: i, len });
                                }
                            }
                        }
                        Op::AStore { arr, idx, src } => {
                            let a = non_null!(arr);
                            let i = reg!(idx).as_int();
                            let v = reg!(src);
                            let arr = match self.state.heap.try_array_mut(a) {
                                Ok(ad) => ad,
                                Err(e) => trap!(e),
                            };
                            let slot = usize::try_from(i)
                                .ok()
                                .and_then(|ix| arr.elems.get_mut(ix));
                            match slot {
                                Some(slot) => *slot = v,
                                None => {
                                    let len = arr.elems.len();
                                    trap!(RunError::ArrayBounds { index: i, len });
                                }
                            }
                        }
                        Op::ALen { dst, arr } => {
                            let a = non_null!(arr);
                            let n = match self.state.heap.try_array(a) {
                                Ok(ad) => ad.elems.len() as i64,
                                Err(e) => trap!(e),
                            };
                            reg!(dst) = Value::Int(n);
                        }
                        Op::Intrinsic { dst, kind, args } => {
                            self.exec_intrinsic(base, *dst, *kind, args);
                        }
                        Op::NotifyCtorExit { obj, class } => {
                            if let Value::Ref(o) = reg!(obj) {
                                self.handler.on_ctor_exit(&mut self.state, o, *class);
                            }
                        }
                        Op::NotifyInstStore { obj, class, field } => {
                            if let Value::Ref(o) = reg!(obj) {
                                self.handler
                                    .on_instance_store(&mut self.state, o, *class, *field);
                            }
                        }
                        Op::NotifyStaticStore { field } => {
                            self.handler.on_static_store(&mut self.state, *field);
                        }
                        Op::GuardState {
                            obj,
                            instance,
                            statics,
                            guard,
                            live_prefix,
                        } => {
                            self.state.stats.guards_executed += 1;
                            let forced = match self.state.injector.as_mut() {
                                Some(inj) => inj.at_guard(),
                                None => false,
                            };
                            let recv = match obj {
                                Some(r) => match reg!(r).as_ref_opt() {
                                    Some(o) => Some(o),
                                    None => trap!(RunError::NullPointer),
                                },
                                None => None,
                            };
                            let mut holds = !forced;
                            if holds {
                                if let Some(o) = recv {
                                    let od = match self.state.heap.try_object(o) {
                                        Ok(od) => od,
                                        Err(e) => trap!(e),
                                    };
                                    for (field, want) in instance {
                                        let slot = self.state.field_slot(*field);
                                        if !od.fields[slot].key_eq(*want) {
                                            holds = false;
                                            break;
                                        }
                                    }
                                }
                            }
                            if holds {
                                for (field, want) in statics {
                                    if !self.state.get_static(*field).key_eq(*want) {
                                        holds = false;
                                        break;
                                    }
                                }
                            }
                            if !holds {
                                self.state.stats.guard_failures += 1;
                                flush!();
                                self.write_back(bi, oi);
                                if self.state.tracer.on() {
                                    if forced {
                                        self.state.tracer.emit(
                                            self.state.clock,
                                            TraceEvent::FaultInjected {
                                                kind: FaultKind::ForcedGuardFail,
                                                method: method.0,
                                            },
                                        );
                                    }
                                    self.state.tracer.emit(
                                        self.state.clock,
                                        TraceEvent::GuardFail {
                                            method: method.0,
                                            guard: *guard,
                                            obj: recv.map_or(NO_ID, |o| o.0),
                                            forced,
                                        },
                                    );
                                }
                                self.state.governor_on_guard_fail(cid);
                                self.deoptimize(*guard, *live_prefix, recv)?;
                                continue 'frames;
                            }
                        }
                    }
                }

                // Terminator: charge the remaining block tail plus the
                // terminator itself in one go (oi == nops here). Ret folds
                // its FRAME_COST into the same charge — nothing observes the
                // clock between the two in the split version.
                let tail = prefix[nops] - prefix[seg] + CostModel::TERM_COST;
                self.state.stats.ops_executed += (nops - seg) as u64;
                match &block.term {
                    Term::Jmp(b) => {
                        self.charge(method, tail);
                        bi = b.0 as usize;
                        oi = 0;
                    }
                    Term::Br { cond, t, f } => {
                        self.charge(method, tail);
                        let v = reg!(cond).as_int();
                        bi = if v != 0 { t.0 as usize } else { f.0 as usize };
                        oi = 0;
                    }
                    Term::Ret(v) => {
                        self.charge(method, tail + CostModel::FRAME_COST);
                        let Some(popped) = self.state.frames.pop() else {
                            return Err(RunError::VmInvariant {
                                what: "return executed with no live frame".to_string(),
                            });
                        };
                        let val = v.map(|r| self.state.reg_stack[popped.base + r.index()]);
                        self.state.reg_stack.truncate(popped.base);
                        let caller_base = self.state.frames.last().map(|c| c.base);
                        match caller_base {
                            Some(cb) => {
                                if let Some(dst) = popped.ret_dst {
                                    let Some(val) = val else {
                                        return Err(RunError::VmInvariant {
                                            what: "void return reached a call site \
                                                   expecting a value"
                                                .to_string(),
                                        });
                                    };
                                    self.state.reg_stack[cb + dst.index()] = val;
                                }
                            }
                            None => final_ret = val,
                        }
                        self.maybe_profile();
                        self.maybe_sample(method);
                        continue 'frames;
                    }
                    Term::Unreachable => {
                        self.charge(method, tail);
                        self.write_back(bi, oi);
                        return Err(RunError::UnreachableExecuted);
                    }
                }
                self.maybe_profile();
                self.maybe_sample(method);
            }
        }
        Ok(final_ret)
    }

    /// Writes the local cursor back to the top frame (call boundaries,
    /// traps, fuel stop). Tolerates an empty frame stack: trap paths may
    /// run after the stack already unwound, and a missing frame must not
    /// turn a typed trap into a panic.
    #[inline]
    fn write_back(&mut self, bi: usize, oi: usize) {
        if let Some(fr) = self.state.frames.last_mut() {
            fr.block = bi as u32;
            fr.op = oi as u32;
        }
    }

    /// Deoptimizes the top frame after guard `guard` failed: remaps its
    /// register window and cursor onto the method's baseline code version
    /// via the deopt side table, and restores the receiver's class TIB so
    /// dispatch stops treating an object that left its hot state as
    /// specialized. The caller has already flushed charges and written the
    /// cursor back; on return it re-enters the frame loop, which picks up
    /// execution in baseline code at the recorded resume point.
    ///
    /// The transition itself is free on the modeled clock (the paper's
    /// deopt cost is the lost specialization, not the remap); only the
    /// one-time baseline compile — if the method's general code is not
    /// already level 0 — bills compile cycles.
    fn deoptimize(
        &mut self,
        guard: u32,
        live_prefix: u16,
        recv: Option<ObjRef>,
    ) -> Result<(), RunError> {
        let fr = *self
            .state
            .frames
            .last()
            .ok_or_else(|| RunError::VmInvariant {
                what: "guard failure with no live frame".to_string(),
            })?;
        let cm = &self.state.code[fr.cid.index()];
        let mid = cm.method;
        let point = cm
            .deopt
            .as_ref()
            .and_then(|d| d.points.get(guard as usize))
            .copied()
            .ok_or_else(|| RunError::VmInvariant {
                what: format!("guard #{guard} has no deopt side-table entry"),
            })?;
        let bcid = self.state.ensure_baseline(mid);
        let bregs = self.state.code[bcid.index()].func.num_regs as usize;
        // The live prefix carries over positionally (guards pin those
        // registers: every pass keeps the prefix stable); everything past
        // it is a baseline local that is dead at the resume point, so it is
        // zero-filled exactly as a fresh activation would be.
        let live = (live_prefix as usize).min(bregs);
        self.state.reg_stack.truncate(fr.base + live);
        self.state.reg_stack.resize(fr.base + bregs, Value::Int(0));
        if let Some(o) = recv {
            let (tib, class) = {
                let od = self.state.heap.try_object(o)?;
                (od.tib, od.class)
            };
            let class_tib = self.state.class_tib(class);
            if tib != class_tib {
                self.state.set_object_tib(o, class_tib);
            }
        }
        let from_code = fr.cid;
        let fr = self
            .state
            .frames
            .last_mut()
            .ok_or_else(|| RunError::VmInvariant {
                what: "frame vanished during deoptimization".to_string(),
            })?;
        fr.cid = bcid;
        fr.block = point.block;
        fr.op = point.op;
        self.state.stats.deopts += 1;
        if self.state.tracer.on() {
            // Stamped *after* any baseline compile stall, so the
            // GuardFail -> BaselineResume cycle distance is the deopt
            // latency.
            self.state.tracer.emit(
                self.state.clock,
                TraceEvent::Deopt {
                    method: mid.0,
                    from_code: from_code.0,
                    to_code: bcid.0,
                    obj: recv.map_or(NO_ID, |o| o.0),
                },
            );
            self.state.tracer.emit(
                self.state.clock,
                TraceEvent::BaselineResume {
                    method: mid.0,
                    code: bcid.0,
                    block: point.block,
                    op: point.op,
                },
            );
        }
        Ok(())
    }

    #[inline(always)]
    fn charge(&mut self, method: MethodId, cycles: u64) {
        self.state.clock += cycles;
        self.state.stats.exec_cycles += cycles;
        self.state.stats.per_method[method.index()].cycles += cycles;
    }

    /// Reads a register of the frame whose window starts at `base`.
    #[inline(always)]
    fn rget(&self, base: usize, r: Reg) -> Value {
        self.state.reg_stack[base + r.index()]
    }

    /// Writes a register of the frame whose window starts at `base`.
    #[inline(always)]
    fn rset(&mut self, base: usize, r: Reg, v: Value) {
        self.state.reg_stack[base + r.index()] = v;
    }

    /// Block-bottom sampling check; inlined so the common no-sample case is
    /// one compare, with the actual sampling work kept out of line.
    #[inline(always)]
    fn maybe_sample(&mut self, method: MethodId) {
        if self.state.clock >= self.state.next_sample_at {
            self.take_sample(method);
        }
    }

    #[cold]
    fn take_sample(&mut self, method: MethodId) {
        let st = &mut self.state;
        // Deterministic jitter (splitmix-style hash of the tick count)
        // breaks resonance between the sample period and loop periods —
        // without it a tight loop whose cost divides the period would pin
        // every sample on the same method.
        let tick = st.stats.samples_taken;
        let jitter = {
            let mut z = tick.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let spread = (st.config.sample_period / 2).max(1);
        st.next_sample_at = st.clock + st.config.sample_period * 3 / 4 + jitter % spread;
        st.stats.samples_taken += 1;
        st.stats.per_method[method.index()].samples += 1;
        if st.tracer.on() {
            let count = st.stats.per_method[method.index()].samples;
            st.tracer.emit(st.clock, TraceEvent::Sample { method: method.0, count });
        }
        if let Some(obs) = &mut self.observer {
            obs.on_sample(method);
        }
        let samples = st.stats.per_method[method.index()].samples;
        let cur = st.level_of(method).unwrap_or(0);
        let target = if samples >= st.config.opt2_samples {
            2
        } else if samples >= st.config.opt1_samples {
            1
        } else {
            cur
        };
        if target > cur {
            st.recompile(method, target);
            self.drain_events();
        }
    }

    /// Block-bottom profiler check, parallel to [`Self::maybe_sample`]:
    /// the common no-sample case is one compare against the next period
    /// multiple (`u64::MAX` when profiling is off).
    #[inline(always)]
    fn maybe_profile(&mut self) {
        if self.state.clock >= self.state.next_profile_at {
            self.take_profile();
        }
    }

    /// Takes one attribution sample: steps the deterministic schedule to
    /// the next period multiple beyond the clock (one sample per
    /// crossing, however far a compile/GC stall jumped it — stalls are
    /// attributed by `VmStats`, not the profiler), then walks the live
    /// frames into the profiler. 0-cycle by construction: nothing here
    /// touches the clock, `VmStats`, or adaptive state.
    #[cold]
    fn take_profile(&mut self) {
        let st = &mut self.state;
        let period = st.config.profile_period;
        debug_assert!(period > 0, "take_profile with profiling off");
        let jumps = (st.clock - st.next_profile_at) / period + 1;
        st.next_profile_at += jumps * period;

        let mut stack = Vec::with_capacity(st.frames.len());
        let last = st.frames.len().wrapping_sub(1);
        for (i, fr) in st.frames.iter().enumerate() {
            let cm = &st.code[fr.cid.index()];
            let mut key = FrameKey {
                method: fr.method.0,
                level: cm.level,
                special: cm.special,
                state: NO_STATE,
            };
            // Leaf frames of receiver-taking methods also attribute the
            // receiver's special state (register 0 of the frame window).
            if i == last && st.program.method(fr.method).has_receiver() {
                if let Value::Ref(r) = st.reg_stack[fr.base] {
                    if let Ok(od) = st.heap.try_object(r) {
                        if let Some(s) = st.tibs[od.tib.index()].special_state() {
                            key.state = s;
                        }
                    }
                }
            }
            stack.push(key);
        }
        st.profiler.record(&stack);
        if st.tracer.on() {
            let method = stack.last().map_or(NO_ID, |k| k.method);
            st.tracer.emit(
                st.clock,
                TraceEvent::ProfileSample {
                    method,
                    depth: stack.len() as u32,
                    samples: st.profiler.samples(),
                },
            );
        }
    }

    fn drain_events(&mut self) {
        for (m, l) in self.state.take_recompile_events() {
            self.handler.on_recompiled(&mut self.state, m, l);
        }
    }

    fn exec_intrinsic(&mut self, base: usize, dst: Option<Reg>, kind: IntrinsicKind, args: &[Reg]) {
        match kind {
            IntrinsicKind::PrintInt => {
                let v = self.rget(base, args[0]).as_int();
                let _ = writeln!(self.state.output.text, "{v}");
            }
            IntrinsicKind::PrintDouble => {
                let v = self.rget(base, args[0]).as_double();
                let _ = writeln!(self.state.output.text, "{v}");
            }
            IntrinsicKind::PrintChar => {
                let v = self.rget(base, args[0]).as_int();
                let c = char::from_u32(v as u32).unwrap_or('\u{FFFD}');
                self.state.output.text.push(c);
            }
            IntrinsicKind::SinkInt => {
                let v = self.rget(base, args[0]).as_int();
                self.state.output.sink_int(v);
            }
            IntrinsicKind::SinkDouble => {
                let v = self.rget(base, args[0]).as_double();
                self.state.output.sink_double(v);
            }
            IntrinsicKind::DSqrt => {
                let v = self.rget(base, args[0]).as_double().sqrt();
                self.rset(base, dst.expect("DSqrt needs dst"), Value::Double(v));
            }
            IntrinsicKind::DAbs => {
                let v = self.rget(base, args[0]).as_double().abs();
                self.rset(base, dst.expect("DAbs needs dst"), Value::Double(v));
            }
            IntrinsicKind::IAbs => {
                let v = self.rget(base, args[0]).as_int().wrapping_abs();
                self.rset(base, dst.expect("IAbs needs dst"), Value::Int(v));
            }
            IntrinsicKind::IMin => {
                let v = self
                    .rget(base, args[0])
                    .as_int()
                    .min(self.rget(base, args[1]).as_int());
                self.rset(base, dst.expect("IMin needs dst"), Value::Int(v));
            }
            IntrinsicKind::IMax => {
                let v = self
                    .rget(base, args[0])
                    .as_int()
                    .max(self.rget(base, args[1]).as_int());
                self.rset(base, dst.expect("IMax needs dst"), Value::Int(v));
            }
        }
    }

    /// Virtual dispatch through the object's (possibly special) TIB — the
    /// inline-cache miss path.
    fn dispatch_virtual(
        &mut self,
        recv: ObjRef,
        sel: SelectorId,
    ) -> Result<(MethodId, CompiledId), RunError> {
        let (tib, class) = {
            let o = self.state.heap.try_object(recv)?;
            (o.tib, o.class)
        };
        let vslot = self
            .state
            .vtable_slot_fast(class, sel)
            .ok_or_else(|| RunError::NoSuchMethod {
                what: format!(
                    "{}::{}",
                    self.state.program.class(class).name,
                    self.state.program.selector_name(sel)
                ),
            })? as usize;
        self.resolve_slot(tib, class, vslot)
    }

    /// Interface dispatch through the shared IMT — the inline-cache miss
    /// path. Returns the deterministic extra dispatch cycles charged
    /// (conflict search + mutable-class load) so the caller can cache them.
    fn dispatch_interface(
        &mut self,
        recv: ObjRef,
        sel: SelectorId,
        caller: MethodId,
    ) -> Result<(MethodId, CompiledId, u64), RunError> {
        let (tib, class) = {
            let o = self.state.heap.try_object(recv)?;
            (o.tib, o.class)
        };
        let imt_idx = self.state.tibs[tib.index()].imt as usize;
        let hit = self.state.imts[imt_idx].lookup(sel);
        let mut extra = 0u64;
        let vslot = match hit {
            Some((v, conflicted)) => {
                if conflicted {
                    extra += IMT_CONFLICT_COST;
                }
                v as usize
            }
            None => {
                // Robust fallback through the vtable mapping.
                self.state
                    .vtable_slot_fast(class, sel)
                    .ok_or_else(|| RunError::NoSuchMethod {
                        what: format!(
                            "interface {} on {}",
                            self.state.program.selector_name(sel),
                            self.state.program.class(class).name
                        ),
                    })? as usize
            }
        };
        if self.state.mutable_classes.contains(&class) {
            extra += IMT_MUTABLE_EXTRA_LOAD;
        }
        if extra != 0 {
            self.charge(caller, extra);
        }
        let (m, c) = self.resolve_slot(tib, class, vslot)?;
        Ok((m, c, extra))
    }

    /// Resolves a TIB method slot, compiling lazily on first touch.
    fn resolve_slot(
        &mut self,
        tib: TibId,
        class: ClassId,
        vslot: usize,
    ) -> Result<(MethodId, CompiledId), RunError> {
        match self.state.tibs[tib.index()].methods[vslot] {
            CodeSlot::Code(cid) => Ok((self.state.code[cid.index()].method, cid)),
            CodeSlot::Lazy => {
                let mid = self.state.program.class(class).vtable[vslot];
                if self.state.program.method(mid).kind == MethodKind::Abstract {
                    return Err(RunError::AbstractCall {
                        method: self.state.program.method(mid).name.clone(),
                    });
                }
                let cid = self.state.ensure_compiled(mid);
                self.drain_events();
                // The install (and possibly the mutation handler) filled the
                // slot; if the dispatching TIB still says Lazy (e.g. an
                // unsynced special TIB), fall back to the general code.
                match self.state.tibs[tib.index()].methods[vslot] {
                    CodeSlot::Code(c) => Ok((self.state.code[c.index()].method, c)),
                    CodeSlot::Lazy => {
                        self.state.tibs[tib.index()].methods[vslot] = CodeSlot::Code(cid);
                        Ok((mid, cid))
                    }
                }
            }
        }
    }

    /// Statically-bound dispatch (JTOC): honors the mutation engine's
    /// override, otherwise the one valid general compiled method.
    fn dispatch_static_bound(&mut self, mid: MethodId) -> CompiledId {
        if let Some(cid) = self.state.static_override[mid.index()] {
            return cid;
        }
        let cid = self.state.ensure_compiled(mid);
        self.drain_events();
        // Re-check: the handler may have installed an override.
        self.state.static_override[mid.index()].unwrap_or(cid)
    }

    /// Pushes a callee frame: extends the pooled register stack by the
    /// callee's window and copies receiver + arguments from the caller's
    /// window (`caller_base`).
    ///
    /// # Errors
    /// [`RunError::StackOverflow`] when pushing would exceed
    /// [`crate::VmConfig::max_frame_depth`]. The check runs before any
    /// mutation, so a refused push leaves the frame and register stacks
    /// exactly as they were (and charges no cycles — runs that stay under
    /// the limit are bit-identical with the limit on or off).
    #[inline]
    fn push_call(
        &mut self,
        target: MethodId,
        cid: CompiledId,
        recv: Option<Value>,
        args: &[Reg],
        dst: Option<Reg>,
        caller_base: usize,
    ) -> Result<(), RunError> {
        if let Some(limit) = self.state.config.max_frame_depth {
            if self.state.frames.len() >= limit {
                return Err(RunError::StackOverflow {
                    depth: self.state.frames.len() + 1,
                    limit,
                });
            }
        }
        let nregs = self.state.code[cid.index()].func.num_regs as usize;
        let new_base = self.state.reg_stack.len();
        // Incoming values are pushed first, then the remaining locals are
        // zero-filled in one resize, so no slot is written twice.
        self.state.reg_stack.reserve(nregs);
        if let Some(r) = recv {
            self.state.reg_stack.push(r);
        }
        for &a in args {
            let v = self.state.reg_stack[caller_base + a.index()];
            self.state.reg_stack.push(v);
        }
        self.state.reg_stack.resize(new_base + nregs, Value::Int(0));
        self.state.clock += CostModel::FRAME_COST;
        self.state.stats.exec_cycles += CostModel::FRAME_COST;
        self.state.stats.per_method[target.index()].invocations += 1;
        self.state.frames.push(Frame {
            method: target,
            cid,
            base: new_base,
            block: 0,
            op: 0,
            ret_dst: dst,
        });
        Ok(())
    }
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Vm")
            .field("clock", &self.state.clock)
            .field("frames", &self.state.frames.len())
            .field("observer", &self.observer.is_some())
            .finish()
    }
}
