//! Object heap with mark-sweep garbage collection.
//!
//! Jikes' production GenMS collector is modeled as a single-space mark-sweep
//! collector with byte-accurate heap accounting. Allocation charges cycles
//! per word; collections charge per object marked and per cell swept, so the
//! paper's observation that memory-aggressive workloads (SPECjbb2005) dilute
//! the mutation benefit reproduces naturally.
//!
//! TIBs are *not* heap objects (they are immortal in Jikes, Sec. 7.2), so
//! special-TIB creation never adds GC pressure.

use crate::error::RunError;
use crate::tib::TibId;
use dchm_bytecode::value::ObjRef;
use dchm_bytecode::{ClassId, ElemKind, Value};
use std::collections::BTreeMap;

/// A heap-allocated class instance.
#[derive(Clone, Debug, PartialEq)]
pub struct Object {
    /// Exact run-time class (the TIB's type-information entry mirrors this).
    pub class: ClassId,
    /// Current TIB pointer; the mutation engine repoints this between the
    /// class TIB and special TIBs.
    pub tib: TibId,
    /// Field slots, laid out per [`dchm_bytecode::ClassDef::all_instance_fields`].
    pub fields: Vec<Value>,
}

/// A heap-allocated array.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayObj {
    /// Element kind (determines whether the GC traces elements).
    pub kind: ElemKind,
    /// Element storage.
    pub elems: Vec<Value>,
}

/// One heap cell.
#[derive(Clone, Debug, PartialEq)]
enum Cell {
    Free,
    Obj(Object),
    Arr(ArrayObj),
}

/// Raw occupancy census of every unswept heap cell — the heap-side half
/// of `dchm_trace::census::CensusSnapshot` (the VM layers TIB kinds,
/// names and residency on top). Conservation holds by construction: the
/// walk visits exactly the cells `used_bytes` accounts for, so
/// `object_bytes + array_bytes == used_bytes()` at any tick, floating
/// garbage included.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeapCensus {
    /// Unswept objects.
    pub objects: u64,
    /// Unswept arrays.
    pub arrays: u64,
    /// Bytes held by unswept objects.
    pub object_bytes: u64,
    /// Bytes held by unswept arrays.
    pub array_bytes: u64,
    /// Per-class `(objects, bytes)`, keyed by raw class id.
    pub per_class: BTreeMap<u32, (u64, u64)>,
    /// Per-TIB `(objects, bytes)`, keyed by raw TIB id.
    pub per_tib: BTreeMap<u32, (u64, u64)>,
}

impl HeapCensus {
    /// Total bytes the walk saw (equals the heap's `used_bytes`).
    pub fn total_bytes(&self) -> u64 {
        self.object_bytes + self.array_bytes
    }
}

/// GC & allocation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Number of collections run.
    pub gc_count: u64,
    /// Cycles charged to collections.
    pub gc_cycles: u64,
    /// Total objects+arrays ever allocated.
    pub allocations: u64,
    /// Total bytes ever allocated.
    pub bytes_allocated: u64,
    /// Live bytes after the most recent collection.
    pub live_bytes_after_gc: usize,
}

/// The heap. Object handles ([`ObjRef`]) are stable across collections
/// (mark-sweep does not move), matching the paper's observation that object
/// pointers can't be tracked cheaply but TIB pointers can be updated at
/// field-assignment sites.
#[derive(Debug)]
pub struct Heap {
    cells: Vec<Cell>,
    free: Vec<u32>,
    /// Bytes currently considered in use (live + floating garbage).
    used_bytes: usize,
    /// Configured capacity in bytes.
    capacity: usize,
    /// Statistics.
    pub stats: HeapStats,
    mark: Vec<bool>,
}

/// Header bytes per object/array.
const HEADER_BYTES: usize = 16;
/// Bytes per field/element slot.
const SLOT_BYTES: usize = 8;

fn obj_bytes(nfields: usize) -> usize {
    HEADER_BYTES + SLOT_BYTES * nfields
}

impl Heap {
    /// Creates a heap with `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        Heap {
            cells: Vec::new(),
            free: Vec::new(),
            used_bytes: 0,
            capacity,
            stats: HeapStats::default(),
            mark: Vec::new(),
        }
    }

    /// Configured capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Bytes currently accounted as used.
    pub fn used_bytes(&self) -> usize {
        self.used_bytes
    }

    /// Number of live cells (objects + arrays).
    pub fn live_count(&self) -> usize {
        self.cells.len() - self.free.len()
    }

    /// True when an allocation of `bytes` requires a collection first.
    pub fn needs_gc(&self, bytes: usize) -> bool {
        self.used_bytes + bytes > self.capacity
    }

    fn take_slot(&mut self, cell: Cell, bytes: usize) -> ObjRef {
        self.used_bytes += bytes;
        self.stats.allocations += 1;
        self.stats.bytes_allocated += bytes as u64;
        match self.free.pop() {
            Some(i) => {
                self.cells[i as usize] = cell;
                ObjRef(i)
            }
            None => {
                let i = self.cells.len() as u32;
                self.cells.push(cell);
                ObjRef(i)
            }
        }
    }

    /// Allocates an object (does not run GC; callers check [`Self::needs_gc`]
    /// first so roots can be gathered).
    ///
    /// # Errors
    /// Returns [`RunError::OutOfMemory`] if the heap is full.
    pub fn alloc_object(
        &mut self,
        class: ClassId,
        tib: TibId,
        fields: Vec<Value>,
    ) -> Result<ObjRef, RunError> {
        let bytes = obj_bytes(fields.len());
        if self.used_bytes + bytes > self.capacity {
            return Err(RunError::OutOfMemory {
                requested: bytes,
                heap: self.capacity,
            });
        }
        Ok(self.take_slot(Cell::Obj(Object { class, tib, fields }), bytes))
    }

    /// Allocates an array of `len` default-initialized elements.
    ///
    /// # Errors
    /// Returns [`RunError::NegativeArraySize`] or [`RunError::OutOfMemory`].
    pub fn alloc_array(&mut self, kind: ElemKind, len: i64) -> Result<ObjRef, RunError> {
        if len < 0 {
            return Err(RunError::NegativeArraySize(len));
        }
        let len = len as usize;
        let bytes = obj_bytes(len);
        if self.used_bytes + bytes > self.capacity {
            return Err(RunError::OutOfMemory {
                requested: bytes,
                heap: self.capacity,
            });
        }
        let init = match kind {
            ElemKind::Int => Value::Int(0),
            ElemKind::Double => Value::Double(0.0),
            ElemKind::Ref => Value::Null,
        };
        Ok(self.take_slot(
            Cell::Arr(ArrayObj {
                kind,
                elems: vec![init; len],
            }),
            bytes,
        ))
    }

    fn confusion(r: ObjRef, cell: &Cell, wanted: &str) -> RunError {
        let found = match cell {
            Cell::Free => "a freed cell",
            Cell::Obj(_) => "an object",
            Cell::Arr(_) => "an array",
        };
        RunError::TypeConfusion {
            what: format!("{r} is not {wanted} but {found}"),
        }
    }

    /// The object behind `r`, as a typed error on mismatch — the
    /// interpreter's trap path for reference-typed ops applied to the wrong
    /// cell kind.
    ///
    /// # Errors
    /// Returns [`RunError::TypeConfusion`] if `r` is not a live object.
    #[inline]
    pub fn try_object(&self, r: ObjRef) -> Result<&Object, RunError> {
        match &self.cells[r.0 as usize] {
            Cell::Obj(o) => Ok(o),
            other => Err(Self::confusion(r, other, "an object")),
        }
    }

    /// Mutable [`Self::try_object`].
    ///
    /// # Errors
    /// Returns [`RunError::TypeConfusion`] if `r` is not a live object.
    #[inline]
    pub fn try_object_mut(&mut self, r: ObjRef) -> Result<&mut Object, RunError> {
        match &mut self.cells[r.0 as usize] {
            Cell::Obj(o) => Ok(o),
            other => Err(Self::confusion(r, other, "an object")),
        }
    }

    /// The array behind `r`, as a typed error on mismatch.
    ///
    /// # Errors
    /// Returns [`RunError::TypeConfusion`] if `r` is not a live array.
    #[inline]
    pub fn try_array(&self, r: ObjRef) -> Result<&ArrayObj, RunError> {
        match &self.cells[r.0 as usize] {
            Cell::Arr(a) => Ok(a),
            other => Err(Self::confusion(r, other, "an array")),
        }
    }

    /// Mutable [`Self::try_array`].
    ///
    /// # Errors
    /// Returns [`RunError::TypeConfusion`] if `r` is not a live array.
    #[inline]
    pub fn try_array_mut(&mut self, r: ObjRef) -> Result<&mut ArrayObj, RunError> {
        match &mut self.cells[r.0 as usize] {
            Cell::Arr(a) => Ok(a),
            other => Err(Self::confusion(r, other, "an array")),
        }
    }

    /// The object behind `r` (host-side convenience).
    ///
    /// # Panics
    /// Panics if `r` is not a live object handle (VM bug, not program bug).
    #[inline]
    pub fn object(&self, r: ObjRef) -> &Object {
        self.try_object(r).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Mutable access to the object behind `r`.
    ///
    /// # Panics
    /// Panics if `r` is not a live object handle.
    #[inline]
    pub fn object_mut(&mut self, r: ObjRef) -> &mut Object {
        self.try_object_mut(r).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The array behind `r` (host-side convenience).
    ///
    /// # Panics
    /// Panics if `r` is not a live array handle.
    #[inline]
    pub fn array(&self, r: ObjRef) -> &ArrayObj {
        self.try_array(r).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Mutable access to the array behind `r`.
    ///
    /// # Panics
    /// Panics if `r` is not a live array handle.
    #[inline]
    pub fn array_mut(&mut self, r: ObjRef) -> &mut ArrayObj {
        self.try_array_mut(r).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Iterates all live objects (not arrays) with their exact classes.
    /// Used by the online-mutation extension to adopt objects that existed
    /// before a plan was installed.
    pub fn iter_live_objects(&self) -> impl Iterator<Item = (ObjRef, ClassId)> + '_ {
        self.cells.iter().enumerate().filter_map(|(i, c)| match c {
            Cell::Obj(o) => Some((ObjRef(i as u32), o.class)),
            _ => None,
        })
    }

    /// Walks every unswept cell and tallies occupancy per class and per
    /// TIB (arrays have neither; they pool into the array totals). Pure
    /// host-side observation: charges no cycles, touches no stats.
    pub fn census(&self) -> HeapCensus {
        let mut c = HeapCensus::default();
        for cell in &self.cells {
            match cell {
                Cell::Obj(o) => {
                    let bytes = obj_bytes(o.fields.len()) as u64;
                    c.objects += 1;
                    c.object_bytes += bytes;
                    let pc = c.per_class.entry(o.class.0).or_insert((0, 0));
                    pc.0 += 1;
                    pc.1 += bytes;
                    let pt = c.per_tib.entry(o.tib.0).or_insert((0, 0));
                    pt.0 += 1;
                    pt.1 += bytes;
                }
                Cell::Arr(a) => {
                    c.arrays += 1;
                    c.array_bytes += obj_bytes(a.elems.len()) as u64;
                }
                Cell::Free => {}
            }
        }
        c
    }

    /// True if `r` currently points at a live cell.
    pub fn is_live(&self, r: ObjRef) -> bool {
        matches!(
            self.cells.get(r.0 as usize),
            Some(Cell::Obj(_) | Cell::Arr(_))
        )
    }

    /// Runs a mark-sweep collection over `roots`; returns cycles charged.
    pub fn gc(&mut self, roots: impl Iterator<Item = ObjRef>) -> u64 {
        use dchm_ir::cost::CostModel;
        let n = self.cells.len();
        self.mark.clear();
        self.mark.resize(n, false);

        let mut marked = 0u64;
        let mut stack: Vec<u32> = Vec::new();
        for r in roots {
            let i = r.0 as usize;
            if i < n && !self.mark[i] && !matches!(self.cells[i], Cell::Free) {
                self.mark[i] = true;
                stack.push(r.0);
            }
        }
        while let Some(i) = stack.pop() {
            marked += 1;
            // Collect child refs without holding the borrow across pushes.
            let push_child = |v: &Value, stack: &mut Vec<u32>, mark: &mut [bool]| {
                if let Value::Ref(c) = v {
                    let ci = c.0 as usize;
                    if !mark[ci] {
                        mark[ci] = true;
                        stack.push(c.0);
                    }
                }
            };
            match &self.cells[i as usize] {
                Cell::Obj(o) => {
                    for v in &o.fields {
                        push_child(v, &mut stack, &mut self.mark);
                    }
                }
                Cell::Arr(a) if a.kind == ElemKind::Ref => {
                    for v in &a.elems {
                        push_child(v, &mut stack, &mut self.mark);
                    }
                }
                _ => {}
            }
        }

        // Sweep.
        let mut swept = 0u64;
        let mut live_bytes = 0usize;
        self.free.clear();
        for i in 0..n {
            if self.mark[i] {
                live_bytes += match &self.cells[i] {
                    Cell::Obj(o) => obj_bytes(o.fields.len()),
                    Cell::Arr(a) => obj_bytes(a.elems.len()),
                    Cell::Free => 0,
                };
            } else {
                if !matches!(self.cells[i], Cell::Free) {
                    swept += 1;
                }
                self.cells[i] = Cell::Free;
                self.free.push(i as u32);
            }
        }
        self.used_bytes = live_bytes;
        self.stats.gc_count += 1;
        self.stats.live_bytes_after_gc = live_bytes;
        let cycles = marked * CostModel::GC_MARK_COST + swept * CostModel::GC_SWEEP_COST;
        self.stats.gc_cycles += cycles;
        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_heap() -> Heap {
        Heap::new(4096)
    }

    #[test]
    fn alloc_and_access_object() {
        let mut h = small_heap();
        let r = h
            .alloc_object(ClassId(1), TibId(0), vec![Value::Int(5), Value::Null])
            .unwrap();
        assert_eq!(h.object(r).class, ClassId(1));
        assert_eq!(h.object(r).fields[0], Value::Int(5));
        h.object_mut(r).fields[0] = Value::Int(9);
        assert_eq!(h.object(r).fields[0], Value::Int(9));
        assert_eq!(h.live_count(), 1);
    }

    #[test]
    fn alloc_array_kinds() {
        let mut h = small_heap();
        let a = h.alloc_array(ElemKind::Double, 3).unwrap();
        assert_eq!(h.array(a).elems, vec![Value::Double(0.0); 3]);
        let b = h.alloc_array(ElemKind::Ref, 2).unwrap();
        assert_eq!(h.array(b).elems, vec![Value::Null; 2]);
        assert!(matches!(
            h.alloc_array(ElemKind::Int, -1),
            Err(RunError::NegativeArraySize(-1))
        ));
    }

    #[test]
    fn gc_reclaims_unreachable() {
        let mut h = small_heap();
        let keep = h.alloc_object(ClassId(0), TibId(0), vec![]).unwrap();
        let _drop1 = h.alloc_object(ClassId(0), TibId(0), vec![]).unwrap();
        let _drop2 = h.alloc_array(ElemKind::Int, 8).unwrap();
        assert_eq!(h.live_count(), 3);
        let cycles = h.gc([keep].into_iter());
        assert!(cycles > 0);
        assert_eq!(h.live_count(), 1);
        assert!(h.is_live(keep));
        assert_eq!(h.stats.gc_count, 1);
    }

    #[test]
    fn gc_traces_object_fields_and_ref_arrays() {
        let mut h = small_heap();
        let leaf = h.alloc_object(ClassId(0), TibId(0), vec![]).unwrap();
        let arr = h.alloc_array(ElemKind::Ref, 1).unwrap();
        h.array_mut(arr).elems[0] = Value::Ref(leaf);
        let root = h
            .alloc_object(ClassId(0), TibId(0), vec![Value::Ref(arr)])
            .unwrap();
        h.gc([root].into_iter());
        assert!(h.is_live(leaf));
        assert!(h.is_live(arr));
        assert!(h.is_live(root));
        assert_eq!(h.live_count(), 3);
    }

    #[test]
    fn gc_does_not_trace_int_arrays() {
        let mut h = small_heap();
        let victim = h.alloc_object(ClassId(0), TibId(0), vec![]).unwrap();
        // An int array whose bits happen to equal the victim's handle must
        // not keep it alive.
        let arr = h.alloc_array(ElemKind::Int, 1).unwrap();
        h.array_mut(arr).elems[0] = Value::Int(victim.0 as i64);
        h.gc([arr].into_iter());
        assert!(!h.is_live(victim));
        assert!(h.is_live(arr));
    }

    #[test]
    fn slots_are_reused_after_gc() {
        let mut h = small_heap();
        let a = h.alloc_object(ClassId(0), TibId(0), vec![]).unwrap();
        h.gc(std::iter::empty());
        assert!(!h.is_live(a));
        let b = h.alloc_object(ClassId(0), TibId(0), vec![]).unwrap();
        // The freed slot is reused; handle equality is incidental but the
        // cell count must not grow.
        assert_eq!(h.cells.len(), 1);
        assert!(h.is_live(b));
    }

    #[test]
    fn mismatched_handles_are_typed_errors() {
        let mut h = small_heap();
        let o = h.alloc_object(ClassId(0), TibId(0), vec![]).unwrap();
        let a = h.alloc_array(ElemKind::Int, 1).unwrap();
        assert!(matches!(h.try_array(o), Err(RunError::TypeConfusion { .. })));
        assert!(matches!(h.try_object(a), Err(RunError::TypeConfusion { .. })));
        assert!(h.try_object(o).is_ok() && h.try_array_mut(a).is_ok());
        h.gc(std::iter::empty());
        // Freed cells are type confusion too, not index panics.
        assert!(matches!(h.try_object(o), Err(RunError::TypeConfusion { .. })));
        assert!(matches!(h.try_array(a), Err(RunError::TypeConfusion { .. })));
    }

    #[test]
    fn oom_when_full() {
        let mut h = Heap::new(64);
        // 16 header + 8*8 = 80 > 64.
        let r = h.alloc_object(ClassId(0), TibId(0), vec![Value::Int(0); 8]);
        assert!(matches!(r, Err(RunError::OutOfMemory { .. })));
    }

    #[test]
    fn used_bytes_tracks_alloc_and_gc() {
        let mut h = small_heap();
        assert_eq!(h.used_bytes(), 0);
        let r = h
            .alloc_object(ClassId(0), TibId(0), vec![Value::Int(0); 2])
            .unwrap();
        assert_eq!(h.used_bytes(), 32);
        h.gc([r].into_iter());
        assert_eq!(h.used_bytes(), 32);
        h.gc(std::iter::empty());
        assert_eq!(h.used_bytes(), 0);
    }

    #[test]
    fn census_conserves_used_bytes() {
        let mut h = small_heap();
        let keep = h
            .alloc_object(ClassId(1), TibId(0), vec![Value::Int(0); 2])
            .unwrap();
        let _dead = h.alloc_object(ClassId(2), TibId(3), vec![]).unwrap();
        let _arr = h.alloc_array(ElemKind::Int, 4).unwrap();
        let c = h.census();
        // Floating garbage counts on both sides of the ledger.
        assert_eq!(c.total_bytes(), h.used_bytes() as u64);
        assert_eq!((c.objects, c.arrays), (2, 1));
        assert_eq!(c.per_class.get(&1), Some(&(1, 32)));
        assert_eq!(c.per_tib.get(&3), Some(&(1, 16)));
        h.gc([keep].into_iter());
        let c = h.census();
        assert_eq!(c.total_bytes(), h.used_bytes() as u64);
        assert_eq!((c.objects, c.arrays), (1, 0));
        assert!(!c.per_class.contains_key(&2));
    }

    #[test]
    fn cyclic_garbage_is_collected() {
        let mut h = small_heap();
        let a = h.alloc_object(ClassId(0), TibId(0), vec![Value::Null]).unwrap();
        let b = h
            .alloc_object(ClassId(0), TibId(0), vec![Value::Ref(a)])
            .unwrap();
        h.object_mut(a).fields[0] = Value::Ref(b);
        h.gc(std::iter::empty());
        assert!(!h.is_live(a));
        assert!(!h.is_live(b));
    }
}
