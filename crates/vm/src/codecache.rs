//! The state-keyed compiled-code cache.
//!
//! Compilation is deterministic: the same `(method, level, canonicalized
//! state-binding)` request against the same compiler environment (patch
//! spec, hints, inlining configuration) always produces the same code and
//! the same modeled compile cost. The cache exploits that to elide the
//! *host-side* pipeline work of redundant requests — flip-flopping hot
//! states, fault-injected silent recompiles, plan-reload churn — while
//! leaving every modeled observable untouched: a hit re-bills the stored
//! compile cycles (identical to what recompilation would bill) and reuses
//! the already-stored [`CompiledId`], so clock, output and per-method
//! profiles are bit-identical with the cache on or off.
//!
//! Invalidation is explicit and coarse: every probe carries a fingerprint
//! of the compiler environment ([`crate::compiler::CompileEnv::fingerprint`]);
//! when it changes — a mutation plan was (re)installed, guard emission was
//! toggled, inlining parameters moved — the whole cache is flushed, because
//! any entry might have been produced under assumptions that no longer
//! hold. Capacity is bounded with LRU eviction on a deterministic access
//! tick (never wall time), so cache behaviour is reproducible run to run.

use crate::compiler::Fnv;
use crate::state::CompiledId;
use dchm_ir::passes::Bindings;
use std::collections::HashMap;

/// Canonicalized fingerprint of a specialization request's state bindings.
///
/// Instance and static bindings are folded in sorted field order, values
/// with the same equivalence as `Value::key_eq` (doubles by bit pattern).
/// `None` (general code) and `Some` of empty bindings hash differently,
/// mirroring the compiler's distinction between the two.
pub fn binding_fingerprint(bindings: Option<&Bindings>) -> u64 {
    let mut h = Fnv::new();
    match bindings {
        None => h.mix_u64(0),
        Some(b) => {
            h.mix_u64(1);
            let mut inst: Vec<_> = b.instance.iter().map(|(f, v)| (*f, *v)).collect();
            inst.sort_by_key(|(f, _)| *f);
            for (f, v) in inst {
                h.mix_u64(2);
                h.mix_u64(f.index() as u64);
                h.mix_value(&v);
            }
            let mut stat: Vec<_> = b.statics.iter().map(|(f, v)| (*f, *v)).collect();
            stat.sort_by_key(|(f, _)| *f);
            for (f, v) in stat {
                h.mix_u64(3);
                h.mix_u64(f.index() as u64);
                h.mix_value(&v);
            }
        }
    }
    h.finish()
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    cid: CompiledId,
    compile_cycles: u64,
    last_used: u64,
}

/// Result of a cache probe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Probe {
    /// The cache is disabled (capacity 0); compile without touching it.
    Disabled,
    /// A previously produced version can be reinstalled.
    Hit {
        /// The cached code.
        cid: CompiledId,
        /// The modeled cost the original compilation billed; a hit bills
        /// exactly this again (determinism: identical to recomputation).
        compile_cycles: u64,
    },
    /// Nothing cached for this key; compile and [`CodeCache::insert`].
    Miss {
        /// True when this probe flushed the cache because the compiler
        /// environment fingerprint changed.
        invalidated: bool,
    },
}

/// What [`CodeCache::insert`] evicted to stay within capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// Method of the evicted version.
    pub method: u32,
    /// Level of the evicted version.
    pub level: u8,
    /// The evicted code id (the code itself is immortal; only the cache
    /// mapping is dropped).
    pub cid: CompiledId,
}

/// LRU cache of compilation results keyed by
/// `(method, level, binding fingerprint)` and scoped to one compiler
/// environment. See the module docs for the determinism contract.
#[derive(Debug, Default)]
pub struct CodeCache {
    map: HashMap<(u32, u8, u64), Entry>,
    capacity: usize,
    /// Deterministic access counter standing in for time in the LRU order.
    tick: u64,
    env_fp: Option<u64>,
}

impl CodeCache {
    /// A cache holding at most `capacity` entries; 0 disables caching.
    pub fn new(capacity: usize) -> Self {
        CodeCache {
            capacity,
            ..Default::default()
        }
    }

    /// True when caching is active.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Drops every entry.
    pub fn flush(&mut self) {
        self.map.clear();
    }

    /// Drops every entry for `(method, level)` regardless of binding
    /// fingerprint — the quarantine hook: once the governor quarantines a
    /// compile pair, versions cached before the failing environment change
    /// must not be served as stale hits. Returns how many entries dropped.
    pub fn invalidate_method(&mut self, method: u32, level: u8) -> usize {
        let before = self.map.len();
        self.map.retain(|&(m, l, _), _| m != method || l != level);
        before - self.map.len()
    }

    /// Flushes when `env_fp` differs from the environment the entries were
    /// produced under; returns true if a non-empty cache was dropped.
    fn sync_env(&mut self, env_fp: u64) -> bool {
        if self.env_fp == Some(env_fp) {
            return false;
        }
        let dropped = !self.map.is_empty();
        self.flush();
        self.env_fp = Some(env_fp);
        dropped
    }

    /// Looks up `(method, level, binding_fp)` under environment `env_fp`.
    /// A hit refreshes the entry's LRU position.
    pub fn probe(&mut self, method: u32, level: u8, binding_fp: u64, env_fp: u64) -> Probe {
        if !self.enabled() {
            return Probe::Disabled;
        }
        let invalidated = self.sync_env(env_fp);
        match self.map.get_mut(&(method, level, binding_fp)) {
            Some(e) => {
                e.last_used = self.tick;
                self.tick += 1;
                Probe::Hit {
                    cid: e.cid,
                    compile_cycles: e.compile_cycles,
                }
            }
            None => Probe::Miss { invalidated },
        }
    }

    /// Records a freshly compiled version. Evicts the least-recently-used
    /// entry when full (ties broken by smallest key, so eviction is fully
    /// deterministic). No-op when disabled.
    pub fn insert(
        &mut self,
        method: u32,
        level: u8,
        binding_fp: u64,
        env_fp: u64,
        cid: CompiledId,
        compile_cycles: u64,
    ) -> Option<Evicted> {
        if !self.enabled() {
            return None;
        }
        self.sync_env(env_fp);
        let mut evicted = None;
        if self.map.len() >= self.capacity && !self.map.contains_key(&(method, level, binding_fp))
        {
            let victim = self
                .map
                .iter()
                .min_by_key(|(k, e)| (e.last_used, **k))
                .map(|(k, e)| (*k, e.cid));
            if let Some((key, vcid)) = victim {
                self.map.remove(&key);
                evicted = Some(Evicted {
                    method: key.0,
                    level: key.1,
                    cid: vcid,
                });
            }
        }
        let e = Entry {
            cid,
            compile_cycles,
            last_used: self.tick,
        };
        self.tick += 1;
        self.map.insert((method, level, binding_fp), e);
        evicted
    }
}

// --------------------------------------------------------------------------
// Fleet-shared artifact cache
// --------------------------------------------------------------------------

/// One immutable compilation product in the form the fleet shares it:
/// everything a tenant VM needs to install the code locally, behind `Arc`s
/// so any number of tenants reference a single allocation. A hit hands out
/// clones of these handles — never indices into another VM's code table —
/// so eviction can only drop the *map entry*; every artifact a tenant has
/// already adopted (or holds mid-install) stays alive through its `Arc`s.
/// That is the structural fix for cross-tenant LRU churn: one tenant's
/// evictions can never invalidate another tenant's in-flight code.
///
/// `compile_cycles` is the modeled cost the original compilation billed;
/// each adopting shard re-bills it in full, so a shard's modeled clock is
/// bit-identical whether its compile was answered here or run locally.
#[derive(Clone, Debug)]
pub struct SharedArtifact {
    /// The compiled function body.
    pub func: std::sync::Arc<dchm_ir::Function>,
    /// Dispatch/cost metadata derived from `func`.
    pub meta: std::sync::Arc<crate::state::CodeMeta>,
    /// Modeled machine-code size in bytes.
    pub size_bytes: usize,
    /// Modeled cycles the compilation costs (re-billed per adopting shard).
    pub compile_cycles: u64,
    /// Deopt side table for guarded specialized versions.
    pub deopt: Option<std::sync::Arc<crate::compiler::DeoptInfo>>,
}

/// A point-in-time read of the shared cache's host-side counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Probes answered with an artifact.
    pub hits: u64,
    /// Probes that fell through to a tenant's compiler.
    pub misses: u64,
    /// Artifacts published (first publisher per key wins).
    pub inserts: u64,
    /// Map entries dropped by the capacity bound.
    pub evictions: u64,
    /// Artifacts currently mapped.
    pub entries: usize,
    /// Baseline lifts currently mapped.
    pub baselines: usize,
}

#[derive(Debug)]
struct SharedEntry {
    artifact: SharedArtifact,
    /// Logical access tick; atomic so probes only need the read lock.
    last_used: std::sync::atomic::AtomicU64,
}

#[derive(Debug, Default)]
struct SharedMaps {
    artifacts: HashMap<(u64, u32, u8, u64), SharedEntry>,
    baselines: HashMap<(u64, u32), std::sync::Arc<dchm_ir::Function>>,
}

/// The fleet-wide, read-mostly compile-artifact cache shared by every shard.
///
/// Keys extend the local [`CodeCache`] key `(method, level, binding_fp)`
/// with a *scope* fingerprint folding the tenant's full program text and
/// its compiler-environment fingerprint. Compilation is a pure function of
/// exactly those inputs, so two tenants that agree on the scope would
/// produce bit-identical artifacts — sharing is safe across different
/// programs in one fleet because their scopes never collide.
///
/// Concurrency: probes take only a read lock (the LRU tick per entry is an
/// atomic), publishes take the write lock. Under racing publishers for one
/// key the first insert wins and later ones are dropped — harmless, both
/// racers hold bit-identical artifacts. All counters are host-side only;
/// nothing here touches a modeled observable, a [`crate::stats::VmStats`]
/// field, or a trace ring, which is what keeps every shard's run
/// bit-identical to its solo twin.
#[derive(Debug)]
pub struct SharedCodeCache {
    maps: std::sync::RwLock<SharedMaps>,
    capacity: usize,
    tick: std::sync::atomic::AtomicU64,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
    inserts: std::sync::atomic::AtomicU64,
    evictions: std::sync::atomic::AtomicU64,
}

impl SharedCodeCache {
    /// A cache holding at most `capacity` artifacts (0 disables it; the
    /// baseline-lift map is unbounded — one small entry per method).
    pub fn new(capacity: usize) -> Self {
        SharedCodeCache {
            maps: std::sync::RwLock::default(),
            capacity,
            tick: Default::default(),
            hits: Default::default(),
            misses: Default::default(),
            inserts: Default::default(),
            evictions: Default::default(),
        }
    }

    /// Folds a program fingerprint and a compiler-environment fingerprint
    /// into the scope key component.
    pub fn scope_of(program_fp: u64, env_fp: u64) -> u64 {
        let mut h = Fnv::new();
        h.mix_u64(program_fp);
        h.mix_u64(env_fp);
        h.finish()
    }

    /// Looks up the artifact for a compile request. Read lock only.
    pub fn probe(&self, scope: u64, method: u32, level: u8, binding_fp: u64) -> Option<SharedArtifact> {
        use std::sync::atomic::Ordering::Relaxed;
        if self.capacity == 0 {
            return None;
        }
        let maps = self.maps.read().expect("shared cache poisoned");
        match maps.artifacts.get(&(scope, method, level, binding_fp)) {
            Some(e) => {
                e.last_used
                    .store(self.tick.fetch_add(1, Relaxed) + 1, Relaxed);
                self.hits.fetch_add(1, Relaxed);
                Some(e.artifact.clone())
            }
            None => {
                self.misses.fetch_add(1, Relaxed);
                None
            }
        }
    }

    /// Publishes a freshly compiled artifact. First publisher per key wins;
    /// at capacity the least-recently-used entry (ties broken on the
    /// smallest key, as in [`CodeCache`]) is dropped from the map — held
    /// `Arc`s keep it alive for everyone who already adopted it.
    pub fn insert(&self, scope: u64, method: u32, level: u8, binding_fp: u64, artifact: SharedArtifact) {
        use std::sync::atomic::Ordering::Relaxed;
        if self.capacity == 0 {
            return;
        }
        let mut maps = self.maps.write().expect("shared cache poisoned");
        let key = (scope, method, level, binding_fp);
        if maps.artifacts.contains_key(&key) {
            return;
        }
        if maps.artifacts.len() >= self.capacity {
            let victim = maps
                .artifacts
                .iter()
                .min_by_key(|(k, e)| (e.last_used.load(Relaxed), **k))
                .map(|(k, _)| *k);
            if let Some(v) = victim {
                maps.artifacts.remove(&v);
                self.evictions.fetch_add(1, Relaxed);
            }
        }
        maps.artifacts.insert(
            key,
            SharedEntry {
                artifact,
                last_used: std::sync::atomic::AtomicU64::new(self.tick.fetch_add(1, Relaxed) + 1),
            },
        );
        self.inserts.fetch_add(1, Relaxed);
    }

    /// Looks up the shared baseline lift for `method` (uncounted: baseline
    /// adoption is already tracked by each tenant's `LiftCache` counters).
    pub fn baseline(&self, scope: u64, method: u32) -> Option<std::sync::Arc<dchm_ir::Function>> {
        let maps = self.maps.read().expect("shared cache poisoned");
        maps.baselines
            .get(&(scope, method))
            .map(std::sync::Arc::clone)
    }

    /// Publishes a baseline lift (first publisher wins).
    pub fn publish_baseline(&self, scope: u64, method: u32, func: std::sync::Arc<dchm_ir::Function>) {
        let mut maps = self.maps.write().expect("shared cache poisoned");
        maps.baselines.entry((scope, method)).or_insert(func);
    }

    /// Snapshot of the host-side counters and sizes.
    pub fn stats(&self) -> SharedCacheStats {
        use std::sync::atomic::Ordering::Relaxed;
        let maps = self.maps.read().expect("shared cache poisoned");
        SharedCacheStats {
            hits: self.hits.load(Relaxed),
            misses: self.misses.load(Relaxed),
            inserts: self.inserts.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            entries: maps.artifacts.len(),
            baselines: maps.baselines.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{FieldId, Value};

    #[test]
    fn binding_fp_is_order_insensitive_and_nan_stable() {
        let a = Bindings {
            instance: [(FieldId(1), Value::Int(3)), (FieldId(2), Value::Double(f64::NAN))]
                .into_iter()
                .collect(),
            statics: [(FieldId(9), Value::Null)].into_iter().collect(),
        };
        let b = Bindings {
            instance: [(FieldId(2), Value::Double(f64::NAN)), (FieldId(1), Value::Int(3))]
                .into_iter()
                .collect(),
            statics: [(FieldId(9), Value::Null)].into_iter().collect(),
        };
        assert_eq!(
            binding_fingerprint(Some(&a)),
            binding_fingerprint(Some(&b))
        );
        assert_ne!(binding_fingerprint(Some(&a)), binding_fingerprint(None));
        assert_ne!(
            binding_fingerprint(Some(&Bindings::default())),
            binding_fingerprint(None),
            "empty bindings are not general code"
        );
    }

    #[test]
    fn probe_insert_roundtrip() {
        let mut c = CodeCache::new(4);
        assert_eq!(
            c.probe(1, 2, 77, 5),
            Probe::Miss { invalidated: false }
        );
        assert!(c.insert(1, 2, 77, 5, CompiledId(10), 1234).is_none());
        assert_eq!(
            c.probe(1, 2, 77, 5),
            Probe::Hit { cid: CompiledId(10), compile_cycles: 1234 }
        );
        // Different binding fingerprint: distinct key.
        assert_eq!(
            c.probe(1, 2, 78, 5),
            Probe::Miss { invalidated: false }
        );
    }

    #[test]
    fn env_change_flushes() {
        let mut c = CodeCache::new(4);
        c.insert(1, 2, 77, 5, CompiledId(10), 100);
        assert_eq!(c.len(), 1);
        assert_eq!(
            c.probe(1, 2, 77, 6),
            Probe::Miss { invalidated: true },
            "new env fingerprint must flush"
        );
        assert!(c.is_empty());
        // Returning to the previous fingerprint does NOT resurrect entries.
        assert_eq!(c.probe(1, 2, 77, 5), Probe::Miss { invalidated: false });
    }

    #[test]
    fn lru_evicts_least_recent_deterministically() {
        let mut c = CodeCache::new(2);
        c.insert(1, 0, 0, 9, CompiledId(1), 10);
        c.insert(2, 0, 0, 9, CompiledId(2), 20);
        // Touch entry 1 so entry 2 is the LRU victim.
        assert!(matches!(c.probe(1, 0, 0, 9), Probe::Hit { .. }));
        let ev = c.insert(3, 0, 0, 9, CompiledId(3), 30).expect("evicts");
        assert_eq!(ev, Evicted { method: 2, level: 0, cid: CompiledId(2) });
        assert_eq!(c.len(), 2);
        assert!(matches!(c.probe(1, 0, 0, 9), Probe::Hit { .. }));
        assert!(matches!(c.probe(3, 0, 0, 9), Probe::Hit { .. }));
        assert!(matches!(c.probe(2, 0, 0, 9), Probe::Miss { .. }));
    }

    #[test]
    fn reinserting_same_key_does_not_evict() {
        let mut c = CodeCache::new(1);
        c.insert(1, 0, 0, 9, CompiledId(1), 10);
        assert!(c.insert(1, 0, 0, 9, CompiledId(1), 10).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn invalidate_method_drops_only_that_pair() {
        let mut c = CodeCache::new(8);
        c.insert(1, 2, 77, 5, CompiledId(10), 100);
        c.insert(1, 2, 78, 5, CompiledId(11), 100);
        c.insert(1, 1, 77, 5, CompiledId(12), 100);
        c.insert(2, 2, 77, 5, CompiledId(13), 100);
        assert_eq!(c.invalidate_method(1, 2), 2);
        assert_eq!(c.len(), 2);
        assert!(matches!(c.probe(1, 2, 77, 5), Probe::Miss { .. }));
        assert!(matches!(c.probe(1, 2, 78, 5), Probe::Miss { .. }));
        assert!(matches!(c.probe(1, 1, 77, 5), Probe::Hit { .. }));
        assert!(matches!(c.probe(2, 2, 77, 5), Probe::Hit { .. }));
        assert_eq!(c.invalidate_method(1, 2), 0);
    }

    #[test]
    fn disabled_cache_is_inert() {
        let mut c = CodeCache::new(0);
        assert_eq!(c.probe(1, 0, 0, 9), Probe::Disabled);
        assert!(c.insert(1, 0, 0, 9, CompiledId(1), 10).is_none());
        assert!(c.is_empty());
    }

    // ---------------------------------------------------------------- shared

    use crate::state::CodeMeta;
    use std::sync::Arc;

    fn artifact(cycles: u64) -> SharedArtifact {
        let func = Arc::new(dchm_ir::Function {
            blocks: vec![],
            num_regs: 0,
            arg_count: 0,
        });
        let meta = Arc::new(CodeMeta::build(&func));
        SharedArtifact {
            func,
            meta,
            size_bytes: 16,
            compile_cycles: cycles,
            deopt: None,
        }
    }

    #[test]
    fn shared_probe_insert_roundtrip_counts() {
        let c = SharedCodeCache::new(8);
        assert!(c.probe(1, 2, 0, 9).is_none());
        c.insert(1, 2, 0, 9, artifact(123));
        let hit = c.probe(1, 2, 0, 9).expect("hit after insert");
        assert_eq!(hit.compile_cycles, 123);
        // A different scope never sees another tenant's artifact.
        assert!(c.probe(2, 2, 0, 9).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.entries), (1, 2, 1, 1));
    }

    #[test]
    fn shared_first_publisher_wins() {
        let c = SharedCodeCache::new(8);
        c.insert(1, 2, 0, 9, artifact(100));
        c.insert(1, 2, 0, 9, artifact(200));
        assert_eq!(c.probe(1, 2, 0, 9).unwrap().compile_cycles, 100);
        assert_eq!(c.stats().inserts, 1);
    }

    #[test]
    fn shared_eviction_never_invalidates_adopted_artifacts() {
        // The stale-hit regression (mirrors the quarantine stale-hit test of
        // the governor suite, but for cross-tenant LRU churn): tenant A
        // adopts an artifact, tenant B's inserts churn it out of the map —
        // A's handle must stay fully usable because eviction only drops the
        // map entry, never the allocation.
        let c = SharedCodeCache::new(1);
        c.insert(1, 7, 2, 9, artifact(500));
        let adopted = c.probe(1, 7, 2, 9).expect("tenant A adopts");
        c.insert(1, 8, 2, 9, artifact(600)); // tenant B evicts A's entry
        assert!(c.probe(1, 7, 2, 9).is_none(), "entry churned out");
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(adopted.compile_cycles, 500);
        assert_eq!(adopted.meta.num_sites, 0);
        assert!(Arc::strong_count(&adopted.func) >= 1);
    }

    #[test]
    fn shared_lru_evicts_least_recently_probed() {
        let c = SharedCodeCache::new(2);
        c.insert(1, 1, 0, 9, artifact(1));
        c.insert(1, 2, 0, 9, artifact(2));
        // Touch method 1 so method 2 is the LRU victim.
        assert!(c.probe(1, 1, 0, 9).is_some());
        c.insert(1, 3, 0, 9, artifact(3));
        assert!(c.probe(1, 1, 0, 9).is_some());
        assert!(c.probe(1, 2, 0, 9).is_none());
        assert!(c.probe(1, 3, 0, 9).is_some());
    }

    #[test]
    fn shared_disabled_is_inert() {
        let c = SharedCodeCache::new(0);
        c.insert(1, 2, 0, 9, artifact(1));
        assert!(c.probe(1, 2, 0, 9).is_none());
        let s = c.stats();
        assert_eq!((s.inserts, s.entries, s.hits, s.misses), (0, 0, 0, 0));
    }

    #[test]
    fn shared_baselines_first_publisher_wins() {
        let c = SharedCodeCache::new(4);
        assert!(c.baseline(1, 5).is_none());
        let f = Arc::new(dchm_ir::Function {
            blocks: vec![],
            num_regs: 3,
            arg_count: 1,
        });
        c.publish_baseline(1, 5, Arc::clone(&f));
        let g = Arc::new(dchm_ir::Function {
            blocks: vec![],
            num_regs: 9,
            arg_count: 1,
        });
        c.publish_baseline(1, 5, g);
        assert!(Arc::ptr_eq(&c.baseline(1, 5).unwrap(), &f));
        assert!(c.baseline(2, 5).is_none());
        assert_eq!(c.stats().baselines, 1);
    }
}
