//! The seams between the VM and the mutation engine / profilers.

use crate::state::VmState;
use dchm_bytecode::value::ObjRef;
use dchm_bytecode::{ClassId, FieldId, MethodId, Value};
use std::collections::{HashMap, HashSet};

/// Which program points the compiler must instrument with `Notify*` patch
/// ops. The mutation engine derives this from its plan; the VM compiles the
/// checks into *every* tier so state tracking is sound from the first
/// instruction (the paper patches the same three kinds of sites, Fig. 4).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatchSpec {
    /// Instance state fields: every `PutField` of one of these is followed
    /// by a `NotifyInstStore`.
    pub instance_fields: HashSet<FieldId>,
    /// Static state fields: every `PutStatic` is followed by a
    /// `NotifyStaticStore`.
    pub static_fields: HashSet<FieldId>,
    /// Classes whose constructors end with a `NotifyCtorExit` (mutable
    /// classes with instance state fields).
    pub ctor_classes: HashSet<ClassId>,
}

impl PatchSpec {
    /// True if nothing is instrumented.
    pub fn is_empty(&self) -> bool {
        self.instance_fields.is_empty()
            && self.static_fields.is_empty()
            && self.ctor_classes.is_empty()
    }
}

/// Object-lifetime-constant information for one private reference field
/// (paper Sec. 4): the field always holds an instance of `exact_class`
/// constructed by the same constructor, and `bindings` are the instance
/// fields that constructor sets to constants and nothing ever overwrites.
#[derive(Clone, Debug, PartialEq)]
pub struct OlcInfo {
    /// The private reference field (e.g. `deliveryScreen` in Fig. 7).
    pub ref_field: FieldId,
    /// The exact dynamic type of the referenced object.
    pub exact_class: ClassId,
    /// Field -> constant value, valid for the object's whole lifetime.
    pub bindings: HashMap<FieldId, Value>,
}

/// Compile-time facts handed to the VM compiler by the mutation engine.
#[derive(Clone, Debug, Default)]
pub struct CompilerHints {
    /// Object-lifetime constants keyed by the private reference field.
    pub olc: HashMap<FieldId, OlcInfo>,
    /// `M` of the paper's Section 5 heuristic: the number of specializable
    /// (state) fields *read by each mutable method*. Methods absent from
    /// the map have no specialization potential and inline normally.
    pub spec_field_count: HashMap<MethodId, usize>,
    /// `k` of the Section 5 heuristic: inline iff `N > M + k`, where `N` is
    /// the number of constant arguments at the call site.
    pub k: i64,
}

/// The runtime half of the mutation engine: invoked from patch points and
/// recompilation events. Implemented by `dchm-core`; [`NoopHandler`] is the
/// mutation-off baseline.
pub trait MutationHandler {
    /// An instance state field of `class` was just stored on `obj`
    /// (Fig. 4, middle block). Runs *after* the store.
    fn on_instance_store(&mut self, vm: &mut VmState, obj: ObjRef, class: ClassId, field: FieldId);

    /// A static state field was just stored (Fig. 4, bottom block).
    fn on_static_store(&mut self, vm: &mut VmState, field: FieldId);

    /// A constructor of mutable `class` is about to return `obj`
    /// (Fig. 4, top block).
    fn on_ctor_exit(&mut self, vm: &mut VmState, obj: ObjRef, class: ClassId);

    /// General compiled code for `method` was just (re)generated and
    /// installed at `level` (Fig. 5).
    fn on_recompiled(&mut self, vm: &mut VmState, method: MethodId, level: u8);
}

/// Mutation disabled: every hook is a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopHandler;

impl MutationHandler for NoopHandler {
    fn on_instance_store(&mut self, _: &mut VmState, _: ObjRef, _: ClassId, _: FieldId) {}
    fn on_static_store(&mut self, _: &mut VmState, _: FieldId) {}
    fn on_ctor_exit(&mut self, _: &mut VmState, _: ObjRef, _: ClassId) {}
    fn on_recompiled(&mut self, _: &mut VmState, _: MethodId, _: u8) {}
}

/// Passive observation hooks used by the offline profiler (`dchm-profile`).
/// Field-store callbacks fire only for fields in the observer's watch set,
/// returned by [`VmObserver::watched_fields`] once at attach time.
pub trait VmObserver {
    /// Fields whose stores should be reported.
    fn watched_fields(&self) -> HashSet<FieldId>;

    /// An instance field in the watch set was stored.
    fn on_instance_store(&mut self, class: ClassId, field: FieldId, value: Value);

    /// A static field in the watch set was stored.
    fn on_static_store(&mut self, field: FieldId, value: Value);

    /// The adaptive system took a method sample (timer tick).
    fn on_sample(&mut self, method: MethodId) {
        let _ = method;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_spec_emptiness() {
        let mut s = PatchSpec::default();
        assert!(s.is_empty());
        s.static_fields.insert(FieldId(0));
        assert!(!s.is_empty());
    }

    #[test]
    fn noop_handler_is_constructible() {
        // Compile-time check that the trait is object safe.
        let _h: Box<dyn MutationHandler> = Box::new(NoopHandler);
    }
}
