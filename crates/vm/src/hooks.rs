//! The seams between the VM and the mutation engine / profilers.

use crate::state::VmState;
use dchm_bytecode::value::ObjRef;
use dchm_bytecode::{ClassId, FieldId, MethodId, Value};
use std::collections::{HashMap, HashSet};

/// Which program points the compiler must instrument with `Notify*` patch
/// ops. The mutation engine derives this from its plan; the VM compiles the
/// checks into *every* tier so state tracking is sound from the first
/// instruction (the paper patches the same three kinds of sites, Fig. 4).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PatchSpec {
    /// Instance state fields: every `PutField` of one of these is followed
    /// by a `NotifyInstStore`.
    pub instance_fields: HashSet<FieldId>,
    /// Static state fields: every `PutStatic` is followed by a
    /// `NotifyStaticStore`.
    pub static_fields: HashSet<FieldId>,
    /// Classes whose constructors end with a `NotifyCtorExit` (mutable
    /// classes with instance state fields).
    pub ctor_classes: HashSet<ClassId>,
}

impl PatchSpec {
    /// True if nothing is instrumented.
    pub fn is_empty(&self) -> bool {
        self.instance_fields.is_empty()
            && self.static_fields.is_empty()
            && self.ctor_classes.is_empty()
    }
}

/// Object-lifetime-constant information for one private reference field
/// (paper Sec. 4): the field always holds an instance of `exact_class`
/// constructed by the same constructor, and `bindings` are the instance
/// fields that constructor sets to constants and nothing ever overwrites.
#[derive(Clone, Debug, PartialEq)]
pub struct OlcInfo {
    /// The private reference field (e.g. `deliveryScreen` in Fig. 7).
    pub ref_field: FieldId,
    /// The exact dynamic type of the referenced object.
    pub exact_class: ClassId,
    /// Field -> constant value, valid for the object's whole lifetime.
    pub bindings: HashMap<FieldId, Value>,
}

/// Compile-time facts handed to the VM compiler by the mutation engine.
#[derive(Clone, Debug)]
pub struct CompilerHints {
    /// Object-lifetime constants keyed by the private reference field.
    pub olc: HashMap<FieldId, OlcInfo>,
    /// `M` of the paper's Section 5 heuristic: the number of specializable
    /// (state) fields *read by each mutable method*. Methods absent from
    /// the map have no specialization potential and inline normally.
    pub spec_field_count: HashMap<MethodId, usize>,
    /// `k` of the Section 5 heuristic: inline iff `N > M + k`, where `N` is
    /// the number of constant arguments at the call site.
    pub k: i64,
    /// Plant state guards (and a deopt side table) in specialized method
    /// bodies so frames can deoptimize when their state assumptions break.
    /// On by default; switched off only for guard-overhead A/B measurement.
    pub emit_guards: bool,
}

impl Default for CompilerHints {
    fn default() -> Self {
        CompilerHints {
            olc: HashMap::new(),
            spec_field_count: HashMap::new(),
            k: 0,
            emit_guards: true,
        }
    }
}

/// The runtime half of the mutation engine: invoked from patch points and
/// recompilation events. Implemented by `dchm-core`; [`NoopHandler`] is the
/// mutation-off baseline.
pub trait MutationHandler {
    /// An instance state field of `class` was just stored on `obj`
    /// (Fig. 4, middle block). Runs *after* the store.
    fn on_instance_store(&mut self, vm: &mut VmState, obj: ObjRef, class: ClassId, field: FieldId);

    /// A static state field was just stored (Fig. 4, bottom block).
    fn on_static_store(&mut self, vm: &mut VmState, field: FieldId);

    /// A constructor of mutable `class` is about to return `obj`
    /// (Fig. 4, top block).
    fn on_ctor_exit(&mut self, vm: &mut VmState, obj: ObjRef, class: ClassId);

    /// General compiled code for `method` was just (re)generated and
    /// installed at `level` (Fig. 5).
    fn on_recompiled(&mut self, vm: &mut VmState, method: MethodId, level: u8);
}

/// Mutation disabled: every hook is a no-op.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopHandler;

impl MutationHandler for NoopHandler {
    fn on_instance_store(&mut self, _: &mut VmState, _: ObjRef, _: ClassId, _: FieldId) {}
    fn on_static_store(&mut self, _: &mut VmState, _: FieldId) {}
    fn on_ctor_exit(&mut self, _: &mut VmState, _: ObjRef, _: ClassId) {}
    fn on_recompiled(&mut self, _: &mut VmState, _: MethodId, _: u8) {}
}

/// Configuration of the deterministic fault injector: which fault kinds may
/// fire and how often, all derived from a fixed `seed` so a run is exactly
/// reproducible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// PRNG seed; two runs with the same seed inject identically.
    pub seed: u64,
    /// Inject full (mark-sweep) garbage collections at allocation points.
    pub gc_at_alloc: bool,
    /// Inject global inline-cache version bumps at allocation points.
    pub ic_bumps: bool,
    /// Inject silent same-level recompilation of the running method at
    /// allocation points.
    pub recompiles: bool,
    /// Force state guards in specialized code to fail (deoptimize) even
    /// though the object is still in its hot state.
    pub force_guard_fail: bool,
    /// Fail opt-level and special compilations (level-0 baseline compiles
    /// are exempt so a tier-down target always exists).
    pub compile_fails: bool,
    /// Report out-of-memory at allocation points despite free heap.
    pub oom_at_alloc: bool,
    /// Panic at allocation points — exercises the `Vm::run` containment
    /// boundary (typed `VmInvariant` + poisoned VM).
    pub panic_at_op: bool,
    /// Mean events between injections: each eligible event injects with
    /// probability `1/period`. `0` disables the injector entirely.
    pub period: u64,
}

impl FaultConfig {
    /// Everything except forced guard failures, at the given seed — the
    /// cycle-transparent faults a differential run can assert against.
    pub fn transparent(seed: u64) -> Self {
        FaultConfig {
            seed,
            gc_at_alloc: true,
            ic_bumps: true,
            recompiles: true,
            force_guard_fail: false,
            compile_fails: false,
            oom_at_alloc: false,
            panic_at_op: false,
            period: 24,
        }
    }

    /// Only forced guard failures, at the given seed.
    pub fn guard_failures(seed: u64) -> Self {
        FaultConfig {
            seed,
            gc_at_alloc: false,
            ic_bumps: false,
            recompiles: false,
            force_guard_fail: true,
            compile_fails: false,
            oom_at_alloc: false,
            panic_at_op: false,
            period: 4,
        }
    }

    /// Only compile failures, at the given seed.
    pub fn compile_failures(seed: u64) -> Self {
        FaultConfig {
            seed,
            gc_at_alloc: false,
            ic_bumps: false,
            recompiles: false,
            force_guard_fail: false,
            compile_fails: true,
            oom_at_alloc: false,
            panic_at_op: false,
            period: 2,
        }
    }
}

/// The fault kind the injector chose for one allocation point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Run a garbage collection now.
    Gc,
    /// Bump the global inline-cache version.
    IcBump,
    /// Recompile the currently-running method at its current level.
    Recompile,
    /// Report out-of-memory despite free heap.
    Oom,
    /// Panic at the allocation point (containment-boundary exercise).
    Panic,
}

/// Deterministic, seed-driven fault injector (splitmix64 PRNG). The VM
/// consults it at every allocation point and at every executed state guard;
/// the draw sequence depends only on the seed and the event sequence, never
/// on what was previously injected, so runs stay reproducible.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: u64,
    /// Number of GCs injected.
    pub gcs: u64,
    /// Number of IC-version bumps injected.
    pub ic_bumps: u64,
    /// Number of silent recompilations injected.
    pub recompiles: u64,
    /// Number of guards forced to fail.
    pub forced_guard_fails: u64,
    /// Number of compilations forced to fail.
    pub compile_fails: u64,
    /// Number of out-of-memory faults injected.
    pub ooms: u64,
    /// Number of panics injected.
    pub panics: u64,
}

impl FaultInjector {
    /// Builds an injector for `cfg`.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector {
            cfg,
            rng: cfg.seed,
            gcs: 0,
            ic_bumps: 0,
            recompiles: 0,
            forced_guard_fails: 0,
            compile_fails: 0,
            ooms: 0,
            panics: 0,
        }
    }

    /// The configuration this injector runs with.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Draws at an allocation point; returns the fault to inject, if any.
    pub fn at_alloc(&mut self) -> Option<Fault> {
        let mut kinds = [Fault::Gc; 5];
        let mut n = 0usize;
        if self.cfg.gc_at_alloc {
            kinds[n] = Fault::Gc;
            n += 1;
        }
        if self.cfg.ic_bumps {
            kinds[n] = Fault::IcBump;
            n += 1;
        }
        if self.cfg.recompiles {
            kinds[n] = Fault::Recompile;
            n += 1;
        }
        if self.cfg.oom_at_alloc {
            kinds[n] = Fault::Oom;
            n += 1;
        }
        if self.cfg.panic_at_op {
            kinds[n] = Fault::Panic;
            n += 1;
        }
        if n == 0 || self.cfg.period == 0 {
            return None;
        }
        let x = self.next_u64();
        if !x.is_multiple_of(self.cfg.period) {
            return None;
        }
        let fault = kinds[(x / self.cfg.period) as usize % n];
        match fault {
            Fault::Gc => self.gcs += 1,
            Fault::IcBump => self.ic_bumps += 1,
            Fault::Recompile => self.recompiles += 1,
            Fault::Oom => self.ooms += 1,
            Fault::Panic => self.panics += 1,
        }
        Some(fault)
    }

    /// Draws at an executed state guard; true forces the guard to fail.
    pub fn at_guard(&mut self) -> bool {
        if !self.cfg.force_guard_fail || self.cfg.period == 0 {
            return false;
        }
        let forced = self.next_u64().is_multiple_of(self.cfg.period);
        if forced {
            self.forced_guard_fails += 1;
        }
        forced
    }

    /// Draws at an opt-level or special compilation; true forces the
    /// compile to fail. Level-0 baseline compiles never consult this, so
    /// a tier-down target always exists. The draw only happens when
    /// compile failures are enabled, preserving other configs' sequences.
    pub fn at_compile(&mut self) -> bool {
        if !self.cfg.compile_fails || self.cfg.period == 0 {
            return false;
        }
        let failed = self.next_u64().is_multiple_of(self.cfg.period);
        if failed {
            self.compile_fails += 1;
        }
        failed
    }
}

/// Passive observation hooks used by the offline profiler (`dchm-profile`).
/// Field-store callbacks fire only for fields in the observer's watch set,
/// returned by [`VmObserver::watched_fields`] once at attach time.
pub trait VmObserver {
    /// Fields whose stores should be reported.
    fn watched_fields(&self) -> HashSet<FieldId>;

    /// An instance field in the watch set was stored.
    fn on_instance_store(&mut self, class: ClassId, field: FieldId, value: Value);

    /// A static field in the watch set was stored.
    fn on_static_store(&mut self, field: FieldId, value: Value);

    /// The adaptive system took a method sample (timer tick).
    fn on_sample(&mut self, method: MethodId) {
        let _ = method;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_spec_emptiness() {
        let mut s = PatchSpec::default();
        assert!(s.is_empty());
        s.static_fields.insert(FieldId(0));
        assert!(!s.is_empty());
    }

    #[test]
    fn noop_handler_is_constructible() {
        // Compile-time check that the trait is object safe.
        let _h: Box<dyn MutationHandler> = Box::new(NoopHandler);
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let cfg = FaultConfig::transparent(42);
        let mut a = FaultInjector::new(cfg);
        let mut b = FaultInjector::new(cfg);
        let da: Vec<_> = (0..500).map(|_| a.at_alloc()).collect();
        let db: Vec<_> = (0..500).map(|_| b.at_alloc()).collect();
        assert_eq!(da, db);
        assert!(da.iter().any(Option::is_some), "period 24 over 500 draws");
        // A different seed gives a different schedule.
        let mut c = FaultInjector::new(FaultConfig::transparent(43));
        let dc: Vec<_> = (0..500).map(|_| c.at_alloc()).collect();
        assert_ne!(da, dc);
    }

    #[test]
    fn guard_failure_mode_only_fires_at_guards() {
        let mut inj = FaultInjector::new(FaultConfig::guard_failures(7));
        assert!((0..100).all(|_| inj.at_alloc().is_none()));
        assert!((0..100).any(|_| inj.at_guard()));
        assert!(inj.forced_guard_fails > 0);
        assert_eq!(inj.gcs + inj.ic_bumps + inj.recompiles, 0);
    }
}
