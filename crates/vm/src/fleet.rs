//! Sharded multi-tenant execution: run many independent VM jobs in
//! parallel, each on its own shard, without perturbing a single modeled
//! observable.
//!
//! The executor is deliberately VM-agnostic: [`run_fleet`] drives a plain
//! `Fn(&ShardCtx, &J) -> R` over a job list, because `Vm` (holding
//! `Rc`-backed program state) is not `Send` — each worker thread builds
//! its jobs' VMs locally from the `Send + Sync` job description (program,
//! plan, config). Everything modeled stays per-shard by construction:
//! clock, stats, tracer ring, profiler, governor, local code cache and
//! inline caches all live inside the shard's VM. The only cross-shard
//! object is the [`crate::codecache::SharedCodeCache`] a caller may attach
//! to every shard's VM, and that is host-side only — which is exactly why
//! a job's run inside any fleet is bit-identical to its solo run.
//!
//! Scheduling is either work-stealing-style [`Schedule::Dynamic`] (an
//! atomic work index; assignment of jobs to shards depends on host timing,
//! results still land in job order) or fully deterministic
//! [`Schedule::Static`] (a precomputed job→shard map, e.g. from
//! [`lpt_assignment`] over calibrated job weights — what the scaling
//! benchmark uses so its aggregate modeled makespan is reproducible).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How jobs are placed on shards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Shards pull the next unclaimed job from a shared atomic index.
    /// Lowest latency, but which shard runs which job depends on host
    /// timing (job results are position-stable regardless).
    Dynamic,
    /// `assignment[i]` names the shard that runs job `i`; each shard runs
    /// its jobs in increasing job index. Fully deterministic.
    Static(Vec<usize>),
}

/// Fleet shape: how many workers, and how jobs are placed on them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FleetConfig {
    /// Number of worker shards (clamped to at least 1).
    pub workers: usize,
    /// Job placement policy.
    pub schedule: Schedule,
}

impl FleetConfig {
    /// A dynamic fleet of `workers` shards.
    pub fn dynamic(workers: usize) -> Self {
        FleetConfig {
            workers,
            schedule: Schedule::Dynamic,
        }
    }

    /// A static fleet of `workers` shards running `assignment`.
    pub fn pinned(workers: usize, assignment: Vec<usize>) -> Self {
        FleetConfig {
            workers,
            schedule: Schedule::Static(assignment),
        }
    }
}

/// What a job closure learns about where it runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardCtx {
    /// This shard's index in `0..workers`.
    pub shard: usize,
    /// Total worker count of the fleet.
    pub workers: usize,
}

/// The outcome of one fleet run.
#[derive(Debug)]
pub struct FleetRun<R> {
    /// One result per job, in job order (independent of scheduling).
    pub results: Vec<R>,
    /// `shard_of[i]` is the shard that ran job `i`.
    pub shard_of: Vec<usize>,
}

/// Runs every job in `jobs` exactly once across `cfg.workers` parallel
/// shards and returns the results in job order.
///
/// # Panics
/// Panics when a static schedule does not cover every job, names a shard
/// out of range, or a job closure panics (the panic propagates once all
/// workers have been joined by the scope).
pub fn run_fleet<J, R, F>(cfg: &FleetConfig, jobs: &[J], run: F) -> FleetRun<R>
where
    J: Sync,
    R: Send,
    F: Fn(&ShardCtx, &J) -> R + Sync,
{
    let workers = cfg.workers.max(1);
    let out: Mutex<Vec<Option<(usize, R)>>> = Mutex::new((0..jobs.len()).map(|_| None).collect());
    match &cfg.schedule {
        Schedule::Dynamic => {
            let next = AtomicUsize::new(0);
            let spawned = workers.min(jobs.len());
            rayon::scope(|s| {
                for shard in 0..spawned {
                    let (out, next, run) = (&out, &next, &run);
                    s.spawn(move |_| {
                        let ctx = ShardCtx { shard, workers };
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= jobs.len() {
                                break;
                            }
                            let r = run(&ctx, &jobs[i]);
                            out.lock().expect("fleet worker poisoned")[i] = Some((shard, r));
                        }
                    });
                }
            });
        }
        Schedule::Static(assignment) => {
            assert_eq!(
                assignment.len(),
                jobs.len(),
                "static schedule must cover every job"
            );
            assert!(
                assignment.iter().all(|&s| s < workers),
                "static schedule names a shard out of range"
            );
            rayon::scope(|s| {
                for shard in 0..workers {
                    let (out, run) = (&out, &run);
                    let assignment = &assignment[..];
                    s.spawn(move |_| {
                        let ctx = ShardCtx { shard, workers };
                        for (i, job) in jobs
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| assignment[*i] == shard)
                        {
                            let r = run(&ctx, job);
                            out.lock().expect("fleet worker poisoned")[i] = Some((shard, r));
                        }
                    });
                }
            });
        }
    }
    let mut results = Vec::with_capacity(jobs.len());
    let mut shard_of = Vec::with_capacity(jobs.len());
    for slot in out.into_inner().expect("fleet worker poisoned") {
        let (s, r) = slot.expect("every job runs exactly once");
        shard_of.push(s);
        results.push(r);
    }
    FleetRun { results, shard_of }
}

/// Longest-processing-time-first assignment of weighted jobs to `workers`
/// shards: jobs in descending weight order (ties on lower index first),
/// each to the currently least-loaded shard (ties to the lowest shard id).
/// Deterministic, and within 4/3 of the optimal makespan — with `n` jobs
/// of maximum weight `w_max`, the resulting [`makespan`] is at most
/// `total/workers + w_max`, which is what the scaling benchmark's ≥2x
/// throughput floor at 4 workers leans on.
pub fn lpt_assignment(weights: &[u64], workers: usize) -> Vec<usize> {
    let workers = workers.max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    let mut load = vec![0u64; workers];
    let mut assignment = vec![0usize; weights.len()];
    for i in order {
        let shard = (0..workers)
            .min_by_key(|&w| (load[w], w))
            .expect("workers >= 1");
        assignment[i] = shard;
        load[shard] += weights[i];
    }
    assignment
}

/// The bottleneck shard's total weight under `assignment` — the fleet's
/// modeled wall time when job `i` costs `weights[i]`.
pub fn makespan(weights: &[u64], assignment: &[usize], workers: usize) -> u64 {
    let mut load = vec![0u64; workers.max(1)];
    for (i, &s) in assignment.iter().enumerate() {
        load[s] += weights[i];
    }
    load.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn dynamic_fleet_runs_every_job_once_in_order() {
        let jobs: Vec<u64> = (0..37).collect();
        let ran = AtomicU64::new(0);
        let fleet = run_fleet(&FleetConfig::dynamic(4), &jobs, |ctx, &j| {
            assert!(ctx.shard < ctx.workers);
            ran.fetch_add(1, Ordering::Relaxed);
            j * 2
        });
        assert_eq!(ran.load(Ordering::Relaxed), 37);
        assert_eq!(fleet.results, jobs.iter().map(|j| j * 2).collect::<Vec<_>>());
        assert_eq!(fleet.shard_of.len(), 37);
        assert!(fleet.shard_of.iter().all(|&s| s < 4));
    }

    #[test]
    fn single_worker_fleet_is_serial_in_job_order() {
        let jobs: Vec<usize> = (0..10).collect();
        let seen = Mutex::new(Vec::new());
        let fleet = run_fleet(&FleetConfig::dynamic(1), &jobs, |_, &j| {
            seen.lock().unwrap().push(j);
            j
        });
        assert_eq!(*seen.lock().unwrap(), jobs);
        assert_eq!(fleet.shard_of, vec![0; 10]);
    }

    #[test]
    fn static_schedule_pins_jobs_to_shards() {
        let jobs: Vec<usize> = (0..6).collect();
        let assignment = vec![0, 1, 2, 0, 1, 2];
        let fleet = run_fleet(
            &FleetConfig::pinned(3, assignment.clone()),
            &jobs,
            |ctx, &j| (ctx.shard, j),
        );
        assert_eq!(fleet.shard_of, assignment);
        for (i, &(shard, j)) in fleet.results.iter().enumerate() {
            assert_eq!((shard, j), (assignment[i], i));
        }
    }

    #[test]
    #[should_panic(expected = "cover every job")]
    fn short_static_schedule_panics() {
        let jobs = [1, 2, 3];
        let _ = run_fleet(&FleetConfig::pinned(2, vec![0, 1]), &jobs, |_, &j| j);
    }

    #[test]
    fn lpt_balances_and_bounds_makespan() {
        let weights = [7u64, 9, 4, 4, 3, 2, 1];
        let total: u64 = weights.iter().sum();
        for workers in 1..=4 {
            let a = lpt_assignment(&weights, workers);
            assert_eq!(a.len(), weights.len());
            assert!(a.iter().all(|&s| s < workers));
            let ms = makespan(&weights, &a, workers);
            assert!(ms >= total.div_ceil(workers as u64));
            assert!(ms <= total / workers as u64 + 9, "LPT bound violated");
        }
        // Deterministic: same inputs, same assignment.
        assert_eq!(lpt_assignment(&weights, 3), lpt_assignment(&weights, 3));
        // One worker gets everything.
        assert_eq!(lpt_assignment(&weights, 1), vec![0; weights.len()]);
    }

    #[test]
    fn empty_jobs_yield_empty_run() {
        let jobs: [u8; 0] = [];
        let fleet = run_fleet(&FleetConfig::dynamic(4), &jobs, |_, &j| j);
        assert!(fleet.results.is_empty());
        assert_eq!(makespan(&[], &[], 4), 0);
    }
}
