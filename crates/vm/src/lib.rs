#![warn(missing_docs)]

//! # dchm-vm
//!
//! A tiered, Jikes-RVM-inspired virtual machine for the DCHM reproduction.
//! It provides every runtime mechanism the paper's technique manipulates:
//!
//! * **TIBs** (Type Information Blocks): per-class virtual-function tables
//!   with a type-information entry and a shared IMT pointer ([`tib`]).
//!   Objects carry a TIB pointer that the mutation engine may repoint at
//!   *special TIBs*.
//! * **JTOC**: statically-bound dispatch table (static methods, constructors,
//!   private methods) plus the static field area ([`state`]).
//! * **IMT**: fixed-size interface method tables with conflict stubs,
//!   shared between a class TIB and all of its special TIBs ([`tib`]).
//! * **Tiered compilation**: methods are lazily compiled by the optimizing
//!   compiler at `opt0` and recompiled at `opt1`/`opt2` by the adaptive
//!   system (cycle-driven method sampling) ([`compiler`], [`state`]).
//! * **Mark-sweep GC** with heap-size accounting ([`heap`]).
//! * **Mutation hooks**: patch points ([`hooks::PatchSpec`]) compiled into
//!   code at state-field assignments and constructor exits, delivered to a
//!   [`hooks::MutationHandler`] — the seam where `dchm-core` plugs in the
//!   paper's distributed dynamic class mutation algorithm.
//! * **Event tracing**: every mutation-lifecycle transition (TIB flips,
//!   special compiles, guard failures/deopts, GC, samples, injected
//!   faults) can be recorded into a bounded ring buffer ([`trace`],
//!   enabled via [`interp::Vm::enable_tracing`]) without perturbing the
//!   modeled clock.
//! * **Sharded serving**: a parallel fleet executor ([`fleet`]) running
//!   many tenant VMs over a job queue, with a fleet-wide shared
//!   compile-artifact cache ([`codecache::SharedCodeCache`]) so one
//!   tenant's compile is a zero-wall-cost hit for every identical tenant
//!   — while each shard's modeled run stays bit-identical to solo.
//! * **Attribution**: a deterministic cycle-sampling profiler over
//!   (method × tier × receiver-state) cells ([`interp::Vm::profile`],
//!   `VmConfig::profile_period`) and an on-demand/GC-triggered heap &
//!   state census ([`state::VmState::census`]); both are 0-cycle and
//!   output-transparent like tracing.
//!
//! Time is deterministic: every executed op is billed cycles from
//! [`dchm_ir::cost`], as are compilation, allocation and GC. All speedup and
//! overhead figures compare these cycle counts between runs.
//!
//! ```
//! use dchm_bytecode::{MethodSig, ProgramBuilder, Value};
//! use dchm_vm::{Vm, VmConfig};
//!
//! let mut pb = ProgramBuilder::new();
//! let c = pb.class("Main").build();
//! let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(dchm_bytecode::Ty::Int)));
//! let r = m.imm(21);
//! let two = m.imm(2);
//! let out = m.reg();
//! m.imul(out, r, two);
//! m.ret(Some(out));
//! let main = m.build();
//! pb.set_entry(main);
//! let program = pb.finish().unwrap();
//!
//! let mut vm = Vm::new(program, VmConfig::default());
//! let result = vm.run_entry().unwrap();
//! assert_eq!(result, Some(Value::Int(42)));
//! ```

pub mod codecache;
pub mod compiler;
pub mod error;
pub mod fleet;
pub mod governor;
pub mod heap;
pub mod hooks;
pub mod interp;
pub mod state;
pub mod stats;
pub mod tib;

pub use codecache::{
    binding_fingerprint, CodeCache, Evicted, Probe, SharedArtifact, SharedCacheStats,
    SharedCodeCache,
};
pub use fleet::{lpt_assignment, makespan, run_fleet, FleetConfig, FleetRun, Schedule, ShardCtx};
pub use compiler::{CompileEnv, DeoptInfo, DeoptPoint};
pub use error::RunError;
pub use governor::{Governor, GovernorConfig, GuardFailVerdict};
pub use heap::{Heap, HeapCensus, HeapStats};
pub use hooks::{
    CompilerHints, Fault, FaultConfig, FaultInjector, MutationHandler, NoopHandler, OlcInfo,
    PatchSpec, VmObserver,
};
pub use interp::Vm;
pub use state::{
    CodeMeta, CodeSlot, CompileRequest, CompiledId, CompiledMethod, VmConfig, VmState,
};
pub use stats::{MethodProfile, VmStats};
pub use tib::{Imt, ImtEntry, Tib, TibId, TibKind, IMT_SLOTS};

/// Re-export of the event-tracing crate so VM users reach the event types
/// and exporters without a separate dependency.
pub use dchm_trace as trace;

/// Attribution types re-exported at the crate root: the census snapshot
/// ([`VmState::census`]) and the profile cell table ([`Vm::profile`]).
pub use dchm_trace::census::{CensusSnapshot, ResidencyTracker};
pub use dchm_trace::profile::{ProfileCell, ProfileSnapshot, Profiler};
