//! The resilience governor: policy for surviving deopt storms and compile
//! failures.
//!
//! The paper's mechanism assumes state flips are rare and compilation always
//! succeeds. This module is the *policy* layer that keeps the machinery safe
//! when neither holds (OSR-à-la-Carte's separation of deopt mechanism from
//! policy): per-(method, special-state) guard-failure counters over a
//! modeled-cycle sliding window detect guard-fail → respecialize churn;
//! past a threshold the special is throttled with deterministic exponential
//! backoff (keyed to the modeled clock, never wall time) and the site pinned
//! to general opt code; past a lifetime threshold the special is blacklisted
//! for good. A parallel table quarantines `(method, opt-level)` pairs whose
//! compilation keeps failing, with the same backoff schedule.
//!
//! Everything here is host-side bookkeeping: governor checks charge zero
//! modeled cycles, so a governor that never fires leaves output *and* clock
//! bit-identical to a governor that is off. All state is keyed lookups over
//! deterministic inputs (method ids, binding fingerprints, the modeled
//! clock), so decisions are bit-identical run to run.

use std::collections::HashMap;

/// Thresholds and backoff parameters of the [`Governor`]. Lives in
/// [`crate::state::VmConfig`]; the governor itself holds no copy, so the
/// config can be toggled after VM construction (A/B benches flip `enabled`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Master switch. Off: every query permits, nothing is recorded.
    pub enabled: bool,
    /// Sliding-window length in modeled cycles for storm detection.
    pub storm_window: u64,
    /// Guard failures of one (method, state) site within the window that
    /// start a throttle episode.
    pub throttle_threshold: u32,
    /// Lifetime guard failures past which the *next storm* blacklists the
    /// special permanently (a slow drip below the throttle rate never
    /// blacklists, no matter how long it runs).
    pub blacklist_threshold: u64,
    /// First-episode backoff in modeled cycles; episode `n` backs off
    /// `backoff_base << min(n-1, backoff_max_exp)`.
    pub backoff_base: u64,
    /// Cap on the backoff exponent (prevents shift overflow and absurd
    /// waits).
    pub backoff_max_exp: u32,
    /// Compile failures of one (method, level) pair that quarantine it.
    pub quarantine_threshold: u32,
}

impl Default for GovernorConfig {
    fn default() -> Self {
        GovernorConfig {
            enabled: true,
            storm_window: 200_000,
            throttle_threshold: 8,
            blacklist_threshold: 32,
            backoff_base: 100_000,
            backoff_max_exp: 10,
            quarantine_threshold: 3,
        }
    }
}

/// Storm bookkeeping for one (method, binding-fingerprint) site.
#[derive(Clone, Copy, Debug, Default)]
struct SiteState {
    /// Modeled clock at the start of the current sliding window.
    window_start: u64,
    /// Guard failures inside the current window.
    fails_in_window: u32,
    /// Lifetime guard failures.
    total_fails: u64,
    /// Throttle episodes started (drives backoff escalation).
    episodes: u32,
    /// Respecialization is forbidden until this modeled cycle.
    throttled_until: u64,
    /// Permanently banned.
    blacklisted: bool,
}

/// Quarantine bookkeeping for one (method, opt-level) compile pair.
#[derive(Clone, Copy, Debug, Default)]
struct QuarState {
    /// Failures since the last quarantine episode started.
    fails_in_episode: u32,
    /// Lifetime compile failures.
    total_fails: u32,
    /// Quarantine episodes started (drives backoff escalation).
    episodes: u32,
    /// Compilation is forbidden until this modeled cycle.
    until: u64,
}

/// What [`Governor::on_guard_fail`] decided for this failure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardFailVerdict {
    /// Below every threshold: bookkeeping only, no behavior change.
    None,
    /// Storm detected: pin the site to general code until `until`.
    Throttle {
        /// 1-based episode number (backoff doubles each episode).
        episode: u32,
        /// Modeled cycle the backoff expires at.
        until: u64,
    },
    /// Lifetime threshold crossed: the special is banned for good.
    Blacklist {
        /// Lifetime guard failures of the site.
        total_fails: u64,
    },
}

/// The governor's mutable state: storm sites and compile quarantines.
/// Maps are only ever probed by key (never iterated), so `HashMap` order
/// nondeterminism cannot leak into decisions.
#[derive(Debug, Default)]
pub struct Governor {
    sites: HashMap<(u32, u64), SiteState>,
    quarantine: HashMap<(u32, u8), QuarState>,
}

impl Governor {
    /// Records a guard failure of special code for `(method, fp)` at
    /// modeled `clock` and returns the policy verdict. Blacklisted sites
    /// and failures landing inside an active backoff are counted but never
    /// escalate (residual frames still inside pinned special code must not
    /// re-trigger episodes).
    pub fn on_guard_fail(
        &mut self,
        cfg: &GovernorConfig,
        method: u32,
        fp: u64,
        clock: u64,
    ) -> GuardFailVerdict {
        if !cfg.enabled {
            return GuardFailVerdict::None;
        }
        let s = self.sites.entry((method, fp)).or_default();
        if s.blacklisted {
            return GuardFailVerdict::None;
        }
        if clock.saturating_sub(s.window_start) > cfg.storm_window {
            s.window_start = clock;
            s.fails_in_window = 0;
        }
        s.fails_in_window += 1;
        s.total_fails += 1;
        if clock < s.throttled_until {
            return GuardFailVerdict::None;
        }
        if s.fails_in_window >= cfg.throttle_threshold {
            // Blacklist replaces the throttle that would start once the
            // site's lifetime budget is spent: it requires an *active*
            // storm, so slow drips below the throttle rate only ever
            // accumulate bookkeeping, never a ban.
            if s.total_fails >= cfg.blacklist_threshold {
                s.blacklisted = true;
                return GuardFailVerdict::Blacklist { total_fails: s.total_fails };
            }
            s.episodes += 1;
            let exp = (s.episodes - 1).min(cfg.backoff_max_exp);
            s.throttled_until = clock + (cfg.backoff_base << exp);
            s.fails_in_window = 0;
            s.window_start = clock;
            return GuardFailVerdict::Throttle {
                episode: s.episodes,
                until: s.throttled_until,
            };
        }
        GuardFailVerdict::None
    }

    /// True when the special for `(method, fp)` may be installed or
    /// dispatched at modeled `clock`: not blacklisted and past any backoff.
    pub fn special_allowed(
        &self,
        cfg: &GovernorConfig,
        method: u32,
        fp: u64,
        clock: u64,
    ) -> bool {
        if !cfg.enabled {
            return true;
        }
        match self.sites.get(&(method, fp)) {
            None => true,
            Some(s) => !s.blacklisted && clock >= s.throttled_until,
        }
    }

    /// Records a compile failure of `(method, level)` at modeled `clock`.
    /// Returns `Some((lifetime_fails, until))` when this failure starts a
    /// quarantine episode.
    pub fn on_compile_failure(
        &mut self,
        cfg: &GovernorConfig,
        method: u32,
        level: u8,
        clock: u64,
    ) -> Option<(u32, u64)> {
        if !cfg.enabled {
            return None;
        }
        let q = self.quarantine.entry((method, level)).or_default();
        q.fails_in_episode += 1;
        q.total_fails += 1;
        if q.fails_in_episode >= cfg.quarantine_threshold {
            q.episodes += 1;
            let exp = (q.episodes - 1).min(cfg.backoff_max_exp);
            q.until = clock + (cfg.backoff_base << exp);
            q.fails_in_episode = 0;
            return Some((q.total_fails, q.until));
        }
        None
    }

    /// True when compiling `(method, level)` is permitted at modeled
    /// `clock` (not inside a quarantine backoff).
    pub fn compile_allowed(
        &self,
        cfg: &GovernorConfig,
        method: u32,
        level: u8,
        clock: u64,
    ) -> bool {
        if !cfg.enabled {
            return true;
        }
        match self.quarantine.get(&(method, level)) {
            None => true,
            Some(q) => clock >= q.until,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GovernorConfig {
        GovernorConfig::default()
    }

    #[test]
    fn below_threshold_is_bookkeeping_only() {
        let mut g = Governor::default();
        let c = cfg();
        for i in 0..(c.throttle_threshold - 1) as u64 {
            assert_eq!(g.on_guard_fail(&c, 1, 7, i), GuardFailVerdict::None);
        }
        assert!(g.special_allowed(&c, 1, 7, 100));
    }

    #[test]
    fn storm_throttles_then_backoff_doubles_then_blacklists() {
        let mut g = Governor::default();
        let c = cfg();
        let mut clock = 0u64;
        let mut untils = Vec::new();
        let mut blacklisted_at = None;
        // Feed failures in tight bursts, skipping past each backoff.
        for _episode in 0..10 {
            let mut done = false;
            for _ in 0..c.throttle_threshold {
                clock += 1;
                match g.on_guard_fail(&c, 1, 7, clock) {
                    GuardFailVerdict::None => {}
                    GuardFailVerdict::Throttle { until, .. } => {
                        assert!(!g.special_allowed(&c, 1, 7, clock));
                        assert!(g.special_allowed(&c, 1, 7, until));
                        untils.push(until - clock);
                        clock = until;
                    }
                    GuardFailVerdict::Blacklist { total_fails } => {
                        blacklisted_at = Some(total_fails);
                        done = true;
                        break;
                    }
                }
            }
            if done {
                break;
            }
        }
        // 3 throttle episodes (8, 16, 24 fails) then blacklist at 32.
        assert_eq!(untils, vec![
            c.backoff_base,
            c.backoff_base << 1,
            c.backoff_base << 2
        ]);
        assert_eq!(blacklisted_at, Some(c.blacklist_threshold));
        assert!(!g.special_allowed(&c, 1, 7, u64::MAX));
        // Other sites are unaffected.
        assert!(g.special_allowed(&c, 1, 8, 0));
        assert!(g.special_allowed(&c, 2, 7, 0));
    }

    #[test]
    fn slow_drip_outside_window_never_throttles() {
        let mut g = Governor::default();
        let c = cfg();
        let mut clock = 0;
        for _ in 0..100 {
            clock += c.storm_window + 1;
            assert_eq!(g.on_guard_fail(&c, 1, 7, clock), GuardFailVerdict::None);
        }
        assert!(g.special_allowed(&c, 1, 7, clock));
    }

    #[test]
    fn fails_inside_backoff_do_not_restart_episode() {
        let mut g = Governor::default();
        let c = cfg();
        for i in 0..c.throttle_threshold as u64 {
            let v = g.on_guard_fail(&c, 1, 7, i);
            if i == (c.throttle_threshold - 1) as u64 {
                assert!(matches!(v, GuardFailVerdict::Throttle { episode: 1, .. }));
            }
        }
        // Residual frames still in special code keep failing during the
        // backoff; they must not start episode 2.
        for i in 0..(c.throttle_threshold * 2) as u64 {
            assert_eq!(
                g.on_guard_fail(&c, 1, 7, 100 + i),
                GuardFailVerdict::None
            );
        }
    }

    #[test]
    fn disabled_governor_is_inert() {
        let mut g = Governor::default();
        let c = GovernorConfig { enabled: false, ..cfg() };
        for i in 0..1000 {
            assert_eq!(g.on_guard_fail(&c, 1, 7, i), GuardFailVerdict::None);
            assert!(g.on_compile_failure(&c, 1, 2, i).is_none());
        }
        assert!(g.special_allowed(&c, 1, 7, 0));
        assert!(g.compile_allowed(&c, 1, 2, 0));
    }

    #[test]
    fn quarantine_after_n_fails_with_backoff_retry() {
        let mut g = Governor::default();
        let c = cfg();
        assert!(g.compile_allowed(&c, 3, 2, 0));
        assert!(g.on_compile_failure(&c, 3, 2, 10).is_none());
        assert!(g.on_compile_failure(&c, 3, 2, 20).is_none());
        let (fails, until) = g.on_compile_failure(&c, 3, 2, 30).expect("3rd fail quarantines");
        assert_eq!(fails, 3);
        assert_eq!(until, 30 + c.backoff_base);
        assert!(!g.compile_allowed(&c, 3, 2, 31));
        assert!(g.compile_allowed(&c, 3, 2, until));
        // Other levels and methods unaffected.
        assert!(g.compile_allowed(&c, 3, 1, 31));
        assert!(g.compile_allowed(&c, 4, 2, 31));
        // Second episode doubles the backoff.
        let t = until + 100;
        g.on_compile_failure(&c, 3, 2, t);
        g.on_compile_failure(&c, 3, 2, t + 1);
        let (fails2, until2) = g.on_compile_failure(&c, 3, 2, t + 2).expect("quarantines again");
        assert_eq!(fails2, 6);
        assert_eq!(until2, t + 2 + (c.backoff_base << 1));
    }
}
