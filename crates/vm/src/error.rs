//! Run-time errors (the VM's model of Java exceptions that the paper's
//! benchmarks never catch: any of these aborts the run).

use std::fmt;

/// A trap raised during execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RunError {
    /// Null receiver or array reference.
    NullPointer,
    /// Array index out of bounds.
    ArrayBounds {
        /// The offending index.
        index: i64,
        /// The array length.
        len: usize,
    },
    /// Integer division or remainder by zero.
    DivideByZero,
    /// `checkcast` failure.
    ClassCast,
    /// Negative array size.
    NegativeArraySize(i64),
    /// The heap cannot satisfy an allocation even after GC.
    OutOfMemory {
        /// Bytes requested.
        requested: usize,
        /// Configured heap size.
        heap: usize,
    },
    /// The program has no entry point.
    NoEntry,
    /// An abstract method was invoked (broken dispatch tables).
    AbstractCall {
        /// Human-readable method name.
        method: String,
    },
    /// A selector could not be dispatched on the receiver's class.
    NoSuchMethod {
        /// Human-readable description.
        what: String,
    },
    /// The evaluator exceeded the configured fuel (instruction budget);
    /// guards tests against infinite loops.
    OutOfFuel,
    /// An `Unreachable` terminator was executed — an optimizer or codegen
    /// bug. Surfaced as a trap (rather than a host panic) so the VM state
    /// stays inspectable post-mortem.
    UnreachableExecuted,
    /// A value had the wrong runtime shape for the operation (a non-object
    /// where an object was required, a primitive where a reference was
    /// required, …). Only a verifier or optimizer bug can produce this;
    /// it traps instead of killing the host so the heap stays inspectable.
    TypeConfusion {
        /// Human-readable description of the confusion.
        what: String,
    },
    /// An internal VM invariant broke (missing frame, malformed deopt
    /// metadata, …). As with [`RunError::TypeConfusion`], this is
    /// surfaced as a trap so the run can be examined post-mortem.
    VmInvariant {
        /// Human-readable description of the broken invariant.
        what: String,
    },
    /// A call would exceed [`crate::state::VmConfig::max_frame_depth`]
    /// (the model of `StackOverflowError`).
    StackOverflow {
        /// Depth the call would have reached.
        depth: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The VM was poisoned by an earlier contained panic
    /// ([`RunError::VmInvariant`]); its heap and code state are suspect,
    /// so further runs refuse to execute.
    Poisoned,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::NullPointer => write!(f, "null pointer dereference"),
            RunError::ArrayBounds { index, len } => {
                write!(f, "array index {index} out of bounds for length {len}")
            }
            RunError::DivideByZero => write!(f, "integer division by zero"),
            RunError::ClassCast => write!(f, "invalid class cast"),
            RunError::NegativeArraySize(n) => write!(f, "negative array size {n}"),
            RunError::OutOfMemory { requested, heap } => {
                write!(f, "out of memory: {requested} bytes requested, heap {heap}")
            }
            RunError::NoEntry => write!(f, "program has no entry point"),
            RunError::AbstractCall { method } => {
                write!(f, "abstract method invoked: {method}")
            }
            RunError::NoSuchMethod { what } => write!(f, "no such method: {what}"),
            RunError::OutOfFuel => write!(f, "execution fuel exhausted"),
            RunError::UnreachableExecuted => {
                write!(f, "unreachable terminator executed (optimizer bug)")
            }
            RunError::TypeConfusion { what } => write!(f, "type confusion: {what}"),
            RunError::VmInvariant { what } => write!(f, "vm invariant violated: {what}"),
            RunError::StackOverflow { depth, limit } => {
                write!(f, "stack overflow: depth {depth} exceeds limit {limit}")
            }
            RunError::Poisoned => {
                write!(f, "vm poisoned by an earlier contained panic; refusing to run")
            }
        }
    }
}

impl std::error::Error for RunError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_specifics() {
        let e = RunError::ArrayBounds { index: -1, len: 4 };
        assert!(format!("{e}").contains("-1"));
        let e = RunError::OutOfMemory {
            requested: 64,
            heap: 1024,
        };
        assert!(format!("{e}").contains("64"));
        let e = RunError::StackOverflow { depth: 65, limit: 64 };
        let text = format!("{e}");
        assert!(text.contains("65") && text.contains("64"));
        assert!(format!("{}", RunError::Poisoned).contains("poisoned"));
    }
}
