//! The VM state: class TIBs, JTOC, compiled-code store, adaptive system
//! bookkeeping, heap plumbing and the public surface the mutation engine
//! drives (special-TIB creation, slot patching, special compilation).

use crate::codecache::{binding_fingerprint, CodeCache, Probe, SharedArtifact, SharedCodeCache};
use crate::compiler;
use crate::error::RunError;
use crate::governor::{Governor, GovernorConfig, GuardFailVerdict};
use crate::heap::Heap;
use crate::hooks::{CompilerHints, Fault, FaultInjector, PatchSpec};
use crate::stats::VmStats;
use crate::tib::{Imt, Tib, TibId, TibKind};
use dchm_bytecode::value::ObjRef;
use dchm_bytecode::{ClassId, FieldId, MethodId, Op, Program, Reg, SelectorId, Value};
use dchm_trace::census::{CensusSnapshot, ClassCensus, ResidencyTracker, TibCensus};
use dchm_trace::profile::Profiler;
use dchm_trace::{FaultKind, TraceEvent, Tracer, NO_ID};
use dchm_ir::cost::{op_cost, CostModel};
use dchm_ir::passes::Bindings;
use dchm_ir::{Function, LiftCache};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Identifies a compiled method in the code store.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompiledId(pub u32);

impl CompiledId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CompiledId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "code{}", self.0)
    }
}

/// A TIB/JTOC method entry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CodeSlot {
    /// Not compiled yet (lazy compilation, kept intact for special TIBs).
    #[default]
    Lazy,
    /// Compiled code.
    Code(CompiledId),
}

/// Sentinel for "this op is not an inline-cache call site".
pub const NO_SITE: u32 = u32::MAX;

/// Pseudo-TIB key for inline-cache entries at receiver-monomorphic sites
/// (`CallSpecial`/`CallStatic`), whose resolution does not depend on the
/// receiver's TIB. No real TIB ever gets this id.
pub const STATIC_SITE_TIB: TibId = TibId(u32::MAX);

/// Per-compiled-method metadata precomputed at compile time for the
/// interpreter fast path:
///
/// * dense call-site numbering — every call op gets a sequential site id
///   (everything else maps to [`NO_SITE`]), indexing this method's
///   inline-cache row in [`VmState::icaches`]. Receiver-polymorphic sites
///   (`CallVirtual`/`CallInterface`) key their entry on the receiver TIB;
///   monomorphic sites (`CallSpecial`/`CallStatic`) use
///   [`STATIC_SITE_TIB`], caching the JTOC/special resolution;
/// * per-block cycle-cost prefix sums — `cost_prefix[block][i]` is the
///   summed [`op_cost`] of ops `0..i`, so the evaluator charges a whole
///   straight-line segment with one subtraction instead of a per-op cost
///   lookup, while traps mid-block still charge the exact prefix.
#[derive(Debug)]
pub struct CodeMeta {
    /// `sites[block][op]` -> site id or [`NO_SITE`].
    sites: Vec<Vec<u32>>,
    /// `cost_prefix[block]` has `ops.len() + 1` entries.
    cost_prefix: Vec<Vec<u64>>,
    /// Number of inline-cache sites (length of the cache row).
    pub num_sites: u32,
}

impl CodeMeta {
    /// Builds the metadata for `func`.
    pub fn build(func: &Function) -> Self {
        let mut next = 0u32;
        let mut sites = Vec::with_capacity(func.blocks.len());
        let mut cost_prefix = Vec::with_capacity(func.blocks.len());
        for b in &func.blocks {
            let mut row = Vec::with_capacity(b.ops.len());
            let mut prefix = Vec::with_capacity(b.ops.len() + 1);
            let mut sum = 0u64;
            prefix.push(0);
            for op in &b.ops {
                row.push(match op {
                    Op::CallVirtual { .. }
                    | Op::CallInterface { .. }
                    | Op::CallSpecial { .. }
                    | Op::CallStatic { .. } => {
                        let s = next;
                        next += 1;
                        s
                    }
                    _ => NO_SITE,
                });
                sum += op_cost(op);
                prefix.push(sum);
            }
            sites.push(row);
            cost_prefix.push(prefix);
        }
        CodeMeta {
            sites,
            cost_prefix,
            num_sites: next,
        }
    }

    /// The site id at `(block, op)`, or [`NO_SITE`].
    #[inline]
    pub fn site(&self, block: usize, op: usize) -> u32 {
        self.sites[block][op]
    }

    /// The cost prefix sums of `block` (`ops.len() + 1` entries).
    #[inline]
    pub fn prefix(&self, block: usize) -> &[u64] {
        &self.cost_prefix[block]
    }
}

/// One monomorphic inline-cache entry: the last dispatch outcome observed
/// at a call site, keyed by the receiver's TIB. `version` ties the entry to
/// the global [`VmState::ic_version`]; any TIB/JTOC patch bumps the version
/// and implicitly empties every cache in O(1).
#[derive(Clone, Copy, Debug)]
pub struct IcEntry {
    /// `ic_version` at fill time; a stale version means the entry is empty.
    version: u64,
    /// The receiver TIB this entry was filled for.
    tib: u32,
    /// Cached dispatch target method.
    method: MethodId,
    /// Cached dispatch target code.
    cid: CompiledId,
    /// Deterministic extra dispatch cycles to charge on a hit (IMT conflict
    /// search + mutable-class TIB-offset load for interface sites; 0 for
    /// virtual sites). Pure function of `(tib, selector)`, so cacheable.
    extra: u64,
}

impl IcEntry {
    /// A never-filled entry (version 0 predates every `ic_version`).
    pub const EMPTY: IcEntry = IcEntry {
        version: 0,
        tib: 0,
        method: MethodId(0),
        cid: CompiledId(0),
        extra: 0,
    };
}

/// One compiled method: the unit the optimizing compiler produces.
#[derive(Clone, Debug)]
pub struct CompiledMethod {
    /// The bytecode method this code implements. Special versions share the
    /// id with the general version, so sampling information is shared
    /// (paper Sec. 3.2.3).
    pub method: MethodId,
    /// Optimization level it was compiled at.
    pub level: u8,
    /// True for state-specialized (mutation) versions.
    pub special: bool,
    /// The executable IR. `Arc` (not `Rc`): the allocation may be shared
    /// with other tenant VMs through the fleet's [`SharedCodeCache`].
    pub func: Arc<Function>,
    /// Fast-path metadata (inline-cache site numbering, cost prefix sums).
    pub meta: Arc<CodeMeta>,
    /// Modeled machine-code size in bytes.
    pub size_bytes: usize,
    /// Canonical fingerprint of the state bindings this code was compiled
    /// under ([`binding_fingerprint`]; the `None` fingerprint for general
    /// code). Keys the resilience governor's per-(method, state) storm
    /// counters.
    pub binding_fp: u64,
    /// Governor verdict cache: this code may not be (re)installed before
    /// this modeled cycle (`u64::MAX` = blacklisted). Written only when a
    /// throttle/blacklist verdict lands, so the hot flip-in path checks a
    /// plain clock compare instead of probing the governor's site table.
    pub blocked_until: u64,
    /// Deopt side table: present only on guarded specialized versions,
    /// mapping each planted guard id to the baseline resume point.
    pub deopt: Option<Arc<compiler::DeoptInfo>>,
}

/// VM configuration.
#[derive(Clone, Debug)]
pub struct VmConfig {
    /// Heap capacity in bytes (paper: 50 MB default, 128 MB for JBB2000,
    /// 384 MB for JBB2005).
    pub heap_bytes: usize,
    /// Level methods are first compiled at (paper experiments: opt0 by the
    /// optimizing compiler).
    pub initial_level: u8,
    /// Samples before promotion to opt1.
    pub opt1_samples: u64,
    /// Samples before promotion to opt2 (the mutation level).
    pub opt2_samples: u64,
    /// Cycles between adaptive-system samples.
    pub sample_period: u64,
    /// Enable the inliner at opt1+.
    pub enable_inlining: bool,
    /// Maximum callee IR size (ops) eligible for inlining.
    pub max_inline_size: usize,
    /// Maximum inlining rounds (call-chain depth).
    pub max_inline_depth: usize,
    /// Abort after this many executed ops (`None` = unlimited). A test
    /// guard, not a semantic limit.
    pub fuel: Option<u64>,
    /// Methods whose hotness detection is accelerated: immediately after
    /// their opt0 code is generated, opt1 and opt2 code is generated too
    /// (paper Figure 14).
    pub accelerated_methods: HashSet<MethodId>,
    /// Capacity (entries) of the state-keyed compiled-code cache; 0
    /// disables caching. A hit reinstalls previously produced code and
    /// re-bills its stored compile cycles — identical to what recompiling
    /// would bill, since the compiler is deterministic — so modeled
    /// observables are the same at any capacity; only host-side compile
    /// wall time changes.
    pub code_cache_capacity: usize,
    /// Resilience-governor thresholds (deopt-storm throttling, compile
    /// quarantine). Read per decision, so it can be toggled after VM
    /// construction.
    pub governor: GovernorConfig,
    /// Maximum activation-stack depth; a call that would exceed it traps
    /// with [`RunError::StackOverflow`]. `None` disables the check. The
    /// check is host-side only (no modeled cycles), so any limit the
    /// program stays under is cycle-transparent.
    pub max_frame_depth: Option<usize>,
    /// Cycles between cycle-attribution profiler samples (0 disables).
    /// Samples fire when the modeled clock crosses each multiple of the
    /// period — deterministic, no jitter — and are 0-cycle host-side
    /// observations: any period leaves output and the modeled clock
    /// bit-identical (see `dchm_trace::profile`).
    pub profile_period: u64,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            heap_bytes: 50 << 20,
            initial_level: 0,
            opt1_samples: 3,
            opt2_samples: 8,
            sample_period: 120_000,
            enable_inlining: true,
            max_inline_size: 36,
            max_inline_depth: 2,
            fuel: None,
            accelerated_methods: HashSet::new(),
            code_cache_capacity: 1024,
            governor: GovernorConfig::default(),
            max_frame_depth: Some(1 << 20),
            profile_period: 10_000,
        }
    }
}

/// One activation record — plain `Copy` data, so frame pushes and pops are
/// raw memcpys with no refcount or drop traffic. Registers live in the
/// shared [`VmState::reg_stack`] pool: this frame owns the contiguous
/// window starting at `base` (its code's `num_regs` slots), pushed on call
/// and truncated on return, so activation needs no per-call heap
/// allocation.
#[derive(Clone, Copy, Debug)]
pub struct Frame {
    /// Method whose code is executing (general or special share this).
    pub method: MethodId,
    /// Id of the executing code in the append-only [`VmState::code`] store.
    /// Pins the exact code version (frames keep old code across
    /// recompilation; no on-stack replacement, as in the paper) and keys
    /// the inline-cache row.
    pub cid: CompiledId,
    /// First register slot of this frame's window in the pooled stack.
    pub base: usize,
    /// Current block index. Kept current only at call boundaries: while a
    /// frame is topmost the interpreter runs on a local cursor and writes
    /// it back when pushing a callee frame, trapping, or running out of
    /// fuel.
    pub block: u32,
    /// Next op index within the block (same caveat as `block`).
    pub op: u32,
    /// Caller register receiving the return value.
    pub ret_dst: Option<Reg>,
}

/// Program output: a text log plus a checksum accumulator (used by tests to
/// prove mutation preserves observable behaviour).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Output {
    /// Printed text.
    pub text: String,
    /// Order-sensitive checksum of all sunk values.
    pub checksum: u64,
}

impl Output {
    /// Folds an integer into the checksum.
    #[inline]
    pub fn sink_int(&mut self, v: i64) {
        self.checksum = self
            .checksum
            .wrapping_mul(0x100000001b3)
            .wrapping_add(v as u64);
    }

    /// Folds a double's bit pattern into the checksum.
    #[inline]
    pub fn sink_double(&mut self, v: f64) {
        self.sink_int(v.to_bits() as i64);
    }
}

/// The complete mutable machine state. The interpreter ([`crate::Vm`])
/// drives it; the mutation engine manipulates it through the `pub` methods
/// below (special TIBs, slot patching, special compilation).
pub struct VmState {
    /// The immutable linked program.
    pub program: Rc<Program>,
    /// Configuration.
    pub config: VmConfig,
    /// The object heap.
    pub heap: Heap,
    /// Static field area (part of the JTOC).
    pub statics: Vec<Value>,
    /// All TIBs; class TIBs first, special TIBs appended by the engine.
    pub tibs: Vec<Tib>,
    /// IMTs, one per class (shared with that class's special TIBs).
    pub imts: Vec<Imt>,
    /// Class TIB of each class.
    pub class_tibs: Vec<TibId>,
    /// Compiled-code store (code is never freed; Jikes' code is immortal).
    pub code: Vec<CompiledMethod>,
    /// The one valid *general* compiled method per method (JTOC slot for
    /// statically-dispatched methods).
    pub general_code: Vec<Option<CompiledId>>,
    /// Mutation-engine override for statically-bound dispatch (static
    /// methods and `invokespecial` targets of classes whose state depends
    /// only on static fields). Models the paper's JTOC / class-TIB patching
    /// for statically-bound code.
    pub static_override: Vec<Option<CompiledId>>,
    /// Patch points the compiler instruments.
    pub patch_spec: PatchSpec,
    /// Compile-time hints from the mutation engine (OLC, Sec. 5 heuristic).
    pub hints: CompilerHints,
    /// Classes marked mutable by the engine; their interface dispatch pays
    /// the extra TIB-offset load (Sec. 3.2.3).
    pub mutable_classes: HashSet<ClassId>,
    /// Statistics.
    pub stats: VmStats,
    /// Modeled cycle clock (execution + compilation + GC).
    pub clock: u64,
    /// Next sample tick.
    pub next_sample_at: u64,
    /// Next profiler tick (`u64::MAX` when profiling is off). Unlike
    /// `next_sample_at` this steps in exact period multiples: the
    /// schedule is a pure function of the clock trajectory, so repeated
    /// runs produce byte-identical profiles.
    pub next_profile_at: u64,
    /// Cycle-attribution profiler accumulator (host-side only).
    pub profiler: Profiler,
    /// TIB-flip residency tracker feeding the census. Updated at every
    /// flip regardless of tracing, so census shape never depends on
    /// whether a tracer is attached.
    pub residency: ResidencyTracker,
    /// Activation stack.
    pub frames: Vec<Frame>,
    /// Pooled register stack: every frame's register window is a contiguous
    /// slice of this vector (see [`Frame`]). Host re-entry simply allocates
    /// past the current top, so no free list is needed.
    pub reg_stack: Vec<Value>,
    /// Per-compiled-method inline-cache rows, parallel to `code`; indexed
    /// by the call-site ids in [`CompiledMethod::sites`].
    pub(crate) icaches: Vec<Vec<IcEntry>>,
    /// Global inline-cache generation. Bumped by every TIB/JTOC patch,
    /// code install and mutable-class marking; entries with an older
    /// version are treated as empty.
    pub(crate) ic_version: u64,
    /// Flattened `class x selector -> vtable slot` table
    /// (`[class * num_selectors + selector]`, [`NO_SITE`] = absent);
    /// replaces the per-class hash lookup on the dispatch miss path.
    vslot_dense: Vec<u32>,
    /// Selector count (row stride of `vslot_dense`).
    num_selectors: usize,
    /// Dense `field -> slot` table (see [`Self::field_slot`]).
    field_slots: Vec<u32>,
    /// Program output.
    pub output: Output,
    /// Extra GC roots registered by the host.
    pub handles: Vec<ObjRef>,
    /// Events for the interpreter to forward to the mutation handler:
    /// `(method, level)` of freshly installed general code.
    pub(crate) recompile_events: Vec<(MethodId, u8)>,
    /// Cache for `invokespecial` resolution.
    special_resolution: HashMap<(u32, u32), MethodId>,
    /// Selector -> the unique concrete implementation, when there is
    /// exactly one program-wide (CHA devirtualization).
    pub(crate) unique_impl: HashMap<SelectorId, MethodId>,
    /// Per-class field-initialization templates.
    field_templates: Vec<Vec<Value>>,
    /// Deterministic fault injector (robustness testing); `None` in normal
    /// runs.
    pub injector: Option<FaultInjector>,
    /// Structured event tracing (off by default). Emission sites stamp
    /// events with the modeled clock but never charge it, so tracing on vs.
    /// off leaves modeled cycles and output bit-identical.
    pub tracer: Tracer,
    /// Per-method cache of the baseline (level-0, unspecialized) code a
    /// deoptimizing frame resumes in. Compiled on the first deopt of each
    /// method, reused afterwards.
    deopt_baseline: Vec<Option<CompiledId>>,
    /// State-keyed compiled-code cache (see [`crate::codecache`] for the
    /// determinism contract).
    pub code_cache: CodeCache,
    /// Memoized baseline lifts: one lift + instrumentation per method,
    /// shared by the general version and every state specialization, and
    /// hash-consed across structurally identical methods.
    pub lift_cache: LiftCache,
    /// Host wall-clock nanoseconds spent inside the compiler pipeline.
    /// *Not* modeled time — benchmarks read it to measure what the code
    /// cache and batched compilation actually save on the host. Strictly
    /// zero when every compile request of a run was answered by a cache.
    pub compile_wall_nanos: u64,
    /// Fleet-wide shared artifact cache; `None` outside a fleet. Probed by
    /// every compile path after the local [`CodeCache`], purely host-side:
    /// a hit skips the compiler pipeline but bills, installs and traces
    /// exactly as a local compile would.
    shared_cache: Option<Arc<SharedCodeCache>>,
    /// FNV fingerprint of the program text, computed when a shared cache is
    /// attached; folded with the compiler-environment fingerprint into the
    /// shared cache's scope key so distinct tenants never collide.
    program_fp: u64,
    /// Shared-cache probes this VM had answered with an artifact. Host-side
    /// counter — deliberately *not* a [`VmStats`] field, which must stay
    /// bit-identical between a shard and its solo twin.
    pub shared_hits: u64,
    /// Shared-cache probes this VM saw fall through to its own compiler.
    pub shared_misses: u64,
    /// Resilience-governor state (storm sites, compile quarantines). Pure
    /// host-side bookkeeping; see [`crate::governor`].
    pub governor: Governor,
    /// Set when a contained panic left the VM state suspect; further runs
    /// return [`RunError::Poisoned`] instead of executing.
    pub poisoned: bool,
}

/// One deferred compilation request for [`VmState::compile_batch`].
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// Method to compile.
    pub method: MethodId,
    /// Optimization level.
    pub level: u8,
    /// State bindings for a special version; `None` requests general code.
    pub bindings: Option<Bindings>,
}

impl VmState {
    /// Builds the state: class TIBs, IMTs, static area, CHA tables.
    pub fn new(program: Program, config: VmConfig) -> Self {
        let program = Rc::new(program);
        let nclasses = program.classes.len();
        let nmethods = program.methods.len();

        // Static field area.
        let mut statics = vec![Value::Int(0); program.num_static_slots as usize];
        for f in &program.fields {
            if f.is_static {
                statics[f.slot as usize] = f.initial;
            }
        }

        // IMTs and class TIBs.
        let mut imts = Vec::with_capacity(nclasses);
        let mut tibs = Vec::with_capacity(nclasses);
        let mut class_tibs = Vec::with_capacity(nclasses);
        let mut stats = VmStats::new(nmethods);
        for (ci, c) in program.classes.iter().enumerate() {
            let mut imt = Imt::default();
            // Interface selectors reachable on this class resolve to vslots.
            let mut cur = Some(ClassId::from_index(ci));
            let mut seen = HashSet::new();
            while let Some(cc) = cur {
                for &iface in &program.class(cc).interfaces {
                    collect_iface_sels(&program, iface, &mut seen);
                }
                cur = program.class(cc).super_class;
            }
            for sel in seen {
                if let Some(vslot) = c.vtable_slot(sel) {
                    imt.add(sel, vslot);
                }
            }
            imts.push(imt);
            let tib = Tib {
                class: ClassId::from_index(ci),
                kind: TibKind::Class,
                methods: vec![CodeSlot::Lazy; c.vtable.len()],
                imt: ci as u32,
            };
            stats.class_tib_bytes += tib.bytes() as u64;
            class_tibs.push(TibId(ci as u32));
            tibs.push(tib);
        }

        // CHA: selectors with a unique concrete implementation.
        let mut impl_count: HashMap<SelectorId, Vec<MethodId>> = HashMap::new();
        for (mi, m) in program.methods.iter().enumerate() {
            if m.is_virtual() {
                impl_count
                    .entry(m.selector)
                    .or_default()
                    .push(MethodId::from_index(mi));
            }
        }
        let unique_impl = impl_count
            .into_iter()
            .filter_map(|(s, v)| (v.len() == 1).then(|| (s, v[0])))
            .collect();

        // Dense class x selector -> vslot dispatch table.
        let num_selectors = program.selectors.len();
        let mut vslot_dense = vec![NO_SITE; nclasses * num_selectors];
        for (ci, c) in program.classes.iter().enumerate() {
            for si in 0..num_selectors {
                if let Some(v) = c.vtable_slot(SelectorId(si as u32)) {
                    vslot_dense[ci * num_selectors + si] = v;
                }
            }
        }

        // Dense field -> object/static slot table: the interpreter's
        // field-access fast path skips the full `FieldDef` (whose `String`
        // name would drag a cold cache line into the loop).
        let field_slots = program.fields.iter().map(|f| f.slot).collect();

        // Per-class zero-value field templates.
        let field_templates = (0..nclasses)
            .map(|ci| {
                program.classes[ci]
                    .all_instance_fields
                    .iter()
                    .map(|&f| program.field(f).ty.default_value())
                    .collect()
            })
            .collect();

        let sample_period = config.sample_period;
        let profile_period = config.profile_period;
        let code_cache = CodeCache::new(config.code_cache_capacity);
        VmState {
            program,
            heap: Heap::new(config.heap_bytes),
            config,
            statics,
            tibs,
            imts,
            class_tibs,
            code: Vec::new(),
            general_code: vec![None; nmethods],
            static_override: vec![None; nmethods],
            patch_spec: PatchSpec::default(),
            hints: CompilerHints::default(),
            mutable_classes: HashSet::new(),
            stats,
            clock: 0,
            next_sample_at: sample_period,
            next_profile_at: if profile_period == 0 { u64::MAX } else { profile_period },
            profiler: Profiler::new(profile_period),
            residency: ResidencyTracker::default(),
            frames: Vec::new(),
            reg_stack: Vec::new(),
            icaches: Vec::new(),
            ic_version: 1,
            vslot_dense,
            num_selectors,
            field_slots,
            output: Output::default(),
            handles: Vec::new(),
            recompile_events: Vec::new(),
            special_resolution: HashMap::new(),
            unique_impl,
            field_templates,
            injector: None,
            tracer: Tracer::default(),
            deopt_baseline: vec![None; nmethods],
            code_cache,
            lift_cache: LiftCache::new(),
            compile_wall_nanos: 0,
            shared_cache: None,
            program_fp: 0,
            shared_hits: 0,
            shared_misses: 0,
            governor: Governor::default(),
            poisoned: false,
        }
    }

    /// Attaches the fleet-wide shared artifact cache. Attach right after
    /// engine attach (before the first run): attaching later is safe but
    /// forfeits sharing of compiles that already happened. Fingerprints the
    /// full program text once; together with the per-request compiler
    /// environment fingerprint that scopes every shared key, so only
    /// tenants whose compiles are bit-identical by construction — same
    /// program, same plan/hints/inlining — ever share an entry.
    pub fn attach_shared_cache(&mut self, cache: Arc<SharedCodeCache>) {
        let mut h = compiler::Fnv::new();
        for chunk in format!("{:?}", self.program).as_bytes().chunks(8) {
            let mut v = [0u8; 8];
            v[..chunk.len()].copy_from_slice(chunk);
            h.mix_u64(u64::from_le_bytes(v));
        }
        self.program_fp = h.finish();
        self.shared_cache = Some(cache);
    }

    /// The shared cache attached to this VM, if any.
    pub fn shared_cache(&self) -> Option<&Arc<SharedCodeCache>> {
        self.shared_cache.as_ref()
    }

    /// The compiled method behind an id.
    ///
    /// # Panics
    /// Panics if `cid` is out of range.
    #[inline]
    pub fn compiled(&self, cid: CompiledId) -> &CompiledMethod {
        &self.code[cid.index()]
    }

    /// Current optimization level of the valid general code for `mid`.
    pub fn level_of(&self, mid: MethodId) -> Option<u8> {
        self.general_code[mid.index()].map(|c| self.compiled(c).level)
    }

    // ---------------------------------------------------------------
    // Compilation & installation
    // ---------------------------------------------------------------

    /// Ensures `mid` has general compiled code; compiles lazily at the
    /// initial level. For accelerated methods (Fig. 14), opt1 and opt2 are
    /// generated immediately after opt0.
    pub fn ensure_compiled(&mut self, mid: MethodId) -> CompiledId {
        if let Some(cid) = self.general_code[mid.index()] {
            return cid;
        }
        let cid = self.recompile(mid, self.config.initial_level);
        if self.config.accelerated_methods.contains(&mid) {
            self.recompile(mid, 1);
            return self.recompile(mid, 2);
        }
        cid
    }

    /// Compiles general code for `mid` at `level`, installs it into the
    /// JTOC/class TIBs and subclass TIBs, and queues the recompilation
    /// event for the mutation handler. A compile failure (injected or
    /// quarantined) is not fatal: the method tiers down — see
    /// [`Self::tier_down`].
    pub fn recompile(&mut self, mid: MethodId, level: u8) -> CompiledId {
        match self.compile_internal(mid, level, None) {
            Some(cid) => {
                self.finish_recompile(mid, level, cid);
                cid
            }
            None => self.tier_down(mid),
        }
    }

    /// Fallback after a failed general compile: keep running the current
    /// general code when one exists (a failed *promotion* changes nothing),
    /// else compile the always-succeeding level-0 baseline so the method
    /// has code at all.
    fn tier_down(&mut self, mid: MethodId) -> CompiledId {
        if let Some(cur) = self.general_code[mid.index()] {
            return cur;
        }
        let cid = self
            .compile_internal(mid, 0, None)
            .expect("level-0 compiles never fail");
        self.finish_recompile(mid, 0, cid);
        cid
    }

    /// The install/bookkeeping tail of [`Self::recompile`]: JTOC/TIB
    /// install, profile update, recompilation event, trace stamp. Shared by
    /// the serial and batched recompilation paths so both interleave
    /// billing and installation identically.
    fn finish_recompile(&mut self, mid: MethodId, level: u8, cid: CompiledId) {
        self.install_general(mid, cid);
        let p = &mut self.stats.per_method[mid.index()];
        if p.level.is_some() {
            p.recompiles += 1;
        }
        p.level = Some(level);
        self.recompile_events.push((mid, level));
        if self.tracer.on() {
            let size = self.compiled(cid).size_bytes as u32;
            self.tracer.emit(
                self.clock,
                TraceEvent::Recompile {
                    method: mid.0,
                    code: cid.0,
                    level: level as u32,
                    size_bytes: size,
                },
            );
        }
    }

    /// Compiles a *special* (state-specialized) version of `mid` at `level`
    /// under `bindings`. The caller (mutation engine) installs it where it
    /// belongs. Counts toward special code size and compile time. `None`
    /// when the compile failed or the pair is quarantined — the caller
    /// keeps using general code.
    pub fn compile_special(
        &mut self,
        mid: MethodId,
        level: u8,
        bindings: &Bindings,
    ) -> Option<CompiledId> {
        self.compile_internal(mid, level, Some(bindings))
    }

    /// True when `(method, level)` is fallible at all: level-0 baseline
    /// compiles are exempt from injection and quarantine so a tier-down
    /// target always exists.
    fn compile_fallible(level: u8, special: bool) -> bool {
        level >= 1 || special
    }

    fn compile_internal(
        &mut self,
        mid: MethodId,
        level: u8,
        bindings: Option<&Bindings>,
    ) -> Option<CompiledId> {
        let special = bindings.is_some();
        if Self::compile_fallible(level, special) {
            if !self.compile_allowed(mid, level) {
                return None;
            }
            // The failure draw happens *before* the cache probe so the draw
            // sequence is one-per-attempt regardless of cache contents —
            // the cache's capacity-transparency contract survives.
            if self.injector.as_mut().is_some_and(FaultInjector::at_compile) {
                self.record_compile_failure(mid, level);
                return None;
            }
        }
        let env_fp = compiler::CompileEnv::of(self).fingerprint();
        let binding_fp = binding_fingerprint(bindings);
        match self.code_cache.probe(mid.0, level, binding_fp, env_fp) {
            Probe::Hit {
                cid,
                compile_cycles,
            } => {
                self.stats.code_cache_hits += 1;
                self.replay_cached(mid, level, special, cid, compile_cycles);
                return Some(cid);
            }
            Probe::Miss { invalidated } => {
                if invalidated {
                    self.stats.code_cache_invalidations += 1;
                }
                self.stats.code_cache_misses += 1;
            }
            Probe::Disabled => {}
        }
        let a = self.produce_artifact(mid, level, bindings, binding_fp, env_fp);
        let cost = a.compile_cycles;
        let cid = self.install_artifact(mid, level, special, binding_fp, a);
        self.cache_insert((mid.0, level, binding_fp), env_fp, cid, cost, false);
        Some(cid)
    }

    /// Bookkeeping for one failed compile: stats, trace, governor update
    /// and — at the quarantine threshold — dropping any cached versions of
    /// the pair so they cannot be served as stale hits. Nothing is billed:
    /// a failed compile produced no code and charges no modeled cycles.
    fn record_compile_failure(&mut self, mid: MethodId, level: u8) {
        self.stats.compile_failures += 1;
        if self.tracer.on() {
            self.tracer.emit(
                self.clock,
                TraceEvent::FaultInjected { kind: FaultKind::CompileFail, method: mid.0 },
            );
        }
        let gcfg = self.config.governor;
        if let Some((fails, until)) = self.governor.on_compile_failure(&gcfg, mid.0, level, self.clock)
        {
            self.stats.compile_quarantines += 1;
            self.code_cache.invalidate_method(mid.0, level);
            if self.tracer.on() {
                self.tracer.emit(
                    self.clock,
                    TraceEvent::CompileQuarantine {
                        method: mid.0,
                        level: level as u32,
                        fails,
                        until_cycle: until,
                    },
                );
            }
        }
    }

    /// True when the governor permits compiling `(mid, level)` right now.
    pub fn compile_allowed(&self, mid: MethodId, level: u8) -> bool {
        self.governor
            .compile_allowed(&self.config.governor, mid.0, level, self.clock)
    }

    /// Runs the compiler pipeline for one request, sharing the memoized
    /// baseline lift. Pure host work: bills nothing, installs nothing.
    fn run_compiler(
        &mut self,
        mid: MethodId,
        level: u8,
        bindings: Option<&Bindings>,
        env_fp: u64,
    ) -> compiler::CompileOutcome {
        let baseline = self.baseline_for(mid, env_fp);
        let env = compiler::CompileEnv::of(self);
        compiler::compile_in(&env, &baseline, mid, level, bindings)
    }

    /// Produces the artifact for one compile request: probes the fleet's
    /// shared cache when one is attached (compilation is deterministic, so
    /// the artifact another tenant published is bit for bit what this
    /// compiler would produce), otherwise runs the pipeline and publishes
    /// the result for the other tenants. Only the pipeline itself is
    /// wall-timed: a request answered by the shared cache adds exactly zero
    /// to [`Self::compile_wall_nanos`]. Pure host work — bills nothing,
    /// installs nothing, touches no modeled observable.
    fn produce_artifact(
        &mut self,
        mid: MethodId,
        level: u8,
        bindings: Option<&Bindings>,
        binding_fp: u64,
        env_fp: u64,
    ) -> SharedArtifact {
        let scope = SharedCodeCache::scope_of(self.program_fp, env_fp);
        if let Some(sc) = &self.shared_cache {
            if let Some(a) = sc.probe(scope, mid.0, level, binding_fp) {
                self.shared_hits += 1;
                return a;
            }
            self.shared_misses += 1;
        }
        let t0 = Instant::now();
        let outcome = self.run_compiler(mid, level, bindings, env_fp);
        self.compile_wall_nanos += t0.elapsed().as_nanos() as u64;
        // Metadata derivation stays outside the wall timer, exactly as the
        // pre-fleet `push_code` built it after the timed pipeline returned.
        let a = Self::artifact_of(outcome);
        if let Some(sc) = &self.shared_cache {
            sc.insert(scope, mid.0, level, binding_fp, a.clone());
        }
        a
    }

    /// Wraps a raw compiler outcome into the Arc'd shareable form.
    fn artifact_of(outcome: compiler::CompileOutcome) -> SharedArtifact {
        let func = Arc::new(outcome.func);
        let meta = Arc::new(CodeMeta::build(&func));
        SharedArtifact {
            func,
            meta,
            size_bytes: outcome.size_bytes,
            compile_cycles: outcome.compile_cycles,
            deopt: outcome.deopt.map(Arc::new),
        }
    }

    /// The memoized baseline (lifted + instrumented) IR of `mid`, computed
    /// at most once per method and compiler environment. With a shared
    /// cache attached the lift itself is fetched from (or published to) the
    /// fleet's baseline map, and the local `LiftCache` still hash-conses
    /// whatever comes back.
    fn baseline_for(&mut self, mid: MethodId, env_fp: u64) -> Arc<Function> {
        let scope = SharedCodeCache::scope_of(self.program_fp, env_fp);
        // Split borrows: the lift cache is mutated while the compile
        // environment borrows the rest of the state.
        let VmState {
            ref program,
            ref patch_spec,
            ref hints,
            ref unique_impl,
            ref config,
            ref mut lift_cache,
            ref shared_cache,
            ..
        } = *self;
        let env = compiler::CompileEnv {
            program,
            patch_spec,
            hints,
            unique_impl,
            enable_inlining: config.enable_inlining,
            max_inline_size: config.max_inline_size,
            max_inline_depth: config.max_inline_depth,
        };
        match shared_cache {
            Some(sc) => lift_cache.get_or_adopt(mid.0, env_fp, || match sc.baseline(scope, mid.0) {
                Some(f) => f,
                None => {
                    let f = Arc::new(compiler::lift_baseline(&env, mid));
                    sc.publish_baseline(scope, mid.0, Arc::clone(&f));
                    f
                }
            }),
            None => lift_cache.get_or_lift(mid.0, env_fp, || compiler::lift_baseline(&env, mid)),
        }
    }

    /// Bills one compilation: modeled clock plus the compile statistics,
    /// in exactly the order the pre-cache compiler used.
    fn bill_compile(&mut self, special: bool, level: u8, size: usize, cost: u64) {
        self.clock += cost;
        self.stats.compile_cycles += cost;
        if special {
            self.stats.special_compile_cycles += cost;
            self.stats.special_compiles += 1;
            self.stats.special_code_bytes += size as u64;
        } else {
            let l = level.min(2) as usize;
            self.stats.compiles_by_level[l] += 1;
            self.stats.code_bytes_by_level[l] += size as u64;
        }
    }

    /// Appends a compiled artifact (and its inline-cache row) to the code
    /// store. No billing, no trace. The artifact's `Arc`s are adopted as-is
    /// — for a shared-cache hit that means zero copies of the function body
    /// or its metadata; the per-VM inline-cache row and governor verdict
    /// cache (`blocked_until`) stay private to this tenant.
    fn push_artifact(
        &mut self,
        mid: MethodId,
        level: u8,
        special: bool,
        binding_fp: u64,
        a: SharedArtifact,
    ) -> CompiledId {
        let cid = CompiledId(self.code.len() as u32);
        self.icaches
            .push(vec![IcEntry::EMPTY; a.meta.num_sites as usize]);
        self.code.push(CompiledMethod {
            method: mid,
            level,
            special,
            func: a.func,
            meta: a.meta,
            size_bytes: a.size_bytes,
            binding_fp,
            blocked_until: 0,
            deopt: a.deopt,
        });
        cid
    }

    /// Bills, stores and trace-stamps a produced artifact — the cache-miss
    /// tail of [`Self::compile_internal`].
    fn install_artifact(
        &mut self,
        mid: MethodId,
        level: u8,
        special: bool,
        binding_fp: u64,
        a: SharedArtifact,
    ) -> CompiledId {
        let size = a.size_bytes;
        let cost = a.compile_cycles;
        self.bill_compile(special, level, size, cost);
        let cid = self.push_artifact(mid, level, special, binding_fp, a);
        if special && self.tracer.on() {
            self.tracer.emit(
                self.clock,
                TraceEvent::SpecialCompile {
                    method: mid.0,
                    code: cid.0,
                    level: level as u32,
                    size_bytes: size as u32,
                },
            );
        }
        cid
    }

    /// The cache-hit tail of [`Self::compile_internal`]: bills the stored
    /// compile cycles (the compiler is deterministic, so this is exactly
    /// what recompiling would bill) and replays the trace stamps a fresh
    /// compile would emit, plus the `CodeCacheHit` marker. No new code is
    /// stored — the cached [`CompiledId`] is reused.
    fn replay_cached(
        &mut self,
        mid: MethodId,
        level: u8,
        special: bool,
        cid: CompiledId,
        cost: u64,
    ) {
        let size = self.compiled(cid).size_bytes;
        self.bill_compile(special, level, size, cost);
        if self.tracer.on() {
            self.tracer.emit(
                self.clock,
                TraceEvent::CodeCacheHit {
                    method: mid.0,
                    code: cid.0,
                    level: level as u32,
                    special,
                },
            );
            if special {
                self.tracer.emit(
                    self.clock,
                    TraceEvent::SpecialCompile {
                        method: mid.0,
                        code: cid.0,
                        level: level as u32,
                        size_bytes: size as u32,
                    },
                );
            }
        }
    }

    /// Records a compilation in the code cache; an eviction is counted and
    /// trace-stamped unless the insert came from the silent (fault-injected)
    /// path, which must not touch any statistic.
    fn cache_insert(
        &mut self,
        key: (u32, u8, u64),
        env_fp: u64,
        cid: CompiledId,
        cost: u64,
        silent: bool,
    ) {
        let (method, level, binding_fp) = key;
        let evicted = self
            .code_cache
            .insert(method, level, binding_fp, env_fp, cid, cost);
        if let Some(ev) = evicted {
            if !silent {
                self.stats.code_cache_evictions += 1;
                if self.tracer.on() {
                    self.tracer.emit(
                        self.clock,
                        TraceEvent::CodeCacheEvict {
                            method: ev.method,
                            code: ev.cid.0,
                            level: ev.level as u32,
                        },
                    );
                }
            }
        }
    }

    /// Compiles a batch of requests, coalescing duplicates through the code
    /// cache and running the compiler pipelines of the remaining jobs on
    /// worker threads. Billing, statistics, installation and trace stamps
    /// happen serially in request order, so every modeled observable is
    /// bit-identical to issuing the requests one by one; only host wall
    /// time changes. Returns one result per request, in order; `None`
    /// marks a failed or quarantined compile (the caller keeps whatever
    /// code it had).
    pub fn compile_batch(&mut self, reqs: Vec<CompileRequest>) -> Vec<Option<CompiledId>> {
        self.compile_batch_impl(reqs, false)
    }

    /// Batched [`Self::recompile`]: compiles every `(method, level)` pair
    /// (pipelines parallelized on worker threads), then installs and
    /// bills serially in request order — the same interleaving the serial
    /// recompile loop produces. Failed compiles tier down like
    /// [`Self::recompile`], so every request yields code.
    pub fn recompile_batch(&mut self, reqs: &[(MethodId, u8)]) -> Vec<CompiledId> {
        let reqs = reqs
            .iter()
            .map(|&(method, level)| CompileRequest {
                method,
                level,
                bindings: None,
            })
            .collect();
        self.compile_batch_impl(reqs, true)
            .into_iter()
            .map(|c| c.expect("recompile batch tiers down on failure"))
            .collect()
    }

    fn compile_batch_impl(
        &mut self,
        reqs: Vec<CompileRequest>,
        install: bool,
    ) -> Vec<Option<CompiledId>> {
        /// Phase-A resolution of one request.
        enum Slot {
            /// Cached: replay in phase C.
            Hit { cid: CompiledId, cost: u64 },
            /// Compile job `job`; `use_cache` is false when the cache is
            /// disabled (no counters, no insert).
            Job {
                job: usize,
                binding_fp: u64,
                invalidated: bool,
                use_cache: bool,
            },
            /// Same key as an earlier job in this batch: re-probe in phase
            /// C, after the twin's insert — exactly what a serial loop sees.
            DupOf { binding_fp: u64 },
            /// Quarantined or injected-to-fail: no compile, result `None`
            /// (or a tier-down when installing).
            Fail,
        }

        if reqs.is_empty() {
            return Vec::new();
        }
        // One fingerprint for the whole batch: installs in phase C touch
        // none of the compiler inputs the fingerprint covers.
        let env_fp = compiler::CompileEnv::of(self).fingerprint();

        // Phase A — serial quarantine gates, failure draws and cache probes
        // in request order (the injector draw sequence and governor updates
        // must match what a serial loop would produce).
        let mut slots = Vec::with_capacity(reqs.len());
        let mut jobs: Vec<usize> = Vec::new();
        let mut pending: HashSet<(u32, u8, u64)> = HashSet::new();
        for (i, r) in reqs.iter().enumerate() {
            if Self::compile_fallible(r.level, r.bindings.is_some()) {
                if !self.compile_allowed(r.method, r.level) {
                    slots.push(Slot::Fail);
                    continue;
                }
                if self.injector.as_mut().is_some_and(FaultInjector::at_compile) {
                    self.record_compile_failure(r.method, r.level);
                    slots.push(Slot::Fail);
                    continue;
                }
            }
            let binding_fp = binding_fingerprint(r.bindings.as_ref());
            if pending.contains(&(r.method.0, r.level, binding_fp)) {
                slots.push(Slot::DupOf { binding_fp });
                continue;
            }
            match self.code_cache.probe(r.method.0, r.level, binding_fp, env_fp) {
                Probe::Hit {
                    cid,
                    compile_cycles,
                } => slots.push(Slot::Hit {
                    cid,
                    cost: compile_cycles,
                }),
                Probe::Miss { invalidated } => {
                    pending.insert((r.method.0, r.level, binding_fp));
                    slots.push(Slot::Job {
                        job: jobs.len(),
                        binding_fp,
                        invalidated,
                        use_cache: true,
                    });
                    jobs.push(i);
                }
                Probe::Disabled => {
                    slots.push(Slot::Job {
                        job: jobs.len(),
                        binding_fp,
                        invalidated: false,
                        use_cache: false,
                    });
                    jobs.push(i);
                }
            }
        }

        // Phase B — produce the artifacts. The fleet's shared cache (when
        // attached) is probed serially first; jobs it answers skip the
        // compiler entirely. Baselines for the remaining jobs are memoized
        // on the VM thread (the lift cache is not thread-safe); the
        // pipelines — pure functions of the `Sync` compile environment —
        // run on workers. Only the compile section is wall-timed, and only
        // when at least one job actually compiles, so a fully cache-fed
        // batch adds exactly zero wall nanoseconds.
        let scope = SharedCodeCache::scope_of(self.program_fp, env_fp);
        let mut artifacts: Vec<Option<SharedArtifact>> = vec![None; jobs.len()];
        if let Some(sc) = self.shared_cache.clone() {
            for (j, &ri) in jobs.iter().enumerate() {
                let r = &reqs[ri];
                let fp = binding_fingerprint(r.bindings.as_ref());
                match sc.probe(scope, r.method.0, r.level, fp) {
                    Some(a) => {
                        self.shared_hits += 1;
                        artifacts[j] = Some(a);
                    }
                    None => self.shared_misses += 1,
                }
            }
        }
        let to_compile: Vec<usize> = (0..jobs.len()).filter(|&j| artifacts[j].is_none()).collect();
        let mut baselines: Vec<Arc<Function>> = Vec::with_capacity(to_compile.len());
        for &j in &to_compile {
            let b = self.baseline_for(reqs[jobs[j]].method, env_fp);
            baselines.push(b);
        }
        if !to_compile.is_empty() {
            let wall = Instant::now();
            let mut outcomes: Vec<Option<compiler::CompileOutcome>>;
            {
                let env = compiler::CompileEnv::of(self);
                let threads = rayon::current_num_threads().min(to_compile.len());
                if to_compile.len() < 2 || threads < 2 {
                    outcomes = Vec::with_capacity(to_compile.len());
                    for (k, &j) in to_compile.iter().enumerate() {
                        let r = &reqs[jobs[j]];
                        outcomes.push(Some(compiler::compile_in(
                            &env,
                            &baselines[k],
                            r.method,
                            r.level,
                            r.bindings.as_ref(),
                        )));
                    }
                } else {
                    // A shared work index keeps workers busy regardless of
                    // how uneven individual compile times are.
                    let next = AtomicUsize::new(0);
                    let out: Mutex<Vec<Option<compiler::CompileOutcome>>> =
                        Mutex::new((0..to_compile.len()).map(|_| None).collect());
                    rayon::scope(|s| {
                        for _ in 0..threads {
                            s.spawn(|_| loop {
                                let k = next.fetch_add(1, Ordering::Relaxed);
                                if k >= to_compile.len() {
                                    break;
                                }
                                let r = &reqs[jobs[to_compile[k]]];
                                let o = compiler::compile_in(
                                    &env,
                                    &baselines[k],
                                    r.method,
                                    r.level,
                                    r.bindings.as_ref(),
                                );
                                out.lock().expect("compile worker poisoned")[k] = Some(o);
                            });
                        }
                    });
                    outcomes = out.into_inner().expect("compile worker poisoned");
                }
            }
            self.compile_wall_nanos += wall.elapsed().as_nanos() as u64;
            // Metadata derivation and shared publication stay outside the
            // wall timer, as on the serial path.
            for (k, &j) in to_compile.iter().enumerate() {
                let outcome = outcomes[k].take().expect("job compiled exactly once");
                let a = Self::artifact_of(outcome);
                if let Some(sc) = &self.shared_cache {
                    let r = &reqs[jobs[j]];
                    let fp = binding_fingerprint(r.bindings.as_ref());
                    sc.insert(scope, r.method.0, r.level, fp, a.clone());
                }
                artifacts[j] = Some(a);
            }
        }

        // Phase C — serial, in request order: bill, store, trace-stamp and
        // (for recompiles) install, replicating the serial loop exactly.
        let mut cids = Vec::with_capacity(reqs.len());
        for (i, r) in reqs.iter().enumerate() {
            let special = r.bindings.is_some();
            let cid = match slots[i] {
                Slot::Fail => {
                    // A failed install request still needs code: tier down
                    // exactly like the serial recompile path (which also
                    // skips the recompilation event for kept code).
                    cids.push(if install { Some(self.tier_down(r.method)) } else { None });
                    continue;
                }
                Slot::Hit { cid, cost } => {
                    self.stats.code_cache_hits += 1;
                    self.replay_cached(r.method, r.level, special, cid, cost);
                    cid
                }
                Slot::Job {
                    job,
                    binding_fp,
                    invalidated,
                    use_cache,
                } => {
                    let a = artifacts[job].take().expect("job produced exactly once");
                    if use_cache {
                        if invalidated {
                            self.stats.code_cache_invalidations += 1;
                        }
                        self.stats.code_cache_misses += 1;
                    }
                    let cost = a.compile_cycles;
                    let cid = self.install_artifact(r.method, r.level, special, binding_fp, a);
                    if use_cache {
                        self.cache_insert((r.method.0, r.level, binding_fp), env_fp, cid, cost, false);
                    }
                    cid
                }
                Slot::DupOf { binding_fp } => {
                    match self.code_cache.probe(r.method.0, r.level, binding_fp, env_fp) {
                        Probe::Hit {
                            cid,
                            compile_cycles,
                        } => {
                            self.stats.code_cache_hits += 1;
                            self.replay_cached(r.method, r.level, special, cid, compile_cycles);
                            cid
                        }
                        // The twin's entry was evicted between its insert
                        // and this probe (tiny capacity): fall back to a
                        // full serial compile, like the serial loop would.
                        _ => {
                            self.stats.code_cache_misses += 1;
                            let a = self.produce_artifact(
                                r.method,
                                r.level,
                                r.bindings.as_ref(),
                                binding_fp,
                                env_fp,
                            );
                            let cost = a.compile_cycles;
                            let cid =
                                self.install_artifact(r.method, r.level, special, binding_fp, a);
                            self.cache_insert(
                                (r.method.0, r.level, binding_fp),
                                env_fp,
                                cid,
                                cost,
                                false,
                            );
                            cid
                        }
                    }
                }
            };
            if install {
                self.finish_recompile(r.method, r.level, cid);
            }
            cids.push(Some(cid));
        }
        cids
    }

    /// The baseline (level-0, unspecialized) code a deoptimizing frame of
    /// `mid` resumes in. Level-0 compilation is a pure lift + instrument —
    /// the scalar pipeline runs zero iterations — so its blocks and ops are
    /// coordinate-identical to the function guards recorded their resume
    /// points in. Reuses the current general code when it is already level
    /// 0; otherwise compiles (and caches) a dedicated baseline version.
    /// Either way no recompilation event is queued: deopt must not perturb
    /// the mutation engine's view of the adaptive system.
    pub fn ensure_baseline(&mut self, mid: MethodId) -> CompiledId {
        if let Some(cid) = self.deopt_baseline[mid.index()] {
            return cid;
        }
        let cid = match self.general_code[mid.index()] {
            Some(g) if self.compiled(g).level == 0 => g,
            _ => {
                self.stats.deopt_baseline_compiles += 1;
                self.compile_internal(mid, 0, None)
                    .expect("level-0 compiles never fail")
            }
        };
        self.deopt_baseline[mid.index()] = Some(cid);
        cid
    }

    /// Installs `cid` as the one valid general compiled method for `mid`:
    /// updates the JTOC slot and, for virtual methods, the declaring class
    /// TIB and every subclass TIB still inheriting this method. General
    /// code (never special code) propagates to subclasses — paper Fig. 6.
    pub fn install_general(&mut self, mid: MethodId, cid: CompiledId) {
        self.invalidate_inline_caches();
        self.general_code[mid.index()] = Some(cid);
        let md = self.program.method(mid);
        if !md.is_virtual() {
            return;
        }
        let program = Rc::clone(&self.program);
        let owner = md.owner;
        let sel = md.selector;
        let mut targets = vec![owner];
        targets.extend(program.all_subclasses(owner));
        for c in targets {
            let cd = program.class(c);
            if let Some(vslot) = cd.vtable_slot(sel) {
                // Only patch where this method is still the resolution
                // (an overriding subclass keeps its own entry).
                if cd.vtable[vslot as usize] == mid {
                    let tib = self.class_tibs[c.index()];
                    self.tibs[tib.index()].methods[vslot as usize] = CodeSlot::Code(cid);
                }
            }
        }
    }

    /// Drains pending recompilation events. The interpreter forwards these
    /// to the mutation handler after every compile; a handler being
    /// installed *late* (online mutation) drains them itself.
    pub fn take_recompile_events(&mut self) -> Vec<(MethodId, u8)> {
        std::mem::take(&mut self.recompile_events)
    }

    // ---------------------------------------------------------------
    // Special TIB management (driven by the mutation engine)
    // ---------------------------------------------------------------

    /// Creates a special TIB for hot state `state_index` of `class`: an
    /// exact copy of the current class TIB sharing its IMT (Sec. 3.2.3).
    pub fn create_special_tib(&mut self, class: ClassId, state_index: usize) -> TibId {
        let class_tib = self.class_tibs[class.index()];
        let src = &self.tibs[class_tib.index()];
        let tib = Tib {
            class,
            kind: TibKind::Special { state_index },
            methods: src.methods.clone(),
            imt: src.imt,
        };
        self.stats.special_tib_bytes += tib.bytes() as u64;
        self.stats.special_tibs += 1;
        let id = TibId(self.tibs.len() as u32);
        self.tibs.push(tib);
        id
    }

    /// Points a TIB method slot at specific compiled code.
    pub fn set_tib_slot(&mut self, tib: TibId, vslot: u32, code: CodeSlot) {
        self.invalidate_inline_caches();
        self.tibs[tib.index()].methods[vslot as usize] = code;
        self.stats.code_patches += 1;
    }

    /// Reads a TIB method slot.
    pub fn tib_slot(&self, tib: TibId, vslot: u32) -> CodeSlot {
        self.tibs[tib.index()].methods[vslot as usize]
    }

    /// Copies every slot of the class TIB of `class` into `special`,
    /// *except* the given vslots (the mutable-method slots the engine
    /// manages itself). Keeps special TIBs identical to the class TIB for
    /// inherited/unrelated methods, preserving lazy compilation.
    pub fn sync_special_from_class(&mut self, class: ClassId, special: TibId, skip: &[u32]) {
        self.invalidate_inline_caches();
        let class_tib = self.class_tibs[class.index()];
        let n = self.tibs[class_tib.index()].methods.len();
        for v in 0..n {
            if skip.contains(&(v as u32)) {
                continue;
            }
            let s = self.tibs[class_tib.index()].methods[v];
            self.tibs[special.index()].methods[v] = s;
        }
    }

    /// Repoints an object's TIB pointer (the mutation itself).
    pub fn set_object_tib(&mut self, obj: ObjRef, tib: TibId) {
        debug_assert_eq!(
            self.heap.object(obj).class,
            self.tibs[tib.index()].class,
            "TIB flip must preserve the type-information entry"
        );
        let from = self.heap.object(obj).tib;
        self.heap.object_mut(obj).tib = tib;
        self.stats.tib_flips += 1;
        // Residency feeds the census, so it must track every flip — not
        // just traced ones — or the census would change shape when a
        // tracer attaches.
        self.residency.on_flip(
            obj.0,
            self.tibs[tib.index()].class.0,
            self.tibs[from.index()].special_state(),
            self.tibs[tib.index()].special_state(),
            self.clock,
        );
        if self.tracer.on() {
            self.trace_tib_flip(obj, from, tib);
        }
    }

    /// Emits the `TibFlip` event for a flip plus its semantic reading as
    /// hot-state transitions (out of line: flips are rare next to the
    /// dispatch fast path).
    #[cold]
    fn trace_tib_flip(&mut self, obj: ObjRef, from: TibId, to: TibId) {
        self.tracer.emit(
            self.clock,
            TraceEvent::TibFlip { obj: obj.0, from_tib: from.0, to_tib: to.0 },
        );
        let class = self.tibs[to.index()].class.0;
        if let TibKind::Special { state_index } = self.tibs[from.index()].kind {
            self.tracer.emit(
                self.clock,
                TraceEvent::StateTransition {
                    obj: obj.0,
                    class,
                    entered: false,
                    state: state_index as u32,
                },
            );
        }
        if let TibKind::Special { state_index } = self.tibs[to.index()].kind {
            self.tracer.emit(
                self.clock,
                TraceEvent::StateTransition {
                    obj: obj.0,
                    class,
                    entered: true,
                    state: state_index as u32,
                },
            );
        }
    }

    /// The class TIB id of `class`.
    pub fn class_tib(&self, class: ClassId) -> TibId {
        self.class_tibs[class.index()]
    }

    /// Sets the statically-bound dispatch override for `mid` (`None`
    /// restores the general code) — the JTOC patching of Fig. 4/5 for
    /// static and `invokespecial`-bound methods.
    pub fn set_static_override(&mut self, mid: MethodId, code: Option<CompiledId>) {
        self.invalidate_inline_caches();
        self.static_override[mid.index()] = code;
        self.stats.code_patches += 1;
    }

    /// Marks `class` mutable: its interface dispatch pays the extra
    /// TIB-offset load (Sec. 3.2.3). Invalidates inline caches because
    /// interface-site entries cache that extra charge.
    pub fn mark_mutable_class(&mut self, class: ClassId) {
        self.invalidate_inline_caches();
        self.mutable_classes.insert(class);
    }

    // ---------------------------------------------------------------
    // Resilience governor (deopt-storm throttling)
    // ---------------------------------------------------------------

    /// Governor bookkeeping after a guard failure in compiled code `cid`,
    /// called by the interpreter before deoptimizing. Only special code
    /// participates; the storm counter is keyed per (method, state
    /// fingerprint). A throttle or blacklist verdict pins the site to
    /// general code. Pure host-side policy: charges no modeled cycles, so
    /// it is clock-transparent until a verdict actually changes installed
    /// code.
    pub(crate) fn governor_on_guard_fail(&mut self, cid: CompiledId) {
        let cm = &self.code[cid.index()];
        if !cm.special {
            return;
        }
        let (mid, fp) = (cm.method, cm.binding_fp);
        let gcfg = self.config.governor;
        if !gcfg.enabled {
            return;
        }
        match self.governor.on_guard_fail(&gcfg, mid.0, fp, self.clock) {
            GuardFailVerdict::None => {}
            GuardFailVerdict::Throttle { episode, until } => {
                self.stats.specials_throttled += 1;
                self.code[cid.index()].blocked_until = until;
                if self.tracer.on() {
                    self.tracer.emit(
                        self.clock,
                        TraceEvent::SpecialThrottled {
                            method: mid.0,
                            episode,
                            until_cycle: until,
                        },
                    );
                }
                self.pin_special(cid);
            }
            GuardFailVerdict::Blacklist { total_fails } => {
                self.stats.specials_blacklisted += 1;
                self.code[cid.index()].blocked_until = u64::MAX;
                if self.tracer.on() {
                    self.tracer.emit(
                        self.clock,
                        TraceEvent::SpecialBlacklisted { method: mid.0, fails: total_fails },
                    );
                }
                self.pin_special(cid);
            }
        }
    }

    /// Pins every dispatch site currently routed at special code `bad`
    /// back to general code: special-TIB method slots revert to the class
    /// TIB's entry and a matching static override is cleared. Frames
    /// already executing `bad` are untouched (they deoptimize on their own
    /// guards); this only stops *new* dispatches from entering the storm.
    fn pin_special(&mut self, bad: CompiledId) {
        let mut changed = false;
        for ti in 0..self.tibs.len() {
            if matches!(self.tibs[ti].kind, TibKind::Class) {
                continue;
            }
            let class_tib = self.class_tibs[self.tibs[ti].class.index()].index();
            for v in 0..self.tibs[ti].methods.len() {
                if self.tibs[ti].methods[v] == CodeSlot::Code(bad) {
                    let general = self.tibs[class_tib].methods[v];
                    if self.tibs[ti].methods[v] != general {
                        self.tibs[ti].methods[v] = general;
                        changed = true;
                    }
                }
            }
        }
        let mid = self.code[bad.index()].method;
        if self.static_override[mid.index()] == Some(bad) {
            self.static_override[mid.index()] = None;
            changed = true;
        }
        if changed {
            self.invalidate_inline_caches();
        }
    }

    /// True when the governor permits special code `cid` to be installed
    /// or re-entered right now (not throttled, not blacklisted). General
    /// code is always usable. This runs on every instance-store flip-in,
    /// so it reads the verdict cached on the code record (one clock
    /// compare) rather than probing the governor's site table.
    pub fn special_usable(&self, cid: CompiledId) -> bool {
        self.code[cid.index()].blocked_until <= self.clock
    }

    /// True when the governor permits compiling/installing a special of
    /// `mid` under `bindings` right now — the pre-compile twin of
    /// [`Self::special_usable`], used before any code exists.
    pub fn special_request_allowed(&self, mid: MethodId, bindings: &Bindings) -> bool {
        let fp = binding_fingerprint(Some(bindings));
        self.governor
            .special_allowed(&self.config.governor, mid.0, fp, self.clock)
    }

    // ---------------------------------------------------------------
    // Inline caches & dispatch helpers
    // ---------------------------------------------------------------

    /// Empties every inline cache in O(1) by bumping the global generation.
    /// Called on any patch that can change a dispatch outcome (code
    /// install, TIB slot write, JTOC override, mutable-class marking).
    pub fn invalidate_inline_caches(&mut self) {
        self.ic_version += 1;
        self.stats.ic_invalidations += 1;
    }

    /// Inline-cache probe for call site `site` of compiled method `cid`
    /// with receiver TIB `tib`. On a hit returns the cached
    /// `(target method, target code, extra dispatch cycles)`.
    #[inline]
    pub(crate) fn ic_lookup(
        &mut self,
        cid: CompiledId,
        site: u32,
        tib: TibId,
    ) -> Option<(MethodId, CompiledId, u64)> {
        let e = self.icaches[cid.index()][site as usize];
        if e.version == self.ic_version && e.tib == tib.0 {
            self.stats.ic_hits += 1;
            if self.tracer.on() {
                self.trace_ic(cid, site, true);
            }
            Some((e.method, e.cid, e.extra))
        } else {
            self.stats.ic_misses += 1;
            if self.tracer.on() {
                self.trace_ic(cid, site, false);
            }
            None
        }
    }

    /// IC event emission, out of line: `ic_lookup` is the dispatch fast
    /// path and must carry only the `on()` test when tracing is off.
    #[cold]
    fn trace_ic(&mut self, cid: CompiledId, site: u32, hit: bool) {
        let caller = self.code[cid.index()].method.0;
        if hit {
            self.tracer.ic_hit(self.clock, caller, site);
        } else {
            self.tracer.ic_miss(self.clock, caller, site);
        }
    }

    /// Fills the inline-cache entry after a slow-path dispatch.
    #[inline]
    pub(crate) fn ic_store(
        &mut self,
        cid: CompiledId,
        site: u32,
        tib: TibId,
        method: MethodId,
        target: CompiledId,
        extra: u64,
    ) {
        self.icaches[cid.index()][site as usize] = IcEntry {
            version: self.ic_version,
            tib: tib.0,
            method,
            cid: target,
            extra,
        };
    }

    /// Dense `class x selector -> vtable slot` lookup (dispatch miss path).
    #[inline]
    pub fn vtable_slot_fast(&self, class: ClassId, sel: SelectorId) -> Option<u32> {
        let v = self.vslot_dense[class.index() * self.num_selectors + sel.index()];
        (v != NO_SITE).then_some(v)
    }

    /// Dense `field -> storage slot` lookup (field-access fast path).
    #[inline]
    pub fn field_slot(&self, field: FieldId) -> usize {
        self.field_slots[field.index()] as usize
    }

    /// Cached `invokespecial` resolution.
    pub fn resolve_special_cached(&mut self, class: ClassId, sel: SelectorId) -> Option<MethodId> {
        if let Some(&m) = self.special_resolution.get(&(class.0, sel.0)) {
            return Some(m);
        }
        let m = self.program.resolve_special(class, sel)?;
        self.special_resolution.insert((class.0, sel.0), m);
        Some(m)
    }

    // ---------------------------------------------------------------
    // Heap & values
    // ---------------------------------------------------------------

    /// Allocates an instance of `class` with zeroed fields, running GC if
    /// needed; charges allocation cycles.
    ///
    /// # Errors
    /// Returns [`RunError::OutOfMemory`] when even a full collection cannot
    /// free enough space.
    pub fn alloc_object(&mut self, class: ClassId) -> Result<ObjRef, RunError> {
        let fields = self.field_templates[class.index()].clone();
        let bytes = 16 + 8 * fields.len();
        self.maybe_inject_at_alloc(bytes)?;
        self.maybe_gc(bytes);
        self.charge_alloc(bytes);
        let tib = self.class_tibs[class.index()];
        self.heap.alloc_object(class, tib, fields)
    }

    /// Allocates an array, running GC if needed; charges allocation cycles.
    ///
    /// # Errors
    /// Returns [`RunError::NegativeArraySize`] or [`RunError::OutOfMemory`].
    pub fn alloc_array(
        &mut self,
        kind: dchm_bytecode::ElemKind,
        len: i64,
    ) -> Result<ObjRef, RunError> {
        let bytes = 16 + 8 * len.max(0) as usize;
        self.maybe_inject_at_alloc(bytes)?;
        self.maybe_gc(bytes);
        self.charge_alloc(bytes);
        self.heap.alloc_array(kind, len)
    }

    fn charge_alloc(&mut self, bytes: usize) {
        let cycles = (bytes as u64 / 8) * CostModel::ALLOC_COST_PER_WORD;
        self.clock += cycles;
        self.stats.exec_cycles += cycles;
    }

    fn maybe_gc(&mut self, bytes: usize) {
        if self.heap.needs_gc(bytes) {
            self.gc_now();
        }
    }

    /// Runs a collection with roots from frames, statics and host handles.
    /// Every live frame's registers are a window of `reg_stack`, so one
    /// linear scan of the pool covers all frames.
    pub fn gc_now(&mut self) {
        if self.tracer.on() {
            let used = self.heap.used_bytes() as u64;
            self.tracer.emit(self.clock, TraceEvent::GcStart { used_bytes: used });
        }
        let roots = self.collect_roots();
        let cycles = self.heap.gc(roots.into_iter());
        self.clock += cycles;
        self.stats.gc_cycles += cycles;
        // The sweep may have recycled object ids: drop dead objects' open
        // residency stays before a reused id can inherit one.
        let heap = &self.heap;
        self.residency.prune(|o| heap.is_live(ObjRef(o)));
        if self.tracer.on() {
            let used = self.heap.used_bytes() as u64;
            self.tracer.emit(
                self.clock,
                TraceEvent::GcEnd { used_bytes: used, gc_cycles: cycles },
            );
            // GC-triggered census: the post-sweep heap walk, as a counter
            // event (0-cycle, host-side only).
            self.trace_census();
        }
    }

    /// Live GC roots: frame registers (one linear scan of the pooled
    /// register stack), statics, host handles.
    fn collect_roots(&self) -> Vec<ObjRef> {
        let mut roots: Vec<ObjRef> = Vec::new();
        for v in &self.reg_stack {
            if let Value::Ref(r) = v {
                roots.push(*r);
            }
        }
        for v in &self.statics {
            if let Value::Ref(r) = v {
                roots.push(*r);
            }
        }
        roots.extend(self.handles.iter().copied());
        roots
    }

    /// A method's `Class::method` display name — the resolver the
    /// profile and census exports use.
    pub fn method_display_name(&self, mid: MethodId) -> String {
        let m = self.program.method(mid);
        format!("{}::{}", self.program.class(m.owner).name, m.name)
    }

    /// Walks the heap on demand and builds the full [`CensusSnapshot`]:
    /// occupancy per class and per special-state TIB, plus TIB-flip
    /// residency measured to the current clock. 0-cycle and read-only —
    /// calling it any number of times perturbs nothing.
    pub fn census(&self) -> CensusSnapshot {
        let raw = self.heap.census();
        let mut in_special = 0u64;
        let per_tib: Vec<TibCensus> = raw
            .per_tib
            .iter()
            .map(|(&tib, &(objects, bytes))| {
                let t = &self.tibs[tib as usize];
                let state = t.special_state();
                if state.is_some() {
                    in_special += objects;
                }
                TibCensus { tib, class: t.class.0, state, objects, bytes }
            })
            .collect();
        let per_class = raw
            .per_class
            .iter()
            .map(|(&class, &(objects, bytes))| ClassCensus {
                class,
                name: self.program.class(ClassId(class)).name.clone(),
                objects,
                bytes,
            })
            .collect();
        CensusSnapshot {
            at_cycle: self.clock,
            live_objects: raw.objects,
            live_arrays: raw.arrays,
            object_bytes: raw.object_bytes,
            array_bytes: raw.array_bytes,
            heap_used_bytes: self.heap.used_bytes() as u64,
            in_special_state: in_special,
            per_class,
            per_tib,
            residency: self.residency.snapshot(self.clock),
        }
    }

    /// Emits a summary [`TraceEvent::Census`] counter event for the
    /// current heap (no-op when tracing is off). Used after GC sweeps and
    /// at mutation install points.
    pub fn trace_census(&mut self) {
        if !self.tracer.on() {
            return;
        }
        let raw = self.heap.census();
        let in_special = raw
            .per_tib
            .iter()
            .filter(|(&tib, _)| self.tibs[tib as usize].special_state().is_some())
            .map(|(_, &(n, _))| n)
            .sum();
        self.tracer.emit(
            self.clock,
            TraceEvent::Census {
                live_objects: raw.objects,
                live_bytes: raw.total_bytes(),
                in_special_state: in_special,
            },
        );
    }

    /// Consults the fault injector (if any) at an allocation point and
    /// applies the drawn fault. Every injected fault is *cycle-transparent*:
    ///
    /// * an injected GC is a real mark-sweep over the real root set but
    ///   leaves the clock and GC stats untouched;
    /// * an IC bump empties the inline caches, which are a host-side fast
    ///   path with no modeled cost;
    /// * an injected recompile regenerates and reinstalls the running
    ///   method's general code without billing compile cycles, touching the
    ///   profile or queueing a recompilation event — the compiler is
    ///   deterministic, so the new code is identical to the old.
    ///
    /// This is what lets the differential harness assert bit-identical
    /// output *and* modeled cycles with injection on vs. off.
    ///
    /// The `Oom` and `Panic` kinds are the exception to cycle transparency:
    /// they abort the current run by design (a typed trap, respectively a
    /// host panic the `Vm::run` containment boundary converts into
    /// [`RunError::VmInvariant`]). Their contract is same-seed bit-identity,
    /// not transparency.
    fn maybe_inject_at_alloc(&mut self, requested: usize) -> Result<(), RunError> {
        let fault = match self.injector.as_mut() {
            Some(inj) => inj.at_alloc(),
            None => return Ok(()),
        };
        let Some(fault) = fault else { return Ok(()) };
        if self.tracer.on() {
            let kind = match fault {
                Fault::Gc => FaultKind::Gc,
                Fault::IcBump => FaultKind::IcBump,
                Fault::Recompile => FaultKind::Recompile,
                Fault::Oom => FaultKind::OomAtAlloc,
                Fault::Panic => FaultKind::PanicAtOp,
            };
            let method = self.frames.last().map_or(NO_ID, |f| f.method.0);
            self.tracer.emit(self.clock, TraceEvent::FaultInjected { kind, method });
        }
        match fault {
            Fault::Gc => {
                let roots = self.collect_roots();
                let _ = self.heap.gc(roots.into_iter());
            }
            Fault::IcBump => self.invalidate_inline_caches(),
            Fault::Recompile => {
                let Some(fr) = self.frames.last() else { return Ok(()) };
                let mid = fr.method;
                let Some(g) = self.general_code[mid.index()] else {
                    return Ok(());
                };
                let level = self.compiled(g).level;
                let cid = self.compile_silent(mid, level);
                self.install_general(mid, cid);
            }
            Fault::Oom => {
                return Err(RunError::OutOfMemory {
                    requested,
                    heap: self.config.heap_bytes,
                });
            }
            Fault::Panic => panic!("injected panic at allocation point"),
        }
        Ok(())
    }

    /// Compiles general code for `mid` at `level` without billing cycles or
    /// updating any statistic — the injected-recompile path. Routed through
    /// the code cache like every other compile: a hit returns the cached
    /// version (which the deterministic compiler would reproduce bit for
    /// bit), a miss compiles and populates the cache. Neither touches a
    /// counter or the clock, keeping injected faults cycle-transparent:
    /// cache entries only ever change *which* host work later requests
    /// skip, never what they bill.
    fn compile_silent(&mut self, mid: MethodId, level: u8) -> CompiledId {
        let env_fp = compiler::CompileEnv::of(self).fingerprint();
        let binding_fp = binding_fingerprint(None);
        if let Probe::Hit { cid, .. } = self.code_cache.probe(mid.0, level, binding_fp, env_fp) {
            return cid;
        }
        let a = self.produce_artifact(mid, level, None, binding_fp, env_fp);
        let cost = a.compile_cycles;
        let cid = self.push_artifact(mid, level, false, binding_fp, a);
        self.cache_insert((mid.0, level, binding_fp), env_fp, cid, cost, true);
        cid
    }

    /// Registers a host-held GC root.
    pub fn add_handle(&mut self, r: ObjRef) {
        self.handles.push(r);
    }

    /// Host helper: allocates an int array initialized from `data`.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn alloc_int_array(&mut self, data: &[i64]) -> Result<ObjRef, RunError> {
        let r = self.alloc_array(dchm_bytecode::ElemKind::Int, data.len() as i64)?;
        let arr = self.heap.array_mut(r);
        for (slot, v) in arr.elems.iter_mut().zip(data) {
            *slot = Value::Int(*v);
        }
        Ok(r)
    }

    /// Reads a static field.
    pub fn get_static(&self, field: FieldId) -> Value {
        self.statics[self.field_slot(field)]
    }

    /// Writes a static field (host-side; does not fire patch points).
    pub fn set_static(&mut self, field: FieldId, v: Value) {
        let slot = self.field_slot(field);
        self.statics[slot] = v;
    }

    /// Reads an instance field of a heap object (host-side helper).
    pub fn get_field(&self, obj: ObjRef, field: FieldId) -> Value {
        self.heap.object(obj).fields[self.program.field(field).slot as usize]
    }

    /// Modeled seconds elapsed on the cycle clock.
    pub fn seconds(&self) -> f64 {
        CostModel::cycles_to_secs(self.clock)
    }
}

fn collect_iface_sels(p: &Program, iface: ClassId, out: &mut HashSet<SelectorId>) {
    for &m in &p.class(iface).methods {
        out.insert(p.method(m).selector);
    }
    for &parent in &p.class(iface).interfaces {
        collect_iface_sels(p, parent, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{MethodSig, ProgramBuilder, Ty};

    fn simple_program() -> (Program, ClassId, MethodId) {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        pb.instance_field(c, "x", Ty::Int);
        let mut m = pb.method(c, "f", MethodSig::new(vec![], Some(Ty::Int)));
        let r = m.imm(7);
        m.ret(Some(r));
        let mid = m.build();
        pb.trivial_ctor(c);
        (pb.finish().unwrap(), c, mid)
    }

    #[test]
    fn class_tibs_created_at_startup() {
        let (p, c, _) = simple_program();
        let st = VmState::new(p, VmConfig::default());
        assert_eq!(st.tibs.len(), 1);
        assert_eq!(st.tibs[0].class, c);
        assert_eq!(st.tibs[0].kind, TibKind::Class);
        assert!(st.stats.class_tib_bytes > 0);
        assert_eq!(st.stats.special_tib_bytes, 0);
    }

    #[test]
    fn lazy_then_compiled_installs_into_tib() {
        let (p, c, mid) = simple_program();
        let mut st = VmState::new(p, VmConfig::default());
        let vslot = st.program.class(c).vtable_slot(st.program.method(mid).selector);
        let vslot = vslot.unwrap();
        assert_eq!(st.tib_slot(st.class_tib(c), vslot), CodeSlot::Lazy);
        let cid = st.ensure_compiled(mid);
        assert_eq!(st.tib_slot(st.class_tib(c), vslot), CodeSlot::Code(cid));
        assert_eq!(st.level_of(mid), Some(0));
        assert!(st.stats.compile_cycles > 0);
        // Second call is a no-op.
        assert_eq!(st.ensure_compiled(mid), cid);
        assert_eq!(st.stats.compiles_by_level[0], 1);
    }

    #[test]
    fn recompile_replaces_valid_code_and_queues_event() {
        let (p, _, mid) = simple_program();
        let mut st = VmState::new(p, VmConfig::default());
        st.ensure_compiled(mid);
        let ev = st.take_recompile_events();
        assert_eq!(ev, vec![(mid, 0)]);
        let c2 = st.recompile(mid, 2);
        assert_eq!(st.general_code[mid.index()], Some(c2));
        assert_eq!(st.level_of(mid), Some(2));
        assert_eq!(st.take_recompile_events(), vec![(mid, 2)]);
        assert_eq!(st.stats.per_method[mid.index()].recompiles, 1);
    }

    #[test]
    fn accelerated_methods_jump_to_opt2() {
        let (p, _, mid) = simple_program();
        let mut cfg = VmConfig::default();
        cfg.accelerated_methods.insert(mid);
        let mut st = VmState::new(p, cfg);
        st.ensure_compiled(mid);
        assert_eq!(st.level_of(mid), Some(2));
        let levels: Vec<u8> = st.take_recompile_events().iter().map(|e| e.1).collect();
        assert_eq!(levels, vec![0, 1, 2]);
    }

    #[test]
    fn special_tib_is_copy_sharing_imt() {
        let (p, c, mid) = simple_program();
        let mut st = VmState::new(p, VmConfig::default());
        st.ensure_compiled(mid);
        let special = st.create_special_tib(c, 0);
        let class_tib = st.class_tib(c);
        assert_eq!(
            st.tibs[special.index()].methods,
            st.tibs[class_tib.index()].methods
        );
        assert_eq!(st.tibs[special.index()].imt, st.tibs[class_tib.index()].imt);
        assert_eq!(
            st.tibs[special.index()].kind,
            TibKind::Special { state_index: 0 }
        );
        // Type-information entry identical (checkcast transparency).
        assert_eq!(st.tibs[special.index()].class, c);
        assert!(st.stats.special_tib_bytes > 0);
        assert_eq!(st.stats.special_tibs, 1);
    }

    #[test]
    fn object_tib_flip() {
        let (p, c, _) = simple_program();
        let mut st = VmState::new(p, VmConfig::default());
        let obj = st.alloc_object(c).unwrap();
        let special = st.create_special_tib(c, 0);
        st.set_object_tib(obj, special);
        assert_eq!(st.heap.object(obj).tib, special);
        assert_eq!(st.stats.tib_flips, 1);
        // Class (type info) untouched.
        assert_eq!(st.heap.object(obj).class, c);
    }

    #[test]
    fn sync_special_skips_managed_slots() {
        let (p, c, mid) = simple_program();
        let mut st = VmState::new(p, VmConfig::default());
        let special = st.create_special_tib(c, 0);
        let cid = st.ensure_compiled(mid); // updates class TIB only
        let vslot = st
            .program
            .class(c)
            .vtable_slot(st.program.method(mid).selector)
            .unwrap();
        // Special still Lazy until synced.
        assert_eq!(st.tib_slot(special, vslot), CodeSlot::Lazy);
        st.sync_special_from_class(c, special, &[]);
        assert_eq!(st.tib_slot(special, vslot), CodeSlot::Code(cid));
        // With the slot skipped, it would have stayed Lazy.
        let special2 = st.create_special_tib(c, 1);
        st.set_tib_slot(special2, vslot, CodeSlot::Lazy);
        st.sync_special_from_class(c, special2, &[vslot]);
        assert_eq!(st.tib_slot(special2, vslot), CodeSlot::Lazy);
    }

    #[test]
    fn gc_preserves_static_roots() {
        let (p, c, _) = simple_program();
        let mut st = VmState::new(p, VmConfig::default());
        let obj = st.alloc_object(c).unwrap();
        let dead = st.alloc_object(c).unwrap();
        let f = st.program.field_by_name(c, "x"); // instance field, not a root path
        assert!(f.is_some());
        st.handles.push(obj);
        st.gc_now();
        assert!(st.heap.is_live(obj));
        assert!(!st.heap.is_live(dead));
    }

    #[test]
    fn static_override_roundtrip() {
        let (p, _, mid) = simple_program();
        let mut st = VmState::new(p, VmConfig::default());
        let cid = st.ensure_compiled(mid);
        st.set_static_override(mid, Some(cid));
        assert_eq!(st.static_override[mid.index()], Some(cid));
        st.set_static_override(mid, None);
        assert_eq!(st.static_override[mid.index()], None);
        assert_eq!(st.stats.code_patches, 2);
    }
}
