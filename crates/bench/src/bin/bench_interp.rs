//! Real-time interpreter throughput: `BENCH_interp.json` emitter.
//!
//! Unlike every other number in this repo (which is *modeled* cycles), this
//! harness measures the host-side speed of the evaluator itself: wall-clock
//! ops/sec executing the Figure 9 workloads with mutation off. It writes
//! `BENCH_interp.json` at the repo root, comparing against the recorded
//! pre-optimization (seed) throughput so the interpreter fast-path work is
//! tracked release over release.
//!
//! Usage:
//! `cargo run --release -p dchm-bench --bin bench_interp [--small] [--trace <dir>]
//!  [--profile <dir>] [--profile-overhead-check <pct>]`
//!
//! `--trace <dir>` adds one extra traced run per workload *after* the timed
//! repeats (so the timing itself stays tracing-off) and writes
//! `<dir>/<name>.trace.json` + `<dir>/<name>.metrics.json`.
//!
//! `--profile <dir>` likewise adds an untimed profiled run per workload and
//! writes `<dir>/<name>.folded` + `<dir>/<name>.census.json`.
//!
//! `--profile-overhead-check <pct>` is the CI gate for the attribution
//! profiler: per workload, profiling at the default period vs. off must
//! leave clock, op count and output bit-identical (hard assert) and cost at
//! most `pct` percent extra wall time (best-of-3).

use std::fmt::Write as _;
use std::time::Instant;

use dchm_bench::artifacts::{
    profile_dir_flag, trace_dir_flag, write_profile_artifacts, write_trace_artifacts,
};
use dchm_bench::measured_config;
use dchm_bench::runner::{best_of, flag_value, has_flag, scale_from_args, BenchJson};
use dchm_vm::Vm;
use dchm_workloads::{catalog, Workload};

/// Seed throughput (ops/sec, best of 3) recorded on this repo's reference
/// machine immediately before the interpreter fast-path rewrite, at
/// `Scale::Full` with mutation off. Regenerate with `--print-baseline` on a
/// pre-rewrite checkout if the workloads themselves change.
const SEED_OPS_PER_SEC: &[(&str, f64)] = &[
    ("SalaryDB", 75144209.0),
    ("SimLogic", 84786772.0),
    ("CSVToXML", 122177776.0),
    ("Java2XHTML", 111944970.0),
    ("Weka", 113385189.0),
    ("SPECjbb2000", 95386067.0),
    ("SPECjbb2005", 101876591.0),
];

struct Row {
    name: &'static str,
    ops_per_sec: f64,
    ops_executed: u64,
    wall_ms: f64,
}

fn measure_throughput(w: &Workload, repeats: u32) -> Row {
    // The op count is deterministic, so the fastest run is the best rate.
    let (ops_executed, secs) = best_of(repeats, || {
        let mut vm = Vm::new(w.program.clone(), measured_config(w));
        let start = Instant::now();
        w.run(&mut vm).expect("workload must not trap");
        (vm.stats().ops_executed, start.elapsed().as_secs_f64())
    });
    Row {
        name: w.name,
        ops_per_sec: ops_executed as f64 / secs.max(1e-12),
        ops_executed,
        wall_ms: secs * 1e3,
    }
}

/// Profiling on (default period) vs. off for one workload: modeled
/// observables must be bit-identical (hard assert); returns the best-of-5
/// wall seconds of each side for the aggregate gate.
fn profile_overhead_measure(w: &Workload) -> (f64, f64) {
    let run = |period: u64| {
        let mut cfg = measured_config(w);
        cfg.profile_period = period;
        let mut vm = Vm::new(w.program.clone(), cfg);
        let start = Instant::now();
        w.run(&mut vm).expect("workload must not trap");
        let secs = start.elapsed().as_secs_f64();
        let obs = (vm.cycles(), vm.stats().ops_executed, vm.state.output.checksum);
        (obs, secs)
    };
    let mut best_off = f64::MAX;
    let mut best_on = f64::MAX;
    let mut obs_off = None;
    let mut obs_on = None;
    for _ in 0..5 {
        let (obs, secs) = run(0);
        best_off = best_off.min(secs);
        obs_off = Some(obs);
        let (obs, secs) = run(dchm_vm::VmConfig::default().profile_period);
        best_on = best_on.min(secs);
        obs_on = Some(obs);
    }
    // The hard, deterministic property: samples stamp the modeled clock but
    // never charge it.
    assert_eq!(
        obs_on, obs_off,
        "{}: profiling moved the modeled clock or the output",
        w.name
    );
    println!(
        "{:<12} profiled-run wall overhead {:+.2}% (off {:.1} ms, on {:.1} ms)",
        w.name,
        (best_on / best_off - 1.0) * 100.0,
        best_off * 1e3,
        best_on * 1e3,
    );
    (best_off, best_on)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let print_baseline = has_flag(&args, "--print-baseline");
    let trace_dir = trace_dir_flag(&args);
    let profile_dir = profile_dir_flag(&args);
    let scale = scale_from_args(&args);

    if let Some(pct) = flag_value(&args, "--profile-overhead-check") {
        let budget: f64 = pct.parse().expect("--profile-overhead-check takes a percentage");
        // Gate on the suite aggregate: single-workload wall times are a few
        // tens of milliseconds and jitter more than the profiler costs;
        // over the summed suite the noise amortizes and the budget is
        // meaningful.
        let (mut total_off, mut total_on) = (0.0, 0.0);
        for w in catalog(scale) {
            let (off, on) = profile_overhead_measure(&w);
            total_off += off;
            total_on += on;
        }
        let overhead = (total_on / total_off - 1.0) * 100.0;
        let ok = overhead <= budget;
        println!(
            "suite        profiled-run wall overhead {:+.2}% (budget {:.1}%, off {:.1} ms, on {:.1} ms) {}",
            overhead,
            budget,
            total_off * 1e3,
            total_on * 1e3,
            if ok { "ok" } else { "OVER BUDGET" }
        );
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    // Best-of-5: wall-clock rates on shared machines are noisy and only the
    // fastest run approximates the interpreter's actual cost.
    let rows: Vec<Row> = catalog(scale)
        .iter()
        .map(|w| measure_throughput(w, 5))
        .collect();

    if print_baseline {
        println!("const SEED_OPS_PER_SEC: &[(&str, f64)] = &[");
        for r in &rows {
            println!("    (\"{}\", {:.0}.0),", r.name, r.ops_per_sec);
        }
        println!("];");
        return;
    }

    let mut doc = BenchJson::new("interpreter_throughput", scale, "ops_per_sec_wall_clock");
    for r in &rows {
        let seed = SEED_OPS_PER_SEC
            .iter()
            .find(|(n, _)| *n == r.name)
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        let speedup = if seed > 0.0 { r.ops_per_sec / seed } else { 0.0 };
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"name\": \"{}\", \"ops_per_sec\": {:.0}, \"ops_executed\": {}, \"wall_ms\": {:.3}, \"seed_ops_per_sec\": {:.0}, \"speedup_vs_seed\": {:.3}}}",
            r.name, r.ops_per_sec, r.ops_executed, r.wall_ms, seed, speedup
        );
        doc.row(row);
    }
    let json = doc.write("BENCH_interp.json");
    print!("{json}");
    for r in &rows {
        println!("{:<12} {:>12.0} ops/sec ({:.1} ms)", r.name, r.ops_per_sec, r.wall_ms);
    }

    if let Some(dir) = trace_dir {
        // Untimed traced pass: same config as the measured runs, with the
        // flight recorder on.
        for w in catalog(scale) {
            let mut vm = Vm::new(w.program.clone(), measured_config(&w));
            vm.enable_tracing(64 * 1024);
            w.run(&mut vm).expect("workload must not trap");
            let (t, m) = write_trace_artifacts(&dir, w.name, &vm).expect("write artifacts");
            eprintln!("traced {}: {} + {}", w.name, t.display(), m.display());
        }
    }

    if let Some(dir) = profile_dir {
        // Untimed profiled pass (profiling is on by default in VmConfig).
        for w in catalog(scale) {
            let mut vm = Vm::new(w.program.clone(), measured_config(&w));
            w.run(&mut vm).expect("workload must not trap");
            let (f, c) = write_profile_artifacts(&dir, w.name, &vm).expect("write artifacts");
            eprintln!("profiled {}: {} + {}", w.name, f.display(), c.display());
        }
    }
}
