//! `dchm-inspect` — offline reader for every artifact this repo's runs
//! emit: `<name>.folded` (cycle-attribution profiler stacks),
//! `<name>.census.json` (heap & state census), `<name>.metrics.json`
//! (VM counters + event-derived histograms) and the root `BENCH_*.json`
//! documents.
//!
//! Subcommands:
//!
//! * `report [--dir traces] [--workload NAME|all] [--top K]` — per
//!   workload: top-K attribution cells by estimated exec cycles, the
//!   exec/compile/GC cycle breakdown, heap census and state-residency
//!   tables; plus a summary of any `BENCH_*.json` in the current directory.
//! * `diff <A.folded> <B.folded> [--threshold PCT]` — per-cell sample
//!   deltas between two profiles. Exits 2 when any cell in B exceeds its A
//!   count by more than the threshold (default 10%) — the CI regression
//!   gate. Two identical profiles always report zero delta and exit 0.
//! * `export --prometheus [--dir traces] [--workload NAME]` — renders the
//!   workload's metrics/census/profile artifacts in the Prometheus text
//!   exposition format: a gauge per VM counter, census gauges per class,
//!   residency histograms with log2 `le` buckets, and per-cell sample
//!   counters.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dchm_bench::runner::flag_value;
use dchm_vm::trace::fleet::split_shard;
use dchm_vm::trace::profile::{folded_leaf_cells, parse_folded};
use serde::Value;
use std::collections::BTreeMap;

fn field<'a>(v: &'a Value, k: &str) -> Option<&'a Value> {
    match v {
        Value::Object(fields) => fields.iter().find(|(n, _)| n == k).map(|(_, v)| v),
        _ => None,
    }
}

fn as_u64(v: &Value) -> Option<u64> {
    match v {
        Value::Int(i) => u64::try_from(*i).ok(),
        _ => None,
    }
}

fn load_json(path: &Path) -> Option<Value> {
    let text = std::fs::read_to_string(path).ok()?;
    match serde_json::from_str::<Value>(&text) {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("warning: {}: {e}", path.display());
            None
        }
    }
}

/// Workload stems with a `.folded` file in `dir`, sorted.
fn discover(dir: &Path) -> Vec<String> {
    let mut stems = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            if let Some(stem) = name.strip_suffix(".folded") {
                stems.push(stem.to_string());
            }
        }
    }
    stems.sort();
    stems
}

// ---------------------------------------------------------------- report

fn report_workload(dir: &Path, stem: &str, top: usize) {
    println!("== {stem} ==");

    // Cycle breakdown from the metrics document, if present. A fleet
    // document carries one `vm_stats` object per shard; a solo one carries
    // a single object. Either way the headline is the aggregate, with
    // shard-prefixed rows underneath when sharded.
    let metrics = load_json(&dir.join(format!("{stem}.metrics.json")));
    let mut exec_cycles = None;
    if let Some(stats) = metrics.as_ref().and_then(|m| field(m, "vm_stats")) {
        let shards: Vec<&Value> = match stats {
            Value::Array(items) => items.iter().collect(),
            other => vec![other],
        };
        let rows: Vec<(u64, u64, u64)> = shards
            .iter()
            .map(|s| {
                let get = |k: &str| field(s, k).and_then(as_u64).unwrap_or(0);
                (get("exec_cycles"), get("compile_cycles"), get("gc_cycles"))
            })
            .collect();
        let (exec, compile, gc) = rows.iter().fold((0, 0, 0), |a, r| {
            (a.0 + r.0, a.1 + r.1, a.2 + r.2)
        });
        let total = (exec + compile + gc).max(1);
        println!(
            "cycles    exec {exec} ({:.1}%)  compile {compile} ({:.1}%)  gc {gc} ({:.1}%)",
            exec as f64 * 100.0 / total as f64,
            compile as f64 * 100.0 / total as f64,
            gc as f64 * 100.0 / total as f64,
        );
        if rows.len() > 1 {
            for (i, (e, c, g)) in rows.iter().enumerate() {
                println!("          shard{i}: exec {e}  compile {c}  gc {g}");
            }
        }
        exec_cycles = Some(exec);
    }

    // Top attribution cells from the folded profile.
    match std::fs::read_to_string(dir.join(format!("{stem}.folded"))) {
        Ok(text) => {
            // A fleet-merged profile roots every stack in a `shardN;`
            // frame: summarize per-shard sample totals first. Leaf-cell
            // ranking below is undisturbed — the shard root never touches
            // the leaf frame.
            let mut shard_totals: BTreeMap<usize, u64> = BTreeMap::new();
            for (stack, n) in parse_folded(&text) {
                if let Some((shard, _)) = split_shard(&stack) {
                    *shard_totals.entry(shard).or_insert(0) += n;
                }
            }
            if !shard_totals.is_empty() {
                let parts: Vec<String> = shard_totals
                    .iter()
                    .map(|(s, n)| format!("shard{s} {n}"))
                    .collect();
                println!("fleet     {} shards: {}", shard_totals.len(), parts.join("  "));
            }
            let cells = folded_leaf_cells(&text);
            let total: u64 = cells.values().sum();
            let mut ranked: Vec<(&String, &u64)> = cells.iter().collect();
            ranked.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            println!("profile   {} samples across {} cells", total, cells.len());
            println!("{:>7}  {:>6}  {:>14}  cell", "samples", "share", "est cycles");
            for (cell, n) in ranked.into_iter().take(top) {
                let share = *n as f64 / total.max(1) as f64;
                // Scale the sample share onto the measured exec cycles when
                // the metrics document is present.
                let est = exec_cycles
                    .map(|e| format!("{:.0}", share * e as f64))
                    .unwrap_or_else(|| "-".to_string());
                println!("{n:>7}  {:>5.1}%  {est:>14}  {cell}", share * 100.0);
            }
        }
        Err(e) => println!("profile   (no folded profile: {e})"),
    }

    // Heap census and state residency.
    if let Some(doc) = load_json(&dir.join(format!("{stem}.census.json"))) {
        let census = field(&doc, "census").unwrap_or(&doc);
        let get = |k: &str| field(census, k).and_then(as_u64).unwrap_or(0);
        println!(
            "census    at cycle {}: {} objects + {} arrays, {} bytes live ({} in special state)",
            get("at_cycle"),
            get("live_objects"),
            get("live_arrays"),
            get("object_bytes") + get("array_bytes"),
            get("in_special_state"),
        );
        if let Some(Value::Array(classes)) = field(census, "per_class") {
            let mut rows: Vec<(&Value, u64)> =
                classes.iter().map(|c| (c, field(c, "bytes").and_then(as_u64).unwrap_or(0))).collect();
            rows.sort_by_key(|r| std::cmp::Reverse(r.1));
            for (c, bytes) in rows.into_iter().take(top) {
                let name = match field(c, "name") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => "?".to_string(),
                };
                println!(
                    "          {:<24} {:>8} objects  {bytes:>10} bytes",
                    name,
                    field(c, "objects").and_then(as_u64).unwrap_or(0),
                );
            }
        }
        if let Some(Value::Array(res)) = field(census, "residency") {
            for r in res {
                let h = field(r, "residency");
                let (count, sum, max) = h
                    .map(|h| {
                        let g = |k: &str| field(h, k).and_then(as_u64).unwrap_or(0);
                        (g("count"), g("sum"), g("max"))
                    })
                    .unwrap_or((0, 0, 0));
                println!(
                    "residency class {} state {}: {} exits, {} stays, mean {:.0} cy (max {max})",
                    field(r, "class").and_then(as_u64).unwrap_or(0),
                    field(r, "state").and_then(as_u64).unwrap_or(0),
                    field(r, "exits").and_then(as_u64).unwrap_or(0),
                    count,
                    if count == 0 { 0.0 } else { sum as f64 / count as f64 },
                );
            }
        }
    }
    println!();
}

fn report_bench_docs() {
    let mut names: Vec<String> = std::fs::read_dir(".")
        .map(|rd| {
            rd.flatten()
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    for name in names {
        let Some(doc) = load_json(Path::new(&name)) else { continue };
        let s = |k: &str| match field(&doc, k) {
            Some(Value::Str(s)) => s.clone(),
            _ => "?".to_string(),
        };
        let rows = match field(&doc, "workloads") {
            Some(Value::Array(rows)) => rows.len(),
            _ => 0,
        };
        println!(
            "bench     {name}: {} ({}, {} rows, unit {}, schema v{})",
            s("benchmark"),
            s("scale"),
            rows,
            s("unit"),
            field(&doc, "schema_version").and_then(as_u64).unwrap_or(0),
        );
    }
}

fn report(dir: &Path, which: &str, top: usize) -> ExitCode {
    let stems = if which == "all" {
        discover(dir)
    } else {
        vec![which.to_string()]
    };
    if stems.is_empty() {
        eprintln!("no .folded profiles under {}", dir.display());
        return ExitCode::FAILURE;
    }
    for stem in &stems {
        report_workload(dir, stem, top);
    }
    report_bench_docs();
    ExitCode::SUCCESS
}

// ------------------------------------------------------------------ diff

fn diff(a_path: &Path, b_path: &Path, threshold_pct: f64) -> ExitCode {
    let read = |p: &Path| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("{}: {e}", p.display());
            std::process::exit(1);
        })
    };
    let a = folded_leaf_cells(&read(a_path));
    let b = folded_leaf_cells(&read(b_path));
    let mut cells: Vec<&String> = a.keys().chain(b.keys()).collect();
    cells.sort();
    cells.dedup();

    let mut regressions = 0u32;
    let mut changed = 0u32;
    println!("{:>10} {:>10} {:>9}  cell", "A samples", "B samples", "delta");
    for cell in cells {
        let (&na, &nb) = (a.get(cell).unwrap_or(&0), b.get(cell).unwrap_or(&0));
        if na == nb {
            continue;
        }
        changed += 1;
        // A cell regresses when B exceeds A by more than the threshold; a
        // cell absent from A regresses on any B samples.
        let regressed = nb as f64 > na as f64 * (1.0 + threshold_pct / 100.0);
        if regressed {
            regressions += 1;
        }
        let delta = nb as i64 - na as i64;
        println!("{na:>10} {nb:>10} {delta:>+9}  {cell}{}", if regressed { "  REGRESSED" } else { "" });
    }
    if changed == 0 {
        println!("profiles identical: {} cells, zero per-cell delta", a.len());
    }
    println!(
        "{changed} cells changed, {regressions} regressed (threshold {threshold_pct}%)"
    );
    if regressions > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

// ---------------------------------------------------------------- export

fn metric_name(parts: &[&str]) -> String {
    let joined = parts.join("_");
    joined
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect()
}

/// True for objects with the trace `Histogram` shape.
fn is_histogram(v: &Value) -> bool {
    ["count", "min", "max", "sum", "buckets"].iter().all(|k| field(v, k).is_some())
}

fn emit_histogram(name: &str, labels: &str, v: &Value) {
    let get = |k: &str| field(v, k).and_then(as_u64).unwrap_or(0);
    let buckets = match field(v, "buckets") {
        Some(Value::Array(b)) => b.iter().filter_map(as_u64).collect(),
        _ => Vec::new(),
    };
    let mut cumulative = 0u64;
    let sep = if labels.is_empty() { "" } else { "," };
    for (i, n) in buckets.iter().enumerate() {
        cumulative += n;
        // Log2 bucket i covers [2^i, 2^(i+1)): upper bound exclusive.
        println!(
            "{name}_bucket{{{labels}{sep}le=\"{}\"}} {cumulative}",
            2u128 << i
        );
    }
    println!("{name}_bucket{{{labels}{sep}le=\"+Inf\"}} {}", get("count"));
    if labels.is_empty() {
        println!("{name}_sum {}", get("sum"));
        println!("{name}_count {}", get("count"));
    } else {
        println!("{name}_sum{{{labels}}} {}", get("sum"));
        println!("{name}_count{{{labels}}} {}", get("count"));
    }
}

/// Flattens a JSON value into Prometheus gauges under `prefix`. Arrays of
/// numbers become indexed series; histogram-shaped objects become
/// histograms; arrays of objects are skipped (handled by callers that know
/// their schema).
fn emit_flat(prefix: &[&str], v: &Value) {
    match v {
        Value::Int(i) => println!("{} {i}", metric_name(prefix)),
        Value::Float(f) => println!("{} {f}", metric_name(prefix)),
        Value::Bool(b) => println!("{} {}", metric_name(prefix), u8::from(*b)),
        Value::Object(fields) => {
            if is_histogram(v) {
                emit_histogram(&metric_name(prefix), "", v);
            } else {
                for (k, inner) in fields {
                    let mut parts = prefix.to_vec();
                    parts.push(k);
                    emit_flat(&parts, inner);
                }
            }
        }
        Value::Array(items) => {
            if items.iter().all(|i| matches!(i, Value::Int(_) | Value::Float(_))) {
                for (idx, item) in items.iter().enumerate() {
                    match item {
                        Value::Int(i) => {
                            println!("{}{{index=\"{idx}\"}} {i}", metric_name(prefix));
                        }
                        Value::Float(f) => {
                            println!("{}{{index=\"{idx}\"}} {f}", metric_name(prefix));
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
        Value::Str(_) | Value::Null => {}
    }
}

fn export_prometheus(dir: &Path, stem: &str) -> ExitCode {
    let mut found = false;

    if let Some(doc) = load_json(&dir.join(format!("{stem}.metrics.json"))) {
        found = true;
        if let Some(stats) = field(&doc, "vm_stats") {
            println!("# TYPE dchm_vm gauge");
            emit_flat(&["dchm_vm"], stats);
        }
        if let Some(Value::Object(fields)) = field(&doc, "trace_metrics") {
            // Scalar stream accounting only; the per-method/per-class
            // breakdowns stay in the JSON document.
            for (k, v) in fields {
                if matches!(v, Value::Int(_) | Value::Float(_)) {
                    emit_flat(&["dchm_trace", k], v);
                }
            }
        }
    }

    if let Some(doc) = load_json(&dir.join(format!("{stem}.census.json"))) {
        found = true;
        let census = field(&doc, "census").unwrap_or(&doc);
        if let Value::Object(fields) = census {
            for (k, v) in fields {
                if matches!(v, Value::Int(_) | Value::Float(_)) {
                    emit_flat(&["dchm_census", k], v);
                }
            }
        }
        if let Some(Value::Array(classes)) = field(census, "per_class") {
            for c in classes {
                let name = match field(c, "name") {
                    Some(Value::Str(s)) => s.clone(),
                    _ => continue,
                };
                for k in ["objects", "bytes"] {
                    if let Some(n) = field(c, k).and_then(as_u64) {
                        println!("dchm_census_class_{k}{{class=\"{name}\"}} {n}");
                    }
                }
            }
        }
        if let Some(Value::Array(res)) = field(census, "residency") {
            for r in res {
                let class = field(r, "class").and_then(as_u64).unwrap_or(0);
                let state = field(r, "state").and_then(as_u64).unwrap_or(0);
                let labels = format!("class=\"{class}\",state=\"{state}\"");
                if let Some(n) = field(r, "exits").and_then(as_u64) {
                    println!("dchm_census_state_exits{{{labels}}} {n}");
                }
                if let Some(h) = field(r, "residency") {
                    emit_histogram("dchm_census_state_residency_cycles", &labels, h);
                }
            }
        }
    }

    if let Ok(text) = std::fs::read_to_string(dir.join(format!("{stem}.folded"))) {
        found = true;
        let stacks = parse_folded(&text);
        let total: u64 = stacks.iter().map(|(_, n)| n).sum();
        println!("dchm_profile_samples_total {total}");
        let mut cells: Vec<(&String, &u64)> = Vec::new();
        let leaves = folded_leaf_cells(&text);
        cells.extend(leaves.iter());
        for (cell, n) in cells {
            println!("dchm_profile_cell_samples{{cell=\"{cell}\"}} {n}");
        }
    }

    if found {
        ExitCode::SUCCESS
    } else {
        eprintln!("no artifacts for {stem} under {}", dir.display());
        ExitCode::FAILURE
    }
}

// ------------------------------------------------------------------ main

fn usage() -> ExitCode {
    eprintln!(
        "usage: dchm-inspect report [--dir traces] [--workload NAME|all] [--top K]\n       \
         dchm-inspect diff <A.folded> <B.folded> [--threshold PCT]\n       \
         dchm-inspect export --prometheus [--dir traces] [--workload NAME]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let dir = PathBuf::from(flag_value(&args, "--dir").unwrap_or_else(|| "traces".to_string()));
    match args.first().map(String::as_str) {
        Some("report") => {
            let which = flag_value(&args, "--workload").unwrap_or_else(|| "all".to_string());
            let top: usize = flag_value(&args, "--top")
                .map(|v| v.parse().expect("--top takes a count"))
                .unwrap_or(5);
            report(&dir, &which, top)
        }
        Some("diff") => {
            let paths: Vec<&String> = args[1..]
                .iter()
                .take_while(|a| !a.starts_with("--"))
                .collect();
            if paths.len() != 2 {
                return usage();
            }
            let threshold: f64 = flag_value(&args, "--threshold")
                .map(|v| v.parse().expect("--threshold takes a percentage"))
                .unwrap_or(10.0);
            diff(Path::new(paths[0]), Path::new(paths[1]), threshold)
        }
        Some("export") => {
            if !args.iter().any(|a| a == "--prometheus") {
                return usage();
            }
            let stem =
                flag_value(&args, "--workload").unwrap_or_else(|| "SalaryDB".to_string());
            export_prometheus(&dir, &stem)
        }
        _ => usage(),
    }
}
