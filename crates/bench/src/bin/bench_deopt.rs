//! Guard/deopt overhead: `BENCH_deopt.json` emitter.
//!
//! Measures what the guard-and-recover subsystem costs in *modeled* cycles
//! (everything here is deterministic — no wall clock):
//!
//! * `clock_guards_on` / `clock_guards_off` — the full mutated run with
//!   state guards planted vs. the same plan with `emit_guards: false`.
//!   Guard ops execute for free (0 cycles) but grow specialized code (4
//!   bytes + 4 per binding), which is billed at compile time, and they veto
//!   inlining callees that store guarded fields — the overhead is the net
//!   of both.
//! * `clock_forced` / `deopts_forced` — the same run under the fault
//!   injector forcing guard failures (seed 1): every specialized frame that
//!   trips a guard pays a baseline compile and finishes the method in
//!   baseline code. This bounds the recovery cost of a worst-case
//!   mutation storm.
//!
//! Usage:
//! `cargo run --release -p dchm-bench --bin bench_deopt [--small] [--trace <dir>]`
//!
//! `--trace <dir>` re-runs each workload's forced-failure configuration
//! with the event tracer on and writes `<dir>/<name>.deopt.trace.json` +
//! metrics — the `GuardFail`/`Deopt`/`BaselineResume` stream behind the
//! numbers in `BENCH_deopt.json`. `--profile <dir>` writes the matching
//! attribution artifacts (`<name>.deopt.folded` + `.census.json`) for the
//! same forced-failure run.

use std::fmt::Write as _;

use dchm_bench::artifacts::{
    profile_dir_flag, trace_dir_flag, write_profile_artifacts, write_trace_artifacts,
};
use dchm_bench::prepare_workload;
use dchm_bench::runner::{mutated_vm, scale_from_args, BenchJson};
use dchm_vm::{FaultConfig, FaultInjector};
use dchm_workloads::{catalog, Workload};

struct Row {
    name: &'static str,
    clock_off: u64,
    clock_on: u64,
    clock_forced: u64,
    guards_executed: u64,
    deopts_forced: u64,
    baseline_compiles_forced: u64,
}

/// The forced-failure run again, flight recorder on, artifacts written.
fn trace_forced(w: &Workload, dir: &std::path::Path) {
    let prepared = prepare_workload(w);
    let mut vm = mutated_vm(&prepared, w, true);
    vm.enable_tracing(64 * 1024);
    vm.state.injector = Some(FaultInjector::new(FaultConfig::guard_failures(1)));
    w.run(&mut vm).expect("forced-failure run must not trap");
    let name = format!("{}.deopt", w.name);
    let (t, m) = write_trace_artifacts(dir, &name, &vm).expect("write artifacts");
    eprintln!("traced {}: {} + {}", w.name, t.display(), m.display());
}

fn measure(w: &Workload) -> Row {
    let prepared = prepare_workload(w);

    let mut on = mutated_vm(&prepared, w, true);
    w.run(&mut on).expect("guarded run must not trap");

    let mut off = mutated_vm(&prepared, w, false);
    w.run(&mut off).expect("unguarded run must not trap");

    let mut forced = mutated_vm(&prepared, w, true);
    forced.state.injector = Some(FaultInjector::new(FaultConfig::guard_failures(1)));
    w.run(&mut forced).expect("forced-failure run must not trap");

    Row {
        name: w.name,
        clock_off: off.cycles(),
        clock_on: on.cycles(),
        clock_forced: forced.cycles(),
        guards_executed: on.stats().guards_executed,
        deopts_forced: forced.stats().deopts,
        baseline_compiles_forced: forced.stats().deopt_baseline_compiles,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace_dir = trace_dir_flag(&args);
    let scale = scale_from_args(&args);
    let rows: Vec<Row> = catalog(scale).iter().map(measure).collect();

    let mut doc = BenchJson::new("guard_deopt_overhead", scale, "modeled_cycles");
    doc.meta("forced_failure_seed", "1");
    for r in &rows {
        let overhead = r.clock_on as f64 / r.clock_off as f64 - 1.0;
        let forced = r.clock_forced as f64 / r.clock_on as f64 - 1.0;
        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"name\": \"{}\", \"clock_guards_off\": {}, \"clock_guards_on\": {}, \
             \"guard_overhead_pct\": {:.3}, \"clock_forced_failures\": {}, \
             \"forced_failure_overhead_pct\": {:.3}, \"guards_executed\": {}, \
             \"deopts_forced\": {}, \"baseline_compiles_forced\": {}}}",
            r.name,
            r.clock_off,
            r.clock_on,
            overhead * 100.0,
            r.clock_forced,
            forced * 100.0,
            r.guards_executed,
            r.deopts_forced,
            r.baseline_compiles_forced,
        );
        doc.row(row);
    }
    let json = doc.write("BENCH_deopt.json");
    print!("{json}");
    eprintln!("wrote BENCH_deopt.json");

    if let Some(dir) = trace_dir {
        for w in catalog(scale) {
            trace_forced(&w, &dir);
        }
    }

    if let Some(dir) = profile_dir_flag(&args) {
        // Forced-failure run again, attribution on: which methods the deopt
        // storm pins back to baseline/general code.
        for w in catalog(scale) {
            let prepared = prepare_workload(&w);
            let mut vm = mutated_vm(&prepared, &w, true);
            vm.state.injector = Some(FaultInjector::new(FaultConfig::guard_failures(1)));
            w.run(&mut vm).expect("forced-failure run must not trap");
            let name = format!("{}.deopt", w.name);
            let (f, c) = write_profile_artifacts(&dir, &name, &vm).expect("write artifacts");
            eprintln!("profiled {}: {} + {}", w.name, f.display(), c.display());
        }
    }
}
