//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro table1            # Table 1: benchmark inventory
//! repro fig9              # overall speedups
//! repro fig10             # code size increase
//! repro fig11             # compilation time increase
//! repro fig12             # TIB space increase
//! repro fig13             # JBB2000 per-warehouse throughput delta
//! repro fig14             # ... with accelerated hotness detection
//! repro fig15             # JBB2005 per-warehouse throughput delta
//! repro all               # everything
//! repro all --small       # everything at test scale (fast)
//! repro plan <benchmark>  # print the mutation plan JSON for one benchmark
//! ```

use dchm_bench::{measure, measure_suite, prepare_workload, table1, Measurement};
use dchm_workloads::{catalog, jbb, Scale};

fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

fn print_table1(scale: Scale) {
    println!("== Table 1: Benchmarks used in the empirical study ==");
    println!("{:<14} {:>8} {:>8}", "Program", "Classes", "Methods");
    for (name, c, m) in table1(scale) {
        println!("{name:<14} {c:>8} {m:>8}");
    }
    println!("(paper: SalaryDB 3/8, SimLogic 3/29, CSVToXML 5/32, Java2XHTML 2/8,");
    println!(" Weka 22/423, SPECjbb2000 81/978, SPECjbb2005 65/702 — full apps;");
    println!(" our reconstructions carry the hot structure, not the full class count)");
    println!();
}

fn print_fig9(suite: &[Measurement]) {
    println!("== Figure 9: Overall performance improvement ==");
    println!("{:<14} {:>10}   paper", "Program", "speedup");
    let paper = [
        ("SalaryDB", "31.4%"),
        ("SimLogic", "~8%"),
        ("CSVToXML", "3.3%"),
        ("Java2XHTML", "2.9%"),
        ("Weka", "4.7%"),
        ("SPECjbb2000", "4.5%"),
        ("SPECjbb2005", "1.9%"),
    ];
    for m in suite {
        let p = paper
            .iter()
            .find(|(n, _)| *n == m.name)
            .map(|(_, v)| *v)
            .unwrap_or("-");
        println!("{:<14} {:>10}   {p}", m.name, pct(m.speedup()));
    }
    println!();
}

fn print_fig10(suite: &[Measurement]) {
    println!("== Figure 10: Code size increase ==");
    println!("{:<14} {:>10}  (paper: <8% everywhere)", "Program", "increase");
    for m in suite {
        println!("{:<14} {:>10}", m.name, pct(m.code_size_increase()));
    }
    println!();
}

fn print_fig11(suite: &[Measurement]) {
    println!("== Figure 11: Opt compiler's compilation time increase ==");
    println!(
        "{:<14} {:>10} {:>18}  (paper: <=17%, fractions 0.3%-3.1%)",
        "Program", "increase", "compile/total"
    );
    for m in suite {
        println!(
            "{:<14} {:>10} {:>17}%",
            m.name,
            pct(m.compile_time_increase()),
            format!("{:.1}", m.compile_fraction() * 100.0)
        );
    }
    println!();
}

fn print_fig12(suite: &[Measurement]) {
    println!("== Figure 12: TIB space increase ==");
    println!(
        "{:<14} {:>12} {:>10}  (paper: <=~1000 bytes)",
        "Program", "bytes", "relative"
    );
    for m in suite {
        println!(
            "{:<14} {:>12} {:>10}",
            m.name,
            m.tib_increase_bytes(),
            pct(m.tib_increase_rel())
        );
    }
    println!();
}

fn print_warehouse_fig(title: &str, deltas: &[f64], paper_note: &str) {
    println!("== {title} ==");
    print!("warehouse: ");
    for i in 0..deltas.len() {
        print!("{:>8}", format!("wh{}", i + 1));
    }
    println!();
    print!("delta:     ");
    for d in deltas {
        print!("{:>8}", format!("{:+.1}%", d * 100.0));
    }
    println!("\n({paper_note})\n");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    };

    let need_suite = matches!(what, "all" | "fig9" | "fig10" | "fig11" | "fig12");
    let suite = if need_suite {
        eprintln!("measuring full suite at {scale:?} scale (2 runs per benchmark)...");
        measure_suite(scale)
    } else {
        Vec::new()
    };

    match what {
        "plan" => {
            let name = args.get(1).cloned().unwrap_or_else(|| "SalaryDB".into());
            let Some(w) = catalog(scale).into_iter().find(|w| w.name == name) else {
                eprintln!("unknown benchmark {name}; use a Table 1 name");
                std::process::exit(2);
            };
            let prepared = prepare_workload(&w);
            println!("{}", prepared.plan.to_json().expect("serializable"));
        }
        "table1" => print_table1(scale),
        "fig9" => print_fig9(&suite),
        "fig10" => print_fig10(&suite),
        "fig11" => print_fig11(&suite),
        "fig12" => print_fig12(&suite),
        "fig13" => {
            let m = measure(&jbb::build(jbb::JbbVariant::Jbb2000, scale), false);
            print_warehouse_fig(
                "Figure 13: SPECjbb2000 throughput change due to mutation",
                &m.warehouse_deltas(),
                "paper: wh1-2 dip from compilation, later warehouses gain ~4-5%",
            );
        }
        "fig14" => {
            let m = measure(&jbb::build(jbb::JbbVariant::Jbb2000, scale), true);
            print_warehouse_fig(
                "Figure 14: SPECjbb2000 with accelerated hotness detection",
                &m.warehouse_deltas(),
                "paper: sharper wh1 dip, steady state arrives one warehouse earlier",
            );
        }
        "fig15" => {
            let m = measure(&jbb::build(jbb::JbbVariant::Jbb2005, scale), false);
            print_warehouse_fig(
                "Figure 15: SPECjbb2005 throughput change due to mutation",
                &m.warehouse_deltas(),
                "paper: wh1-3 dip, smaller steady-state gain (~2%)",
            );
        }
        "all" => {
            print_table1(scale);
            print_fig9(&suite);
            print_fig10(&suite);
            print_fig11(&suite);
            print_fig12(&suite);
            let m = measure(&jbb::build(jbb::JbbVariant::Jbb2000, scale), false);
            print_warehouse_fig(
                "Figure 13: SPECjbb2000 throughput change due to mutation",
                &m.warehouse_deltas(),
                "paper: wh1-2 dip from compilation, later warehouses gain ~4-5%",
            );
            let m = measure(&jbb::build(jbb::JbbVariant::Jbb2000, scale), true);
            print_warehouse_fig(
                "Figure 14: SPECjbb2000 with accelerated hotness detection",
                &m.warehouse_deltas(),
                "paper: sharper wh1 dip, steady state arrives one warehouse earlier",
            );
            let m = measure(&jbb::build(jbb::JbbVariant::Jbb2005, scale), false);
            print_warehouse_fig(
                "Figure 15: SPECjbb2005 throughput change due to mutation",
                &m.warehouse_deltas(),
                "paper: wh1-3 dip, smaller steady-state gain (~2%)",
            );
        }
        other => {
            eprintln!("unknown target {other}; use table1|fig9..fig15|all [--small]");
            std::process::exit(2);
        }
    }
}
