//! Sharded multi-tenant serving: `BENCH_fleet.json` emitter.
//!
//! Two experiments over the `dchm_vm::fleet` executor:
//!
//! 1. **Scaling** — the 7-workload catalog replicated ×4 (28 tenant jobs)
//!    scheduled across 1/2/4/8 shard workers under a static LPT
//!    assignment. Throughput is *modeled*: aggregate ops divided by the
//!    modeled makespan (slowest shard's summed clock) converted through
//!    the cost model's frequency — deterministic, machine-independent, and
//!    honest on a single-core host where wall time cannot show overlap.
//!    Wall seconds ride along as an informational column. Every job is
//!    asserted bit-identical to its solo golden.
//! 2. **64-tenant fan-out** — identical SalaryDB tenants with the shared
//!    compile-artifact cache on vs off: the summed host compile wall must
//!    collapse when every tenant past the first adopts published
//!    artifacts, with zero modeled divergence.
//!
//! Usage:
//! `cargo run --release -p dchm-bench --bin bench_fleet [--small]
//!  [--tenants N]`

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use dchm_bench::runner::{flag_value, scale_from_args, BenchJson};
use dchm_bench::{measured_config, prepare_workload};
use dchm_ir::cost::CostModel;
use dchm_testutil::fleet::{run_job, run_jobs_fleet, FleetJob, JobReport};
use dchm_vm::fleet::{lpt_assignment, makespan, FleetConfig};
use dchm_vm::SharedCodeCache;
use dchm_workloads::{catalog, Workload};

/// Replicas of each catalog workload in the scaling job list: enough that
/// the LPT bound (`makespan <= total/workers + max_job`) guarantees >= 2x
/// modeled speedup at 4 workers for any weight distribution.
const REPLICAS: usize = 4;

/// The measured-config fleet job for `w`, sharing one prepared pipeline.
fn job_for(w: &Workload, prepared: &Arc<dchm_core::pipeline::Prepared>, name: String) -> FleetJob {
    FleetJob {
        name,
        workload: w.clone(),
        prepared: Arc::clone(prepared),
        config: measured_config(w),
        fault: None,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = scale_from_args(&args);
    let tenants: usize = flag_value(&args, "--tenants")
        .map(|v| v.parse().expect("--tenants takes a count"))
        .unwrap_or(64);

    let mut doc = BenchJson::new("fleet_scaling", scale, "aggregate_ops_per_sec");
    doc.meta("replicas_per_workload", &REPLICAS.to_string());

    // Offline pipelines once per workload, shared by every replica and
    // both experiments.
    let workloads = catalog(scale);
    let prepared: Vec<Arc<dchm_core::pipeline::Prepared>> = workloads
        .iter()
        .map(|w| {
            eprintln!("preparing {}", w.name);
            Arc::new(prepare_workload(w))
        })
        .collect();

    // Solo goldens double as the calibration run: each job's modeled clock
    // is its LPT weight, and its stats/folded are the bit-identity oracle.
    let goldens: Vec<JobReport> = workloads
        .iter()
        .zip(&prepared)
        .map(|(w, p)| {
            eprintln!("calibrating {}", w.name);
            run_job(&job_for(w, p, w.name.to_string()), None)
        })
        .collect();

    let mut jobs: Vec<FleetJob> = Vec::new();
    let mut weights: Vec<u64> = Vec::new();
    let mut golden_of: Vec<usize> = Vec::new();
    for replica in 0..REPLICAS {
        for (i, w) in workloads.iter().enumerate() {
            jobs.push(job_for(w, &prepared[i], format!("{}[{replica}]", w.name)));
            weights.push(goldens[i].obs.clock);
            golden_of.push(i);
        }
    }
    let total_ops: u64 = golden_of.iter().map(|&i| goldens[i].obs.ops).sum();

    let mut base_ops_per_sec = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let assignment = lpt_assignment(&weights, workers);
        let ms = makespan(&weights, &assignment, workers);
        let t0 = Instant::now();
        let reports = run_jobs_fleet(
            &FleetConfig::pinned(workers, assignment),
            &jobs,
            None,
        );
        let wall_secs = t0.elapsed().as_secs_f64();

        let output_match = reports
            .iter()
            .zip(&golden_of)
            .all(|(r, &g)| r.modeled() == goldens[g].modeled());
        assert!(output_match, "{workers}-worker fleet diverged from solo");

        let modeled_secs = CostModel::cycles_to_secs(ms);
        let ops_per_sec = total_ops as f64 / modeled_secs;
        if workers == 1 {
            base_ops_per_sec = ops_per_sec;
        }
        let speedup = ops_per_sec / base_ops_per_sec;

        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"name\": \"workers-{workers}\", \"workers\": {workers}, \
             \"jobs\": {}, \"makespan_cycles\": {ms}, \
             \"aggregate_ops_per_sec\": {ops_per_sec:.1}, \
             \"speedup_vs_1\": {speedup:.3}, \"wall_secs\": {wall_secs:.3}, \
             \"output_match\": {output_match}}}",
            jobs.len(),
        );
        doc.row(row);
        println!(
            "workers {workers}: makespan {ms} cycles, {ops_per_sec:.0} ops/s \
             (x{speedup:.2}), wall {wall_secs:.2}s"
        );
    }

    // 64-tenant fan-out: identical SalaryDB tenants, shared cache off/on.
    let salary_idx = workloads
        .iter()
        .position(|w| w.name == "SalaryDB")
        .expect("SalaryDB is in the catalog");
    let fan_jobs: Vec<FleetJob> = (0..tenants)
        .map(|t| {
            job_for(
                &workloads[salary_idx],
                &prepared[salary_idx],
                format!("SalaryDB[{t}]"),
            )
        })
        .collect();
    let fan_golden = &goldens[salary_idx];
    let cfg = FleetConfig::dynamic(4);

    eprintln!("fan-out: {tenants} tenants, shared cache off");
    let off = run_jobs_fleet(&cfg, &fan_jobs, None);
    eprintln!("fan-out: {tenants} tenants, shared cache on");
    let shared = Arc::new(SharedCodeCache::new(4096));
    let on = run_jobs_fleet(&cfg, &fan_jobs, Some(&shared));

    let fan_match = off
        .iter()
        .chain(&on)
        .all(|r| r.modeled() == fan_golden.modeled());
    assert!(fan_match, "fan-out tenants diverged from solo");
    let wall_off: u64 = off.iter().map(|r| r.compile_wall_nanos).sum();
    let wall_on: u64 = on.iter().map(|r| r.compile_wall_nanos).sum();
    let hits: u64 = on.iter().map(|r| r.shared_hits).sum();
    let misses: u64 = on.iter().map(|r| r.shared_misses).sum();
    let reduction = (1.0 - wall_on as f64 / (wall_off as f64).max(1e-9)) * 100.0;

    let mut fanout = String::new();
    let _ = write!(
        fanout,
        "{{\"workload\": \"SalaryDB\", \"tenants\": {tenants}, \
         \"compile_wall_ms_shared_off\": {:.3}, \
         \"compile_wall_ms_shared_on\": {:.3}, \
         \"compile_wall_reduction_pct\": {reduction:.2}, \
         \"shared_hits\": {hits}, \"shared_misses\": {misses}, \
         \"output_match\": {fan_match}}}",
        wall_off as f64 / 1e6,
        wall_on as f64 / 1e6,
    );
    doc.meta("fanout", &fanout);
    println!(
        "fan-out {tenants} tenants: compile wall {:.1} ms -> {:.1} ms \
         ({reduction:.1}% saved), {hits} shared hits",
        wall_off as f64 / 1e6,
        wall_on as f64 / 1e6
    );

    let json = doc.write("BENCH_fleet.json");
    print!("{json}");
    eprintln!("wrote BENCH_fleet.json");
}
