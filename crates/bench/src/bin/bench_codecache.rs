//! Compiled-code cache effectiveness: `BENCH_codecache.json` emitter.
//!
//! Drives a *plan-reload churn* scenario — the flip-flop-heavy case the
//! state-keyed code cache exists for. Each round re-installs a freshly
//! built mutation engine (same plan) into the running VM via
//! `install_online` and runs the workload again: every reinstall recompiles
//! all instrumented methods at their current level and regenerates every
//! state specialization with the same bindings, so from round two on the
//! cache answers the whole fan-out.
//!
//! Each workload runs the identical scenario twice — cache on (default
//! capacity) and cache off (`code_cache_capacity: 0`) — and the harness
//! *asserts* that output checksum, modeled clock and op count are
//! bit-identical between the two, which is the cache's determinism
//! contract. The reported number is the host-side compilation wall time
//! (`VmState::compile_wall_nanos`) saved by the cache, plus the hit/miss/
//! eviction counters and the lift-cache (hash-consed baseline IR) counters.
//!
//! Usage:
//! `cargo run --release -p dchm-bench --bin bench_codecache [--small] [--rounds N]
//!  [--profile <dir>]`
//!
//! `--profile <dir>` re-runs the cache-on churn scenario per workload and
//! writes `<dir>/<name>.codecache.folded` + `.census.json` — where the
//! reinstall churn actually spends its cycles, per (method × tier × state).

use std::fmt::Write as _;

use dchm_bench::artifacts::{profile_dir_flag, write_profile_artifacts};
use dchm_bench::measured_config;
use dchm_bench::runner::{flag_value, scale_from_args, BenchJson};
use dchm_core::MutationEngine;
use dchm_vm::Vm;
use dchm_workloads::{catalog, Workload};

struct ChurnRun {
    clock: u64,
    ops: u64,
    checksum: u64,
    compile_wall_nanos: u64,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    lift_hits: u64,
    lift_misses: u64,
    lift_consed: u64,
}

/// `rounds` rounds of (reinstall plan → run workload) on one VM; the
/// finished VM, for stats extraction or artifact export.
fn churn_vm(w: &Workload, capacity: usize, rounds: u32) -> Vm {
    let prepared = dchm_bench::prepare_workload(w);
    let mut cfg = measured_config(w);
    cfg.code_cache_capacity = capacity;
    let mut vm = Vm::new(prepared.program.clone(), cfg);
    for _ in 0..rounds {
        let engine = MutationEngine::new(prepared.plan.clone(), prepared.olc.clone());
        engine.install_online(&mut vm);
        w.run(&mut vm).expect("churn round must not trap");
    }
    vm
}

fn churn(w: &Workload, capacity: usize, rounds: u32) -> ChurnRun {
    let vm = churn_vm(w, capacity, rounds);
    let s = vm.stats();
    ChurnRun {
        clock: vm.cycles(),
        ops: s.ops_executed,
        checksum: vm.state.output.checksum,
        compile_wall_nanos: vm.state.compile_wall_nanos,
        cache_hits: s.code_cache_hits,
        cache_misses: s.code_cache_misses,
        cache_evictions: s.code_cache_evictions,
        lift_hits: vm.state.lift_cache.hits,
        lift_misses: vm.state.lift_cache.misses,
        lift_consed: vm.state.lift_cache.consed,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = scale_from_args(&args);
    let rounds: u32 = flag_value(&args, "--rounds")
        .map(|v| v.parse().expect("--rounds takes a count"))
        .unwrap_or(4);

    let mut doc = BenchJson::new("codecache_effectiveness", scale, "compile_wall_nanos");
    doc.meta("churn_rounds", &rounds.to_string());

    for w in catalog(scale) {
        let on = churn(&w, dchm_vm::VmConfig::default().code_cache_capacity, rounds);
        let off = churn(&w, 0, rounds);

        // The determinism contract: the cache may only elide host work.
        assert_eq!(
            (on.checksum, on.clock, on.ops),
            (off.checksum, off.clock, off.ops),
            "{}: code cache changed a modeled observable",
            w.name
        );
        assert_eq!(off.cache_hits, 0, "{}: disabled cache counted hits", w.name);

        let wall_on_ms = on.compile_wall_nanos as f64 / 1e6;
        let wall_off_ms = off.compile_wall_nanos as f64 / 1e6;
        let reduction = (1.0 - wall_on_ms / wall_off_ms.max(1e-9)) * 100.0;
        let hit_rate = on.cache_hits as f64 / (on.cache_hits + on.cache_misses).max(1) as f64;

        let mut row = String::new();
        let _ = write!(
            row,
            "{{\"name\": \"{}\", \"compile_wall_ms_cache_off\": {:.3}, \
             \"compile_wall_ms_cache_on\": {:.3}, \"wall_reduction_pct\": {:.2}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \"cache_evictions\": {}, \
             \"hit_rate\": {:.4}, \"lift_hits\": {}, \"lift_misses\": {}, \
             \"lift_consed\": {}, \"clock\": {}, \"checksum_match\": true}}",
            w.name,
            wall_off_ms,
            wall_on_ms,
            reduction,
            on.cache_hits,
            on.cache_misses,
            on.cache_evictions,
            hit_rate,
            on.lift_hits,
            on.lift_misses,
            on.lift_consed,
            on.clock,
        );
        doc.row(row);
        println!(
            "{:<12} compile wall {:.1} ms -> {:.1} ms ({:+.1}%)  hits {}  misses {}  hit rate {:.1}%",
            w.name,
            wall_off_ms,
            wall_on_ms,
            -reduction,
            on.cache_hits,
            on.cache_misses,
            hit_rate * 100.0
        );
    }

    let json = doc.write("BENCH_codecache.json");
    print!("{json}");
    eprintln!("wrote BENCH_codecache.json");

    if let Some(dir) = profile_dir_flag(&args) {
        for w in catalog(scale) {
            let vm = churn_vm(&w, dchm_vm::VmConfig::default().code_cache_capacity, rounds);
            let name = format!("{}.codecache", w.name);
            let (f, c) = write_profile_artifacts(&dir, &name, &vm).expect("write artifacts");
            eprintln!("profiled {}: {} + {}", w.name, f.display(), c.display());
        }
    }
}
