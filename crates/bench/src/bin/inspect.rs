//! `inspect` — diagnostic deep-dive into one benchmark: the mutation plan,
//! hot methods, final compilation levels and special-code usage for both
//! the baseline and mutated runs.
//!
//! ```text
//! inspect SalaryDB [--small]
//! ```

use dchm_bench::{measured_config, prepare_workload};
use dchm_workloads::{catalog, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args.first().cloned().unwrap_or_else(|| "SalaryDB".into());
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    };
    let Some(w) = catalog(scale).into_iter().find(|w| w.name == name) else {
        eprintln!("unknown benchmark {name}");
        std::process::exit(2);
    };

    let prepared = prepare_workload(&w);
    println!("== plan for {} ==", w.name);
    for mc in &prepared.plan.classes {
        let p = &w.program;
        println!(
            "mutable class {}: inst fields {:?}, static fields {:?}, {} hot states",
            p.class(mc.class).name,
            mc.instance_state_fields
                .iter()
                .map(|&f| p.field(f).name.clone())
                .collect::<Vec<_>>(),
            mc.static_state_fields
                .iter()
                .map(|&f| p.field(f).name.clone())
                .collect::<Vec<_>>(),
            mc.hot_states.len(),
        );
        for &m in &mc.mutable_methods {
            println!("    mutable method {}", p.method(m).name);
        }
    }
    println!("olc refs: {}", prepared.olc.len());

    for (label, mutated) in [("baseline", false), ("mutated", true)] {
        let mut vm = if mutated {
            prepared.make_vm(measured_config(&w))
        } else {
            prepared.make_baseline_vm(measured_config(&w))
        };
        w.run(&mut vm).unwrap();
        let s = vm.stats();
        println!("\n== {label} run ==");
        // The VmStats Display table is the standard dump (stable layout,
        // shared with the bench bins).
        println!("{s}");
        println!("hot methods:");
        for (mid, prof) in s.hot_methods().into_iter().take(10) {
            let md = w.program.method(mid);
            println!(
                "  {prof}  {}::{}",
                w.program.class(md.owner).name,
                md.name
            );
        }
    }
}
