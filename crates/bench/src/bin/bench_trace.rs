//! `bench_trace` — traced workload runs and artifact emitter.
//!
//! Runs the mutated pipeline with event tracing on and writes, per
//! workload, a Chrome trace-event/Perfetto JSON (`<name>.trace.json`) and a
//! metrics document (`<name>.metrics.json`: VM counters + event-derived
//! histograms). Also the home of the tracing transparency check CI runs:
//! `--overhead-check <pct>` asserts that tracing on vs. off leaves the
//! modeled clock, op count and output bit-identical (hard, deterministic)
//! and that the wall-clock cost of a fully-traced run stays under the given
//! budget (best-of-3, the flaky part kept deliberately generous).
//!
//! Usage:
//! ```text
//! bench_trace [--small] [--workload <name>|all] [--out <dir>] [--profile <dir>]
//!             [--overhead-check <pct>]
//! ```
//!
//! `--profile <dir>` additionally writes the attribution artifacts for each
//! emitted workload: `<name>.folded` (cycle-sampling profiler stacks) and
//! `<name>.census.json` (end-of-run heap & state census).

use std::time::Instant;

use dchm_bench::artifacts::{profile_dir_flag, write_profile_artifacts, write_trace_artifacts};
use dchm_bench::runner::{flag_value, scale_from_args};
use dchm_bench::{measured_config, prepare_workload};
use dchm_vm::Vm;
use dchm_workloads::{catalog, Workload};

const RING_CAPACITY: usize = 64 * 1024;

/// One mutated run of `w`, traced or not. The offline pipeline (profile →
/// plan) runs once per call so repeated timings stay independent.
fn run_mutated(w: &Workload, trace: bool) -> (Vm, f64) {
    let prepared = prepare_workload(w);
    let mut vm = prepared.make_vm(measured_config(w));
    if trace {
        vm.enable_tracing(RING_CAPACITY);
    }
    let start = Instant::now();
    w.run(&mut vm).expect("workload must not trap");
    (vm, start.elapsed().as_secs_f64())
}

fn emit(w: &Workload, out: &std::path::Path, profile: Option<&std::path::Path>) {
    let (vm, _) = run_mutated(w, true);
    let (trace_path, metrics_path) =
        write_trace_artifacts(out, w.name, &vm).expect("write artifacts");
    if let Some(dir) = profile {
        let (f, c) = write_profile_artifacts(dir, w.name, &vm).expect("write profile artifacts");
        println!("wrote {} and {}", f.display(), c.display());
    }
    let events = vm.trace_events();
    println!("== {} ==", w.name);
    println!("{}", vm.stats());
    println!(
        "trace     events {} (dropped {})  ring {}",
        events.len(),
        vm.state.tracer.dropped(),
        RING_CAPACITY
    );
    let mut by_cat: Vec<(&str, usize)> = Vec::new();
    for e in &events {
        let cat = e.event.category();
        match by_cat.iter_mut().find(|(c, _)| *c == cat) {
            Some((_, n)) => *n += 1,
            None => by_cat.push((cat, 1)),
        }
    }
    for (cat, n) in &by_cat {
        println!("          {cat:<10} {n}");
    }
    println!("wrote {} and {}", trace_path.display(), metrics_path.display());
}

/// Tracing on vs. off: the modeled run must be bit-identical and the wall
/// cost of tracing bounded. Returns false if the wall budget is blown.
fn overhead_check(w: &Workload, budget_pct: f64) -> bool {
    let mut best_off = f64::MAX;
    let mut best_on = f64::MAX;
    let mut obs_off = None;
    let mut obs_on = None;
    for _ in 0..3 {
        let (vm, secs) = run_mutated(w, false);
        best_off = best_off.min(secs);
        obs_off = Some((vm.cycles(), vm.stats().ops_executed, vm.state.output.checksum));
        let (vm, secs) = run_mutated(w, true);
        best_on = best_on.min(secs);
        obs_on = Some((vm.cycles(), vm.stats().ops_executed, vm.state.output.checksum));
    }
    // The hard, deterministic property: events stamp the modeled clock but
    // never charge it.
    assert_eq!(
        obs_on, obs_off,
        "{}: tracing moved the modeled clock or the output",
        w.name
    );
    let overhead = best_on / best_off - 1.0;
    let ok = overhead * 100.0 <= budget_pct;
    println!(
        "{:<12} traced-run wall overhead {:+.2}% (budget {:.1}%, off {:.1} ms, on {:.1} ms) {}",
        w.name,
        overhead * 100.0,
        budget_pct,
        best_off * 1e3,
        best_on * 1e3,
        if ok { "ok" } else { "OVER BUDGET" }
    );
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let out = std::path::PathBuf::from(
        flag_value(&args, "--out").unwrap_or_else(|| "traces".to_string()),
    );
    let which = flag_value(&args, "--workload").unwrap_or_else(|| "SalaryDB".to_string());
    let workloads: Vec<Workload> = catalog(scale)
        .into_iter()
        .filter(|w| which == "all" || w.name == which)
        .collect();
    if workloads.is_empty() {
        eprintln!("unknown workload {which}");
        std::process::exit(2);
    }

    if let Some(pct) = flag_value(&args, "--overhead-check") {
        let budget: f64 = pct.parse().expect("--overhead-check takes a percentage");
        let mut ok = true;
        for w in &workloads {
            ok &= overhead_check(w, budget);
        }
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    let profile_dir = profile_dir_flag(&args);
    for w in &workloads {
        emit(w, &out, profile_dir.as_deref());
    }
}
