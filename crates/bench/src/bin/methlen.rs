//! `methlen` — prints per-method bytecode sizes for a benchmark, sorted
//! descending. Useful for reasoning about the baseline inliner's size
//! threshold (`VmConfig::max_inline_size`) and the Section 5 trade-off.
//!
//! ```text
//! methlen SPECjbb2000 [--small]
//! ```

use dchm_workloads::{catalog, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let name = args
        .first()
        .cloned()
        .unwrap_or_else(|| "SPECjbb2000".into());
    let scale = if args.iter().any(|a| a == "--small") {
        Scale::Small
    } else {
        Scale::Full
    };
    let Some(w) = catalog(scale).into_iter().find(|w| w.name == name) else {
        eprintln!("unknown benchmark {name}; use a Table 1 name");
        std::process::exit(2);
    };
    let mut rows: Vec<(usize, String)> = w
        .program
        .methods
        .iter()
        .map(|md| {
            (
                md.code.len(),
                format!("{}::{}", w.program.class(md.owner).name, md.name),
            )
        })
        .collect();
    rows.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    println!("{} ({} methods)", w.name, rows.len());
    for (len, name) in rows {
        println!("{len:>4} instrs  {name}");
    }
}
