//! Resilience-governor survival bench: `BENCH_resilience.json` emitter.
//!
//! Two sections:
//!
//! * **storm** — the `storm_salarydb` scenario (SalaryDB's branch ladder
//!   plus a no-op `grade` re-store that re-arms the mutation engine after
//!   every deopt) under `FaultConfig::guard_failures` at period 1: every
//!   specialized call guard-fails. Governor-off grinds through guard-fail →
//!   deopt → TIB-flip-back on every single call; governor-on throttles,
//!   backs off and blacklists, pinning the sites to general code. The
//!   sites to general code. Under the `storm_config` tiering cadence the
//!   ungoverned VM is stuck re-executing the padded level-0 baseline on
//!   every call while the governed VM runs pinned opt2 general code, so
//!   the same program costs over twice the modeled cycles ungoverned:
//!   `throughput_ratio` (`clock_off / clock_on`, bit-deterministic) is the
//!   CI gate (≥ 2x); wall-clock ops/sec is reported alongside.
//!
//! * **quiet** — the full Table 1 catalog with no faults injected: the
//!   governor ships enabled, and on healthy workloads disabling it must not
//!   move output or a single modeled cycle (`clock_match`/`output_match`
//!   are the CI gates). Governor checks are free host-side lookups; a
//!   governor that never fires is invisible.
//!
//! Usage:
//! `cargo run --release -p dchm-bench --bin bench_resilience [--small] [--profile <dir>]`
//!
//! `--profile <dir>` re-runs the governed storm and writes
//! `<dir>/storm-salarydb.folded` + `.census.json` — where the throttled VM
//! spends its cycles once the governor pins the failing sites.

use std::fmt::Write as _;
use std::time::Instant;

use dchm_bench::artifacts::{profile_dir_flag, write_profile_artifacts};
use dchm_bench::prepare_workload;
use dchm_bench::runner::{best_of, mutated_vm, scale_from_args, BenchJson};
use dchm_testutil::{attach_plan, storm_config, storm_salarydb};
use dchm_vm::{FaultConfig, FaultInjector, Vm, VmConfig};
use dchm_workloads::{catalog, Scale, Workload};

struct StormRun {
    ops: u64,
    secs: f64,
    clock: u64,
    checksum: u64,
    deopts: u64,
    throttled: u64,
    blacklisted: u64,
}

/// A fresh storm VM: specials exist from the first compile (the plan
/// specializes at opt0) and every guard is forced to fail.
fn storm_vm(employees: i64, iters: i64, governor_on: bool) -> Vm {
    let (p, plan) = storm_salarydb(employees, iters);
    let mut vm = attach_plan(&p, plan, storm_config());
    vm.state.config.governor.enabled = governor_on;
    vm.state.injector = Some(FaultInjector::new(FaultConfig {
        period: 1,
        ..FaultConfig::guard_failures(1)
    }));
    vm
}

/// One timed storm run.
fn run_storm(employees: i64, iters: i64, governor_on: bool) -> StormRun {
    let mut vm = storm_vm(employees, iters, governor_on);
    let start = Instant::now();
    vm.run_entry().expect("storm run must not trap");
    let secs = start.elapsed().as_secs_f64();
    let s = vm.stats();
    StormRun {
        ops: s.ops_executed,
        secs,
        clock: vm.cycles(),
        checksum: vm.state.output.checksum,
        deopts: s.deopts,
        throttled: s.specials_throttled,
        blacklisted: s.specials_blacklisted,
    }
}

fn storm_row(scale: Scale) -> String {
    let (employees, iters) = match scale {
        Scale::Small => (24, 400),
        Scale::Full => (200, 2000),
    };
    // Deterministic VM, so the fastest of 5 is the best rate estimate.
    let (off, secs_off) = best_of(5, || {
        let r = run_storm(employees, iters, false);
        let s = r.secs;
        (r, s)
    });
    let (on, secs_on) = best_of(5, || {
        let r = run_storm(employees, iters, true);
        let s = r.secs;
        (r, s)
    });
    let rate_off = off.ops as f64 / secs_off.max(1e-12);
    let rate_on = on.ops as f64 / secs_on.max(1e-12);
    // The survival metric, two ways. `throughput_ratio` is modeled — the
    // same completed program costs `clock_off` vs `clock_on` modeled
    // cycles, so the ratio is bit-deterministic and is what CI gates on.
    // `wall_ratio` is the best-of-5 host-time ratio: informative on a
    // quiet machine, too noisy to gate.
    let ratio = off.clock as f64 / (on.clock as f64).max(1.0);
    let wall_ratio = secs_off.max(1e-12) / secs_on.max(1e-12);
    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"name\": \"storm-salarydb\", \"employees\": {employees}, \"iters\": {iters}, \
         \"throughput_ratio\": {ratio:.3}, \"wall_ratio\": {wall_ratio:.3}, \
         \"clock_off\": {}, \"clock_on\": {}, \
         \"ops_per_sec_off\": {rate_off:.0}, \"ops_per_sec_on\": {rate_on:.0}, \
         \"wall_ms_off\": {:.3}, \"wall_ms_on\": {:.3}, \"output_match\": {}, \
         \"deopts_off\": {}, \"deopts_on\": {}, \"throttled\": {}, \"blacklisted\": {}}}",
        off.clock,
        on.clock,
        secs_off * 1e3,
        secs_on * 1e3,
        off.checksum == on.checksum,
        off.deopts,
        on.deopts,
        on.throttled,
        on.blacklisted,
    );
    row
}

fn quiet_row(w: &Workload) -> String {
    let prepared = prepare_workload(w);
    let mut runs = Vec::new();
    for governor_on in [true, false] {
        let mut vm: Vm = mutated_vm(&prepared, w, true);
        vm.state.config.governor.enabled = governor_on;
        w.run(&mut vm).expect("quiet run must not trap");
        runs.push((
            vm.cycles(),
            vm.state.output.checksum,
            vm.stats().specials_throttled,
        ));
    }
    let (clock_on, sum_on, throttled) = runs[0];
    let (clock_off, sum_off, _) = runs[1];
    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"name\": \"{}\", \"clock_on\": {clock_on}, \"clock_off\": {clock_off}, \
         \"clock_match\": {}, \"output_match\": {}, \"throttled\": {throttled}}}",
        w.name,
        clock_on == clock_off,
        sum_on == sum_off,
    );
    row
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = scale_from_args(&args);

    let storm = storm_row(scale);
    let quiet: Vec<String> = catalog(scale).iter().map(quiet_row).collect();

    let mut doc = BenchJson::new("resilience_governor", scale, "ops_per_sec_wall_clock");
    let cfg = VmConfig::default().governor;
    doc.meta(
        "governor",
        &format!(
            "{{\"storm_window\": {}, \"throttle_threshold\": {}, \"blacklist_threshold\": {}, \
             \"backoff_base\": {}, \"backoff_max_exp\": {}, \"quarantine_threshold\": {}}}",
            cfg.storm_window,
            cfg.throttle_threshold,
            cfg.blacklist_threshold,
            cfg.backoff_base,
            cfg.backoff_max_exp,
            cfg.quarantine_threshold
        ),
    );
    doc.meta("storm", &storm);
    for q in quiet {
        doc.row(q);
    }
    let json = doc.write("BENCH_resilience.json");
    print!("{json}");

    if let Some(dir) = profile_dir_flag(&args) {
        let (employees, iters) = match scale {
            Scale::Small => (24, 400),
            Scale::Full => (200, 2000),
        };
        let mut vm = storm_vm(employees, iters, true);
        vm.run_entry().expect("storm run must not trap");
        let (f, c) =
            write_profile_artifacts(&dir, "storm-salarydb", &vm).expect("write artifacts");
        eprintln!("profiled storm-salarydb: {} + {}", f.display(), c.display());
    }
}
