//! Shared plumbing for the `bench_*` binaries: flag parsing, the standard
//! prepared-pipeline → mutated-VM construction, best-of-N wall timing and
//! the hand-rolled `BENCH_*.json` document builder. Each binary used to
//! carry its own copy of these; they live here so a harness fix lands in
//! every emitter at once.

use crate::measured_config;
use dchm_core::pipeline::Prepared;
use dchm_core::MutationEngine;
use dchm_vm::Vm;
use dchm_workloads::{Scale, Workload};
use std::fmt::Write as _;

/// The value following `flag` in a raw argument list, if present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// True when `flag` appears anywhere in the argument list.
pub fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// The benchmark scale selected by `--small` (default [`Scale::Full`]).
pub fn scale_from_args(args: &[String]) -> Scale {
    if has_flag(args, "--small") {
        Scale::Small
    } else {
        Scale::Full
    }
}

/// A fresh mutated VM for `w` from an already prepared pipeline, under the
/// standard measured configuration. `emit_guards: false` re-plans without
/// state guards (the `bench_deopt` ablation).
pub fn mutated_vm(prepared: &Prepared, w: &Workload, emit_guards: bool) -> Vm {
    let mut plan = prepared.plan.clone();
    plan.emit_guards = emit_guards;
    let engine = MutationEngine::new(plan, prepared.olc.clone());
    engine.attach(prepared.program.clone(), measured_config(w))
}

/// Runs `run` `repeats` times and keeps the result of the fastest run
/// (by its reported wall seconds). Wall rates on shared machines are
/// noisy; only the fastest run approximates the actual cost.
pub fn best_of<T>(repeats: u32, mut run: impl FnMut() -> (T, f64)) -> (T, f64) {
    let mut best: Option<(T, f64)> = None;
    for _ in 0..repeats.max(1) {
        let (value, secs) = run();
        if best.as_ref().is_none_or(|(_, b)| secs < *b) {
            best = Some((value, secs));
        }
    }
    best.expect("repeats >= 1")
}

/// Builder for the flat `BENCH_*.json` documents the bench binaries emit:
/// a few header fields, then a `"workloads"` array of pre-rendered row
/// objects. Rendering is hand-rolled (stable field order, no dependency on
/// serde map ordering) — rows are raw JSON object strings.
pub struct BenchJson {
    head: String,
    rows: Vec<String>,
}

/// Version of the unified `BENCH_*.json` schema shared by every emitter.
/// Bump when a header field changes meaning; `dchm-inspect` and the
/// committed-artifact test key on it.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

impl BenchJson {
    /// Starts a document with the standard header fields: schema version,
    /// benchmark identity and the machine the numbers were taken on.
    pub fn new(benchmark: &str, scale: Scale, unit: &str) -> Self {
        let mut head = String::from("{\n");
        let _ = writeln!(head, "  \"schema_version\": {BENCH_SCHEMA_VERSION},");
        let _ = writeln!(head, "  \"benchmark\": \"{benchmark}\",");
        let _ = writeln!(head, "  \"scale\": \"{scale:?}\",");
        let _ = writeln!(head, "  \"unit\": \"{unit}\",");
        let _ = writeln!(
            head,
            "  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\"}},",
            std::env::consts::OS,
            std::env::consts::ARCH
        );
        BenchJson { head, rows: Vec::new() }
    }

    /// Adds an extra header field with a raw (pre-rendered) JSON value.
    pub fn meta(&mut self, key: &str, raw_value: &str) {
        let _ = writeln!(self.head, "  \"{key}\": {raw_value},");
    }

    /// Appends one workload row — a complete JSON object, no trailing comma.
    pub fn row(&mut self, raw_object: String) {
        self.rows.push(raw_object);
    }

    /// Renders the document.
    pub fn finish(self) -> String {
        let mut out = self.head;
        out.push_str("  \"workloads\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            out.push_str("    ");
            out.push_str(r);
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Renders, writes to `path` and returns the JSON text.
    ///
    /// # Panics
    /// Panics if the file cannot be written — a bench emitter has nothing
    /// useful to do without its output.
    pub fn write(self, path: &str) -> String {
        let json = self.finish();
        std::fs::write(path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["--small", "--out", "dir"]);
        assert!(has_flag(&a, "--small"));
        assert!(!has_flag(&a, "--trace"));
        assert_eq!(flag_value(&a, "--out").as_deref(), Some("dir"));
        assert_eq!(flag_value(&a, "--missing"), None);
        assert_eq!(scale_from_args(&a), Scale::Small);
        assert_eq!(scale_from_args(&args(&[])), Scale::Full);
    }

    #[test]
    fn best_of_keeps_fastest() {
        let mut times = [3.0, 1.0, 2.0].into_iter();
        let (v, secs) = best_of(3, || {
            let t = times.next().unwrap();
            (t as u64, t)
        });
        assert_eq!((v, secs), (1, 1.0));
    }

    #[test]
    fn json_document_shape() {
        let mut doc = BenchJson::new("demo", Scale::Small, "widgets");
        doc.meta("seed", "7");
        doc.row("{\"name\": \"a\"}".to_string());
        doc.row("{\"name\": \"b\"}".to_string());
        let json = doc.finish();
        assert!(json.contains(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}")));
        assert!(json.contains("\"benchmark\": \"demo\""));
        assert!(json.contains("\"scale\": \"Small\""));
        assert!(json.contains("\"machine\": {\"os\": "));
        assert!(json.contains("\"seed\": 7"));
        assert!(json.contains("{\"name\": \"a\"},\n"));
        assert!(json.ends_with("  ]\n}\n"));
        // The hand-rolled document must parse as JSON.
        let v: serde::Value = serde_json::from_str(&json).expect("valid JSON");
        assert!(matches!(v, serde::Value::Object(_)));
    }

    /// Every committed `BENCH_*.json` at the repo root must carry the
    /// unified schema: version, benchmark/scale/unit, machine fields and a
    /// non-empty workloads array.
    #[test]
    fn committed_bench_files_match_schema() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let mut checked = 0;
        for entry in std::fs::read_dir(&root).expect("repo root") {
            let path = entry.expect("dir entry").path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                continue;
            };
            if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
                continue;
            }
            let text = std::fs::read_to_string(&path).expect("readable BENCH file");
            let doc: serde::Value =
                serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            let field = |k: &str| {
                serde::helpers::field(&doc, k)
                    .unwrap_or_else(|e| panic!("{name}: {e}"))
                    .clone()
            };
            assert_eq!(
                field("schema_version"),
                serde::Value::Int(BENCH_SCHEMA_VERSION as i64),
                "{name}: schema_version"
            );
            for k in ["benchmark", "scale", "unit"] {
                assert!(matches!(field(k), serde::Value::Str(_)), "{name}: {k}");
            }
            let machine = field("machine");
            for k in ["os", "arch"] {
                assert!(
                    matches!(serde::helpers::field(&machine, k), Ok(&serde::Value::Str(_))),
                    "{name}: machine.{k}"
                );
            }
            match field("workloads") {
                serde::Value::Array(rows) => assert!(!rows.is_empty(), "{name}: empty workloads"),
                other => panic!("{name}: workloads is {other:?}"),
            }
            checked += 1;
        }
        assert!(checked >= 4, "expected >=4 committed BENCH files, found {checked}");
    }
}
