//! # dchm-bench
//!
//! Measurement harness regenerating every table and figure of the paper's
//! evaluation (Section 7). The `repro` binary prints them; the Criterion
//! benches under `benches/` wrap the same entry points.
//!
//! All comparisons run the *same* workload twice over the deterministic
//! cycle-model VM: once with mutation off (baseline) and once with the full
//! pipeline (profile → plan → mutation engine). Absolute cycle counts are
//! model cycles, not 2005 Pentium 4 cycles; every reported number is a
//! ratio, matching how the paper reports its results.

use dchm_core::pipeline::{prepare, PipelineConfig, Prepared};
use dchm_vm::{Vm, VmConfig};
use dchm_workloads::{catalog, Scale, Workload};

pub mod runner;

/// Cycle/space accounting extracted from one run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RunStats {
    /// Application execution cycles.
    pub exec_cycles: u64,
    /// Optimizing-compiler cycles (specials included).
    pub compile_cycles: u64,
    /// GC cycles.
    pub gc_cycles: u64,
    /// exec + compile + gc.
    pub total_cycles: u64,
    /// Bytes of general opt-compiled code produced.
    pub general_code_bytes: u64,
    /// Bytes of special (mutation) code produced.
    pub special_code_bytes: u64,
    /// Bytes of class TIBs.
    pub class_tib_bytes: u64,
    /// Bytes of special TIBs.
    pub special_tib_bytes: u64,
    /// Observable output checksum (used to assert equivalence).
    pub checksum: u64,
}

impl RunStats {
    fn from_vm(vm: &Vm) -> Self {
        let s = vm.stats();
        RunStats {
            exec_cycles: s.exec_cycles,
            compile_cycles: s.compile_cycles,
            gc_cycles: s.gc_cycles,
            total_cycles: s.total_cycles(),
            general_code_bytes: s.general_code_bytes(),
            special_code_bytes: s.special_code_bytes,
            class_tib_bytes: s.class_tib_bytes,
            special_tib_bytes: s.special_tib_bytes,
            checksum: vm.state.output.checksum,
        }
    }
}

/// A baseline/mutated measurement pair for one workload.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Workload name.
    pub name: &'static str,
    /// Mutation-off run.
    pub base: RunStats,
    /// Mutation-on run.
    pub mutated: RunStats,
    /// Per-warehouse throughput of the baseline run (jbb only).
    pub base_warehouses: Vec<f64>,
    /// Per-warehouse throughput of the mutated run (jbb only).
    pub mutated_warehouses: Vec<f64>,
}

impl Measurement {
    /// Overall speedup: baseline time over mutated time, minus one. For
    /// warehouse workloads this is steady-state throughput improvement
    /// (mean of the second half of the warehouses), matching the paper's
    /// use of steady-state warehouse throughput for SPECjbb.
    pub fn speedup(&self) -> f64 {
        if self.base_warehouses.len() > 1 {
            let half = self.base_warehouses.len() / 2;
            let b: f64 =
                self.base_warehouses[half..].iter().sum::<f64>() / (half.max(1) as f64);
            let m: f64 =
                self.mutated_warehouses[half..].iter().sum::<f64>() / (half.max(1) as f64);
            m / b - 1.0
        } else {
            self.base.total_cycles as f64 / self.mutated.total_cycles as f64 - 1.0
        }
    }

    /// Figure 10: opt-compiled code size increase.
    pub fn code_size_increase(&self) -> f64 {
        let base = self.base.general_code_bytes as f64;
        let mutated = (self.mutated.general_code_bytes + self.mutated.special_code_bytes) as f64;
        mutated / base.max(1.0) - 1.0
    }

    /// Figure 11: opt compilation time increase.
    pub fn compile_time_increase(&self) -> f64 {
        self.mutated.compile_cycles as f64 / self.base.compile_cycles.max(1) as f64 - 1.0
    }

    /// Figure 11 annotation: compile-to-execution fraction without mutation.
    pub fn compile_fraction(&self) -> f64 {
        self.base.compile_cycles as f64 / self.base.total_cycles.max(1) as f64
    }

    /// Figure 12: absolute TIB space increase in bytes.
    pub fn tib_increase_bytes(&self) -> u64 {
        self.mutated.special_tib_bytes
    }

    /// Figure 12 annotation: relative TIB space increase.
    pub fn tib_increase_rel(&self) -> f64 {
        self.mutated.special_tib_bytes as f64 / self.mutated.class_tib_bytes.max(1) as f64
    }

    /// Figures 13–15: per-warehouse throughput delta due to mutation.
    pub fn warehouse_deltas(&self) -> Vec<f64> {
        self.base_warehouses
            .iter()
            .zip(&self.mutated_warehouses)
            .map(|(b, m)| m / b - 1.0)
            .collect()
    }
}

/// Runs the offline pipeline for a workload.
pub fn prepare_workload(w: &Workload) -> Prepared {
    prepare_workload_with(w, dchm_core::AnalysisConfig::default())
}

/// Runs the offline pipeline with explicit analysis tunables (used by the
/// ablation benches to sweep `R`, `k`, the mutation level and state caps).
pub fn prepare_workload_with(
    w: &Workload,
    analysis: dchm_core::AnalysisConfig,
) -> Prepared {
    let cfg = PipelineConfig {
        analysis,
        profile_vm: measured_config(w),
    };
    let wl = w.clone();
    prepare(w.program.clone(), &cfg, move |vm| {
        wl.run(vm).expect("profiling run");
    })
}

/// Measures one workload under explicit analysis tunables.
///
/// # Panics
/// Panics if the workload traps or mutation changes behaviour.
pub fn measure_with_analysis(
    w: &Workload,
    analysis: dchm_core::AnalysisConfig,
) -> Measurement {
    let prepared = prepare_workload_with(w, analysis);
    let mut base_vm = prepared.make_baseline_vm(measured_config(w));
    let base_runs = w.run_warehouses(&mut base_vm).expect("baseline run");
    let mut mut_vm = prepared.make_vm(measured_config(w));
    let mut_runs = w.run_warehouses(&mut mut_vm).expect("mutated run");
    let base = RunStats::from_vm(&base_vm);
    let mutated = RunStats::from_vm(&mut_vm);
    assert_eq!(base.checksum, mutated.checksum, "{}: behaviour changed", w.name);
    Measurement {
        name: w.name,
        base,
        mutated,
        base_warehouses: base_runs.iter().map(|r| r.throughput()).collect(),
        mutated_warehouses: mut_runs.iter().map(|r| r.throughput()).collect(),
    }
}

/// The VM configuration used for measured runs.
pub fn measured_config(w: &Workload) -> VmConfig {
    let mut c = w.vm_config();
    // Sampling cadence chosen so full-scale runs reach opt2 within the
    // first fraction of the run, like the paper's warm-up period.
    c.sample_period = 15_000;
    c.opt1_samples = 3;
    c.opt2_samples = 8;
    c
}

/// Measures one workload with and without mutation.
///
/// # Panics
/// Panics if the workload traps, or if mutation changes the output
/// checksum (which would invalidate every number produced).
pub fn measure(w: &Workload, accelerated: bool) -> Measurement {
    let prepared = prepare_workload(w);

    let mut base_vm = prepared.make_baseline_vm(measured_config(w));
    let base_runs = w.run_warehouses(&mut base_vm).expect("baseline run");

    let mut cfg = measured_config(w);
    if accelerated {
        // Figure 14: accelerate hotness detection for the mutable methods.
        for mc in &prepared.plan.classes {
            cfg.accelerated_methods.extend(mc.mutable_methods.iter().copied());
        }
    }
    let mut mut_vm = prepared.make_vm(cfg);
    let mut_runs = w.run_warehouses(&mut mut_vm).expect("mutated run");

    let base = RunStats::from_vm(&base_vm);
    let mutated = RunStats::from_vm(&mut_vm);
    assert_eq!(
        base.checksum, mutated.checksum,
        "{}: mutation changed behaviour",
        w.name
    );
    Measurement {
        name: w.name,
        base,
        mutated,
        base_warehouses: base_runs.iter().map(|r| r.throughput()).collect(),
        mutated_warehouses: mut_runs.iter().map(|r| r.throughput()).collect(),
    }
}

/// Measures the full benchmark suite (Figure 9/10/11/12 inputs).
pub fn measure_suite(scale: Scale) -> Vec<Measurement> {
    catalog(scale).iter().map(|w| measure(w, false)).collect()
}

/// Tracing artifacts shared by the bench bins' `--trace <dir>` flags: the
/// Chrome trace-event/Perfetto JSON for a finished traced run, plus a
/// metrics document combining the VM's raw counters with the event-derived
/// histograms.
pub mod artifacts {
    use dchm_vm::trace::export::chrome_trace_json;
    use dchm_vm::trace::metrics::MetricsSnapshot;
    use dchm_vm::Vm;
    use serde::{Serialize, Value};
    use std::path::{Path, PathBuf};

    /// Writes `<dir>/<name>.trace.json` (load it in Perfetto or
    /// `chrome://tracing`) and `<dir>/<name>.metrics.json`
    /// (`{"workload", "vm_stats", "trace_metrics"}`) from a finished
    /// traced run. Returns the two paths.
    ///
    /// # Errors
    /// Propagates filesystem errors creating `dir` or writing the files.
    pub fn write_trace_artifacts(
        dir: &Path,
        name: &str,
        vm: &Vm,
    ) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let events = vm.trace_events();
        let trace_path = dir.join(format!("{name}.trace.json"));
        std::fs::write(&trace_path, chrome_trace_json(&events))?;

        let snapshot = MetricsSnapshot::build(&events, vm.cycles(), vm.state.tracer.dropped());
        let doc = Value::Object(vec![
            ("workload".to_string(), Value::Str(name.to_string())),
            ("vm_stats".to_string(), vm.stats().to_json_value()),
            ("trace_metrics".to_string(), snapshot.to_json_value()),
        ]);
        let metrics_path = dir.join(format!("{name}.metrics.json"));
        let json = serde_json::to_string_pretty(&doc).expect("Value serialization is infallible");
        std::fs::write(&metrics_path, json)?;
        Ok((trace_path, metrics_path))
    }

    /// Parses a `--trace <dir>` flag pair out of a raw argument list.
    pub fn trace_dir_flag(args: &[String]) -> Option<PathBuf> {
        args.iter()
            .position(|a| a == "--trace")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
    }

    /// Writes `<dir>/<name>.folded` (Brendan-Gregg folded stacks from the
    /// cycle-attribution profiler; feed to `flamegraph.pl` or speedscope)
    /// and `<dir>/<name>.census.json` (`{"workload", "census"}` with the
    /// end-of-run heap & state census) from a finished run. Returns the two
    /// paths.
    ///
    /// # Errors
    /// Propagates filesystem errors creating `dir` or writing the files.
    pub fn write_profile_artifacts(
        dir: &Path,
        name: &str,
        vm: &Vm,
    ) -> std::io::Result<(PathBuf, PathBuf)> {
        std::fs::create_dir_all(dir)?;
        let folded_path = dir.join(format!("{name}.folded"));
        std::fs::write(&folded_path, vm.profile_folded())?;

        let doc = Value::Object(vec![
            ("workload".to_string(), Value::Str(name.to_string())),
            ("census".to_string(), vm.state.census().to_json_value()),
        ]);
        let census_path = dir.join(format!("{name}.census.json"));
        let json = serde_json::to_string_pretty(&doc).expect("Value serialization is infallible");
        std::fs::write(&census_path, json)?;
        Ok((folded_path, census_path))
    }

    /// Parses a `--profile <dir>` flag pair out of a raw argument list.
    pub fn profile_dir_flag(args: &[String]) -> Option<PathBuf> {
        args.iter()
            .position(|a| a == "--profile")
            .and_then(|i| args.get(i + 1))
            .map(PathBuf::from)
    }
}

/// Table 1 rows: name, classes, methods.
pub fn table1(scale: Scale) -> Vec<(&'static str, usize, usize)> {
    catalog(scale)
        .iter()
        .map(|w| {
            let (c, m) = w.program.table1_counts();
            (w.name, c, m)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_ratios_are_consistent() {
        let w = dchm_workloads::salarydb::build(Scale::Small);
        let m = measure(&w, false);
        assert_eq!(m.base.checksum, m.mutated.checksum);
        assert!(m.speedup() > -1.0);
        assert!(m.code_size_increase() >= 0.0);
        assert!(m.tib_increase_bytes() > 0);
        assert!(m.compile_fraction() > 0.0 && m.compile_fraction() < 1.0);
    }

    #[test]
    fn table1_has_all_benchmarks() {
        let t = table1(Scale::Small);
        assert_eq!(t.len(), 7);
        assert!(t.iter().all(|(_, c, m)| *c > 0 && *m > 0));
    }
}
