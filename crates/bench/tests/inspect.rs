//! End-to-end tests for the `dchm-inspect` CLI: artifact round-trip
//! (report + Prometheus export over real SalaryDB artifacts) and the diff
//! regression gate (zero delta on identical profiles, non-zero exit on an
//! injected regression fixture).

use std::path::PathBuf;
use std::process::Command;

use dchm_bench::artifacts::{write_profile_artifacts, write_trace_artifacts};
use dchm_bench::{measured_config, prepare_workload};
use dchm_workloads::{salarydb, Scale};

fn inspect() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dchm-inspect"))
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dchm-inspect-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// One traced+profiled mutated SalaryDB run, artifacts written to `dir`.
fn emit_salarydb(dir: &std::path::Path) {
    let w = salarydb::build(Scale::Small);
    let prepared = prepare_workload(&w);
    let mut vm = prepared.make_vm(measured_config(&w));
    vm.enable_tracing(16 * 1024);
    w.run(&mut vm).expect("run");
    write_trace_artifacts(dir, w.name, &vm).expect("trace artifacts");
    write_profile_artifacts(dir, w.name, &vm).expect("profile artifacts");
}

#[test]
fn report_and_export_read_real_artifacts() {
    let dir = scratch("report");
    emit_salarydb(&dir);

    let out = inspect()
        .args(["report", "--dir", dir.to_str().unwrap(), "--workload", "SalaryDB"])
        .output()
        .expect("run dchm-inspect");
    assert!(out.status.success(), "report failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== SalaryDB =="));
    assert!(text.contains("cycles"), "missing cycle breakdown:\n{text}");
    assert!(text.contains("profile"), "missing profile section:\n{text}");
    assert!(text.contains("census"), "missing census section:\n{text}");

    let out = inspect()
        .args([
            "export",
            "--prometheus",
            "--dir",
            dir.to_str().unwrap(),
            "--workload",
            "SalaryDB",
        ])
        .output()
        .expect("run dchm-inspect");
    assert!(out.status.success(), "export failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    for needle in [
        "dchm_vm_exec_cycles ",
        "dchm_vm_tib_flips ",
        "dchm_census_live_objects ",
        "dchm_profile_samples_total ",
    ] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
    // Every exposition line is `name value` or `name{labels} value` or a
    // comment — no stray JSON.
    for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        assert!(
            line.rsplit_once(' ').is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
            "malformed exposition line: {line}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Fleet artifacts: a `.folded` merged across shards (shard-rooted stacks)
/// plus a metrics document whose `vm_stats` is a per-shard array. The
/// report must summarize per-shard samples and aggregate the cycle split.
#[test]
fn report_reads_fleet_merged_artifacts() {
    let dir = scratch("fleet");
    let merged = dchm_vm::trace::fleet::merge_folded(&[
        "Main::main#o0;Acct::work#s2 40\n".to_string(),
        "Main::main#o0;Acct::work#s2 25\nMain::main#o0 5\n".to_string(),
    ]);
    std::fs::write(dir.join("Fleet.folded"), merged).unwrap();
    std::fs::write(
        dir.join("Fleet.metrics.json"),
        "{\"vm_stats\": [\
          {\"exec_cycles\": 100, \"compile_cycles\": 10, \"gc_cycles\": 1},\
          {\"exec_cycles\": 200, \"compile_cycles\": 20, \"gc_cycles\": 2}]}",
    )
    .unwrap();

    let out = inspect()
        .args(["report", "--dir", dir.to_str().unwrap(), "--workload", "Fleet"])
        .output()
        .expect("run dchm-inspect");
    assert!(out.status.success(), "fleet report failed: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("fleet     2 shards: shard0 40  shard1 30"), "got:\n{text}");
    assert!(text.contains("cycles    exec 300"), "aggregate missing:\n{text}");
    assert!(text.contains("shard0: exec 100"), "per-shard row missing:\n{text}");
    assert!(text.contains("shard1: exec 200"), "per-shard row missing:\n{text}");
    // Leaf ranking ignores the shard root: both shards' hot cell merges.
    assert!(text.contains("Acct::work#s2"), "leaf cell missing:\n{text}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn diff_is_zero_on_identical_profiles_and_gates_regressions() {
    let dir = scratch("diff");
    let a = dir.join("a.folded");
    let b = dir.join("b.folded");
    let base = "Main::main#o0;Acct::work#s2 40\nMain::main#o0 10\n";
    std::fs::write(&a, base).unwrap();
    std::fs::write(&b, base).unwrap();

    // Identical profiles: zero delta, exit 0.
    let out = inspect()
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("run dchm-inspect");
    assert!(out.status.success(), "identical diff must exit 0: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("zero per-cell delta"), "got:\n{text}");

    // Injected regression: one cell's samples inflated past the threshold.
    let regressed = "Main::main#o0;Acct::work#s2 80\nMain::main#o0 10\n";
    std::fs::write(&b, regressed).unwrap();
    let out = inspect()
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap(), "--threshold", "10"])
        .output()
        .expect("run dchm-inspect");
    assert_eq!(out.status.code(), Some(2), "regression must exit 2: {out:?}");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("REGRESSED"), "got:\n{text}");

    // A shrinking cell is an improvement, not a regression.
    let improved = "Main::main#o0;Acct::work#s2 20\nMain::main#o0 10\n";
    std::fs::write(&b, improved).unwrap();
    let out = inspect()
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("run dchm-inspect");
    assert!(out.status.success(), "improvement must exit 0: {out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
