//! Criterion benches: one group per table/figure of the paper.
//!
//! Each figure-group benchmarks the baseline and mutated configurations of
//! the workloads that figure reports on; the wall-clock ratio mirrors the
//! model-cycle ratio (the evaluator does work proportional to charged
//! cycles). The printed paper-style numbers come from the `repro` binary;
//! these benches provide the statistical timing evidence.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dchm_bench::{measured_config, prepare_workload, table1};
use dchm_workloads::{catalog, jbb, Scale};

/// Table 1: program construction and verification cost (the "javac" side).
fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_build_programs");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    for w in catalog(Scale::Small) {
        g.bench_function(w.name, |b| {
            b.iter(|| {
                let rebuilt = catalog(Scale::Small)
                    .into_iter()
                    .find(|x| x.name == w.name)
                    .unwrap();
                std::hint::black_box(rebuilt.program.methods.len())
            })
        });
    }
    g.finish();
    // Sanity: counts stay stable.
    assert_eq!(table1(Scale::Small).len(), 7);
}

/// Figure 9: full runs, mutation off vs on, for every benchmark.
fn bench_fig09_speedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_speedup");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    for w in catalog(Scale::Small) {
        let prepared = prepare_workload(&w);
        g.bench_with_input(BenchmarkId::new("baseline", w.name), &w, |b, w| {
            b.iter(|| {
                let mut vm = prepared.make_baseline_vm(measured_config(w));
                w.run(&mut vm).unwrap();
                std::hint::black_box(vm.cycles())
            })
        });
        g.bench_with_input(BenchmarkId::new("mutated", w.name), &w, |b, w| {
            b.iter(|| {
                let mut vm = prepared.make_vm(measured_config(w));
                w.run(&mut vm).unwrap();
                std::hint::black_box(vm.cycles())
            })
        });
    }
    g.finish();
}

/// Figures 10 & 11: compilation with and without special-version generation.
fn bench_fig10_fig11_compilation(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_fig11_compilation");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    let w = dchm_workloads::salarydb::build(Scale::Small);
    let prepared = prepare_workload(&w);
    g.bench_function("general_only", |b| {
        b.iter(|| {
            let mut vm = prepared.make_baseline_vm(measured_config(&w));
            w.run(&mut vm).unwrap();
            std::hint::black_box(vm.stats().compile_cycles)
        })
    });
    g.bench_function("with_specials", |b| {
        b.iter(|| {
            let mut vm = prepared.make_vm(measured_config(&w));
            w.run(&mut vm).unwrap();
            std::hint::black_box((
                vm.stats().compile_cycles,
                vm.stats().special_code_bytes,
            ))
        })
    });
    g.finish();
}

/// Figure 12: special-TIB creation cost and footprint.
fn bench_fig12_tib_space(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_tib_space");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    for w in catalog(Scale::Small) {
        let prepared = prepare_workload(&w);
        g.bench_function(w.name, |b| {
            b.iter(|| {
                let mut vm = prepared.make_vm(measured_config(&w));
                w.run(&mut vm).unwrap();
                std::hint::black_box(vm.stats().special_tib_bytes)
            })
        });
    }
    g.finish();
}

/// Figures 13–15: per-warehouse throughput trajectories.
fn bench_fig13_15_warehouses(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_15_warehouses");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    for (label, variant, accelerated) in [
        ("fig13_jbb2000", jbb::JbbVariant::Jbb2000, false),
        ("fig14_jbb2000_accel", jbb::JbbVariant::Jbb2000, true),
        ("fig15_jbb2005", jbb::JbbVariant::Jbb2005, false),
    ] {
        let w = jbb::build(variant, Scale::Small);
        let prepared = prepare_workload(&w);
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut cfg = measured_config(&w);
                if accelerated {
                    for mc in &prepared.plan.classes {
                        cfg.accelerated_methods
                            .extend(mc.mutable_methods.iter().copied());
                    }
                }
                let mut vm = prepared.make_vm(cfg);
                let runs = w.run_warehouses(&mut vm).unwrap();
                std::hint::black_box(runs.len())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_fig09_speedup,
    bench_fig10_fig11_compilation,
    bench_fig12_tib_space,
    bench_fig13_15_warehouses
);
criterion_main!(benches);
