//! Microbenchmarks of the runtime primitives the mutation technique leans
//! on: TIB-dispatched virtual calls, special-TIB creation, object TIB
//! flips, and state specialization in the compiler.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, Criterion};
use dchm_bytecode::{CmpOp, MethodSig, ProgramBuilder, Ty, Value};
use dchm_ir::passes::{run_pipeline, specialize, Bindings, OptConfig};
use dchm_ir::lift;
use dchm_vm::{Vm, VmConfig};

fn dispatch_program() -> (dchm_bytecode::Program, dchm_bytecode::MethodId) {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").build();
    pb.trivial_ctor(c);
    let mut m = pb.method(c, "f", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(1);
    m.ret(Some(r));
    m.build();
    let mut m = pb.static_method(c, "spin", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let n = m.param(0);
    let obj = m.reg();
    m.new_init(obj, c, vec![]);
    let acc = m.reg();
    m.const_i(acc, 0);
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    let v = m.reg();
    m.call_virtual(Some(v), obj, "f", vec![]);
    m.iadd(acc, acc, v);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    let spin = m.build();
    (pb.finish().unwrap(), spin)
}

fn bench_virtual_dispatch(c: &mut Criterion) {
    let (p, spin) = dispatch_program();
    let mut g = c.benchmark_group("vm_virtual_dispatch");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    g.bench_function("10k_calls", |b| {
        b.iter(|| {
            let cfg = VmConfig {
                enable_inlining: false, // measure real dispatch
                ..Default::default()
            };
            let mut vm = Vm::new(p.clone(), cfg);
            let r = vm.call_static(spin, &[Value::Int(10_000)]).unwrap();
            std::hint::black_box(r)
        })
    });
    g.finish();
}

fn bench_special_tib_ops(c: &mut Criterion) {
    let (p, _) = dispatch_program();
    let class = p.class_by_name("C").unwrap();
    let mut g = c.benchmark_group("vm_special_tib");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    g.bench_function("create_special_tib", |b| {
        let mut vm = Vm::new(p.clone(), VmConfig::default());
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            std::hint::black_box(vm.state.create_special_tib(class, i))
        })
    });
    g.bench_function("tib_flip", |b| {
        let mut vm = Vm::new(p.clone(), VmConfig::default());
        let obj = vm.state.alloc_object(class).unwrap();
        vm.state.add_handle(obj);
        let special = vm.state.create_special_tib(class, 0);
        let class_tib = vm.state.class_tib(class);
        let mut to_special = true;
        b.iter(|| {
            let t = if to_special { special } else { class_tib };
            to_special = !to_special;
            vm.state.set_object_tib(obj, t);
        })
    });
    g.finish();
}

fn bench_specialization_pass(c: &mut Criterion) {
    // The SalaryDB raise() shape specialized and re-optimized.
    let w = dchm_workloads::salarydb::build(dchm_workloads::Scale::Small);
    let sal = w.program.class_by_name("SalaryEmployee").unwrap();
    let raise = w.program.method_by_name(sal, "raise").unwrap();
    let grade = w.program.field_by_name(sal, "grade").unwrap();
    let md = w.program.method(raise);
    let mut g = c.benchmark_group("compiler_specialize");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    g.bench_function("raise_grade2_opt2", |b| {
        b.iter(|| {
            let mut f = lift(&md.code, md.num_regs, md.arg_count() as u16);
            let mut bind = Bindings::default();
            bind.instance.insert(grade, Value::Int(2));
            specialize(&mut f, &bind);
            run_pipeline(&mut f, &OptConfig::level(2));
            std::hint::black_box(f.size())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_virtual_dispatch,
    bench_special_tib_ops,
    bench_specialization_pass
);
criterion_main!(benches);
