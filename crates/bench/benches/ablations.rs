//! Ablation benches for the design choices the paper calls out as tunable:
//!
//! * `ablation_r_param` — `R` of EQ 1 (weight of assignment sites);
//! * `ablation_k_inlining` — `k` of the Section 5 inline-vs-specialize
//!   heuristic ("if k is a very small negative number, inlining is almost
//!   always performed; if k is a very large positive number, specialization
//!   is almost always performed");
//! * `ablation_mutation_level` — generating special code at opt1 vs opt2
//!   (the paper mutates at opt2 to bound code growth);
//! * `ablation_hot_state_cap` — number of special TIBs allowed per class.

use std::time::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dchm_bench::{measure_with_analysis, measured_config, prepare_workload_with};
use dchm_core::AnalysisConfig;
use dchm_workloads::{salarydb, Scale};

fn bench_r_param(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_r_param");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    let w = salarydb::build(Scale::Small);
    for r in [0.0, 1.0, 100.0] {
        g.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| {
                let cfg = AnalysisConfig {
                    r,
                    ..Default::default()
                };
                let m = measure_with_analysis(&w, cfg);
                std::hint::black_box(m.speedup())
            })
        });
    }
    g.finish();
}

fn bench_k_inlining(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_k_inlining");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    let w = dchm_workloads::jbb::build(dchm_workloads::jbb::JbbVariant::Jbb2000, Scale::Small);
    for k in [-5i64, 0, 5] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                let cfg = AnalysisConfig {
                    k,
                    ..Default::default()
                };
                let m = measure_with_analysis(&w, cfg);
                std::hint::black_box(m.speedup())
            })
        });
    }
    g.finish();
}

fn bench_mutation_level(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_mutation_level");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    let w = salarydb::build(Scale::Small);
    for level in [1u8, 2] {
        g.bench_with_input(BenchmarkId::from_parameter(level), &level, |b, &level| {
            b.iter(|| {
                let cfg = AnalysisConfig {
                    mutation_level: level,
                    ..Default::default()
                };
                let prepared = prepare_workload_with(&w, cfg);
                let mut vm = prepared.make_vm(measured_config(&w));
                w.run(&mut vm).unwrap();
                std::hint::black_box((vm.cycles(), vm.stats().special_code_bytes))
            })
        });
    }
    g.finish();
}

fn bench_hot_state_cap(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_hot_state_cap");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(2));
    g.warm_up_time(Duration::from_millis(400));
    let w = salarydb::build(Scale::Small);
    for cap in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| {
                let cfg = AnalysisConfig {
                    max_hot_states_per_class: cap,
                    ..Default::default()
                };
                let m = measure_with_analysis(&w, cfg);
                std::hint::black_box((m.speedup(), m.mutated.special_tib_bytes))
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_r_param,
    bench_k_inlining,
    bench_mutation_level,
    bench_hot_state_cap
);
criterion_main!(benches);
