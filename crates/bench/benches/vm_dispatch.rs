//! Dispatch-path microbenchmarks for the fast-path interpreter: inline-cache
//! hit behaviour (monomorphic sites), cache-defeating polymorphic sites,
//! interface dispatch with cached IMT extras, and statically-bound calls.
//! Complements `bench_interp` (whole-workload wall throughput) by isolating
//! the call round-trip itself.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use dchm_bytecode::{CmpOp, MethodId, MethodSig, Program, ProgramBuilder, Ty, Value};
use dchm_vm::{Vm, VmConfig};

const CALLS: i64 = 10_000;

fn run(p: &Program, entry: MethodId, expect: i64) {
    let cfg = VmConfig {
        enable_inlining: false, // measure real dispatch, not inlined bodies
        ..Default::default()
    };
    let mut vm = Vm::new(p.clone(), cfg);
    let r = vm.call_static(entry, &[Value::Int(CALLS)]).unwrap();
    assert_eq!(r, Some(Value::Int(expect)));
    std::hint::black_box(vm.stats().ic_hits);
}

/// Same loop with the event tracer attached: what a fully-instrumented run
/// pays on the dispatch path (IC events are sampled at the default period,
/// so the common case is a counter bump, not a ring write).
fn run_traced(p: &Program, entry: MethodId, expect: i64) {
    let cfg = VmConfig {
        enable_inlining: false,
        ..Default::default()
    };
    let mut vm = Vm::new(p.clone(), cfg);
    vm.enable_tracing(64 * 1024);
    let r = vm.call_static(entry, &[Value::Int(CALLS)]).unwrap();
    assert_eq!(r, Some(Value::Int(expect)));
    std::hint::black_box(vm.trace_events().len());
}

/// One receiver, one site: every call after the first is an IC hit.
fn mono_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").build();
    pb.trivial_ctor(c);
    let mut m = pb.method(c, "f", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(1);
    m.ret(Some(r));
    m.build();
    let mut m = pb.static_method(c, "spin", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let n = m.param(0);
    let obj = m.reg();
    m.new_init(obj, c, vec![]);
    let acc = m.reg();
    let i = m.reg();
    let v = m.reg();
    m.const_i(acc, 0);
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    m.call_virtual(Some(v), obj, "f", vec![]);
    m.iadd(acc, acc, v);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    let spin = m.build();
    (pb.finish().unwrap(), spin)
}

/// Two receiver classes alternating at one site: the monomorphic cache
/// misses every call — the slow-path dispatch cost.
fn poly_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    let a = pb.class("A").build();
    let b = pb.class("B").extends(a).build();
    pb.trivial_ctor(a);
    pb.trivial_ctor(b);
    let mut m = pb.method(a, "f", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(1);
    m.ret(Some(r));
    m.build();
    let mut m = pb.method(b, "f", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(1);
    m.ret(Some(r));
    m.build();
    let mut m = pb.static_method(a, "spin", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let n = m.param(0);
    let oa = m.reg();
    let ob = m.reg();
    m.new_init(oa, a, vec![]);
    m.new_init(ob, b, vec![]);
    let acc = m.reg();
    let i = m.reg();
    let v = m.reg();
    let recv = m.reg();
    let rem = m.reg();
    let two = m.imm(2);
    let zero = m.imm(0);
    m.const_i(acc, 0);
    m.const_i(i, 0);
    let head = m.label();
    let use_b = m.label();
    let call = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    // Alternate receivers through the SAME call site at `call`.
    m.irem(rem, i, two);
    m.br_icmp(CmpOp::Eq, rem, zero, use_b);
    m.mov(recv, oa);
    m.jmp(call);
    m.bind(use_b);
    m.mov(recv, ob);
    m.jmp(call);
    m.bind(call);
    m.call_virtual(Some(v), recv, "f", vec![]);
    m.iadd(acc, acc, v);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    let spin = m.build();
    (pb.finish().unwrap(), spin)
}

/// Interface dispatch at one site (cached IMT extras on the hit path).
fn iface_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    let iface = pb.class("I").interface().build();
    pb.abstract_method(iface, "f", MethodSig::new(vec![], Some(Ty::Int)));
    let c = pb.class("C").implements(iface).build();
    pb.trivial_ctor(c);
    let mut m = pb.method(c, "f", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(1);
    m.ret(Some(r));
    m.build();
    let mut m = pb.static_method(c, "spin", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let n = m.param(0);
    let obj = m.reg();
    m.new_init(obj, c, vec![]);
    let acc = m.reg();
    let i = m.reg();
    let v = m.reg();
    m.const_i(acc, 0);
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    m.call_interface(Some(v), iface, obj, "f", vec![]);
    m.iadd(acc, acc, v);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    let spin = m.build();
    (pb.finish().unwrap(), spin)
}

/// Statically-bound calls at one site (JTOC path, cached resolution).
fn static_program() -> (Program, MethodId) {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").build();
    let mut m = pb.static_method(c, "one", MethodSig::new(vec![], Some(Ty::Int)));
    let r = m.imm(1);
    m.ret(Some(r));
    let one = m.build();
    let mut m = pb.static_method(c, "spin", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let n = m.param(0);
    let acc = m.reg();
    let i = m.reg();
    let v = m.reg();
    m.const_i(acc, 0);
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    m.call_static(Some(v), one, vec![]);
    m.iadd(acc, acc, v);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    let spin = m.build();
    (pb.finish().unwrap(), spin)
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("vm_dispatch");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(1));
    g.warm_up_time(Duration::from_millis(300));

    let (p, e) = mono_program();
    g.bench_function("virtual_mono_ic_hit_10k", |b| b.iter(|| run(&p, e, CALLS)));
    g.bench_function("virtual_mono_ic_hit_10k_traced", |b| {
        b.iter(|| run_traced(&p, e, CALLS))
    });

    let (p, e) = poly_program();
    g.bench_function("virtual_poly_ic_miss_10k", |b| b.iter(|| run(&p, e, CALLS)));
    g.bench_function("virtual_poly_ic_miss_10k_traced", |b| {
        b.iter(|| run_traced(&p, e, CALLS))
    });

    let (p, e) = iface_program();
    g.bench_function("interface_ic_hit_10k", |b| b.iter(|| run(&p, e, CALLS)));

    let (p, e) = static_program();
    g.bench_function("static_jtoc_10k", |b| b.iter(|| run(&p, e, CALLS)));

    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
