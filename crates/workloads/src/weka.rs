//! Weka — a data-mining workload modeled on the Weka 3.2.3 tool-set run the
//! paper measures: a k-nearest-neighbour classifier over a synthetic
//! numeric dataset.
//!
//! The `Classifier` is configured once with a distance metric
//! (`metric`: Euclidean vs. Manhattan) and a normalization flag; its
//! innermost distance loop branches on the metric for every dimension of
//! every point. Those two configuration fields are the class's state
//! fields, with one distinct hot state per run.

use crate::util::add_rng;
use crate::{Driver, Scale, Workload};
use dchm_bytecode::{CmpOp, ElemKind, MethodSig, ProgramBuilder, Ty};

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (points, dims, queries) = match scale {
        Scale::Small => (40, 4, 12),
        Scale::Full => (300, 8, 220),
    };

    let mut pb = ProgramBuilder::new();
    let rng = add_rng(&mut pb, 0x33ea);

    // class Classifier { private int metric; private int normalize; }
    let cls = pb.class("Classifier").build();
    let metric = pb.private_field(cls, "metric", Ty::Int);
    let normalize = pb.private_field(cls, "normalize", Ty::Int);
    let mut m = pb.ctor(cls, vec![Ty::Int, Ty::Int]);
    let this = m.this();
    let a = m.param(0);
    m.put_field(this, metric, a);
    let b = m.param(1);
    m.put_field(this, normalize, b);
    m.ret(None);
    m.build();

    // double distance(double[] data, int base, double[] query, int dims)
    let mut m = pb.method(
        cls,
        "distance",
        MethodSig::new(
            vec![
                Ty::Arr(ElemKind::Double),
                Ty::Int,
                Ty::Arr(ElemKind::Double),
                Ty::Int,
            ],
            Some(Ty::Double),
        ),
    );
    let this = m.this();
    let data = m.param(0);
    let base = m.param(1);
    let query = m.param(2);
    let nd = m.param(3);
    let acc = m.reg();
    m.const_d(acc, 0.0);
    let d = m.reg();
    m.const_i(d, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, d, nd, done);
    let idx = m.reg();
    m.iadd(idx, base, d);
    let x = m.reg();
    m.aload(x, data, idx);
    let y = m.reg();
    m.aload(y, query, d);
    let diff = m.reg();
    m.dsub(diff, x, y);
    // Missing-value handling: zero entries contribute a fixed penalty
    // (state-independent work, as in real attribute handling).
    let zero_d = m.imm_d(0.0);
    let missing = m.reg();
    m.dcmp(CmpOp::Eq, missing, x, zero_d);
    let present = m.label();
    m.br_icmp_imm(CmpOp::Eq, missing, 0, present);
    let penalty = m.imm_d(0.5);
    m.dadd(acc, acc, penalty);
    m.bind(present);
    // Branch on the metric field in the innermost loop.
    let mv = m.reg();
    m.get_field(mv, this, metric);
    let manhattan = m.label();
    let accum = m.label();
    let term = m.reg();
    m.br_icmp_imm(CmpOp::Ne, mv, 0, manhattan);
    m.dmul(term, diff, diff); // Euclidean: diff^2
    m.jmp(accum);
    m.bind(manhattan);
    m.intrinsic(Some(term), dchm_bytecode::IntrinsicKind::DAbs, vec![diff]);
    m.bind(accum);
    // Attribute weighting: w = 1 + d/8 (feature importance ramp).
    let dd_f = m.reg();
    m.i2d(dd_f, d);
    let eighth = m.imm_d(0.125);
    let w = m.reg();
    m.dmul(w, dd_f, eighth);
    let one_d = m.imm_d(1.0);
    m.dadd(w, w, one_d);
    m.dmul(term, term, w);
    // Clamp outlier contributions.
    let cap = m.imm_d(1000.0);
    let over = m.reg();
    m.dcmp(CmpOp::Gt, over, term, cap);
    let no_clamp = m.label();
    m.br_icmp_imm(CmpOp::Eq, over, 0, no_clamp);
    m.mov(term, cap);
    m.bind(no_clamp);
    m.dadd(acc, acc, term);
    m.iadd_imm(d, d, 1);
    m.jmp(head);
    m.bind(done);
    // Normalization divides by the dimension count.
    let nv = m.reg();
    m.get_field(nv, this, normalize);
    let skip = m.label();
    m.br_icmp_imm(CmpOp::Eq, nv, 0, skip);
    let ndd = m.reg();
    m.i2d(ndd, nd);
    m.ddiv(acc, acc, ndd);
    m.bind(skip);
    m.ret(Some(acc));
    m.build();

    // int classify(double[] data, int[] labels, double[] query, int dims)
    let mut m = pb.method(
        cls,
        "classify",
        MethodSig::new(
            vec![
                Ty::Arr(ElemKind::Double),
                Ty::Arr(ElemKind::Int),
                Ty::Arr(ElemKind::Double),
                Ty::Int,
            ],
            Some(Ty::Int),
        ),
    );
    let this = m.this();
    let data = m.param(0);
    let labels = m.param(1);
    let query = m.param(2);
    let nd = m.param(3);
    let np = m.reg();
    m.alen(np, labels);
    let best = m.reg();
    m.const_d(best, 1.0e300);
    let best_label = m.reg();
    m.const_i(best_label, -1);
    let p = m.reg();
    m.const_i(p, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, p, np, done);
    let base = m.reg();
    m.imul(base, p, nd);
    let dist = m.reg();
    m.call_virtual(Some(dist), this, "distance", vec![data, base, query, nd]);
    let closer = m.reg();
    m.dcmp(CmpOp::Lt, closer, dist, best);
    let no = m.label();
    m.br_icmp_imm(CmpOp::Eq, closer, 0, no);
    m.mov(best, dist);
    m.aload(best_label, labels, p);
    m.bind(no);
    m.iadd_imm(p, p, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(best_label));
    m.build();

    // main: build dataset, classify queries.
    let app = pb.class("Weka").build();
    let mut m = pb.static_method(app, "main", MethodSig::void());
    let npts = m.imm(points);
    let ndim = m.imm(dims);
    let total = m.reg();
    m.imul(total, npts, ndim);
    let data = m.reg();
    m.new_arr(data, ElemKind::Double, total);
    let labels = m.reg();
    m.new_arr(labels, ElemKind::Int, npts);

    // Fill data with values in [0, 100) / 10.
    let i = m.reg();
    m.const_i(i, 0);
    let fh = m.label();
    let fd = m.label();
    m.bind(fh);
    m.br_icmp(CmpOp::Ge, i, total, fd);
    let hundred = m.imm(100);
    let v = m.reg();
    m.call_static(Some(v), rng.next, vec![hundred]);
    let vd = m.reg();
    m.i2d(vd, v);
    let ten = m.imm_d(10.0);
    m.ddiv(vd, vd, ten);
    m.astore(data, i, vd);
    m.iadd_imm(i, i, 1);
    m.jmp(fh);
    m.bind(fd);
    // Labels 0..3.
    let i2 = m.reg();
    m.const_i(i2, 0);
    let lh = m.label();
    let ld = m.label();
    m.bind(lh);
    m.br_icmp(CmpOp::Ge, i2, npts, ld);
    let four = m.imm(4);
    let lab = m.reg();
    m.call_static(Some(lab), rng.next, vec![four]);
    m.astore(labels, i2, lab);
    m.iadd_imm(i2, i2, 1);
    m.jmp(lh);
    m.bind(ld);

    // Euclidean, normalized classifier.
    let zero = m.imm(0);
    let one = m.imm(1);
    let c = m.reg();
    m.new_obj(c, cls);
    m.call_ctor(c, cls, vec![zero, one]);

    let query = m.reg();
    m.new_arr(query, ElemKind::Double, ndim);
    let q = m.reg();
    m.const_i(q, 0);
    let qh = m.label();
    let qd = m.label();
    m.bind(qh);
    let nq = m.imm(queries);
    m.br_icmp(CmpOp::Ge, q, nq, qd);
    // Random query point.
    let d = m.reg();
    m.const_i(d, 0);
    let dh = m.label();
    let dd = m.label();
    m.bind(dh);
    m.br_icmp(CmpOp::Ge, d, ndim, dd);
    let hundred = m.imm(100);
    let v = m.reg();
    m.call_static(Some(v), rng.next, vec![hundred]);
    let vd = m.reg();
    m.i2d(vd, v);
    let ten = m.imm_d(10.0);
    m.ddiv(vd, vd, ten);
    m.astore(query, d, vd);
    m.iadd_imm(d, d, 1);
    m.jmp(dh);
    m.bind(dd);
    let label = m.reg();
    m.call_virtual(Some(label), c, "classify", vec![data, labels, query, ndim]);
    m.sink_int(label);
    m.iadd_imm(q, q, 1);
    m.jmp(qh);
    m.bind(qd);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);

    Workload {
        name: "Weka",
        program: pb.finish().expect("Weka verifies"),
        heap_bytes: 50 << 20,
        driver: Driver::Entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_vm::Vm;

    #[test]
    fn classifies_deterministically() {
        let w = build(Scale::Small);
        let mut a = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut a).unwrap();
        let mut b = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut b).unwrap();
        assert_eq!(a.state.output.checksum, b.state.output.checksum);
        assert_ne!(a.state.output.checksum, 0);
    }

    #[test]
    fn distance_dominates_profile() {
        let w = build(Scale::Small);
        let mut vm = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut vm).unwrap();
        let hot = vm.stats().hot_methods();
        let cls = w.program.class_by_name("Classifier").unwrap();
        let distance = w.program.method_by_name(cls, "distance").unwrap();
        assert_eq!(hot[0].0, distance, "distance() should be hottest");
    }
}
