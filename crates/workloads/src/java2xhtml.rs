//! Java2XHTML — a Java-source-to-XHTML colorizer modeled on the
//! Java2XHTML 2.0 tool the paper measures.
//!
//! The `Formatter` is configured once (`style`: plain vs. colored,
//! `tag` character class) and then tokenizes character streams, branching
//! on its configuration for every token boundary. The tokenizer's *cursor*
//! state (`mode`) changes on almost every character — a field EQ 1 must
//! reject (hot writes), in contrast with the read-only `style`.

use crate::util::add_rng;
use crate::{Driver, Scale, Workload};
use dchm_bytecode::{CmpOp, ElemKind, MethodSig, ProgramBuilder, Ty};

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (input_len, passes) = match scale {
        Scale::Small => (400, 5),
        Scale::Full => (3_500, 70),
    };

    let mut pb = ProgramBuilder::new();
    let rng = add_rng(&mut pb, 0x7a2a);

    let fmt = pb.class("Formatter").build();
    let style = pb.private_field(fmt, "style", Ty::Int); // 0 plain, 1 colored
    let mode = pb.instance_field(fmt, "mode", Ty::Int); // tokenizer cursor state
    let mut m = pb.ctor(fmt, vec![Ty::Int]);
    let this = m.this();
    let s = m.param(0);
    m.put_field(this, style, s);
    let z = m.imm(0);
    m.put_field(this, mode, z);
    m.ret(None);
    m.build();

    // int format(int[] input, int[] output) -> output length
    let mut m = pb.method(
        fmt,
        "format",
        MethodSig::new(
            vec![Ty::Arr(ElemKind::Int), Ty::Arr(ElemKind::Int)],
            Some(Ty::Int),
        ),
    );
    let this = m.this();
    let input = m.param(0);
    let output = m.param(1);
    let n = m.reg();
    m.alen(n, input);
    let i = m.reg();
    m.const_i(i, 0);
    let o = m.reg();
    m.const_i(o, 0);

    macro_rules! emit {
        ($m:expr, $ch:expr) => {{
            let c = $m.imm($ch);
            $m.astore(output, o, c);
            $m.iadd_imm(o, o, 1);
        }};
    }

    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    let ch = m.reg();
    m.aload(ch, input, i);

    // Character class: letter (identifier) vs digit vs other.
    let is_alpha = m.reg();
    let a_lo = m.imm('a' as i64);
    let ge_lo = m.reg();
    m.icmp(CmpOp::Ge, ge_lo, ch, a_lo);
    let a_hi = m.imm('z' as i64);
    let le_hi = m.reg();
    m.icmp(CmpOp::Le, le_hi, ch, a_hi);
    m.ibin(dchm_bytecode::IBinOp::And, is_alpha, ge_lo, le_hi);
    let is_digit = m.reg();
    let d_lo = m.imm('0' as i64);
    let ge_d = m.reg();
    m.icmp(CmpOp::Ge, ge_d, ch, d_lo);
    let d_hi = m.imm('9' as i64);
    let le_d = m.reg();
    m.icmp(CmpOp::Le, le_d, ch, d_hi);
    m.ibin(dchm_bytecode::IBinOp::And, is_digit, ge_d, le_d);

    // New token class.
    let newmode = m.reg();
    let set_ident = m.label();
    let set_digit = m.label();
    let have_mode = m.label();
    m.br_if(is_alpha, set_ident);
    m.br_if(is_digit, set_digit);
    m.const_i(newmode, 0);
    m.jmp(have_mode);
    m.bind(set_ident);
    m.const_i(newmode, 1);
    m.jmp(have_mode);
    m.bind(set_digit);
    m.const_i(newmode, 2);
    m.bind(have_mode);

    // Token boundary? compare with the cursor field, update it (hot write).
    let old = m.reg();
    m.get_field(old, this, mode);
    let no_boundary = m.label();
    m.br_icmp(CmpOp::Eq, newmode, old, no_boundary);
    m.put_field(this, mode, newmode);
    // On a boundary, colored style emits a span tag; plain emits a space.
    let sv = m.reg();
    m.get_field(sv, this, style);
    let plain = m.label();
    let after_tag = m.label();
    m.br_icmp_imm(CmpOp::Eq, sv, 0, plain);
    emit!(m, '<' as i64);
    emit!(m, 's' as i64);
    // Colored style tags the token class.
    let tagged = m.reg();
    let base = m.imm('0' as i64);
    m.iadd(tagged, newmode, base);
    m.astore(output, o, tagged);
    m.iadd_imm(o, o, 1);
    emit!(m, '>' as i64);
    m.jmp(after_tag);
    m.bind(plain);
    emit!(m, ' ' as i64);
    m.bind(after_tag);
    m.bind(no_boundary);

    // Copy the character through.
    m.astore(output, o, ch);
    m.iadd_imm(o, o, 1);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(o));
    m.build();

    // ---- auxiliary passes the real tool performs ----
    let stats = pb.class("SourceStats").build();
    // int digest(int[] buf, int n): rolling hash over the emitted page.
    let mut m = pb.static_method(
        stats,
        "digest",
        MethodSig::new(vec![Ty::Arr(ElemKind::Int), Ty::Int], Some(Ty::Int)),
    );
    let buf = m.param(0);
    let n = m.param(1);
    let acc = m.reg();
    m.const_i(acc, 1469);
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    let ch = m.reg();
    m.aload(ch, buf, i);
    let p = m.imm(131);
    m.imul(acc, acc, p);
    m.iadd(acc, acc, ch);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    let digest = m.build();

    // int countTokens(int[] input): pre-pass sizing the output buffer.
    let mut m = pb.static_method(
        stats,
        "countTokens",
        MethodSig::new(vec![Ty::Arr(ElemKind::Int)], Some(Ty::Int)),
    );
    let input = m.param(0);
    let n = m.reg();
    m.alen(n, input);
    let count = m.reg();
    m.const_i(count, 0);
    let prev = m.reg();
    m.const_i(prev, -1);
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    let ch = m.reg();
    m.aload(ch, input, i);
    let same = m.label();
    m.br_icmp(CmpOp::Eq, ch, prev, same);
    m.iadd_imm(count, count, 1);
    m.mov(prev, ch);
    m.bind(same);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(count));
    let count_tokens = m.build();

    // main
    let app = pb.class("Java2XHTML").build();
    let mut m = pb.static_method(app, "main", MethodSig::void());
    let len = m.imm(input_len);
    let input = m.reg();
    m.new_arr(input, ElemKind::Int, len);
    let i = m.reg();
    m.const_i(i, 0);
    let gh = m.label();
    let gd = m.label();
    m.bind(gh);
    m.br_icmp(CmpOp::Ge, i, len, gd);
    // Mix of identifier chars, digits and punctuation.
    let forty = m.imm(40);
    let roll = m.reg();
    m.call_static(Some(roll), rng.next, vec![forty]);
    let ch = m.reg();
    let digit = m.label();
    let punct = m.label();
    let put = m.label();
    let t26 = m.imm(26);
    m.br_icmp(CmpOp::Ge, roll, t26, digit);
    let base = m.imm('a' as i64);
    m.iadd(ch, roll, base);
    m.jmp(put);
    m.bind(digit);
    let t36 = m.imm(36);
    m.br_icmp(CmpOp::Ge, roll, t36, punct);
    let dbase = m.imm('0' as i64 - 26);
    m.iadd(ch, roll, dbase);
    m.jmp(put);
    m.bind(punct);
    m.const_i(ch, ';' as i64);
    m.bind(put);
    m.astore(input, i, ch);
    m.iadd_imm(i, i, 1);
    m.jmp(gh);
    m.bind(gd);

    let six = m.imm(6);
    let olen = m.reg();
    m.imul(olen, len, six);
    let output = m.reg();
    m.new_arr(output, ElemKind::Int, olen);

    // Colored formatter, reused.
    let one = m.imm(1);
    let f = m.reg();
    m.new_obj(f, fmt);
    m.call_ctor(f, fmt, vec![one]);

    let r = m.reg();
    m.const_i(r, 0);
    let rh = m.label();
    let rd = m.label();
    m.bind(rh);
    let reps = m.imm(passes);
    m.br_icmp(CmpOp::Ge, r, reps, rd);
    let toks = m.reg();
    m.call_static(Some(toks), count_tokens, vec![input]);
    m.sink_int(toks);
    let outn = m.reg();
    m.call_virtual(Some(outn), f, "format", vec![input, output]);
    m.sink_int(outn);
    let dg = m.reg();
    m.call_static(Some(dg), digest, vec![output, outn]);
    m.sink_int(dg);
    m.iadd_imm(r, r, 1);
    m.jmp(rh);
    m.bind(rd);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);

    Workload {
        name: "Java2XHTML",
        program: pb.finish().expect("Java2XHTML verifies"),
        heap_bytes: 50 << 20,
        driver: Driver::Entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_vm::Vm;

    #[test]
    fn formats_deterministically() {
        let w = build(Scale::Small);
        let mut a = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut a).unwrap();
        let mut b = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut b).unwrap();
        assert_eq!(a.state.output.checksum, b.state.output.checksum);
        assert_ne!(a.state.output.checksum, 0);
    }
}
