//! CSVToXML — a character-stream CSV → XML converter modeled on the
//! CSVToXML 1.1 tool the paper measures.
//!
//! The `Converter` carries its configuration (`delimiter`, `quoted`) in
//! instance fields set once at construction; the per-character loop of
//! `convert()` compares against and branches on them constantly. One
//! converter configuration dominates a run, so the class has a single
//! distinct hot state — the paper's observation that "many classes analyzed
//! have a distinct hot state".

use crate::util::add_rng;
use crate::{Driver, Scale, Workload};
use dchm_bytecode::{CmpOp, ElemKind, MethodSig, ProgramBuilder, Ty};

const LT: i64 = '<' as i64;
const GT: i64 = '>' as i64;
const SLASH: i64 = '/' as i64;
const C: i64 = 'c' as i64;
const NL: i64 = '\n' as i64;
const QUOTE: i64 = '"' as i64;

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (input_len, conversions) = match scale {
        Scale::Small => (400, 5),
        Scale::Full => (4_000, 60),
    };

    let mut pb = ProgramBuilder::new();
    let rng = add_rng(&mut pb, 0xc5b2);

    // class Converter { private int delimiter; private int quoted; }
    let conv = pb.class("Converter").build();
    let delim = pb.private_field(conv, "delimiter", Ty::Int);
    let quoted = pb.private_field(conv, "quoted", Ty::Int);
    let mut m = pb.ctor(conv, vec![Ty::Int, Ty::Int]);
    let this = m.this();
    let d = m.param(0);
    m.put_field(this, delim, d);
    let q = m.param(1);
    m.put_field(this, quoted, q);
    m.ret(None);
    m.build();

    // int convert(int[] input, int[] output): returns output length.
    let mut m = pb.method(
        conv,
        "convert",
        MethodSig::new(
            vec![Ty::Arr(ElemKind::Int), Ty::Arr(ElemKind::Int)],
            Some(Ty::Int),
        ),
    );
    let this = m.this();
    let input = m.param(0);
    let output = m.param(1);
    let n = m.reg();
    m.alen(n, input);
    let i = m.reg();
    m.const_i(i, 0);
    let o = m.reg();
    m.const_i(o, 0);
    // Small emit helper: out[o++] = ch (as closure over builder).
    macro_rules! emit_const {
        ($m:expr, $ch:expr) => {{
            let c = $m.imm($ch);
            $m.astore(output, o, c);
            $m.iadd_imm(o, o, 1);
        }};
    }

    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    let ch = m.reg();
    m.aload(ch, input, i);

    let dv = m.reg();
    m.get_field(dv, this, delim);
    let not_delim = m.label();
    let next = m.label();
    m.br_icmp(CmpOp::Ne, ch, dv, not_delim);
    // Delimiter: close a cell -> "</c><c>"
    emit_const!(m, LT);
    emit_const!(m, SLASH);
    emit_const!(m, C);
    emit_const!(m, GT);
    emit_const!(m, LT);
    emit_const!(m, C);
    emit_const!(m, GT);
    m.jmp(next);
    m.bind(not_delim);

    let nlv = m.imm(NL);
    let not_nl = m.label();
    m.br_icmp(CmpOp::Ne, ch, nlv, not_nl);
    // Newline: close row -> "</r><r>"
    emit_const!(m, LT);
    emit_const!(m, SLASH);
    emit_const!(m, 'r' as i64);
    emit_const!(m, GT);
    emit_const!(m, LT);
    emit_const!(m, 'r' as i64);
    emit_const!(m, GT);
    m.jmp(next);
    m.bind(not_nl);

    // Payload character; quoting mode wraps it.
    let qv = m.reg();
    m.get_field(qv, this, quoted);
    let unquoted = m.label();
    m.br_icmp_imm(CmpOp::Eq, qv, 0, unquoted);
    emit_const!(m, QUOTE);
    m.astore(output, o, ch);
    m.iadd_imm(o, o, 1);
    emit_const!(m, QUOTE);
    m.jmp(next);
    m.bind(unquoted);
    m.astore(output, o, ch);
    m.iadd_imm(o, o, 1);
    m.bind(next);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(o));
    m.build();

    // ---- auxiliary passes a real converter performs ----
    let tools = pb.class("XmlTools").build();
    // int validate(int[] input): counts structural characters.
    let mut m = pb.static_method(
        tools,
        "validate",
        MethodSig::new(vec![Ty::Arr(ElemKind::Int)], Some(Ty::Int)),
    );
    let input = m.param(0);
    let n = m.reg();
    m.alen(n, input);
    let count = m.reg();
    m.const_i(count, 0);
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    let ch = m.reg();
    m.aload(ch, input, i);
    let next = m.label();
    let comma = m.imm(',' as i64);
    let hit = m.label();
    m.br_icmp(CmpOp::Eq, ch, comma, hit);
    let nl = m.imm(NL);
    m.br_icmp(CmpOp::Ne, ch, nl, next);
    m.bind(hit);
    m.iadd_imm(count, count, 1);
    m.bind(next);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(count));
    let validate = m.build();

    // int checksum(int[] buf, int n): order-sensitive digest of the output.
    let mut m = pb.static_method(
        tools,
        "checksum",
        MethodSig::new(vec![Ty::Arr(ElemKind::Int), Ty::Int], Some(Ty::Int)),
    );
    let buf = m.param(0);
    let n = m.param(1);
    let acc = m.reg();
    m.const_i(acc, 7);
    let hi = m.reg();
    m.const_i(hi, 0);
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    let ch = m.reg();
    m.aload(ch, buf, i);
    let thirty1 = m.imm(31);
    m.imul(acc, acc, thirty1);
    m.iadd(acc, acc, ch);
    m.intrinsic(
        Some(hi),
        dchm_bytecode::IntrinsicKind::IMax,
        vec![hi, ch],
    );
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.iadd(acc, acc, hi);
    m.ret(Some(acc));
    let checksum = m.build();

    // static void main()
    let app = pb.class("CSVToXML").build();
    let mut m = pb.static_method(app, "main", MethodSig::void());
    // Generate the input: random letters with delimiters and newlines.
    let len = m.imm(input_len);
    let input = m.reg();
    m.new_arr(input, ElemKind::Int, len);
    let i = m.reg();
    m.const_i(i, 0);
    let gh = m.label();
    let gd = m.label();
    m.bind(gh);
    m.br_icmp(CmpOp::Ge, i, len, gd);
    let ten = m.imm(10);
    let roll = m.reg();
    m.call_static(Some(roll), rng.next, vec![ten]);
    let is_delim = m.label();
    let is_nl = m.label();
    let put = m.label();
    let chr = m.reg();
    let zero = m.imm(0);
    m.br_icmp(CmpOp::Eq, roll, zero, is_delim);
    let nine = m.imm(9);
    m.br_icmp(CmpOp::Eq, roll, nine, is_nl);
    let twentysix = m.imm(26);
    let letter = m.reg();
    m.call_static(Some(letter), rng.next, vec![twentysix]);
    let base = m.imm('a' as i64);
    m.iadd(chr, letter, base);
    m.jmp(put);
    m.bind(is_delim);
    m.const_i(chr, ',' as i64);
    m.jmp(put);
    m.bind(is_nl);
    m.const_i(chr, NL);
    m.bind(put);
    m.astore(input, i, chr);
    m.iadd_imm(i, i, 1);
    m.jmp(gh);
    m.bind(gd);

    // Output buffer: 8x input.
    let eight = m.imm(8);
    let olen = m.reg();
    m.imul(olen, len, eight);
    let output = m.reg();
    m.new_arr(output, ElemKind::Int, olen);

    // One converter (comma, quoted) reused across conversions.
    let comma = m.imm(',' as i64);
    let one = m.imm(1);
    let cobj = m.reg();
    m.new_obj(cobj, conv);
    m.call_ctor(cobj, conv, vec![comma, one]);

    let r = m.reg();
    m.const_i(r, 0);
    let rh = m.label();
    let rd = m.label();
    m.bind(rh);
    let reps = m.imm(conversions);
    m.br_icmp(CmpOp::Ge, r, reps, rd);
    let valid = m.reg();
    m.call_static(Some(valid), validate, vec![input]);
    m.sink_int(valid);
    let outn = m.reg();
    m.call_virtual(Some(outn), cobj, "convert", vec![input, output]);
    m.sink_int(outn);
    let digest = m.reg();
    m.call_static(Some(digest), checksum, vec![output, outn]);
    m.sink_int(digest);
    m.iadd_imm(r, r, 1);
    m.jmp(rh);
    m.bind(rd);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);

    Workload {
        name: "CSVToXML",
        program: pb.finish().expect("CSVToXML verifies"),
        heap_bytes: 50 << 20,
        driver: Driver::Entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_vm::Vm;

    #[test]
    fn converts_deterministically() {
        let w = build(Scale::Small);
        let mut a = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut a).unwrap();
        let mut b = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut b).unwrap();
        assert_eq!(a.state.output.checksum, b.state.output.checksum);
        assert_ne!(a.state.output.checksum, 0);
    }
}
