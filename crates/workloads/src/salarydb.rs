//! SalaryDB — the paper's Figure 2 microbenchmark, reproduced verbatim.
//!
//! `SalaryEmployee.raise()` branches four ways on the `grade` field (plus a
//! range check calling `reportError`); the driver loops `raise()` over an
//! employee database. `grade` takes exactly the values 0–3, so the class has
//! four hot states — the textbook case for dynamic class mutation.

use crate::util::add_rng;
use crate::{Driver, Scale, Workload};
use dchm_bytecode::{CmpOp, ElemKind, MethodSig, ProgramBuilder, Ty};

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (employees, iters) = match scale {
        Scale::Small => (24, 120),
        Scale::Full => (200, 2_000),
    };

    let mut pb = ProgramBuilder::new();
    let rng = add_rng(&mut pb, 0x5a1a17);

    // class Employee { private double salary; public void raise() {} }
    let employee = pb.class("Employee").build();
    let salary = pb.field_raw(
        employee,
        "salary",
        Ty::Double,
        false,
        dchm_bytecode::Visibility::Package,
        0.0f64.into(),
    );
    pb.trivial_ctor(employee);
    let mut m = pb.method(employee, "raise", MethodSig::void());
    m.ret(None);
    m.build();

    // class HourlyEmployee extends Employee { public void raise() {...} }
    let hourly = pb.class("HourlyEmployee").extends(employee).build();
    pb.trivial_ctor(hourly);
    let mut m = pb.method(hourly, "raise", MethodSig::void());
    let this = m.this();
    let s = m.reg();
    m.get_field(s, this, salary);
    let half = m.imm_d(0.5);
    m.dadd(s, s, half);
    m.put_field(this, salary, s);
    m.ret(None);
    m.build();

    // static void reportError() — the paper's range-check sink.
    let err_class = pb.class("ErrorReporter").build();
    let mut m = pb.static_method(err_class, "reportError", MethodSig::void());
    let v = m.imm(-999);
    m.sink_int(v);
    m.ret(None);
    let report_error = m.build();

    // class SalaryEmployee extends Employee { private int grade; ... }
    let sal = pb.class("SalaryEmployee").extends(employee).build();
    let grade = pb.private_field(sal, "grade", Ty::Int);
    let mut m = pb.ctor(sal, vec![Ty::Int]);
    let this = m.this();
    let g = m.param(0);
    m.put_field(this, grade, g);
    m.ret(None);
    m.build();

    // public void raise() — the paper's exact branch ladder.
    let mut m = pb.method(sal, "raise", MethodSig::void());
    let this = m.this();
    let g = m.reg();
    m.get_field(g, this, grade);
    let ok1 = m.label();
    let no_err = m.label();
    // if (grade < 0 || grade > 3) reportError();
    m.br_icmp_imm(CmpOp::Ge, g, 0, ok1);
    m.call_static(None, report_error, vec![]);
    m.jmp(no_err);
    m.bind(ok1);
    let three = m.imm(3);
    m.br_icmp(CmpOp::Le, g, three, no_err);
    m.call_static(None, report_error, vec![]);
    m.bind(no_err);

    let l1 = m.label();
    let l2 = m.label();
    let l3 = m.label();
    let done = m.label();
    let s = m.reg();
    m.get_field(s, this, salary);
    // if (grade == 0) salary += 1;
    m.br_icmp_imm(CmpOp::Ne, g, 0, l1);
    let one = m.imm_d(1.0);
    m.dadd(s, s, one);
    m.jmp(done);
    // else if (grade == 1) salary += 2;
    m.bind(l1);
    m.br_icmp_imm(CmpOp::Ne, g, 1, l2);
    let two = m.imm_d(2.0);
    m.dadd(s, s, two);
    m.jmp(done);
    // else if (grade == 2) salary *= 1.01;
    m.bind(l2);
    m.br_icmp_imm(CmpOp::Ne, g, 2, l3);
    let k = m.imm_d(1.01);
    m.dmul(s, s, k);
    m.jmp(done);
    // else salary *= 1.02;
    m.bind(l3);
    let k = m.imm_d(1.02);
    m.dmul(s, s, k);
    m.bind(done);
    m.put_field(this, salary, s);
    m.ret(None);
    m.build();

    // class TestDriver { public static void main() }
    let driver = pb.class("TestDriver").build();
    let mut m = pb.static_method(driver, "main", MethodSig::void());
    let n = m.imm(employees);
    let arr = m.reg();
    m.new_arr(arr, ElemKind::Ref, n);
    let i = m.reg();
    m.const_i(i, 0);
    let fill_head = m.label();
    let fill_done = m.label();
    m.bind(fill_head);
    m.br_icmp(CmpOp::Ge, i, n, fill_done);
    let four = m.imm(4);
    let g = m.reg();
    m.call_static(Some(g), rng.next, vec![four]);
    let o = m.reg();
    m.new_obj(o, sal);
    m.call_ctor(o, sal, vec![g]);
    m.astore(arr, i, o);
    m.iadd_imm(i, i, 1);
    m.jmp(fill_head);
    m.bind(fill_done);

    // for (i = 0; i < iters; i++) for (j = 0; j < n; j++) emps[j].raise();
    let it = m.reg();
    m.const_i(it, 0);
    let ohead = m.label();
    let odone = m.label();
    m.bind(ohead);
    let lim = m.imm(iters);
    m.br_icmp(CmpOp::Ge, it, lim, odone);
    let j = m.reg();
    m.const_i(j, 0);
    let ihead = m.label();
    let idone = m.label();
    m.bind(ihead);
    m.br_icmp(CmpOp::Ge, j, n, idone);
    let o = m.reg();
    m.aload(o, arr, j);
    m.call_virtual(None, o, "raise", vec![]);
    m.iadd_imm(j, j, 1);
    m.jmp(ihead);
    m.bind(idone);
    m.iadd_imm(it, it, 1);
    m.jmp(ohead);
    m.bind(odone);

    // Sink final salaries (observable output).
    let j = m.reg();
    m.const_i(j, 0);
    let shead = m.label();
    let sdone = m.label();
    m.bind(shead);
    m.br_icmp(CmpOp::Ge, j, n, sdone);
    let o = m.reg();
    m.aload(o, arr, j);
    let sv = m.reg();
    m.get_field(sv, o, salary);
    m.sink_double(sv);
    m.iadd_imm(j, j, 1);
    m.jmp(shead);
    m.bind(sdone);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);

    Workload {
        name: "SalaryDB",
        program: pb.finish().expect("SalaryDB verifies"),
        heap_bytes: 50 << 20,
        driver: Driver::Entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_vm::Vm;

    #[test]
    fn runs_and_matches_table1_shape() {
        let w = build(Scale::Small);
        // Paper Table 1: 3 classes, 8 methods. We additionally carry the
        // RNG and error-reporter helpers; the employee hierarchy itself is
        // 3 classes with raise() defined 3x + ctors + main.
        let (classes, methods) = w.program.table1_counts();
        assert!((3..=6).contains(&classes), "classes = {classes}");
        assert!(methods >= 8, "methods = {methods}");
        let mut vm = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut vm).unwrap();
        assert_ne!(vm.state.output.checksum, 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let w = build(Scale::Small);
        let mut a = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut a).unwrap();
        let mut b = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut b).unwrap();
        assert_eq!(a.state.output.checksum, b.state.output.checksum);
    }
}
