//! Shared building blocks for the benchmark programs.

use dchm_bytecode::{ClassId, FieldId, MethodId, MethodSig, ProgramBuilder, Ty};

/// A deterministic in-bytecode linear congruential generator.
///
/// `Rng.next(bound)` advances the shared seed and returns a value in
/// `[0, bound)`. The seed is a static field that is *written* on every call,
/// so EQ 1 correctly rejects it as a state field — realistic noise for the
/// analysis.
#[derive(Clone, Copy, Debug)]
pub struct Rng {
    /// The Rng class.
    pub class: ClassId,
    /// `static int next(int bound)`.
    pub next: MethodId,
    /// The seed field.
    pub seed: FieldId,
}

/// Adds the RNG class to a program.
pub fn add_rng(pb: &mut ProgramBuilder, seed: i64) -> Rng {
    let class = pb.class("Rng").package("util").build();
    let seed_f = pb.static_field(class, "seed", Ty::Int, seed.into());
    let mut m = pb.static_method(class, "next", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let bound = m.param(0);
    let s = m.reg();
    m.get_static(s, seed_f);
    let a = m.imm(6364136223846793005);
    m.imul(s, s, a);
    let c = m.imm(1442695040888963407);
    m.iadd(s, s, c);
    m.put_static(seed_f, s);
    // Take the high bits, make non-negative, reduce modulo bound.
    let sh = m.imm(33);
    let hi = m.reg();
    m.ibin(dchm_bytecode::IBinOp::Shr, hi, s, sh);
    let out = m.reg();
    m.intrinsic(Some(out), dchm_bytecode::IntrinsicKind::IAbs, vec![hi]);
    m.irem(out, out, bound);
    m.ret(Some(out));
    let next = m.build();
    Rng {
        class,
        next,
        seed: seed_f,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_bytecode::{CmpOp, Value};
    use dchm_vm::{Vm, VmConfig};

    #[test]
    fn rng_is_deterministic_and_bounded() {
        let mut pb = ProgramBuilder::new();
        let rng = add_rng(&mut pb, 42);
        let c = pb.class("T").build();
        let mut m = pb.static_method(c, "main", MethodSig::new(vec![], Some(Ty::Int)));
        // Draw 1000 values in [0, 10); fail (return -1) if out of range.
        let i = m.reg();
        m.const_i(i, 0);
        let acc = m.reg();
        m.const_i(acc, 0);
        let head = m.label();
        let done = m.label();
        let bad = m.label();
        m.bind(head);
        let lim = m.imm(1000);
        m.br_icmp(CmpOp::Ge, i, lim, done);
        let ten = m.imm(10);
        let v = m.reg();
        m.call_static(Some(v), rng.next, vec![ten]);
        let zero = m.imm(0);
        m.br_icmp(CmpOp::Lt, v, zero, bad);
        m.br_icmp(CmpOp::Ge, v, ten, bad);
        m.iadd(acc, acc, v);
        m.iadd_imm(i, i, 1);
        m.jmp(head);
        m.bind(bad);
        let neg = m.imm(-1);
        m.ret(Some(neg));
        m.bind(done);
        m.ret(Some(acc));
        let main = m.build();
        pb.set_entry(main);
        let p = pb.finish().unwrap();

        let mut vm1 = Vm::new(p.clone(), VmConfig::default());
        let r1 = vm1.run_entry().unwrap().unwrap();
        let mut vm2 = Vm::new(p, VmConfig::default());
        let r2 = vm2.run_entry().unwrap().unwrap();
        assert_eq!(r1, r2, "deterministic");
        let Value::Int(sum) = r1 else { panic!() };
        assert!(sum > 0, "in-range values (got {sum})");
        // Mean should be near 4.5 for uniform [0,10).
        assert!((3_000..6_000).contains(&sum), "sum {sum} not plausible");
    }
}
