#![warn(missing_docs)]

//! # dchm-workloads
//!
//! The seven benchmark programs of the paper's Table 1, reconstructed in
//! `dchm` bytecode:
//!
//! | Program      | Description                          | Module |
//! |--------------|--------------------------------------|--------|
//! | SalaryDB     | the paper's Fig. 2 microbenchmark    | [`salarydb`] |
//! | SimLogic     | simple logic simulator (Maurer-style)| [`simlogic`] |
//! | CSVToXML     | CSV to XML conversion                | [`csv2xml`] |
//! | Java2XHTML   | Java to XHTML colorizer              | [`java2xhtml`] |
//! | Weka         | data-mining (k-NN classifier)        | [`weka`] |
//! | SPECjbb2000  | transaction-processing benchmark     | [`jbb`] |
//! | SPECjbb2005  | ditto, 2005 rules (CustomerReport)   | [`jbb`] |
//!
//! The SPEC benchmarks are proprietary; the [`jbb`] module rebuilds the
//! *structure the paper exploits* — warehouses/districts/orders, the five
//! TPC-C-style transactions, a `DisplayScreen` with constructor-constant
//! `rows`/`cols` (the paper's Fig. 7 object-lifetime-constant example), and
//! per-warehouse measurement intervals. The 2005 variant adds the
//! heavyweight `CustomerReport` transaction and higher allocation pressure.
//!
//! Every workload is deterministic: randomness comes from an in-bytecode
//! linear congruential generator seeded at build time.

pub mod csv2xml;
pub mod java2xhtml;
pub mod jbb;
pub mod salarydb;
pub mod simlogic;
pub mod util;
pub mod weka;

use dchm_bytecode::{MethodId, Program, Value};
use dchm_vm::{RunError, Vm, VmConfig};

/// How a workload is driven.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Driver {
    /// Run the program entry point once.
    Entry,
    /// SPECjbb style: call `setup` once, then `run(txns)` per warehouse.
    Warehouse {
        /// One-time database construction.
        setup: MethodId,
        /// Runs one warehouse interval; takes the transaction count and
        /// returns a result checksum.
        run: MethodId,
        /// Transactions per warehouse interval.
        txns: i64,
        /// Number of warehouse intervals in a full run.
        warehouses: usize,
    },
}

/// Per-warehouse measurement (for the paper's Figures 13–15).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WarehouseRun {
    /// Transactions completed.
    pub txns: i64,
    /// Cycles the interval took (compilation and GC included, as in the
    /// paper's wall-clock warehouse timing).
    pub cycles: u64,
}

impl WarehouseRun {
    /// Throughput in transactions per modeled second.
    pub fn throughput(&self) -> f64 {
        let secs = dchm_ir::cost::CostModel::cycles_to_secs(self.cycles);
        self.txns as f64 / secs.max(1e-12)
    }
}

/// A benchmark program plus how to run it.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name (matches the paper's Table 1).
    pub name: &'static str,
    /// The program.
    pub program: Program,
    /// Heap size the paper assigns this benchmark.
    pub heap_bytes: usize,
    /// Driver.
    pub driver: Driver,
}

impl Workload {
    /// The VM configuration this workload runs under.
    pub fn vm_config(&self) -> VmConfig {
        VmConfig {
            heap_bytes: self.heap_bytes,
            ..Default::default()
        }
    }

    /// Runs the full workload on `vm`.
    ///
    /// # Errors
    /// Propagates VM traps (a correct build never traps).
    pub fn run(&self, vm: &mut Vm) -> Result<(), RunError> {
        match self.driver {
            Driver::Entry => {
                vm.run_entry()?;
            }
            Driver::Warehouse {
                setup,
                run,
                txns,
                warehouses,
            } => {
                vm.call_static(setup, &[])?;
                for _ in 0..warehouses {
                    vm.call_static(run, &[Value::Int(txns)])?;
                }
            }
        }
        Ok(())
    }

    /// Runs warehouse intervals one at a time, reporting per-interval
    /// cycles (Figures 13–15). Falls back to a single interval for
    /// [`Driver::Entry`] workloads.
    ///
    /// # Errors
    /// Propagates VM traps.
    pub fn run_warehouses(&self, vm: &mut Vm) -> Result<Vec<WarehouseRun>, RunError> {
        match self.driver {
            Driver::Entry => {
                let before = vm.cycles();
                vm.run_entry()?;
                Ok(vec![WarehouseRun {
                    txns: 1,
                    cycles: vm.cycles() - before,
                }])
            }
            Driver::Warehouse {
                setup,
                run,
                txns,
                warehouses,
            } => {
                vm.call_static(setup, &[])?;
                let mut out = Vec::with_capacity(warehouses);
                for _ in 0..warehouses {
                    let before = vm.cycles();
                    vm.call_static(run, &[Value::Int(txns)])?;
                    out.push(WarehouseRun {
                        txns,
                        cycles: vm.cycles() - before,
                    });
                }
                Ok(out)
            }
        }
    }
}

/// Workload scale: `Small` keeps unit tests fast; `Full` is what the bench
/// harness measures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Scale {
    /// Test scale.
    Small,
    /// Measurement scale.
    #[default]
    Full,
}

/// All seven benchmarks at the given scale, in the paper's Table 1 order.
pub fn catalog(scale: Scale) -> Vec<Workload> {
    vec![
        salarydb::build(scale),
        simlogic::build(scale),
        csv2xml::build(scale),
        java2xhtml::build(scale),
        weka::build(scale),
        jbb::build(jbb::JbbVariant::Jbb2000, scale),
        jbb::build(jbb::JbbVariant::Jbb2005, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_seven_entries_in_paper_order() {
        let cat = catalog(Scale::Small);
        let names: Vec<&str> = cat.iter().map(|w| w.name).collect();
        assert_eq!(
            names,
            vec![
                "SalaryDB",
                "SimLogic",
                "CSVToXML",
                "Java2XHTML",
                "Weka",
                "SPECjbb2000",
                "SPECjbb2005"
            ]
        );
    }

    #[test]
    fn every_workload_runs_clean_without_mutation() {
        for w in catalog(Scale::Small) {
            let mut vm = Vm::new(w.program.clone(), w.vm_config());
            w.run(&mut vm).unwrap_or_else(|e| panic!("{} trapped: {e}", w.name));
            assert!(
                vm.state.output.checksum != 0,
                "{} must produce observable output",
                w.name
            );
        }
    }

    #[test]
    fn heap_sizes_preserve_paper_ratios() {
        // Paper: 50 MB default, 128 MB for JBB2000, 384 MB for JBB2005
        // (1:3). Ours are scaled to the reconstructions' footprints with
        // the same ordering and the same 1:3 JBB ratio.
        let cat = catalog(Scale::Full);
        let by_name = |n: &str| cat.iter().find(|w| w.name == n).unwrap().heap_bytes;
        assert_eq!(by_name("SalaryDB"), 50 << 20);
        assert_eq!(by_name("SPECjbb2005"), 3 * by_name("SPECjbb2000"));
        assert!(by_name("SPECjbb2000") < by_name("SalaryDB"));
    }
}
