//! SimLogic — a simple gate-level logic simulator in the style of Maurer's
//! metamorphic-programming example (reference \[24\] in the paper).
//!
//! Each `Gate` has a `kind` field (AND/OR/XOR/NAND) assigned once at
//! construction; `eval()` branches on it for every simulated cycle. The
//! gate population is split evenly over the four kinds, giving the class
//! four hot states whose specialized `eval()` bodies lose both the `kind`
//! load and the dispatch ladder.

use crate::util::add_rng;
use crate::{Driver, Scale, Workload};
use dchm_bytecode::{CmpOp, ElemKind, IBinOp, MethodSig, ProgramBuilder, Ty};

/// Builds the workload.
pub fn build(scale: Scale) -> Workload {
    let (gates, steps) = match scale {
        Scale::Small => (24, 60),
        Scale::Full => (96, 1_500),
    };

    let mut pb = ProgramBuilder::new();
    let rng = add_rng(&mut pb, 0x10061c);

    // class Gate { int kind, in1, in2, out; }
    let gate = pb.class("Gate").build();
    let kind = pb.private_field(gate, "kind", Ty::Int);
    let in1 = pb.instance_field(gate, "in1", Ty::Int);
    let in2 = pb.instance_field(gate, "in2", Ty::Int);
    let out = pb.instance_field(gate, "out", Ty::Int);
    // Activity counter: written on every output toggle, so EQ 1 correctly
    // rejects it as a state field (hot writes).
    let switches = pb.instance_field(gate, "switches", Ty::Int);
    let mut m = pb.ctor(gate, vec![Ty::Int, Ty::Int, Ty::Int, Ty::Int]);
    let this = m.this();
    for (i, f) in [kind, in1, in2, out].into_iter().enumerate() {
        let p = m.param(i);
        m.put_field(this, f, p);
    }
    m.ret(None);
    m.build();

    // void eval(int[] wires): wires[out] = op(wires[in1], wires[in2])
    let mut m = pb.method(gate, "eval", MethodSig::new(vec![Ty::Arr(ElemKind::Int)], None));
    let this = m.this();
    let wires = m.param(0);
    let i1 = m.reg();
    m.get_field(i1, this, in1);
    let i2 = m.reg();
    m.get_field(i2, this, in2);
    let a = m.reg();
    m.aload(a, wires, i1);
    let b = m.reg();
    m.aload(b, wires, i2);
    let k = m.reg();
    m.get_field(k, this, kind);
    let r = m.reg();
    let l_or = m.label();
    let l_xor = m.label();
    let l_nand = m.label();
    let store = m.label();
    m.br_icmp_imm(CmpOp::Ne, k, 0, l_or);
    m.ibin(IBinOp::And, r, a, b);
    m.jmp(store);
    m.bind(l_or);
    m.br_icmp_imm(CmpOp::Ne, k, 1, l_xor);
    m.ibin(IBinOp::Or, r, a, b);
    m.jmp(store);
    m.bind(l_xor);
    m.br_icmp_imm(CmpOp::Ne, k, 2, l_nand);
    m.ibin(IBinOp::Xor, r, a, b);
    m.jmp(store);
    m.bind(l_nand);
    m.ibin(IBinOp::And, r, a, b);
    let one = m.imm(1);
    m.ibin(IBinOp::Xor, r, r, one); // NAND over 0/1 signals
    m.bind(store);
    let o = m.reg();
    m.get_field(o, this, out);
    // Event-driven bookkeeping: count output toggles (every real logic
    // simulator tracks activity; this work does not depend on gate state).
    let old = m.reg();
    m.aload(old, wires, o);
    let same = m.label();
    m.br_icmp(CmpOp::Eq, old, r, same);
    let sw = m.reg();
    m.get_field(sw, this, switches);
    m.iadd_imm(sw, sw, 1);
    m.put_field(this, switches, sw);
    m.bind(same);
    m.astore(wires, o, r);
    m.ret(None);
    m.build();

    // class Simulator { static void main() }
    let sim = pb.class("Simulator").build();
    let mut m = pb.static_method(sim, "main", MethodSig::void());
    let ng = m.imm(gates);
    let garr = m.reg();
    m.new_arr(garr, ElemKind::Ref, ng);
    // Wire array: gates inputs read slots [0, g+2), gate g writes slot g+2.
    let two = m.imm(2);
    let nw = m.reg();
    m.iadd(nw, ng, two);
    let wires = m.reg();
    m.new_arr(wires, ElemKind::Int, nw);

    // Build gates: kind = g % 4, inputs from earlier slots.
    let g = m.reg();
    m.const_i(g, 0);
    let bhead = m.label();
    let bdone = m.label();
    m.bind(bhead);
    m.br_icmp(CmpOp::Ge, g, ng, bdone);
    let four = m.imm(4);
    let kv = m.reg();
    m.irem(kv, g, four);
    let span = m.reg();
    m.iadd(span, g, two); // inputs drawn from [0, g+2)
    let a = m.reg();
    m.call_static(Some(a), rng.next, vec![span]);
    let b = m.reg();
    m.call_static(Some(b), rng.next, vec![span]);
    let ov = m.reg();
    m.iadd(ov, g, two);
    let obj = m.reg();
    m.new_obj(obj, gate);
    m.call_ctor(obj, gate, vec![kv, a, b, ov]);
    m.astore(garr, g, obj);
    m.iadd_imm(g, g, 1);
    m.jmp(bhead);
    m.bind(bdone);

    // Simulation loop: set the two primary inputs, evaluate all gates.
    let t = m.reg();
    m.const_i(t, 0);
    let thead = m.label();
    let tdone = m.label();
    m.bind(thead);
    let lim = m.imm(steps);
    m.br_icmp(CmpOp::Ge, t, lim, tdone);
    let two_b = m.imm(2);
    let v0 = m.reg();
    m.call_static(Some(v0), rng.next, vec![two_b]);
    let zero = m.imm(0);
    m.astore(wires, zero, v0);
    let v1 = m.reg();
    m.call_static(Some(v1), rng.next, vec![two_b]);
    let one_i = m.imm(1);
    m.astore(wires, one_i, v1);

    let g2 = m.reg();
    m.const_i(g2, 0);
    let step_sum = m.reg();
    m.const_i(step_sum, 0);
    let ehead = m.label();
    let edone = m.label();
    m.bind(ehead);
    m.br_icmp(CmpOp::Ge, g2, ng, edone);
    let obj = m.reg();
    m.aload(obj, garr, g2);
    m.call_virtual(None, obj, "eval", vec![wires]);
    // Scheduler-side activity tracking: fold each driven wire into the
    // step signature (work a real event-driven kernel does per event).
    let slot = m.reg();
    m.iadd(slot, g2, two);
    let wv = m.reg();
    m.aload(wv, wires, slot);
    let three = m.imm(3);
    m.imul(step_sum, step_sum, three);
    m.iadd(step_sum, step_sum, wv);
    m.iadd_imm(g2, g2, 1);
    m.jmp(ehead);
    m.bind(edone);
    m.sink_int(step_sum);

    // Observe the final wire each step.
    let last = m.reg();
    m.iadd(last, ng, one_i);
    let outv = m.reg();
    m.aload(outv, wires, last);
    m.sink_int(outv);
    m.iadd_imm(t, t, 1);
    m.jmp(thead);
    m.bind(tdone);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);

    Workload {
        name: "SimLogic",
        program: pb.finish().expect("SimLogic verifies"),
        heap_bytes: 50 << 20,
        driver: Driver::Entry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_vm::Vm;

    #[test]
    fn simulates_deterministically() {
        let w = build(Scale::Small);
        let mut a = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut a).unwrap();
        let mut b = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut b).unwrap();
        assert_eq!(a.state.output.checksum, b.state.output.checksum);
        assert_ne!(a.state.output.checksum, 0);
    }

    #[test]
    fn signals_stay_boolean() {
        // NAND of 0/1 must remain 0/1; a trap or weird checksum would
        // surface here by divergence between scales of the same seed.
        let w = build(Scale::Small);
        let mut vm = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut vm).unwrap();
        // eval was called gates*steps times via virtual dispatch.
        let gate_class = w.program.class_by_name("Gate").unwrap();
        let eval = w.program.method_by_name(gate_class, "eval").unwrap();
        assert_eq!(
            vm.stats().per_method[eval.index()].invocations,
            24 * 60
        );
    }
}
