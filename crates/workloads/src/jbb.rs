//! SPECjbb2000 / SPECjbb2005 — TPC-C-flavoured transaction processing,
//! reconstructed with the structure the paper exploits:
//!
//! * five transaction types (NewOrder, Payment, OrderStatus, Delivery,
//!   StockLevel) dispatched virtually off a `Transaction` base class, one
//!   fresh transaction object per transaction;
//! * `Customer.credit` — an instance state field (90% good credit) read in
//!   the hot charge/payment paths: the archetypal mutable class;
//! * `Company.taxPolicy` — a *static* state field branched on by the static
//!   `Tax.compute`, exercising the JTOC-patching half of Figure 4;
//! * `DisplayScreen` with `rows`/`cols` assigned constants in its
//!   constructor and a `DeliveryTransaction.deliveryScreen` private
//!   reference field — the paper's Figure 7 object-lifetime-constant
//!   example, verbatim;
//! * per-warehouse measurement intervals for the Figure 13–15 throughput
//!   curves.
//!
//! The 2005 variant adds the heavyweight `CustomerReport` transaction
//! (~30% of the mix, scanning customer history and allocating a fresh
//! report buffer every time) and longer histories — more time outside
//! mutable methods and more GC pressure, which is exactly why the paper's
//! 2005 speedup (1.9%) trails its 2000 speedup (4.5%).

use crate::util::add_rng;
use crate::{Driver, Scale, Workload};
use dchm_bytecode::{CmpOp, ElemKind, MethodSig, ProgramBuilder, Ty};

/// Which SPECjbb edition to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JbbVariant {
    /// SPECjbb2000: five transactions, modest allocation.
    Jbb2000,
    /// SPECjbb2005: adds CustomerReport, more allocation, bigger heap.
    Jbb2005,
}

struct Dims {
    customers: i64,
    stock: i64,
    hist_len: i64,
    txns: i64,
    warehouses: usize,
    heap: usize,
}

fn dims(variant: JbbVariant, scale: Scale) -> Dims {
    match (variant, scale) {
        (JbbVariant::Jbb2000, Scale::Small) => Dims {
            customers: 24,
            stock: 80,
            hist_len: 8,
            txns: 120,
            warehouses: 3,
            heap: 2 << 20,
        },
        (JbbVariant::Jbb2000, Scale::Full) => Dims {
            customers: 160,
            stock: 600,
            hist_len: 8,
            txns: 2_600,
            warehouses: 8,
            // The paper's 128 MB scaled to our ~40x smaller footprint;
            // the 1:3 ratio vs. SPECjbb2005 is preserved.
            heap: 3 << 20,
        },
        (JbbVariant::Jbb2005, Scale::Small) => Dims {
            customers: 24,
            stock: 80,
            hist_len: 20,
            txns: 100,
            warehouses: 3,
            heap: 6 << 20,
        },
        (JbbVariant::Jbb2005, Scale::Full) => Dims {
            customers: 160,
            stock: 600,
            hist_len: 24,
            txns: 2_200,
            warehouses: 8,
            // The paper's 384 MB, scaled (1:3 ratio with SPECjbb2000).
            heap: 9 << 20,
        },
    }
}

/// Builds the workload.
#[allow(clippy::too_many_lines)]
pub fn build(variant: JbbVariant, scale: Scale) -> Workload {
    let d = dims(variant, scale);
    let mut pb = ProgramBuilder::new();
    let rng = add_rng(
        &mut pb,
        match variant {
            JbbVariant::Jbb2000 => 0x2000,
            JbbVariant::Jbb2005 => 0x2005,
        },
    );

    // ---- Company: static database + the static state field ----
    let company = pb.class("Company").package("spec.jbb").build();
    let customers_f = pb.static_field(
        company,
        "customers",
        Ty::Arr(ElemKind::Ref),
        dchm_bytecode::Value::Null,
    );
    let items_f = pb.static_field(
        company,
        "items",
        Ty::Arr(ElemKind::Ref),
        dchm_bytecode::Value::Null,
    );
    let districts_f = pb.static_field(
        company,
        "districts",
        Ty::Arr(ElemKind::Ref),
        dchm_bytecode::Value::Null,
    );
    let screen_buf_f = pb.static_field(
        company,
        "screenBuf",
        Ty::Arr(ElemKind::Int),
        dchm_bytecode::Value::Null,
    );
    let ytd_f = pb.static_field(company, "ytd", Ty::Int, 0i64.into());
    let tax_policy_f = pb.static_field(company, "taxPolicy", Ty::Int, 0i64.into());

    // ---- Item: per-product stock/price record ----
    let item = pb.class("Item").package("spec.jbb").build();
    let item_price = pb.instance_field(item, "price", Ty::Int);
    let item_stock = pb.instance_field(item, "stock", Ty::Int);
    let mut m = pb.ctor(item, vec![Ty::Int, Ty::Int]);
    let this = m.this();
    let pr = m.param(0);
    m.put_field(this, item_price, pr);
    let st = m.param(1);
    m.put_field(this, item_stock, st);
    m.ret(None);
    m.build();
    // int take(int qty): draw stock (restocking at zero), return line price.
    let mut m = pb.method(item, "take", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let this = m.this();
    let qty = m.param(0);
    let s = m.reg();
    m.get_field(s, this, item_stock);
    m.isub(s, s, qty);
    let ok = m.label();
    let zero = m.imm(0);
    m.br_icmp(CmpOp::Ge, s, zero, ok);
    m.iadd_imm(s, s, 100);
    m.bind(ok);
    m.put_field(this, item_stock, s);
    let p = m.reg();
    m.get_field(p, this, item_price);
    let out = m.reg();
    m.imul(out, p, qty);
    m.ret(Some(out));
    m.build();

    // ---- Order: one allocation per NewOrder transaction ----
    let order_cls = pb.class("Order").package("spec.jbb").build();
    let order_total = pb.instance_field(order_cls, "total", Ty::Int);
    let order_lines = pb.instance_field(order_cls, "lines", Ty::Int);
    let mut m = pb.ctor(order_cls, vec![Ty::Int, Ty::Int]);
    let this = m.this();
    let t = m.param(0);
    m.put_field(this, order_total, t);
    let l = m.param(1);
    m.put_field(this, order_lines, l);
    m.ret(None);
    m.build();

    // ---- District: order counter, YTD, last order reference ----
    let district = pb.class("District").package("spec.jbb").build();
    let dist_id = pb.instance_field(district, "id", Ty::Int);
    let dist_next = pb.instance_field(district, "nextOrder", Ty::Int);
    let dist_ytd = pb.instance_field(district, "ytd", Ty::Int);
    let dist_last = pb.instance_field(district, "lastOrder", Ty::Ref(order_cls));
    let mut m = pb.ctor(district, vec![Ty::Int]);
    let this = m.this();
    let idp = m.param(0);
    m.put_field(this, dist_id, idp);
    m.ret(None);
    m.build();
    // void recordOrder(Order o)
    let mut m = pb.method(
        district,
        "recordOrder",
        MethodSig::new(vec![Ty::Ref(order_cls)], None),
    );
    let this = m.this();
    let o = m.param(0);
    m.put_field(this, dist_last, o);
    let n = m.reg();
    m.get_field(n, this, dist_next);
    m.iadd_imm(n, n, 1);
    m.put_field(this, dist_next, n);
    m.ret(None);
    m.build();
    // void addYtd(int amount)
    let mut m = pb.method(district, "addYtd", MethodSig::new(vec![Ty::Int], None));
    let this = m.this();
    let v = m.param(0);
    let y = m.reg();
    m.get_field(y, this, dist_ytd);
    m.iadd(y, y, v);
    m.put_field(this, dist_ytd, y);
    m.ret(None);
    m.build();
    // int pendingTotal(): last order's total, 0 if none.
    let mut m = pb.method(district, "pendingTotal", MethodSig::new(vec![], Some(Ty::Int)));
    let this = m.this();
    let o = m.reg();
    m.get_field(o, this, dist_last);
    let nil = m.reg();
    m.const_null(nil);
    let some = m.label();
    let isnil = m.reg();
    m.ref_eq(isnil, o, nil);
    m.br_icmp_imm(CmpOp::Eq, isnil, 0, some);
    let z = m.imm(0);
    m.ret(Some(z));
    m.bind(some);
    let t = m.reg();
    m.get_field(t, o, order_total);
    m.ret(Some(t));
    m.build();

    // ---- Tax: static mutable method over the static state field ----
    // Four progressive-bracket policies; big enough that the baseline
    // compiler never inlines it (like the paper's real mutable methods),
    // so the JTOC-patched special version competes on even footing.
    let tax = pb.class("Tax").package("spec.jbb").build();
    let mut m = pb.static_method(tax, "compute", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let amount = m.param(0);
    let pol = m.reg();
    m.get_static(pol, tax_policy_f);
    let done = m.label();
    let out = m.reg();
    // Each policy: two brackets with different divisors plus a surcharge.
    let policy_arm = |m: &mut dchm_bytecode::MethodBuilder<'_>,
                          next: dchm_bytecode::Label,
                          which: i64,
                          cut: i64,
                          lo_div: i64,
                          hi_div: i64,
                          sur: i64| {
        m.br_icmp_imm(CmpOp::Ne, pol, which, next);
        let cutr = m.imm(cut);
        let hi = m.label();
        let merge = m.label();
        m.br_icmp(CmpOp::Gt, amount, cutr, hi);
        let d = m.imm(lo_div);
        m.idiv(out, amount, d);
        m.jmp(merge);
        m.bind(hi);
        let d = m.imm(hi_div);
        m.idiv(out, amount, d);
        let s = m.imm(sur);
        m.iadd(out, out, s);
        m.bind(merge);
        m.jmp(done);
    };
    let p1 = m.label();
    let p2 = m.label();
    let p3 = m.label();
    let p4 = m.label();
    policy_arm(&mut m, p1, 0, 200, 12, 9, 2);
    m.bind(p1);
    policy_arm(&mut m, p2, 1, 150, 10, 8, 3);
    m.bind(p2);
    policy_arm(&mut m, p3, 2, 300, 14, 11, 1);
    m.bind(p3);
    policy_arm(&mut m, p4, 3, 250, 11, 7, 4);
    m.bind(p4);
    let default_div = m.imm(10);
    m.idiv(out, amount, default_div);
    m.jmp(done);
    m.bind(done);
    m.ret(Some(out));
    let tax_compute = m.build();

    // ---- Customer: the instance-state mutable class ----
    let customer = pb.class("Customer").package("spec.jbb").build();
    let cust_id = pb.instance_field(customer, "id", Ty::Int);
    let balance = pb.instance_field(customer, "balance", Ty::Int);
    let credit = pb.private_field(customer, "credit", Ty::Int); // 0 good, 1 bad
    let history = pb.private_field(customer, "history", Ty::Arr(ElemKind::Int));
    let hist_pos = pb.instance_field(customer, "histPos", Ty::Int);
    let mut m = pb.ctor(customer, vec![Ty::Int, Ty::Int, Ty::Int]);
    let this = m.this();
    let idp = m.param(0);
    m.put_field(this, cust_id, idp);
    let crp = m.param(1);
    m.put_field(this, credit, crp);
    let hl = m.param(2);
    let harr = m.reg();
    m.new_arr(harr, ElemKind::Int, hl);
    m.put_field(this, history, harr);
    let bal = m.imm(1_000);
    m.put_field(this, balance, bal);
    m.ret(None);
    m.build();

    // int charge(int amount): four credit tiers (0 standard, 1 gold with a
    // volume discount, 2 silver, 3 delinquent with penalty), each with its
    // own bracket logic. Large and branchy — exactly the method shape the
    // paper mutates, and too big for the baseline inliner.
    let mut m = pb.method(customer, "charge", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let this = m.this();
    let amt = m.param(0);
    let cr = m.reg();
    m.get_field(cr, this, credit);
    let done = m.label();
    let total = m.reg();
    let tier = |m: &mut dchm_bytecode::MethodBuilder<'_>,
                    next: dchm_bytecode::Label,
                    which: i64,
                    fee_div: i64,
                    disc_cut: i64,
                    disc_div: i64| {
        m.br_icmp_imm(CmpOp::Ne, cr, which, next);
        let fd = m.imm(fee_div);
        let fee = m.reg();
        m.idiv(fee, amt, fd);
        m.iadd(total, amt, fee);
        let cut = m.imm(disc_cut);
        let small = m.label();
        m.br_icmp(CmpOp::Lt, amt, cut, small);
        let dd = m.imm(disc_div);
        let disc = m.reg();
        m.idiv(disc, amt, dd);
        m.isub(total, total, disc);
        m.bind(small);
        m.jmp(done);
    };
    let t1 = m.label();
    let t2 = m.label();
    let t3 = m.label();
    tier(&mut m, t1, 0, 50, 400, 25);
    m.bind(t1);
    tier(&mut m, t2, 1, 100, 200, 10);
    m.bind(t2);
    tier(&mut m, t3, 2, 40, 500, 50);
    m.bind(t3);
    // Delinquent: penalty plus a solvency check.
    let five2 = m.imm(5);
    let pen = m.reg();
    m.idiv(pen, amt, five2);
    m.iadd(total, amt, pen);
    let b0 = m.reg();
    m.get_field(b0, this, balance);
    let solvent = m.label();
    let zero = m.imm(0);
    m.br_icmp(CmpOp::Ge, b0, zero, solvent);
    m.iadd(total, total, pen);
    m.bind(solvent);
    m.bind(done);
    let b2 = m.reg();
    m.get_field(b2, this, balance);
    m.isub(b2, b2, total);
    m.put_field(this, balance, b2);
    m.ret(Some(total));
    m.build();

    // int payment(int amount): tiered holds mirroring charge().
    let mut m = pb.method(customer, "payment", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let this = m.this();
    let amt = m.param(0);
    let cr = m.reg();
    m.get_field(cr, this, credit);
    let done = m.label();
    let net = m.reg();
    let ptier = |m: &mut dchm_bytecode::MethodBuilder<'_>,
                     next: dchm_bytecode::Label,
                     which: i64,
                     hold_div: i64,
                     bonus_cut: i64| {
        m.br_icmp_imm(CmpOp::Ne, cr, which, next);
        let hd = m.imm(hold_div);
        let hold = m.reg();
        m.idiv(hold, amt, hd);
        m.isub(net, amt, hold);
        let cut = m.imm(bonus_cut);
        let nobonus = m.label();
        m.br_icmp(CmpOp::Lt, amt, cut, nobonus);
        m.iadd_imm(net, net, 2);
        m.bind(nobonus);
        m.jmp(done);
    };
    let t1 = m.label();
    let t2 = m.label();
    let t3 = m.label();
    ptier(&mut m, t1, 0, 100, 300);
    m.bind(t1);
    ptier(&mut m, t2, 1, 200, 150);
    m.bind(t2);
    ptier(&mut m, t3, 2, 50, 400);
    m.bind(t3);
    let ten = m.imm(10);
    let hold = m.reg();
    m.idiv(hold, amt, ten);
    m.isub(net, amt, hold);
    m.jmp(done);
    m.bind(done);
    let b = m.reg();
    m.get_field(b, this, balance);
    m.iadd(b, b, net);
    m.put_field(this, balance, b);
    m.ret(Some(net));
    m.build();

    // void recordOrder(int amount): hot history write (EQ 1 noise field).
    let mut m = pb.method(customer, "recordOrder", MethodSig::new(vec![Ty::Int], None));
    let this = m.this();
    let amt = m.param(0);
    let h = m.reg();
    m.get_field(h, this, history);
    let pos = m.reg();
    m.get_field(pos, this, hist_pos);
    let len = m.reg();
    m.alen(len, h);
    let idx = m.reg();
    m.irem(idx, pos, len);
    m.astore(h, idx, amt);
    m.iadd_imm(pos, pos, 1);
    m.put_field(this, hist_pos, pos);
    m.ret(None);
    m.build();

    // int historySum()
    let mut m = pb.method(customer, "historySum", MethodSig::new(vec![], Some(Ty::Int)));
    let this = m.this();
    let h = m.reg();
    m.get_field(h, this, history);
    let len = m.reg();
    m.alen(len, h);
    let acc = m.reg();
    m.const_i(acc, 0);
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, len, done);
    let v = m.reg();
    m.aload(v, h, i);
    m.iadd(acc, acc, v);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    m.build();

    // ---- DisplayScreen (paper Fig. 7) ----
    let screen = pb.class("DisplayScreen").package("spec.jbb.infra").build();
    let rows_f = pb.instance_field(screen, "rows", Ty::Int);
    let cols_f = pb.instance_field(screen, "cols", Ty::Int);
    let mut m = pb.ctor(screen, vec![]);
    let this = m.this();
    let r24 = m.imm(24);
    m.put_field(this, rows_f, r24);
    let c80 = m.imm(80);
    m.put_field(this, cols_f, c80);
    m.ret(None);
    m.build();
    // void putCell(int[] buf, int r, int c, int ch)
    let mut m = pb.method(
        screen,
        "putCell",
        MethodSig::new(
            vec![Ty::Arr(ElemKind::Int), Ty::Int, Ty::Int, Ty::Int],
            None,
        ),
    );
    let this = m.this();
    let buf = m.param(0);
    let r = m.param(1);
    let c = m.param(2);
    let ch = m.param(3);
    let rows = m.reg();
    m.get_field(rows, this, rows_f);
    let cols = m.reg();
    m.get_field(cols, this, cols_f);
    // Wrap out-of-range coordinates (branches on the OLC fields).
    let r_ok = m.label();
    m.br_icmp(CmpOp::Lt, r, rows, r_ok);
    m.irem(r, r, rows);
    m.bind(r_ok);
    let c_ok = m.label();
    m.br_icmp(CmpOp::Lt, c, cols, c_ok);
    m.irem(c, c, cols);
    m.bind(c_ok);
    let idx = m.reg();
    m.imul(idx, r, cols);
    m.iadd(idx, idx, c);
    m.astore(buf, idx, ch);
    m.ret(None);
    m.build();

    // ---- Transaction hierarchy ----
    let txn = pb.class("Transaction").package("spec.jbb").build();
    pb.trivial_ctor(txn);
    let mut m = pb.method(txn, "process", MethodSig::new(vec![], Some(Ty::Int)));
    let z = m.imm(0);
    m.ret(Some(z));
    m.build();

    // Helper to start a transaction subclass.
    let new_order = pb.class("NewOrderTransaction").package("spec.jbb").extends(txn).build();
    pb.trivial_ctor(new_order);
    let payment_tx = pb.class("PaymentTransaction").package("spec.jbb").extends(txn).build();
    pb.trivial_ctor(payment_tx);
    let order_status = pb
        .class("OrderStatusTransaction")
        .package("spec.jbb")
        .extends(txn)
        .build();
    pb.trivial_ctor(order_status);
    let delivery = pb.class("DeliveryTransaction").package("spec.jbb").extends(txn).build();
    let delivery_screen_f = pb.private_field(delivery, "deliveryScreen", Ty::Ref(screen));
    let mut m = pb.ctor(delivery, vec![]);
    let this = m.this();
    let s = m.reg();
    m.new_init(s, screen, vec![]);
    m.put_field(this, delivery_screen_f, s);
    m.ret(None);
    m.build();
    let stock_level = pb
        .class("StockLevelTransaction")
        .package("spec.jbb")
        .extends(txn)
        .build();
    pb.trivial_ctor(stock_level);
    let customer_report = pb
        .class("CustomerReportTransaction")
        .package("spec.jbb")
        .extends(txn)
        .build();
    pb.trivial_ctor(customer_report);

    // NewOrder.process — charges the customer per order line (the hot path
    // through the mutable Customer class, as in TPC-C line-item pricing),
    // draws stock from Item objects, and records a fresh Order in the
    // district (one allocation per transaction).
    let mut m = pb.method(new_order, "process", MethodSig::new(vec![], Some(Ty::Int)));
    let items = m.reg();
    m.get_static(items, items_f);
    let nitems = m.reg();
    m.alen(nitems, items);
    let custs = m.reg();
    m.get_static(custs, customers_f);
    let nc = m.reg();
    m.alen(nc, custs);
    let ci = m.reg();
    m.call_static(Some(ci), rng.next, vec![nc]);
    let cust = m.reg();
    m.aload(cust, custs, ci);
    m.check_cast(cust, customer);
    let total = m.reg();
    m.const_i(total, 0);
    let five = m.imm(5);
    let lines = m.reg();
    let ten2 = m.imm(10);
    m.call_static(Some(lines), rng.next, vec![ten2]);
    m.iadd(lines, lines, five);
    let l = m.reg();
    m.const_i(l, 0);
    let lh = m.label();
    let ld = m.label();
    m.bind(lh);
    m.br_icmp(CmpOp::Ge, l, lines, ld);
    let ii = m.reg();
    m.call_static(Some(ii), rng.next, vec![nitems]);
    let itm = m.reg();
    m.aload(itm, items, ii);
    let qty = m.reg();
    let five2 = m.imm(5);
    m.call_static(Some(qty), rng.next, vec![five2]);
    m.iadd_imm(qty, qty, 1);
    let line_amt = m.reg();
    m.call_virtual(Some(line_amt), itm, "take", vec![qty]);
    let tline = m.reg();
    m.call_static(Some(tline), tax_compute, vec![line_amt]);
    m.iadd(line_amt, line_amt, tline);
    let charged = m.reg();
    m.call_virtual(Some(charged), cust, "charge", vec![line_amt]);
    m.iadd(total, total, charged);
    m.iadd_imm(l, l, 1);
    m.jmp(lh);
    m.bind(ld);
    m.call_virtual(None, cust, "recordOrder", vec![total]);
    // Allocate the Order and record it in a random district.
    let ord = m.reg();
    m.new_obj(ord, order_cls);
    m.call_ctor(ord, order_cls, vec![total, lines]);
    let dists = m.reg();
    m.get_static(dists, districts_f);
    let ten3 = m.imm(10);
    let di = m.reg();
    m.call_static(Some(di), rng.next, vec![ten3]);
    let dobj = m.reg();
    m.aload(dobj, dists, di);
    m.call_virtual(None, dobj, "recordOrder", vec![ord]);
    m.ret(Some(total));
    m.build();

    // Payment.process
    let mut m = pb.method(payment_tx, "process", MethodSig::new(vec![], Some(Ty::Int)));
    let custs = m.reg();
    m.get_static(custs, customers_f);
    let nc = m.reg();
    m.alen(nc, custs);
    let ci = m.reg();
    m.call_static(Some(ci), rng.next, vec![nc]);
    let cust = m.reg();
    m.aload(cust, custs, ci);
    m.check_cast(cust, customer);
    let amt = m.reg();
    let k490 = m.imm(490);
    m.call_static(Some(amt), rng.next, vec![k490]);
    m.iadd_imm(amt, amt, 10);
    let t = m.reg();
    m.call_static(Some(t), tax_compute, vec![amt]);
    m.isub(amt, amt, t);
    let net = m.reg();
    m.call_virtual(Some(net), cust, "payment", vec![amt]);
    let y = m.reg();
    m.get_static(y, ytd_f);
    m.iadd(y, y, net);
    m.put_static(ytd_f, y);
    // District-level YTD bookkeeping.
    let dists = m.reg();
    m.get_static(dists, districts_f);
    let ten9 = m.imm(10);
    let di = m.reg();
    m.call_static(Some(di), rng.next, vec![ten9]);
    let dobj = m.reg();
    m.aload(dobj, dists, di);
    m.call_virtual(None, dobj, "addYtd", vec![net]);
    m.ret(Some(net));
    m.build();

    // OrderStatus.process
    let mut m = pb.method(order_status, "process", MethodSig::new(vec![], Some(Ty::Int)));
    let custs = m.reg();
    m.get_static(custs, customers_f);
    let nc = m.reg();
    m.alen(nc, custs);
    let ci = m.reg();
    m.call_static(Some(ci), rng.next, vec![nc]);
    let cust = m.reg();
    m.aload(cust, custs, ci);
    m.check_cast(cust, customer);
    let sum = m.reg();
    m.call_virtual(Some(sum), cust, "historySum", vec![]);
    m.ret(Some(sum));
    m.build();

    // Delivery.process — drains each district's pending order total and
    // formats a status line through the OLC deliveryScreen.
    let mut m = pb.method(delivery, "process", MethodSig::new(vec![], Some(Ty::Int)));
    let this = m.this();
    let dists = m.reg();
    m.get_static(dists, districts_f);
    let total = m.reg();
    m.const_i(total, 0);
    let di = m.reg();
    m.const_i(di, 0);
    let dh = m.label();
    let dd = m.label();
    m.bind(dh);
    let ten4 = m.imm(10);
    m.br_icmp(CmpOp::Ge, di, ten4, dd);
    let dobj = m.reg();
    m.aload(dobj, dists, di);
    let v = m.reg();
    m.call_virtual(Some(v), dobj, "pendingTotal", vec![]);
    m.iadd(total, total, v);
    m.iadd_imm(di, di, 1);
    m.jmp(dh);
    m.bind(dd);
    // Paint a 40-cell status line through the screen.
    let buf = m.reg();
    m.get_static(buf, screen_buf_f);
    let k = m.reg();
    m.const_i(k, 0);
    let ph = m.label();
    let pd = m.label();
    m.bind(ph);
    let forty = m.imm(40);
    m.br_icmp(CmpOp::Ge, k, forty, pd);
    let scr = m.reg();
    m.get_field(scr, this, delivery_screen_f);
    let col = m.reg();
    m.iadd(col, k, total);
    let chd = m.imm('D' as i64);
    let row = m.reg();
    let three = m.imm(3);
    m.irem(row, k, three);
    m.call_virtual(None, scr, "putCell", vec![buf, row, col, chd]);
    m.iadd_imm(k, k, 1);
    m.jmp(ph);
    m.bind(pd);
    // Observe one painted cell.
    let probe = m.reg();
    let idx0 = m.imm(7);
    m.aload(probe, buf, idx0);
    m.iadd(total, total, probe);
    m.ret(Some(total));
    m.build();

    // StockLevel.process — scans Item objects for low stock.
    let mut m = pb.method(stock_level, "process", MethodSig::new(vec![], Some(Ty::Int)));
    let items = m.reg();
    m.get_static(items, items_f);
    let n = m.reg();
    m.alen(n, items);
    let count = m.reg();
    m.const_i(count, 0);
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, n, done);
    let itm = m.reg();
    m.aload(itm, items, i);
    let v = m.reg();
    m.get_field(v, itm, item_stock);
    let ok = m.label();
    let twenty = m.imm(20);
    m.br_icmp(CmpOp::Ge, v, twenty, ok);
    m.iadd_imm(count, count, 1);
    m.bind(ok);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(count));
    m.build();

    // CustomerReport.process (2005 only in the mix; compiled regardless):
    // reports on a sample of customers, allocating a fresh buffer each
    // time (the 2005 allocation pressure the paper calls out).
    let report_sample: i64 = 30;
    let mut m = pb.method(customer_report, "process", MethodSig::new(vec![], Some(Ty::Int)));
    let custs = m.reg();
    m.get_static(custs, customers_f);
    let nc = m.reg();
    m.alen(nc, custs);
    let sample = m.imm(report_sample);
    let two = m.imm(2);
    let rep_len = m.reg();
    m.imul(rep_len, sample, two);
    let report = m.reg();
    m.new_arr(report, ElemKind::Int, rep_len);
    let acc = m.reg();
    m.const_i(acc, 0);
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let done = m.label();
    m.bind(head);
    m.br_icmp(CmpOp::Ge, i, sample, done);
    let ci = m.reg();
    m.call_static(Some(ci), rng.next, vec![nc]);
    let cust = m.reg();
    m.aload(cust, custs, ci);
    m.check_cast(cust, customer);
    let bal = m.reg();
    m.get_field(bal, cust, balance);
    m.astore(report, i, bal);
    let hsum = m.reg();
    m.call_virtual(Some(hsum), cust, "historySum", vec![]);
    let slot2 = m.reg();
    m.iadd(slot2, i, sample);
    m.astore(report, slot2, hsum);
    m.iadd(acc, acc, bal);
    m.iadd(acc, acc, hsum);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(done);
    m.ret(Some(acc));
    m.build();

    // ---- setup() ----
    let app = pb.class("JBBDriver").package("spec.jbb").build();
    let mut m = pb.static_method(app, "setup", MethodSig::void());
    let ns = m.imm(d.stock);
    let items = m.reg();
    m.new_arr(items, ElemKind::Ref, ns);
    m.put_static(items_f, items);
    let i = m.reg();
    m.const_i(i, 0);
    let sh = m.label();
    let sd = m.label();
    m.bind(sh);
    m.br_icmp(CmpOp::Ge, i, ns, sd);
    let fifty = m.imm(50);
    let s0 = m.reg();
    m.call_static(Some(s0), rng.next, vec![fifty]);
    m.iadd_imm(s0, s0, 50);
    let p0 = m.reg();
    let k99 = m.imm(99);
    m.call_static(Some(p0), rng.next, vec![k99]);
    m.iadd_imm(p0, p0, 1);
    let iobj = m.reg();
    m.new_obj(iobj, item);
    m.call_ctor(iobj, item, vec![p0, s0]);
    m.astore(items, i, iobj);
    m.iadd_imm(i, i, 1);
    m.jmp(sh);
    m.bind(sd);

    // Ten districts.
    let ten_d = m.imm(10);
    let dists = m.reg();
    m.new_arr(dists, ElemKind::Ref, ten_d);
    m.put_static(districts_f, dists);
    let di = m.reg();
    m.const_i(di, 0);
    let dh2 = m.label();
    let dd2 = m.label();
    m.bind(dh2);
    m.br_icmp(CmpOp::Ge, di, ten_d, dd2);
    let dobj = m.reg();
    m.new_obj(dobj, district);
    m.call_ctor(dobj, district, vec![di]);
    m.astore(dists, di, dobj);
    m.iadd_imm(di, di, 1);
    m.jmp(dh2);
    m.bind(dd2);

    let ncust = m.imm(d.customers);
    let custs = m.reg();
    m.new_arr(custs, ElemKind::Ref, ncust);
    m.put_static(customers_f, custs);
    let i2 = m.reg();
    m.const_i(i2, 0);
    let ch2 = m.label();
    let cd2 = m.label();
    m.bind(ch2);
    m.br_icmp(CmpOp::Ge, i2, ncust, cd2);
    // Credit tiers: 60% standard, 20% gold, 15% silver, 5% delinquent.
    let twenty2 = m.imm(20);
    let roll = m.reg();
    m.call_static(Some(roll), rng.next, vec![twenty2]);
    let cr = m.reg();
    let gold = m.label();
    let silver = m.label();
    let delinquent = m.label();
    let have = m.label();
    let k12 = m.imm(12);
    m.br_icmp(CmpOp::Ge, roll, k12, gold);
    m.const_i(cr, 0);
    m.jmp(have);
    m.bind(gold);
    let k16 = m.imm(16);
    m.br_icmp(CmpOp::Ge, roll, k16, silver);
    m.const_i(cr, 1);
    m.jmp(have);
    m.bind(silver);
    let k19 = m.imm(19);
    m.br_icmp(CmpOp::Ge, roll, k19, delinquent);
    m.const_i(cr, 2);
    m.jmp(have);
    m.bind(delinquent);
    m.const_i(cr, 3);
    m.bind(have);
    let hlen = m.imm(d.hist_len);
    let cobj = m.reg();
    m.new_obj(cobj, customer);
    m.call_ctor(cobj, customer, vec![i2, cr, hlen]);
    m.astore(custs, i2, cobj);
    m.iadd_imm(i2, i2, 1);
    m.jmp(ch2);
    m.bind(cd2);

    let sb_len = m.imm(24 * 80);
    let sb = m.reg();
    m.new_arr(sb, ElemKind::Int, sb_len);
    m.put_static(screen_buf_f, sb);
    // The static state field: one policy for the whole run.
    let pol = m.imm(1);
    m.put_static(tax_policy_f, pol);
    m.ret(None);
    let setup = m.build();

    // ---- runWarehouse(txns) ----
    let mut m = pb.static_method(app, "runWarehouse", MethodSig::new(vec![Ty::Int], Some(Ty::Int)));
    let txns = m.param(0);
    let acc = m.reg();
    m.const_i(acc, 0);
    let t = m.reg();
    m.const_i(t, 0);
    let th = m.label();
    let td = m.label();
    m.bind(th);
    m.br_icmp(CmpOp::Ge, t, txns, td);
    let hundred = m.imm(100);
    let roll = m.reg();
    m.call_static(Some(roll), rng.next, vec![hundred]);
    // Transaction mix.
    let (w_no, w_pay, w_os, w_del, w_sl) = match variant {
        JbbVariant::Jbb2000 => (45, 88, 92, 96, 100),
        JbbVariant::Jbb2005 => (30, 60, 64, 67, 70), // rest: CustomerReport
    };
    let tobj = m.reg();
    let mk_pay = m.label();
    let mk_os = m.label();
    let mk_del = m.label();
    let mk_sl = m.label();
    let mk_cr = m.label();
    let run_it = m.label();
    m.br_icmp_imm(CmpOp::Ge, roll, w_no, mk_pay);
    m.new_init(tobj, new_order, vec![]);
    m.jmp(run_it);
    m.bind(mk_pay);
    m.br_icmp_imm(CmpOp::Ge, roll, w_pay, mk_os);
    m.new_init(tobj, payment_tx, vec![]);
    m.jmp(run_it);
    m.bind(mk_os);
    m.br_icmp_imm(CmpOp::Ge, roll, w_os, mk_del);
    m.new_init(tobj, order_status, vec![]);
    m.jmp(run_it);
    m.bind(mk_del);
    m.br_icmp_imm(CmpOp::Ge, roll, w_del, mk_sl);
    m.new_init(tobj, delivery, vec![]);
    m.jmp(run_it);
    m.bind(mk_sl);
    m.br_icmp_imm(CmpOp::Ge, roll, w_sl, mk_cr);
    m.new_init(tobj, stock_level, vec![]);
    m.jmp(run_it);
    m.bind(mk_cr);
    m.new_init(tobj, customer_report, vec![]);
    m.bind(run_it);
    let r = m.reg();
    m.call_virtual(Some(r), tobj, "process", vec![]);
    m.iadd(acc, acc, r);
    m.iadd_imm(t, t, 1);
    m.jmp(th);
    m.bind(td);
    m.sink_int(acc);
    m.ret(Some(acc));
    let run = m.build();

    // Entry point for ad-hoc runs: setup + one warehouse.
    let mut m = pb.static_method(app, "main", MethodSig::void());
    m.call_static(None, setup, vec![]);
    let n = m.imm(d.txns);
    m.call_static(None, run, vec![n]);
    m.ret(None);
    let main = m.build();
    pb.set_entry(main);

    Workload {
        name: match variant {
            JbbVariant::Jbb2000 => "SPECjbb2000",
            JbbVariant::Jbb2005 => "SPECjbb2005",
        },
        program: pb.finish().expect("jbb verifies"),
        heap_bytes: d.heap,
        driver: Driver::Warehouse {
            setup,
            run,
            txns: d.txns,
            warehouses: d.warehouses,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dchm_vm::Vm;

    #[test]
    fn jbb2000_runs_warehouses_deterministically() {
        let w = build(JbbVariant::Jbb2000, Scale::Small);
        let mut a = Vm::new(w.program.clone(), w.vm_config());
        let runs_a = w.run_warehouses(&mut a).unwrap();
        let mut b = Vm::new(w.program.clone(), w.vm_config());
        let runs_b = w.run_warehouses(&mut b).unwrap();
        assert_eq!(a.state.output.checksum, b.state.output.checksum);
        assert_eq!(runs_a.len(), 3);
        assert_eq!(
            runs_a.iter().map(|r| r.cycles).collect::<Vec<_>>(),
            runs_b.iter().map(|r| r.cycles).collect::<Vec<_>>()
        );
        assert!(runs_a[0].throughput() > 0.0);
    }

    #[test]
    fn jbb2005_mixes_in_customer_report() {
        let w = build(JbbVariant::Jbb2005, Scale::Small);
        let mut vm = Vm::new(w.program.clone(), w.vm_config());
        w.run(&mut vm).unwrap();
        let cr = w.program.class_by_name("CustomerReportTransaction").unwrap();
        let process = w.program.method_by_name(cr, "process").unwrap();
        assert!(
            vm.stats().per_method[process.index()].invocations > 0,
            "CustomerReport must run in the 2005 mix"
        );
        // 2005 allocates more than 2000 at the same scale.
        let w0 = build(JbbVariant::Jbb2000, Scale::Small);
        let mut vm0 = Vm::new(w0.program.clone(), w0.vm_config());
        w0.run(&mut vm0).unwrap();
        let per_txn_2005 =
            vm.state.heap.stats.bytes_allocated as f64 / (3.0 * 100.0);
        let per_txn_2000 =
            vm0.state.heap.stats.bytes_allocated as f64 / (3.0 * 120.0);
        assert!(
            per_txn_2005 > per_txn_2000,
            "2005 must be more allocation-heavy: {per_txn_2005} vs {per_txn_2000}"
        );
    }

    #[test]
    fn table1_scale_relationship_holds() {
        // Paper Table 1: the JBB programs are by far the largest.
        let jbb = build(JbbVariant::Jbb2000, Scale::Small);
        let sal = crate::salarydb::build(Scale::Small);
        let (jc, jm) = jbb.program.table1_counts();
        let (sc, sm) = sal.program.table1_counts();
        assert!(jc > sc);
        assert!(jm > sm);
    }
}
