//! Verifier error-path coverage (ISSUE 7 satellite): the malformed-program
//! rejections the fuzz shrinker leans on. Every case here feeds the
//! verifier a program that used to either pass silently or panic on a
//! Vec index, and asserts the precise typed error instead.

use dchm_bytecode::{
    verify_reachability, ClassId, FieldId, Instr, MethodId, MethodSig, Op, ProgramBuilder, Reg,
    SelectorId, Ty, Value, VerifyError,
};

/// Registers a `void f()` body on a fresh single-class program and runs the
/// ordinary (lax) finish.
fn finish_with_body(emit: impl FnOnce(&mut dchm_bytecode::MethodBuilder<'_>)) -> Result<dchm_bytecode::Program, VerifyError> {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").build();
    let mut m = pb.static_method(c, "f", MethodSig::void());
    emit(&mut m);
    m.build();
    pb.finish()
}

#[test]
fn dangling_method_ref_is_rejected_not_a_panic() {
    let err = finish_with_body(|m| {
        m.op(Op::CallStatic {
            dst: None,
            method: MethodId::from_index(999),
            args: vec![],
        });
        m.ret(None);
    })
    .unwrap_err();
    assert!(matches!(err, VerifyError::DanglingRef { at: 0, .. }), "{err}");
    assert!(format!("{err}").contains("M999"));
}

#[test]
fn dangling_field_ref_is_rejected() {
    let err = finish_with_body(|m| {
        let r = m.reg();
        m.op(Op::GetStatic {
            dst: r,
            field: FieldId::from_index(77),
        });
        m.ret(None);
    })
    .unwrap_err();
    assert!(matches!(err, VerifyError::DanglingRef { .. }), "{err}");
    assert!(format!("{err}").contains("F77"));
}

#[test]
fn dangling_class_ref_is_rejected() {
    let err = finish_with_body(|m| {
        let r = m.reg();
        m.op(Op::New {
            dst: r,
            class: ClassId::from_index(42),
        });
        m.ret(None);
    })
    .unwrap_err();
    assert!(matches!(err, VerifyError::DanglingRef { .. }), "{err}");
    assert!(format!("{err}").contains("C42"));
}

#[test]
fn dangling_selector_ref_is_rejected() {
    let err = finish_with_body(|m| {
        let this_like = m.reg();
        m.const_i(this_like, 0);
        m.op(Op::CallVirtual {
            dst: None,
            sel: SelectorId::from_index(500),
            obj: this_like,
            args: vec![],
        });
        m.ret(None);
    })
    .unwrap_err();
    assert!(matches!(err, VerifyError::DanglingRef { .. }), "{err}");
    assert!(format!("{err}").contains("S500"));
}

#[test]
fn dangling_interface_ref_in_call_interface_is_rejected() {
    let err = finish_with_body(|m| {
        let r = m.reg();
        m.op(Op::CallInterface {
            dst: None,
            iface: ClassId::from_index(9),
            sel: SelectorId::from_index(0),
            obj: r,
            args: vec![],
        });
        m.ret(None);
    })
    .unwrap_err();
    assert!(matches!(err, VerifyError::DanglingRef { .. }), "{err}");
}

#[test]
fn register_width_beyond_frame_is_rejected() {
    // num_regs stays at the declared frame width; a raw op addressing a
    // register far outside it must be a typed error, not wraparound.
    let err = finish_with_body(|m| {
        m.op(Op::ConstI {
            dst: Reg(u16::MAX),
            val: 1,
        });
        m.ret(None);
    })
    .unwrap_err();
    assert!(
        matches!(err, VerifyError::RegOutOfRange { reg, .. } if reg == u16::MAX),
        "{err}"
    );
}

#[test]
fn branch_register_outside_frame_is_rejected() {
    let err = finish_with_body(|m| {
        let l = m.label();
        m.bind(l);
        m.emit(Instr::BrIf {
            cond: Reg(300),
            target: l,
        });
        m.ret(None);
    })
    .unwrap_err();
    assert!(matches!(err, VerifyError::RegOutOfRange { reg: 300, .. }), "{err}");
}

#[test]
fn unreachable_block_rejected_by_strict_finish_only() {
    let build = || {
        let mut pb = ProgramBuilder::new();
        let c = pb.class("C").build();
        let mut m = pb.static_method(c, "f", MethodSig::void());
        let r = m.reg();
        m.ret(None);
        // Dead block: no branch ever lands here.
        m.const_i(r, 7);
        m.ret(None);
        m.build();
        pb
    };
    // The lax finish tolerates the dead tail...
    let p = build().finish().expect("lax finish accepts dead code");
    // ...the strict reachability pass pinpoints it.
    let err = verify_reachability(&p).unwrap_err();
    assert!(
        matches!(err, VerifyError::UnreachableCode { at: 1, .. }),
        "{err}"
    );
    let err = build().finish_strict().unwrap_err();
    assert!(matches!(err, VerifyError::UnreachableCode { at: 1, .. }), "{err}");
}

#[test]
fn strict_finish_accepts_loops_and_diamonds() {
    let mut pb = ProgramBuilder::new();
    let c = pb.class("C").build();
    let f = pb.static_field(c, "s", Ty::Int, Value::Int(0));
    let mut m = pb.static_method(c, "f", MethodSig::void());
    let i = m.reg();
    m.const_i(i, 0);
    let head = m.label();
    let out = m.label();
    m.bind(head);
    m.br_icmp_imm(dchm_bytecode::CmpOp::Ge, i, 10, out);
    m.put_static(f, i);
    m.iadd_imm(i, i, 1);
    m.jmp(head);
    m.bind(out);
    m.ret(None);
    m.build();
    assert!(pb.finish_strict().is_ok());
}

#[test]
fn dangling_ref_display_names_method_and_site() {
    let e = VerifyError::DanglingRef {
        method: "C::f".into(),
        at: 3,
        what: "field F9".into(),
    };
    let s = format!("{e}");
    assert!(s.contains("C::f") && s.contains("@3") && s.contains("F9"), "{s}");
}
